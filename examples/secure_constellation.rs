//! Figure 4: a constellation of trusted computations.
//!
//! Two enterprises outsource intrusion detection for a cross-enterprise
//! flow to an S-NIC function in an untrusted cloud (Figure 4a): each
//! gateway attests the NF (and a host-level enclave), then tunnels
//! traffic over attested, encrypted channels so the cloud operator sees
//! only ciphertext.
//!
//! Run with: `cargo run --example secure_constellation`

use rand::SeedableRng;
use snic::core::config::NicConfig;
use snic::core::constellation::Constellation;
use snic::core::device::SmartNic;
use snic::core::enclave::HostEnclave;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::dh::DhParams;
use snic::crypto::keys::VendorCa;
use snic::nf::{DpiNf, NetworkFunction, NullSink, Verdict};
use snic::pktio::vxlan::{vxlan_decap, vxlan_encap};
use snic::types::packet::PacketBuilder;
use snic::types::{ByteSize, CoreId, Protocol};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0_57);

    // Trust roots: the NIC vendor and the host-CPU vendor.
    let nic_vendor = VendorCa::new(&mut rng);
    let cpu_vendor = VendorCa::new(&mut rng);

    // The cloud provider's S-NIC hosts the tenant's IDS function.
    let mut nic = SmartNic::new(
        NicConfig {
            cores: 4,
            ..NicConfig::snic()
        },
        &nic_vendor,
    );
    let ids_receipt = nic
        .nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(52), // Table 6: DPI needs 51.14 MB.
            NfImage {
                code: b"ids-dpi-engine-v3".to_vec(),
                config: b"ruleset-2026".to_vec(),
            },
        ))
        .expect("launch IDS");
    println!(
        "IDS function launched on the cloud S-NIC: {}",
        ids_receipt.nf_id
    );

    // A host-level enclave holds the client enterprise's keys.
    let key_manager = HostEnclave::load(&mut rng, &cpu_vendor, b"key-manager-enclave");

    // Build the constellation: both gateways attest the IDS and the
    // enclave before sending anything.
    let mut constellation = Constellation::new(DhParams::rfc3526_group14());
    constellation.register(
        "client-gw",
        nic_vendor.public().clone(),
        ids_receipt.measurement,
    );
    constellation.register(
        "dest-gw",
        nic_vendor.public().clone(),
        ids_receipt.measurement,
    );
    constellation.register("ids", nic_vendor.public().clone(), ids_receipt.measurement);
    constellation.register("keys", cpu_vendor.public().clone(), key_manager.measurement);

    constellation
        .attest_nf(&mut rng, "client-gw", "ids", &mut nic, ids_receipt.nf_id)
        .expect("client gateway attests IDS");
    constellation
        .attest_nf(&mut rng, "dest-gw", "ids", &mut nic, ids_receipt.nf_id)
        .expect("destination gateway attests IDS");
    constellation
        .attest_enclave(&mut rng, "client-gw", "keys", &key_manager)
        .expect("client gateway attests key manager");
    println!(
        "pairwise attestation complete: client-gw <-> ids, dest-gw <-> ids, client-gw <-> keys"
    );

    // The client gateway tunnels a frame to the IDS: VXLAN for the
    // virtual L2 topology, sealed with the attested channel key.
    let inner = PacketBuilder::new(0x0a00_0001, 0x0a00_0002, Protocol::Tcp, 44_000, 443)
        .payload(b"cross-enterprise transaction".to_vec())
        .build();
    let tunneled = vxlan_encap(&inner, 0x1234, 0xc0a8_0101, 0xc0a8_0202).expect("encap");
    let mut client_tx = constellation.channel("client-gw", "ids").expect("channel");
    let sealed = client_tx.seal(&tunneled.data);
    println!(
        "client gateway sent {} ciphertext bytes (cloud sees no headers)",
        sealed.ciphertext.len()
    );

    // The IDS opens the channel, decapsulates, and inspects.
    let mut ids_rx = constellation.channel("ids", "client-gw").expect("channel");
    let plain = ids_rx.open(&sealed).expect("decrypt");
    let received = snic::types::Packet::from_bytes(bytes_from(plain));
    let (vni, inspected) = vxlan_decap(&received).expect("decap");
    let mut dpi = DpiNf::new(&[b"exploit".to_vec(), b"malware".to_vec()]);
    let verdict = dpi.process(&inspected, &mut NullSink);
    println!("IDS inspected VNI {vni:#x}: verdict {verdict:?}");
    assert_eq!(verdict, Verdict::Matched(0), "clean traffic passes");

    // Clean traffic is re-sealed toward the destination gateway.
    let mut ids_tx = constellation.channel("ids", "dest-gw").expect("channel");
    let forwarded = ids_tx.seal(&inspected.data);
    let mut dest_rx = constellation.channel("dest-gw", "ids").expect("channel");
    let delivered = dest_rx.open(&forwarded).expect("decrypt");
    assert_eq!(delivered, inspected.data.to_vec());
    println!("destination gateway received the inspected frame intact");
}

fn bytes_from(v: Vec<u8>) -> bytes::Bytes {
    bytes::Bytes::from(v)
}
