//! Quickstart: launch a firewall on an S-NIC, push traffic through its
//! virtual packet pipeline, attest it, and tear it down.
//!
//! Run with: `cargo run --example quickstart`

use rand::SeedableRng;
use snic::core::attest::{FunctionAttestation, Verifier};
use snic::core::config::NicConfig;
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::dh::DhParams;
use snic::crypto::keys::VendorCa;
use snic::nf::{FirewallNf, NetworkFunction, NfKind, NullSink, Verdict};
use snic::pktio::rules::{RuleMatch, SwitchRule};
use snic::types::packet::PacketBuilder;
use snic::types::{ByteSize, CoreId, NfId, Protocol};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. The NIC vendor manufactures an S-NIC with a certified
    //    endorsement key.
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::snic(), &vendor);
    println!(
        "S-NIC up: {} cores, {} DRAM",
        nic.config().cores,
        nic.config().dram
    );

    // 2. A tenant launches a stateful firewall with a rule steering web
    //    traffic into its virtual packet pipeline.
    let request = LaunchRequest {
        rules: vec![SwitchRule {
            dst_port: RuleMatch::Exact(80),
            priority: 10,
            ..SwitchRule::any(NfId(0))
        }],
        ..LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(18), // Table 6: FW needs 17.20 MB.
            NfImage {
                code: b"stateful-firewall-v1".to_vec(),
                config: vec![],
            },
        )
    };
    let receipt = nic.nf_launch(request).expect("launch");
    println!(
        "launched {} in {:.2} ms (digest {:.2} ms) — measurement {}",
        receipt.nf_id,
        receipt.latency.total().as_millis_f64(),
        receipt.latency.sha_digest.as_millis_f64(),
        snic::crypto::sha256::to_hex(&receipt.measurement),
    );

    // 3. Traffic flows through the VPP; the tenant's firewall code
    //    processes each packet on its private cores.
    let mut firewall = FirewallNf::with_defaults(7);
    assert_eq!(firewall.kind(), NfKind::Firewall);
    let mut forwarded = 0;
    let mut dropped = 0;
    for i in 0..100u32 {
        // Mix benign traffic (outside the rulesets' hot /16) with some
        // packets aimed straight at the deny rules' target range.
        let dst = if i % 5 == 0 { 0xc633_0001 } else { 0x0a64_0001 };
        let pkt = PacketBuilder::new(0x0a00_0000 + i, dst, Protocol::Tcp, 5000, 80)
            .payload(b"GET / HTTP/1.1".to_vec())
            .build();
        nic.rx_packet(&pkt).expect("rx");
        let delivered = nic
            .poll_packet(receipt.nf_id)
            .expect("poll")
            .expect("queued");
        match firewall.process(&delivered, &mut NullSink) {
            Verdict::Forward => {
                nic.tx_packet(receipt.nf_id, delivered).expect("tx");
                forwarded += 1;
            }
            _ => dropped += 1,
        }
    }
    println!("processed 100 packets: {forwarded} forwarded, {dropped} dropped by rules");

    // 4. A remote peer attests the function before trusting it.
    let params = DhParams::rfc3526_group14();
    let mut verifier = Verifier::hello(&mut rng);
    let attestation =
        FunctionAttestation::respond(&mut rng, &mut nic, receipt.nf_id, &params, verifier.nonce)
            .expect("attest");
    let verifier_pub = verifier
        .accept(
            &mut rng,
            vendor.public(),
            &receipt.measurement,
            &attestation.quote,
        )
        .expect("quote verification");
    let key_nf = attestation.session_key(&verifier_pub);
    let key_peer = verifier.session_key(&attestation.quote.dh_public);
    assert_eq!(key_nf, key_peer);
    println!("remote attestation succeeded; shared 256-bit session key established");

    // 5. Teardown scrubs every byte the function touched.
    let teardown = nic.nf_teardown(receipt.nf_id).expect("teardown");
    println!(
        "teardown in {:.2} ms ({:.2} ms scrubbing)",
        teardown.latency.total().as_millis_f64(),
        teardown.latency.scrub.as_millis_f64(),
    );
}
