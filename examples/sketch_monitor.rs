//! Bounded-memory flow monitoring: the sketch Monitor vs. the HashMap
//! Monitor under S-NIC's fixed preallocation (§4.8's underutilization
//! discussion).
//!
//! Run with: `cargo run --release --example sketch_monitor`

use snic::nf::{MonitorNf, NullSink, SketchMonitor};
use snic::trace::{CaidaConfig, CaidaLikeTrace};
use snic::types::{ByteSize, Picos};

fn main() {
    // A CAIDA-like measurement window.
    let trace = CaidaLikeTrace::generate(
        &CaidaConfig {
            flow_arrival_rate: 120_000.0,
            ..CaidaConfig::default()
        },
        Picos::millis(300),
    );
    println!(
        "trace: {} packets over {} distinct flows",
        trace.records().len(),
        trace.distinct_flows()
    );

    // Exact HashMap monitor: memory grows with the flow count, so an
    // S-NIC launch must preallocate for the worst case.
    let mut exact = MonitorNf::new(ByteSize::mib(8));
    for r in trace.records() {
        exact.observe(r.flow, r.time, &mut NullSink);
    }
    println!(
        "\nHashMap Monitor:  peak {} / steady {}  (MUR {:.1}%) over {} flows",
        exact.peak_bytes(),
        exact.steady_bytes(),
        exact.tracker().mur() * 100.0,
        exact.tracked_flows(),
    );

    // Sketch monitor: constant memory by construction — MUR is 100%, a
    // perfect fit for launch-time reservation.
    let mut sketch = SketchMonitor::with_defaults(0);
    for r in trace.records() {
        sketch.observe(r.flow, &mut NullSink);
    }
    println!(
        "Sketch Monitor:   {} constant (MUR 100%), {} packets",
        sketch.bytes(),
        sketch.packets(),
    );

    // Accuracy check: compare sketch estimates against exact counts for
    // the top flows.
    println!("\ntop flows (exact vs sketch estimate):");
    let mut flows: Vec<_> = trace
        .records()
        .iter()
        .map(|r| r.flow)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    flows.sort_by_key(|f| std::cmp::Reverse(exact.count_of(f)));
    let mut max_overestimate = 0i64;
    for f in flows.iter().take(8) {
        let truth = exact.count_of(f);
        let est = sketch.estimate(f);
        max_overestimate = max_overestimate.max(est as i64 - truth as i64);
        println!("  {f}: exact {truth:>6}  sketch {est:>6}");
        assert!(est >= truth, "count-min must never underestimate");
    }
    println!("max overestimate among top flows: {max_overestimate}");

    let hh = sketch.heavy_hitters();
    println!(
        "\nsketch heavy hitters tracked: {} (top: {} ≈ {})",
        hh.len(),
        hh[0].0,
        hh[0].1
    );
}
