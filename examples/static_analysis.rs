//! Pass 0 end to end: lower an NF to dataflow IR, prove it confined by
//! abstract interpretation, bind the certificate into attestation — and
//! watch the same gate refuse an adversarial program atomically.
//!
//! Run with: `cargo run --example static_analysis`

use rand::SeedableRng;
use snic::analyze::analyze;
use snic::attacks::adversarial_corpus;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::keys::VendorCa;
use snic::nf::NfKind;
use snic::types::{ByteSize, CoreId};

fn hex(digest: &[u8; 32]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0a5e);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &vendor);

    // 1. A clean tenant: the paper's stateful firewall, lowered to the
    //    dataflow IR its launch request carries.
    let firewall = snic::nf::build(NfKind::Firewall, 7);
    let submission = snic::nf::launch_analysis(firewall.as_ref())
        .expect("paper NFs ship a dataflow IR lowering");
    println!(
        "firewall IR: {} region(s) granted, DMA window {:?}, insn budget {}",
        submission.manifest.regions.len(),
        submission.manifest.dma_window,
        submission.manifest.max_insns_per_packet,
    );

    // 2. The fixpoint engine proves every access confined and every loop
    //    bounded, and mints a certificate.
    let report = analyze(&submission.program, &submission.manifest);
    println!("{report}");
    let certificate = report.certificate.as_ref().expect("clean => certificate");
    println!("certificate digest: {}", hex(&certificate.digest()));

    // 3. `nf_launch` reruns the proof as Pass 0 and binds the digest into
    //    the record, so `nf_attest` quotes carry it.
    let receipt = nic
        .nf_launch(LaunchRequest {
            analysis: Some(submission.clone()),
            ..LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"fw-image".to_vec(),
                    config: vec![],
                },
            )
        })
        .expect("a proven-confined NF launches");
    let stmt = nic.nf_attest(receipt.nf_id, b"verifier-nonce").unwrap();
    assert_eq!(stmt.analysis_digest, certificate.digest());
    println!(
        "launched as {} — attestation binds the same digest: {}\n",
        receipt.nf_id,
        hex(&stmt.analysis_digest)
    );

    // 4. The adversary: an out-of-bounds probe from the §3.3 corpus. The
    //    same engine rejects it with a stable violation code...
    let attack = adversarial_corpus()
        .into_iter()
        .find(|e| e.expected_code == "P0-OOB-LOAD")
        .expect("corpus carries an OOB probe");
    println!(
        "adversarial submission: {} — {}",
        attack.name, attack.description
    );
    let bad = analyze(&attack.submission.program, &attack.submission.manifest);
    println!("{bad}");
    for v in &bad.violations {
        println!("  [{}] {}", v.kind.code(), v.detail);
    }

    // 5. ...and `nf_launch` refuses it before touching a single
    //    resource: the allocator snapshot is bit-identical after the
    //    rejection.
    let before = nic.resource_snapshot();
    let err = nic
        .nf_launch(LaunchRequest {
            analysis: Some(attack.submission.clone()),
            ..LaunchRequest::minimal(CoreId(1), ByteSize::mib(4), NfImage::default())
        })
        .expect_err("Pass 0 must refuse the probe");
    assert_eq!(before, nic.resource_snapshot(), "refusal is atomic");
    println!("\nnf_launch refused: {err}");
    println!("resource snapshot unchanged — nothing was reserved, nothing to roll back");
}
