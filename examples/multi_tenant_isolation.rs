//! Multi-tenant colocation: four tenants' NFs share one S-NIC.
//!
//! Demonstrates (a) the packet path steering each tenant's flows to its
//! own virtual packet pipeline, (b) the microarchitectural
//! non-interference guarantee — a victim's cycle count is identical
//! whether its co-tenant is idle or hostile — and (c) the modest IPC
//! price of that guarantee.
//!
//! Run with: `cargo run --release --example multi_tenant_isolation`

use rand::SeedableRng;
use snic::core::config::NicConfig;
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::keys::VendorCa;
use snic::nf::{build, record_stream, NfKind};
use snic::pktio::rules::{RuleMatch, SwitchRule};
use snic::trace::{IctfConfig, IctfLikeTrace};
use snic::types::packet::PacketBuilder;
use snic::types::{ByteSize, CoreId, NfId, Protocol};
use snic::uarch::config::MachineConfig;
use snic::uarch::engine::run_colocated;
use snic::uarch::stream::{EventSource, ReplayStream, SyntheticStream};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::snic(), &vendor);

    // Four tenants, four NFs, four disjoint port ranges.
    let ports = [80u16, 443, 53, 8080];
    let mut ids = Vec::new();
    for (i, port) in ports.iter().enumerate() {
        let request = LaunchRequest {
            rules: vec![SwitchRule {
                dst_port: RuleMatch::Exact(*port),
                priority: 10,
                ..SwitchRule::any(NfId(0))
            }],
            ..LaunchRequest::minimal(
                CoreId(i as u16),
                ByteSize::mib(16),
                NfImage {
                    code: format!("tenant-{i}-nf").into_bytes(),
                    config: vec![],
                },
            )
        };
        ids.push(nic.nf_launch(request).expect("launch").nf_id);
    }
    println!("launched {} NFs on isolated virtual smart NICs", ids.len());

    // Mixed traffic: each packet lands in exactly one tenant's VPP.
    for i in 0..400u32 {
        let port = ports[(i % 4) as usize];
        let pkt = PacketBuilder::new(i, 0xc633_0001, Protocol::Tcp, 9999, port).build();
        nic.rx_packet(&pkt).expect("rx");
    }
    for (i, &id) in ids.iter().enumerate() {
        let mut count = 0;
        while nic.poll_packet(id).expect("poll").is_some() {
            count += 1;
        }
        println!("tenant {i}: received {count} packets (expected 100)");
        assert_eq!(count, 100);
    }

    // Microarchitectural non-interference: replay a real firewall's
    // reference stream next to an idle vs. hostile co-tenant.
    let mut fw = build(NfKind::Firewall, 5);
    let mut trace = IctfLikeTrace::new(IctfConfig {
        flows: 2000,
        ..IctfConfig::default()
    });
    let packets: Vec<_> = (0..4000).map(|_| trace.next_packet()).collect();
    let fw_stream = record_stream(fw.as_mut(), &packets);

    let cfg = MachineConfig::snic(2, 4 << 20);
    let victim = || EventSource::from(ReplayStream::new(fw_stream.clone()));
    let idle = EventSource::from(SyntheticStream::new(64, 1, 0, 1, 1));
    let hostile = EventSource::from(SyntheticStream::new(64 << 20, 1, 1, 500_000, 666));
    let quiet = run_colocated(&cfg, vec![victim(), idle]);
    let noisy = run_colocated(&cfg, vec![victim(), hostile]);
    println!(
        "victim firewall cycles: {} (idle neighbor) vs {} (hostile neighbor)",
        quiet.nfs[0].cycles, noisy.nfs[0].cycles
    );
    assert_eq!(
        quiet.nfs[0].cycles, noisy.nfs[0].cycles,
        "S-NIC non-interference"
    );

    // The price: IPC vs an unpartitioned commodity NIC.
    let base = run_colocated(
        &MachineConfig::commodity(2, 4 << 20),
        vec![victim(), victim()],
    );
    let snic = run_colocated(&MachineConfig::snic(2, 4 << 20), vec![victim(), victim()]);
    println!(
        "firewall IPC: commodity {:.4}, S-NIC {:.4} ({:.2}% degradation — paper reports <1.7% worst case at 4 NFs)",
        base.nfs[0].ipc(),
        snic.nfs[0].ipc(),
        snic.ipc_degradation_vs(&base, 0),
    );
}
