//! §3.2 made executable: why the commodity SmartNIC architectures leak.
//!
//! Walks the LiquidIO MIPS segment model (SE-S and SE-UM modes) and the
//! BlueField TrustZone model, showing exactly which isolation property
//! each one is missing — the gaps S-NIC's design closes.
//!
//! Run with: `cargo run --release --example commodity_architectures`

use snic::core::archs::mips::{LiquidIoMode, MipsCore, XKPHYS_BASE};
use snic::core::archs::trustzone::{TrustZoneMachine, World};
use snic::mem::pagetable::PageMapping;
use snic::mem::tlb::Tlb;
use snic::types::{ByteSize, CoreId, NfId};

fn user_tlb() -> Tlb {
    let mut t = Tlb::new(CoreId(0), 4);
    t.install(PageMapping {
        va: 0,
        pa: 0x100_0000,
        page_size: 2 << 20,
        writable: true,
    })
    .expect("install");
    t.lock();
    t
}

fn main() {
    println!("=== Marvell LiquidIO: MIPS segments ===\n");

    // SE-S: no kernel, everything privileged, full xkphys.
    let ses = MipsCore::new(CoreId(0), LiquidIoMode::SeS, user_tlb());
    let victim_secret_pa = 0x0dea_d000u64;
    let pa = ses
        .translate(XKPHYS_BASE + victim_secret_pa, true)
        .expect("xkphys");
    println!(
        "SE-S mode: a function named physical address {pa:#x} through xkphys — \
         it can read or corrupt ANY other function's state."
    );

    // SE-UM with xkphys enabled: same exposure, now with a kernel.
    let seum_open = MipsCore::new(
        CoreId(1),
        LiquidIoMode::SeUm {
            xkphys_enabled: true,
        },
        user_tlb(),
    );
    assert!(seum_open
        .translate(XKPHYS_BASE + victim_secret_pa, true)
        .is_ok());
    println!("SE-UM (xkphys on): identical exposure — the kernel just gave it away.");

    // SE-UM with xkphys disabled: no flat addressing, but the kernel
    // still owns the function's mappings.
    let seum_closed = MipsCore::new(
        CoreId(2),
        LiquidIoMode::SeUm {
            xkphys_enabled: false,
        },
        user_tlb(),
    );
    assert!(seum_closed
        .translate(XKPHYS_BASE + victim_secret_pa, true)
        .is_err());
    println!(
        "SE-UM (xkphys off): flat addressing blocked — but the function still \
         cannot protect itself from a buggy or malicious NIC OS.\n"
    );

    println!("=== Mellanox BlueField: TrustZone worlds ===\n");
    let mut tz = TrustZoneMachine::new(ByteSize::mib(32));
    tz.load_trustlet(NfId(1), 0x10_000, b"trustlet: tenant TLS keys")
        .expect("load");

    // Normal world cannot touch secure memory — the part that works.
    tz.smc();
    assert_eq!(tz.world(), World::Normal);
    let mut buf = [0u8; 8];
    assert!(tz.read(0x10_000, &mut buf).is_err());
    println!("normal world -> trustlet state: DENIED (TrustZone working as designed)");

    // But the secure-world management OS sees everything — the gap.
    tz.smc();
    assert_eq!(tz.world(), World::Secure);
    let (base, len) = tz.trustlet_region(NfId(1)).expect("region");
    let mut state = vec![0u8; len as usize];
    tz.read(base, &mut state).expect("secure world reads all");
    println!(
        "secure-world OS -> trustlet state: \"{}\"",
        String::from_utf8_lossy(&state)
    );
    println!(
        "\nBlueField's residual weakness (§3.2): the function has no protection \
         from the secure-world OS itself — exactly what S-NIC's denylist fixes \
         (see `cargo run --example attack_demo`, attack 4)."
    );
}
