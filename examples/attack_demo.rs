//! The §3.3 attacks, side by side on commodity and S-NIC hardware.
//!
//! Run with: `cargo run --example attack_demo`

use snic::attacks::{bus_dos, run_all, watermark};
use snic::core::config::NicMode;

fn main() {
    println!("Reproducing the paper's §3.3 proof-of-concept attacks.\n");
    for mode in [NicMode::Commodity, NicMode::Snic] {
        println!("--- {mode:?} NIC ---");
        let names = [
            "packet corruption (LiquidIO, MazuNAT victim)",
            "DPI ruleset stealing (LiquidIO)",
            "IO bus denial-of-service (Agilio)",
            "NIC OS tampering (threat model §2)",
        ];
        for (name, outcome) in names.iter().zip(run_all(mode)) {
            let status = if outcome.succeeded {
                "ATTACK SUCCEEDED"
            } else {
                "blocked by hardware"
            };
            println!("  {name}\n    -> {status}\n       {}", outcome.evidence);
        }
        println!();
    }

    let (fcfs, temporal) = bus_dos::flood_latency_impact();
    println!("Quantified bus interference on a victim request:");
    println!("  commodity FCFS arbiter: +{fcfs} cycles under attacker flood");
    println!("  S-NIC temporal arbiter: +{temporal} cycles (bit-for-bit unchanged)");

    let (wm_fcfs, wm_temporal) = watermark::run_watermark();
    println!("\nFlow-watermarking channel (§4.5):");
    println!(
        "  FCFS bus: {:.0}% of watermark bits decoded by the observer",
        wm_fcfs * 100.0
    );
    println!(
        "  temporal partitioning: {:.0}% (chance level) — channel eliminated",
        wm_temporal * 100.0
    );
}
