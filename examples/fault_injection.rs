//! Deterministic fault injection: arm a fault plan against a live
//! S-NIC, watch the device recover, and lint the lifecycle transcript
//! with `snic-verify` Pass 3.
//!
//! Run with: `cargo run --example fault_injection`

use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::core::nicos::{NicOs, RetryPolicy};
use snic::crypto::keys::VendorCa;
use snic::faults::{render_transcript, FaultKind, FaultPlan, FaultSite};
use snic::mem::guard::Principal;
use snic::types::{ByteSize, CoreId, SnicError};
use snic::verify::faults::lint_fault_transcript;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfa17);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &vendor);

    // A victim tenant is already running when the faults strike.
    let victim = nic
        .nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(4),
            NfImage {
                code: b"victim-fw".to_vec(),
                config: vec![],
            },
        ))
        .expect("victim launch")
        .nf_id;

    // 1. Arm a deterministic plan: the 1st and 2nd admission attempts
    //    hit transient DRAM exhaustion, and the 1st teardown scrub
    //    chunk loses power. Same plan + same script = same transcript,
    //    every run.
    nic.inject_faults(
        FaultPlan::none()
            .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
            .on_nth(FaultSite::Launch, 2, FaultKind::DramExhaustion)
            .on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss),
    );

    // 2. The NIC OS retries the transient failures with capped backoff
    //    in simulated time; the third attempt is admitted.
    let t0 = nic.now();
    let mut os = NicOs::new(&mut nic);
    let tenant = os
        .nf_create_with_retry(
            LaunchRequest::minimal(CoreId(1), ByteSize::mib(8), NfImage::default()),
            RetryPolicy::default(),
        )
        .expect("admitted after retries")
        .nf_id;
    println!(
        "tenant {tenant} admitted after transient exhaustion; backoff advanced the clock {:.3} ms",
        (nic.now() - t0).as_millis_f64()
    );

    // 3. Power dies mid-teardown. The scrub watermark is crash-
    //    consistent: the region is refused to every launch until the
    //    resumed scrub finishes zeroizing.
    let base = nic.record_of(tenant).expect("live record").region.0;
    let err = nic.nf_teardown(tenant).expect_err("power loss mid-scrub");
    println!("teardown interrupted: {err}");
    nic.restore_power();
    let ticket = nic.pending_scrubs()[0];
    println!(
        "pending scrub ticket: region {:#x}+{:#x}, watermark {:#x}",
        ticket.base, ticket.len, ticket.watermark
    );
    let hinted = LaunchRequest {
        region_base: Some(base),
        ..LaunchRequest::minimal(CoreId(1), ByteSize::mib(8), NfImage::default())
    };
    match nic.nf_launch(hinted.clone()) {
        Err(SnicError::ScrubPending { base }) => {
            println!("dirty region {base:#x} refused before zeroization — as required");
        }
        other => panic!("dirty region was handed out: {other:?}"),
    }
    nic.resume_scrubs();
    let mut buf = [0xffu8; 32];
    nic.mem_read(Principal::Management, base, &mut buf)
        .expect("allowlisted after scrub");
    assert_eq!(buf, [0u8; 32], "scrub must zeroize");
    nic.nf_launch(hinted).expect("region reusable once zeroed");
    println!("scrub resumed from watermark; region relaunched clean");

    // The victim never noticed any of it.
    assert!(nic.record_of(victim).is_ok(), "victim survived every fault");

    // 4. The whole episode is a transcript snic-verify can audit.
    let records = nic.take_fault_log();
    println!(
        "\n== lifecycle transcript ==\n{}",
        render_transcript(&records)
    );
    let findings = lint_fault_transcript(&records);
    if findings.is_empty() {
        println!("snic-verify Pass 3: transcript lints clean");
    } else {
        for f in &findings {
            println!("snic-verify Pass 3 finding: {f}");
        }
        panic!("S-NIC recovery transcript should lint clean");
    }
}
