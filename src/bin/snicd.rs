//! `snicd` — the resident S-NIC serving daemon.
//!
//! Owns one simulated [`snic::core::device::SmartNic`] for its whole
//! lifetime and serves the line-delimited JSON protocol from
//! `snic::serve` — admission control, backpressure, deadlines, fault
//! containment, crash-safe restart.
//!
//! ```text
//! snicd [flags]                      # stdin/stdout, one JSON line each way
//! snicd --socket /run/snicd.sock     # serve Unix-socket connections instead
//! ```
//!
//! Flags:
//!
//! - `--seed N`, `--tick-us N`, `--auto-steps N`, `--deadline-us N`:
//!   daemon configuration (see `DaemonConfig`); all deterministic.
//! - `--journal <path>`: write-ahead log — every request line is
//!   appended and flushed *before* it is executed, so a crashed daemon
//!   can be reconstructed by replaying the journal.
//! - `--restore <image>`: boot by replaying a snapshot image (written
//!   by the `snapshot` op, `--snapshot-out`, or a journal promoted to
//!   an image); replayed responses are not re-emitted.
//! - `--snapshot-out <path>`: whenever a `snapshot` op completes, write
//!   the sealed image there; also writes a final image at clean exit.
//!
//! Exit codes (documented in the README): `0` success, `2` usage or
//! I/O error, `8` restore failure.

use std::io::{BufRead, Write};

use snic::serve::daemon::{Daemon, DaemonConfig};
use snic::serve::snapshot;

struct Opts {
    cfg: DaemonConfig,
    journal: Option<String>,
    restore: Option<String>,
    snapshot_out: Option<String>,
    socket: Option<String>,
}

const USAGE: &str = "usage: snicd [--seed N] [--tick-us N] [--auto-steps N] [--deadline-us N] \
     [--journal <path>] [--restore <image>] [--snapshot-out <path>] [--socket <path>]";

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        cfg: DaemonConfig::default(),
        journal: None,
        restore: None,
        snapshot_out: None,
        socket: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{USAGE}\n({name} needs an integer)"))
        };
        match a.as_str() {
            "--seed" => opts.cfg.seed = num("--seed")?,
            "--tick-us" => opts.cfg.tick_ps = num("--tick-us")?.saturating_mul(1_000_000),
            "--auto-steps" => opts.cfg.auto_steps = num("--auto-steps")? as u32,
            "--deadline-us" => opts.cfg.default_deadline_us = num("--deadline-us")?,
            "--journal" => opts.journal = it.next().cloned(),
            "--restore" => opts.restore = it.next().cloned(),
            "--snapshot-out" => opts.snapshot_out = it.next().cloned(),
            "--socket" => opts.socket = it.next().cloned(),
            other => return Err(format!("{USAGE}\n(unknown flag '{other}')")),
        }
    }
    Ok(opts)
}

/// Feed one request line through the daemon, honoring the write-ahead
/// journal and snapshot sink, and hand each response to `emit`.
fn serve_line(
    daemon: &mut Daemon,
    opts: &Opts,
    line: &str,
    emit: &mut dyn FnMut(&str) -> std::io::Result<()>,
) -> Result<(), String> {
    if let Some(path) = &opts.journal {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {path}: {e}"))?;
        // Write-ahead: the line is durable before any effect happens.
        writeln!(f, "{line}").map_err(|e| format!("journal write: {e}"))?;
        f.flush().map_err(|e| format!("journal flush: {e}"))?;
    }
    let before = daemon.last_snapshot().map(str::to_string);
    for response in daemon.ingest(line) {
        emit(&response).map_err(|e| format!("write response: {e}"))?;
    }
    if let (Some(path), Some(image)) = (&opts.snapshot_out, daemon.last_snapshot()) {
        if before.as_deref() != Some(image) {
            std::fs::write(path, image).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(())
}

fn run(opts: &Opts) -> Result<(), (i32, String)> {
    let mut daemon = match &opts.restore {
        Some(path) => {
            let image = std::fs::read_to_string(path)
                .map_err(|e| (2, format!("cannot read {path}: {e}")))?;
            let (daemon, replayed) =
                snapshot::restore(&image).map_err(|e| (8, format!("restore failed: {e}")))?;
            eprintln!(
                "snicd: restored from {path}: {} lines replayed, {} responses suppressed",
                daemon.history().len(),
                replayed.len()
            );
            daemon
        }
        None => Daemon::new(opts.cfg.clone()),
    };

    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| (2, format!("cannot bind {path}: {e}")))?;
        eprintln!("snicd: listening on {path}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| (2, format!("accept: {e}")))?;
            let reader = std::io::BufReader::new(
                stream.try_clone().map_err(|e| (2, format!("clone: {e}")))?,
            );
            let mut writer = std::io::BufWriter::new(stream);
            for line in reader.lines() {
                let line = line.map_err(|e| (2, format!("read: {e}")))?;
                serve_line(&mut daemon, opts, &line, &mut |r| {
                    writeln!(writer, "{r}").and_then(|()| writer.flush())
                })
                .map_err(|e| (2, e))?;
            }
            // One connection at a time; a client sending `drain` then
            // disconnecting is the clean shutdown signal.
            if daemon
                .transcript()
                .iter()
                .any(|r| matches!(r.kind, snic::faults::ServeEventKind::DrainCompleted { .. }))
            {
                break;
            }
        }
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| (2, format!("read stdin: {e}")))?;
            serve_line(&mut daemon, opts, &line, &mut |r| {
                writeln!(out, "{r}").and_then(|()| out.flush())
            })
            .map_err(|e| (2, e))?;
        }
    }

    if let Some(path) = &opts.snapshot_out {
        std::fs::write(path, snapshot::render_image(&daemon))
            .map_err(|e| (2, format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("snicd: {e}");
            std::process::exit(2);
        }
    };
    if let Err((code, e)) = run(&opts) {
        eprintln!("snicd: {e}");
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse() {
        let o = parse_opts(&s(&[
            "--seed",
            "9",
            "--auto-steps",
            "0",
            "--tick-us",
            "2",
            "--deadline-us",
            "100",
            "--journal",
            "j.log",
        ]))
        .expect("parse");
        assert_eq!(o.cfg.seed, 9);
        assert_eq!(o.cfg.auto_steps, 0);
        assert_eq!(o.cfg.tick_ps, 2_000_000);
        assert_eq!(o.cfg.default_deadline_us, 100);
        assert_eq!(o.journal.as_deref(), Some("j.log"));
        assert!(parse_opts(&s(&["--bogus"])).is_err());
        assert!(parse_opts(&s(&["--seed", "many"])).is_err());
    }

    #[test]
    fn serve_line_journals_before_effects_and_snapshots() {
        let dir = std::env::temp_dir();
        let journal = dir.join("snicd-test-journal.log");
        let snap = dir.join("snicd-test-snap.img");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&snap);
        let opts = Opts {
            cfg: DaemonConfig::default(),
            journal: Some(journal.to_string_lossy().into_owned()),
            restore: None,
            snapshot_out: Some(snap.to_string_lossy().into_owned()),
            socket: None,
        };
        let mut daemon = Daemon::new(opts.cfg.clone());
        let mut responses = Vec::new();
        for line in [
            r#"{"op":"launch","tenant":"a","id":1,"name":"fw","mem":8}"#,
            r#"{"op":"snapshot","id":2}"#,
        ] {
            serve_line(&mut daemon, &opts, line, &mut |r| {
                responses.push(r.to_string());
                Ok(())
            })
            .expect("serve");
        }
        let logged = std::fs::read_to_string(&journal).expect("journal exists");
        assert_eq!(logged.lines().count(), 2, "both lines journaled");
        let image = std::fs::read_to_string(&snap).expect("snapshot written");
        let (restored, _) = snapshot::restore(&image).expect("image restores");
        assert_eq!(restored.history(), daemon.history());
        assert!(responses.iter().any(|r| r.contains("\"op\":\"snapshot\"")));
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&snap);
    }
}
