//! `snicctl` — a small scriptable driver for the S-NIC device model.
//!
//! Reads commands from a script file (or stdin with `-`) and executes
//! them against one simulated NIC, printing one result line per command.
//!
//! ```text
//! nic snic                      # or: nic commodity
//! launch fw core=0 mem=16 port=80
//! send 100 port=80
//! poll fw
//! attest fw
//! stats fw
//! teardown fw
//! ```
//!
//! Usage: `cargo run --release --bin snicctl -- script.snic`
//!
//! A second mode drives the telemetry layer instead of a script:
//!
//! ```text
//! snicctl telemetry record <trace.json> <summary.txt>  # run the fig5
//!     # smoke sweep under a recorder; write Chrome trace + summary
//! snicctl telemetry summary <summary.txt>              # render one run
//! snicctl telemetry diff <before.txt> <after.txt>      # compare runs
//! ```
//!
//! The Chrome trace opens directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! A third mode runs the engine wall-clock harness (see
//! `BENCH_uarch.json` at the repo root):
//!
//! ```text
//! snicctl bench            # fig5 colocation sweep, quick scale
//! snicctl bench --full     # same at the paper scale
//! ```

use std::collections::HashMap;
use std::io::Read;

use rand::SeedableRng;
use snic::core::attest::{FunctionAttestation, Verifier};
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::dh::DhParams;
use snic::crypto::keys::VendorCa;
use snic::pktio::rules::{RuleMatch, SwitchRule};
use snic::types::packet::PacketBuilder;
use snic::types::{ByteSize, CoreId, NfId, Protocol};

/// Interpreter state.
struct Session {
    vendor: VendorCa,
    nic: Option<SmartNic>,
    names: HashMap<String, (NfId, [u8; 32])>,
    rng: rand::rngs::StdRng,
    packet_seq: u32,
}

impl Session {
    fn new() -> Session {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5111c);
        Session {
            vendor: VendorCa::new(&mut rng),
            nic: None,
            names: HashMap::new(),
            rng,
            packet_seq: 0,
        }
    }

    fn nic(&mut self) -> Result<&mut SmartNic, String> {
        self.nic
            .as_mut()
            .ok_or_else(|| "no NIC configured; run `nic snic` first".to_string())
    }

    fn lookup(&self, name: &str) -> Result<(NfId, [u8; 32]), String> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown NF '{name}'"))
    }

    /// Execute one script line; returns the output line.
    fn execute(&mut self, line: &str) -> Result<String, String> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(String::new());
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("non-empty line");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "nic" => {
                let mode = match args.first() {
                    Some(&"snic") => NicMode::Snic,
                    Some(&"commodity") => NicMode::Commodity,
                    other => return Err(format!("nic: expected snic|commodity, got {other:?}")),
                };
                self.nic = Some(SmartNic::new(NicConfig::small(mode), &self.vendor));
                self.names.clear();
                Ok(format!("nic up in {mode:?} mode"))
            }
            "launch" => {
                let name = args.first().ok_or("launch: missing name")?.to_string();
                let kv = parse_kv(&args[1..])?;
                let core = *kv.get("core").ok_or("launch: missing core=")? as u16;
                let mem = *kv.get("mem").ok_or("launch: missing mem=")?;
                let port = kv.get("port").copied();
                let mut request = LaunchRequest::minimal(
                    CoreId(core),
                    ByteSize::mib(mem),
                    NfImage {
                        code: name.as_bytes().to_vec(),
                        config: vec![],
                    },
                );
                if let Some(p) = port {
                    request.rules.push(SwitchRule {
                        dst_port: RuleMatch::Exact(p as u16),
                        priority: 10,
                        ..SwitchRule::any(NfId(0))
                    });
                }
                let receipt = self.nic()?.nf_launch(request).map_err(|e| e.to_string())?;
                self.names
                    .insert(name.clone(), (receipt.nf_id, receipt.measurement));
                Ok(format!(
                    "launched {name} as {} in {:.2} ms",
                    receipt.nf_id,
                    receipt.latency.total().as_millis_f64()
                ))
            }
            "send" => {
                let count: u32 = args
                    .first()
                    .ok_or("send: missing count")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                let kv = parse_kv(&args[1..])?;
                let port = *kv.get("port").ok_or("send: missing port=")? as u16;
                let mut delivered = 0u32;
                for _ in 0..count {
                    self.packet_seq += 1;
                    let pkt = PacketBuilder::new(
                        0x0a00_0000 + self.packet_seq,
                        0xc633_0001,
                        Protocol::Tcp,
                        (1024 + self.packet_seq % 60_000) as u16,
                        port,
                    )
                    .payload(b"snicctl".to_vec())
                    .build();
                    if self
                        .nic()?
                        .rx_packet(&pkt)
                        .map_err(|e| e.to_string())?
                        .is_some()
                    {
                        delivered += 1;
                    }
                }
                Ok(format!(
                    "sent {count} packets to port {port}; {delivered} matched a rule"
                ))
            }
            "poll" => {
                let (id, _) = self.lookup(args.first().ok_or("poll: missing name")?)?;
                let mut n = 0;
                while self
                    .nic()?
                    .poll_packet(id)
                    .map_err(|e| e.to_string())?
                    .is_some()
                {
                    n += 1;
                }
                Ok(format!("polled {n} packets"))
            }
            "attest" => {
                let name = args.first().ok_or("attest: missing name")?;
                let (id, measurement) = self.lookup(name)?;
                let params = DhParams::tiny_test_group();
                let mut verifier = Verifier::hello(&mut self.rng);
                let nonce = verifier.nonce;
                let vendor_pub = self.vendor.public().clone();
                let nic = self.nic()?;
                let f = FunctionAttestation::respond(
                    &mut rand::rngs::StdRng::seed_from_u64(7),
                    nic,
                    id,
                    &params,
                    nonce,
                )
                .map_err(|e| e.to_string())?;
                let v_pub = verifier
                    .accept(
                        &mut rand::rngs::StdRng::seed_from_u64(8),
                        &vendor_pub,
                        &measurement,
                        &f.quote,
                    )
                    .map_err(|e| e.to_string())?;
                let ok = f.session_key(&v_pub) == verifier.session_key(&f.quote.dh_public);
                Ok(format!("attestation of {name}: verified={ok}"))
            }
            "stats" => {
                let (id, _) = self.lookup(args.first().ok_or("stats: missing name")?)?;
                let nic = self.nic()?;
                let r = nic.record_of(id).map_err(|e| e.to_string())?;
                Ok(format!(
                    "{}: cores={:?} mem={} delivered={} dropped={} sent={}",
                    id, r.cores, r.memory, r.rx_delivered, r.rx_dropped, r.tx_sent
                ))
            }
            "teardown" => {
                let name = args.first().ok_or("teardown: missing name")?.to_string();
                let (id, _) = self.lookup(&name)?;
                let receipt = self.nic()?.nf_teardown(id).map_err(|e| e.to_string())?;
                self.names.remove(&name);
                Ok(format!(
                    "tore down {name} in {:.2} ms ({:.2} ms scrubbing)",
                    receipt.latency.total().as_millis_f64(),
                    receipt.latency.scrub.as_millis_f64()
                ))
            }
            "attacks" => {
                let mode = self.nic()?.mode();
                let outcomes = snic::attacks::run_all(mode);
                let summary: Vec<String> = outcomes
                    .iter()
                    .map(|o| {
                        if o.succeeded {
                            "SUCCEEDED".into()
                        } else {
                            "blocked".to_string()
                        }
                    })
                    .collect();
                Ok(format!("attacks on {mode:?}: {}", summary.join(", ")))
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn parse_kv(args: &[&str]) -> Result<HashMap<String, u64>, String> {
    let mut out = HashMap::new();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{a}'"))?;
        out.insert(
            k.to_string(),
            v.parse::<u64>().map_err(|e| format!("{a}: {e}"))?,
        );
    }
    Ok(out)
}

/// `snicctl bench [--full]`: run the engine wall-clock harness (the
/// same one behind `uarch_perf` and the `BENCH_uarch.json` baseline)
/// and print the report JSON. `--full` measures at the paper scale.
fn bench_main(args: &[String]) -> Result<String, String> {
    use snic::bench::perf::{extract_f64, run, to_json};
    use snic::bench::Scale;

    let (scale, scale_name) = match args {
        [] => (Scale::quick(), "quick"),
        [flag] if flag == "--full" => (Scale::paper(), "paper"),
        _ => return Err("usage: snicctl bench [--full]".to_string()),
    };
    eprintln!("snicctl bench: measuring (scale={scale_name}, median of 5)...");
    let report = run(&scale, 5);
    // Carry the frozen pre-overhaul baseline forward so the printed
    // speedup is against the same reference as the committed file.
    let before = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_uarch.json"),
    )
    .ok()
    .and_then(|j| extract_f64(&j, "events_per_sec_before"));
    Ok(to_json(&report, scale_name, before))
}

/// `snicctl telemetry ...`: record the fig5 smoke sweep, render a
/// summary file, or diff two of them.
fn telemetry_main(args: &[String]) -> Result<String, String> {
    use snic::telemetry::{to_chrome_trace, Summary};

    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    match args {
        [cmd, trace_path, summary_path] if cmd == "record" => {
            let scale = snic::bench::telemetry::smoke_scale();
            let (outcomes, summary, events) =
                snic::bench::telemetry::record_smoke(snic::sim::Exec::Parallel, &scale);
            std::fs::write(trace_path, to_chrome_trace(&events))
                .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
            std::fs::write(summary_path, summary.to_text())
                .map_err(|e| format!("cannot write {summary_path}: {e}"))?;
            Ok(format!(
                "recorded {} colocation runs: {} events -> {trace_path} (open in \
                 ui.perfetto.dev), {} counters + {} histograms -> {summary_path}\n\n{}",
                outcomes.len(),
                events.len(),
                summary.counters.len(),
                summary.hists.len(),
                summary.render()
            ))
        }
        [cmd, path] if cmd == "summary" => Ok(Summary::from_text(&read(path)?)?.render()),
        [cmd, before, after] if cmd == "diff" => {
            let a = Summary::from_text(&read(before)?)?;
            let b = Summary::from_text(&read(after)?)?;
            Ok(Summary::render_diff(&a.diff(&b)))
        }
        _ => Err(
            "usage: snicctl telemetry <record <trace.json> <summary.txt> | \
                  summary <file> | diff <before> <after>>"
                .to_string(),
        ),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bench") {
        match bench_main(&argv[1..]) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("snicctl: {e}");
                std::process::exit(2);
            }
        }
    }
    if argv.first().map(String::as_str) == Some("telemetry") {
        match telemetry_main(&argv[1..]) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("snicctl: {e}");
                std::process::exit(2);
            }
        }
    }
    let arg = argv.first().cloned().unwrap_or_else(|| {
        eprintln!(
            "usage: snicctl <script.snic | -> | snicctl bench [--full] | snicctl telemetry ..."
        );
        std::process::exit(2);
    });
    let script = if arg == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(&arg).unwrap_or_else(|e| {
            eprintln!("snicctl: cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };
    let mut session = Session::new();
    for (lineno, line) in script.lines().enumerate() {
        match session.execute(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("snicctl: line {}: {e}", lineno + 1);
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &str) -> Vec<String> {
        let mut s = Session::new();
        script
            .lines()
            .map(|l| s.execute(l).expect("script line"))
            .filter(|o| !o.is_empty())
            .collect()
    }

    #[test]
    fn full_lifecycle_script() {
        let out = run("\
nic snic
launch fw core=0 mem=8 port=80
send 10 port=80
stats fw
poll fw
teardown fw
");
        assert!(out[0].contains("Snic"));
        assert!(out[1].contains("launched fw"));
        assert!(out[2].contains("10 matched"));
        assert!(out[3].contains("delivered=0"));
        assert!(out[4].contains("polled 10"));
        assert!(out[5].contains("tore down fw"));
    }

    #[test]
    fn attestation_command_verifies() {
        let out = run("\
nic snic
launch ids core=1 mem=4
attest ids
");
        assert!(out[2].contains("verified=true"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run("# a comment\n\nnic commodity\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("Commodity"));
    }

    #[test]
    fn errors_are_reported() {
        let mut s = Session::new();
        assert!(s.execute("launch x core=0 mem=4").is_err(), "no NIC yet");
        s.execute("nic snic").unwrap();
        assert!(s.execute("bogus").is_err());
        assert!(s.execute("launch x core=0").is_err(), "missing mem=");
        assert!(s.execute("teardown ghost").is_err());
        // Core conflicts surface as errors too.
        s.execute("launch a core=0 mem=4").unwrap();
        assert!(s.execute("launch b core=0 mem=4").is_err());
    }

    #[test]
    fn telemetry_usage_and_diff() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(telemetry_main(&s(&["bogus"])).is_err());
        assert!(telemetry_main(&s(&["record", "only-one-path"])).is_err());
        let dir = std::env::temp_dir();
        let (a, b) = (dir.join("snicctl-tel-a.txt"), dir.join("snicctl-tel-b.txt"));
        std::fs::write(&a, "# snic-telemetry summary v1\ncounter 0 nf.tx_sent 1\n").unwrap();
        std::fs::write(&b, "# snic-telemetry summary v1\ncounter 0 nf.tx_sent 3\n").unwrap();
        let (a, b) = (
            a.to_string_lossy().into_owned(),
            b.to_string_lossy().into_owned(),
        );
        let rendered = telemetry_main(&s(&["summary", &a])).unwrap();
        assert!(rendered.contains("nf.tx_sent"), "{rendered}");
        let diff = telemetry_main(&s(&["diff", &a, &b])).unwrap();
        assert!(diff.contains("nf.tx_sent"), "{diff}");
        let same = telemetry_main(&s(&["diff", &a, &a])).unwrap();
        assert!(same.contains("no differences"), "{same}");
    }

    #[test]
    fn bench_rejects_unknown_flags() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(bench_main(&s(&["--bogus"])).is_err());
        assert!(bench_main(&s(&["--full", "extra"])).is_err());
    }

    #[test]
    fn attacks_command_both_modes() {
        let mut s = Session::new();
        s.execute("nic commodity").unwrap();
        let c = s.execute("attacks").unwrap();
        assert_eq!(c.matches("SUCCEEDED").count(), 4, "{c}");
        s.execute("nic snic").unwrap();
        let p = s.execute("attacks").unwrap();
        assert_eq!(p.matches("blocked").count(), 4, "{p}");
    }
}
