//! `snicctl` — a small scriptable driver for the S-NIC device model.
//!
//! Reads commands from a script file (or stdin with `-`) and executes
//! them against one simulated NIC, printing one result line per command.
//!
//! ```text
//! nic snic                      # or: nic commodity
//! launch fw core=0 mem=16 port=80
//! send 100 port=80
//! poll fw
//! attest fw
//! stats fw
//! teardown fw
//! ```
//!
//! Usage: `cargo run --release --bin snicctl -- script.snic`
//!
//! A second mode drives the telemetry layer instead of a script:
//!
//! ```text
//! snicctl telemetry record <trace.json> <summary.txt>  # run the fig5
//!     # smoke sweep under a recorder; write Chrome trace + summary
//! snicctl telemetry summary <summary.txt>              # render one run
//! snicctl telemetry diff <before.txt> <after.txt>      # compare runs
//! ```
//!
//! The Chrome trace opens directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! A third mode runs the engine wall-clock harness (see
//! `BENCH_uarch.json` at the repo root):
//!
//! ```text
//! snicctl bench            # fig5 colocation sweep, quick scale
//! snicctl bench --full     # same at the paper scale
//! snicctl bench --shards 8 # shard S-NIC cells across worker threads
//! ```
//!
//! Two verifier modes expose the static passes:
//!
//! ```text
//! snicctl analyze [--json] [--gate]   # Pass 0 over the paper NFs and
//!     # the adversarial corpus; --gate enforces exact codes + runtime
//! snicctl verify [--json] [--bad]     # Pass 1 over a manifest set
//! ```
//!
//! Two serving modes drive an in-process `snicd` daemon (see
//! `src/bin/snicd.rs` for the resident process):
//!
//! ```text
//! snicctl serve <requests.jsonl | -> [--seed N] [--auto-steps N]
//!     [--restore <image>] [--snapshot-out <path>]   # one response/line
//! snicctl soak [--seed N] [--gate] [--emit-schedule]  # the seeded
//!     # overload + fault-plan soak; --gate enforces the acceptance
//!     # criteria plus a mid-run-restart byte-identity differential
//! ```
//!
//! A streamed-trace mode drives the bounded-memory colocation
//! machinery (see `crates/bench/src/colo.rs`):
//!
//! ```text
//! snicctl trace describe                 # tenant mix + phase schedules
//! snicctl trace sweep --tenants 32,48,64 # streamed colocation sweep
//! snicctl trace billion --gate           # 1e9-event run under the
//!     # SNIC_MEM_BUDGET_MB peak-RSS budget, with a serial≡sharded
//!     # identity pre-check
//! ```
//!
//! Exit codes are distinct per failure class and documented in the
//! README: `0` success, `2` usage or I/O error, `3` script execution
//! error, `4` verify error, `5` analyze failure, `6` bench error, `7`
//! telemetry error, `8` serve error, `9` soak gate failure, `10`
//! leakage gate failure, `11` trace gate failure.

use std::collections::HashMap;
use std::io::Read;

use rand::SeedableRng;
use snic::core::attest::{FunctionAttestation, Verifier};
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::dh::DhParams;
use snic::crypto::keys::VendorCa;
use snic::pktio::rules::{RuleMatch, SwitchRule};
use snic::types::packet::PacketBuilder;
use snic::types::{ByteSize, CoreId, NfId, Protocol};

/// Interpreter state.
struct Session {
    vendor: VendorCa,
    nic: Option<SmartNic>,
    names: HashMap<String, (NfId, [u8; 32])>,
    rng: rand::rngs::StdRng,
    packet_seq: u32,
}

impl Session {
    fn new() -> Session {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5111c);
        Session {
            vendor: VendorCa::new(&mut rng),
            nic: None,
            names: HashMap::new(),
            rng,
            packet_seq: 0,
        }
    }

    fn nic(&mut self) -> Result<&mut SmartNic, String> {
        self.nic
            .as_mut()
            .ok_or_else(|| "no NIC configured; run `nic snic` first".to_string())
    }

    fn lookup(&self, name: &str) -> Result<(NfId, [u8; 32]), String> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown NF '{name}'"))
    }

    /// Execute one script line; returns the output line.
    fn execute(&mut self, line: &str) -> Result<String, String> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(String::new());
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("non-empty line");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "nic" => {
                let mode = match args.first() {
                    Some(&"snic") => NicMode::Snic,
                    Some(&"commodity") => NicMode::Commodity,
                    other => return Err(format!("nic: expected snic|commodity, got {other:?}")),
                };
                self.nic = Some(SmartNic::new(NicConfig::small(mode), &self.vendor));
                self.names.clear();
                Ok(format!("nic up in {mode:?} mode"))
            }
            "launch" => {
                let name = args.first().ok_or("launch: missing name")?.to_string();
                let kv = parse_kv(&args[1..])?;
                let core = *kv.get("core").ok_or("launch: missing core=")? as u16;
                let mem = *kv.get("mem").ok_or("launch: missing mem=")?;
                let port = kv.get("port").copied();
                let mut request = LaunchRequest::minimal(
                    CoreId(core),
                    ByteSize::mib(mem),
                    NfImage {
                        code: name.as_bytes().to_vec(),
                        config: vec![],
                    },
                );
                if let Some(p) = port {
                    request.rules.push(SwitchRule {
                        dst_port: RuleMatch::Exact(p as u16),
                        priority: 10,
                        ..SwitchRule::any(NfId(0))
                    });
                }
                let receipt = self.nic()?.nf_launch(request).map_err(|e| e.to_string())?;
                self.names
                    .insert(name.clone(), (receipt.nf_id, receipt.measurement));
                Ok(format!(
                    "launched {name} as {} in {:.2} ms",
                    receipt.nf_id,
                    receipt.latency.total().as_millis_f64()
                ))
            }
            "send" => {
                let count: u32 = args
                    .first()
                    .ok_or("send: missing count")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                let kv = parse_kv(&args[1..])?;
                let port = *kv.get("port").ok_or("send: missing port=")? as u16;
                let mut delivered = 0u32;
                for _ in 0..count {
                    self.packet_seq += 1;
                    let pkt = PacketBuilder::new(
                        0x0a00_0000 + self.packet_seq,
                        0xc633_0001,
                        Protocol::Tcp,
                        (1024 + self.packet_seq % 60_000) as u16,
                        port,
                    )
                    .payload(b"snicctl".to_vec())
                    .build();
                    if self
                        .nic()?
                        .rx_packet(&pkt)
                        .map_err(|e| e.to_string())?
                        .is_some()
                    {
                        delivered += 1;
                    }
                }
                Ok(format!(
                    "sent {count} packets to port {port}; {delivered} matched a rule"
                ))
            }
            "poll" => {
                let (id, _) = self.lookup(args.first().ok_or("poll: missing name")?)?;
                let mut n = 0;
                while self
                    .nic()?
                    .poll_packet(id)
                    .map_err(|e| e.to_string())?
                    .is_some()
                {
                    n += 1;
                }
                Ok(format!("polled {n} packets"))
            }
            "attest" => {
                let name = args.first().ok_or("attest: missing name")?;
                let (id, measurement) = self.lookup(name)?;
                let params = DhParams::tiny_test_group();
                let mut verifier = Verifier::hello(&mut self.rng);
                let nonce = verifier.nonce;
                let vendor_pub = self.vendor.public().clone();
                let nic = self.nic()?;
                let f = FunctionAttestation::respond(
                    &mut rand::rngs::StdRng::seed_from_u64(7),
                    nic,
                    id,
                    &params,
                    nonce,
                )
                .map_err(|e| e.to_string())?;
                let v_pub = verifier
                    .accept(
                        &mut rand::rngs::StdRng::seed_from_u64(8),
                        &vendor_pub,
                        &measurement,
                        &f.quote,
                    )
                    .map_err(|e| e.to_string())?;
                let ok = f.session_key(&v_pub) == verifier.session_key(&f.quote.dh_public);
                Ok(format!("attestation of {name}: verified={ok}"))
            }
            "stats" => {
                let (id, _) = self.lookup(args.first().ok_or("stats: missing name")?)?;
                let nic = self.nic()?;
                let r = nic.record_of(id).map_err(|e| e.to_string())?;
                Ok(format!(
                    "{}: cores={:?} mem={} delivered={} dropped={} sent={}",
                    id, r.cores, r.memory, r.rx_delivered, r.rx_dropped, r.tx_sent
                ))
            }
            "teardown" => {
                let name = args.first().ok_or("teardown: missing name")?.to_string();
                let (id, _) = self.lookup(&name)?;
                let receipt = self.nic()?.nf_teardown(id).map_err(|e| e.to_string())?;
                self.names.remove(&name);
                Ok(format!(
                    "tore down {name} in {:.2} ms ({:.2} ms scrubbing)",
                    receipt.latency.total().as_millis_f64(),
                    receipt.latency.scrub.as_millis_f64()
                ))
            }
            "attacks" => {
                let mode = self.nic()?.mode();
                let outcomes = snic::attacks::run_all(mode);
                let summary: Vec<String> = outcomes
                    .iter()
                    .map(|o| {
                        if o.succeeded {
                            "SUCCEEDED".into()
                        } else {
                            "blocked".to_string()
                        }
                    })
                    .collect();
                Ok(format!("attacks on {mode:?}: {}", summary.join(", ")))
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn parse_kv(args: &[&str]) -> Result<HashMap<String, u64>, String> {
    let mut out = HashMap::new();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{a}'"))?;
        out.insert(
            k.to_string(),
            v.parse::<u64>().map_err(|e| format!("{a}: {e}"))?,
        );
    }
    Ok(out)
}

/// `snicctl bench [--full] [--shards N]`: run the engine wall-clock
/// harness (the same one behind `uarch_perf` and the `BENCH_uarch.json`
/// baseline) and print the report JSON. `--full` measures at the paper
/// scale; `--shards N` fans the S-NIC cells across up to N worker
/// threads through the sharded engine (commodity cells are not
/// shardable and stay serial).
fn bench_main(args: &[String]) -> Result<String, String> {
    use snic::bench::perf::{baseline_before, run, to_json};
    use snic::bench::Scale;

    let usage = || "usage: snicctl bench [--full] [--shards N]".to_string();
    let mut full = false;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" if !full => full = true,
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer\n{}", usage()))?;
            }
            _ => return Err(usage()),
        }
    }
    let (scale, scale_name) = if full {
        (Scale::paper(), "paper")
    } else {
        (Scale::quick(), "quick")
    };
    eprintln!("snicctl bench: measuring (scale={scale_name}, shards={shards}, median of 5)...");
    let report = run(&scale, 5, shards);
    // Carry the baseline forward so the printed speedup is against the
    // same reference as the committed file (schema-1 files migrate
    // their `after` into the new `before`).
    let before = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_uarch.json"),
    )
    .ok()
    .and_then(|j| baseline_before(&j));
    Ok(to_json(&report, scale_name, before, None))
}

/// `snicctl trace <describe|sweep|billion> [flags]`: drive the streamed
/// colocation machinery (see `crates/bench/src/colo.rs`).
///
/// ```text
/// snicctl trace describe [--tenants N] [--seed N]
///     # print the tenant mix: personality, event budget, phase schedule
/// snicctl trace sweep [--tenants A,B,..] [--events-per-tenant N] [--shards N]
///     # streamed commodity-vs-S-NIC sweep at each cotenancy
/// snicctl trace billion [--tenants N] [--events N] [--shards N] [--gate]
///     # one S-NIC run with N total events streamed in O(chunk) memory;
///     # --gate enforces a small-scale serial≡sharded identity check,
///     # the exact event count, and peak RSS <= SNIC_MEM_BUDGET_MB
/// ```
fn trace_main(args: &[String]) -> Result<String, String> {
    use snic::bench::colo;
    use snic::bench::Scale;

    let usage = || {
        "usage: snicctl trace <describe [--tenants N] [--seed N] | \
         sweep [--tenants A,B,..] [--events-per-tenant N] [--shards N] | \
         billion [--tenants N] [--events N] [--shards N] [--gate]>"
            .to_string()
    };
    let verb = args.first().ok_or_else(usage)?.as_str();
    let mut tenants_list: Option<Vec<usize>> = None;
    let mut seed: u64 = 0xc010;
    let mut events: Option<u64> = None;
    let mut events_per_tenant: u64 = 50_000;
    let mut shards: usize = 3;
    let mut gate = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut next_u64 = |flag: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} needs a positive integer\n{}", usage()))
        };
        match a.as_str() {
            "--tenants" => {
                let list = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|t| t.parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .and_then(Result::ok)
                    .filter(|l| !l.is_empty() && l.iter().all(|&t| (1..=64).contains(&t)))
                    .ok_or_else(|| {
                        format!(
                            "--tenants needs counts in 1..=64 (one L2 way each)\n{}",
                            usage()
                        )
                    })?;
                tenants_list = Some(list);
            }
            "--seed" => seed = next_u64("--seed")?,
            "--events" => events = Some(next_u64("--events")?),
            "--events-per-tenant" => events_per_tenant = next_u64("--events-per-tenant")?,
            "--shards" => shards = next_u64("--shards")? as usize,
            "--gate" => gate = true,
            other => return Err(format!("{}\n(unknown flag '{other}')", usage())),
        }
    }
    let scale = Scale::quick();
    match verb {
        "describe" => {
            let tenants = tenants_list.map_or(48, |l| l[0]);
            let total = events.unwrap_or(1_000_000_000);
            let mix = colo::tenant_mix(tenants, seed, total, true);
            let mut out = vec![format!(
                "streamed tenant mix: {tenants} tenants, {total} events total"
            )];
            for (i, t) in mix.iter().enumerate() {
                out.push(format!(
                    "  tenant {i:>2}: {:<13} events={:>12} seed={:#018x} {}",
                    format!("{:?}", t.kind),
                    t.events,
                    t.seed,
                    t.schedule.describe()
                ));
            }
            Ok(out.join("\n"))
        }
        "sweep" => {
            let counts = tenants_list.unwrap_or_else(|| vec![32, 48, 64]);
            let rows = colo::streamed_sweep(&scale, &counts, events_per_tenant, seed, shards);
            Ok(colo::render_sweep(&rows))
        }
        "billion" => {
            let tenants = tenants_list.map_or(48, |l| l[0]);
            let total = events.unwrap_or(1_000_000_000);
            let mut out = Vec::new();
            if gate {
                // Identity first, at a scale where re-running is cheap:
                // the same machinery must be bit-identical serial vs
                // sharded before the big run's digest means anything.
                let specs = colo::tenant_mix(6, seed, 60_000, false);
                let spec = colo::colo_spec(&scale, &specs, colo::many_tenant_snic(6, 1 << 20), 1);
                let serial = spec.run();
                let sharded = spec.run_with_shards(3);
                if serial.nfs != sharded.nfs {
                    return Err("trace gate: serial and sharded streamed runs diverged".into());
                }
                out.push(format!(
                    "gate: serial≡sharded identity OK (digest {:016x})",
                    colo::outcome_digest(&serial)
                ));
            }
            eprintln!(
                "snicctl trace: streaming {total} events over {tenants} tenants \
                 (shards={shards})..."
            );
            let report = colo::billion_run(&scale, tenants, total, seed, shards);
            out.push(colo::render_billion(&report));
            if gate {
                if report.events != total {
                    return Err(format!(
                        "trace gate: expected exactly {total} events, engine processed {}",
                        report.events
                    ));
                }
                // Default budget: the 48-tenant mix's resident NF
                // structures (dominated by eight 64 MB DIR-24-8 tables,
                // the paper's Table 6 footprint) plus the O(tenants ×
                // chunk) streaming state — independent of event count.
                let budget_mb: u64 = std::env::var("SNIC_MEM_BUDGET_MB")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(640);
                match report.peak_rss_mb {
                    Some(rss) if rss > budget_mb => {
                        return Err(format!(
                            "trace gate: peak RSS {rss} MiB exceeds the \
                             SNIC_MEM_BUDGET_MB budget of {budget_mb} MiB"
                        ));
                    }
                    Some(rss) => out.push(format!(
                        "gate: OK ({} events, peak RSS {rss} MiB <= {budget_mb} MiB budget)",
                        report.events
                    )),
                    None => out.push(format!(
                        "gate: OK ({} events; no RSS probe on this platform)",
                        report.events
                    )),
                }
            }
            Ok(out.join("\n"))
        }
        other => Err(format!("{}\n(unknown trace verb '{other}')", usage())),
    }
}

/// `snicctl telemetry ...`: record the fig5 smoke sweep, render a
/// summary file, or diff two of them.
fn telemetry_main(args: &[String]) -> Result<String, String> {
    use snic::telemetry::{to_chrome_trace, Summary};

    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    match args {
        [cmd, trace_path, summary_path] if cmd == "record" => {
            let scale = snic::bench::telemetry::smoke_scale();
            let (outcomes, summary, events) =
                snic::bench::telemetry::record_smoke(snic::sim::Exec::Parallel, &scale);
            std::fs::write(trace_path, to_chrome_trace(&events))
                .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
            std::fs::write(summary_path, summary.to_text())
                .map_err(|e| format!("cannot write {summary_path}: {e}"))?;
            Ok(format!(
                "recorded {} colocation runs: {} events -> {trace_path} (open in \
                 ui.perfetto.dev), {} counters + {} histograms -> {summary_path}\n\n{}",
                outcomes.len(),
                events.len(),
                summary.counters.len(),
                summary.hists.len(),
                summary.render()
            ))
        }
        [cmd, path] if cmd == "summary" => Ok(Summary::from_text(&read(path)?)?.render()),
        [cmd, before, after] if cmd == "diff" => {
            let a = Summary::from_text(&read(before)?)?;
            let b = Summary::from_text(&read(after)?)?;
            Ok(Summary::render_diff(&a.diff(&b)))
        }
        _ => Err(
            "usage: snicctl telemetry <record <trace.json> <summary.txt> | \
                  summary <file> | diff <before> <after>>"
                .to_string(),
        ),
    }
}

/// `snicctl analyze [--json] [--gate]`: run Pass 0 over every paper NF
/// (all must verify clean, each earning a certificate) and over the
/// seeded adversarial corpus (each must be rejected with its exact
/// stable code). `--gate` additionally enforces an analyzer runtime
/// budget and exits nonzero on any drift — the CI hook behind
/// `scripts/lint.sh analyze`.
fn analyze_main(args: &[String]) -> Result<String, String> {
    use snic::analyze::analyze;
    use snic::nf::NfKind;

    let mut json = false;
    let mut gate = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--gate" => gate = true,
            other => {
                return Err(format!(
                    "usage: snicctl analyze [--json] [--gate] (unknown flag '{other}')"
                ))
            }
        }
    }

    let mut lines = Vec::new();
    let mut json_nfs = Vec::new();
    let mut failures = Vec::new();
    let mut analyzer_time = std::time::Duration::ZERO;

    for kind in NfKind::ALL {
        let nf = snic::nf::build(kind, 7);
        let Some(sub) = snic::nf::launch_analysis(nf.as_ref()) else {
            failures.push(format!("{kind:?}: no dataflow IR"));
            continue;
        };
        let t0 = std::time::Instant::now();
        let report = analyze(&sub.program, &sub.manifest);
        analyzer_time += t0.elapsed();
        if !report.is_clean() {
            failures.push(format!("{kind:?} must verify clean: {report}"));
        }
        lines.push(report.to_string());
        json_nfs.push(report.to_json());
    }

    let mut json_corpus = Vec::new();
    for entry in snic::attacks::adversarial_corpus() {
        let t0 = std::time::Instant::now();
        let report = analyze(&entry.submission.program, &entry.submission.manifest);
        analyzer_time += t0.elapsed();
        let codes: Vec<&str> = report.violations.iter().map(|v| v.kind.code()).collect();
        if report.is_clean() || !codes.contains(&entry.expected_code) {
            failures.push(format!(
                "corpus '{}' must be rejected with {}, got {codes:?}",
                entry.name, entry.expected_code
            ));
        }
        lines.push(format!(
            "Pass 0 {}: rejected as expected ({})",
            entry.name, entry.expected_code
        ));
        json_corpus.push(format!(
            "{{\"name\":\"{}\",\"expected_code\":\"{}\",\"report\":{}}}",
            entry.name,
            entry.expected_code,
            report.to_json()
        ));
    }

    // The analyzer must stay launch-path cheap: a generous 2 s budget
    // over all twelve programs catches a fixpoint blow-up in CI without
    // flaking on slow runners.
    const BUDGET_MS: u128 = 2_000;
    if gate && analyzer_time.as_millis() > BUDGET_MS {
        failures.push(format!(
            "analyzer runtime {} ms exceeds the {BUDGET_MS} ms gate budget",
            analyzer_time.as_millis()
        ));
    }

    if gate && !failures.is_empty() {
        return Err(format!("analyze gate failed:\n  {}", failures.join("\n  ")));
    }
    if json {
        return Ok(format!(
            "{{\"nfs\":[{}],\"corpus\":[{}],\"analyzer_ms\":{},\"ok\":{}}}",
            json_nfs.join(","),
            json_corpus.join(","),
            analyzer_time.as_millis(),
            failures.is_empty()
        ));
    }
    if !failures.is_empty() {
        lines.push(format!("FAILURES:\n  {}", failures.join("\n  ")));
    }
    Ok(lines.join("\n"))
}

/// `snicctl verify [--json] [--bad]`: run Pass 1 over a paper-shaped
/// manifest set (one vNIC per paper NF on a 16-core device). `--bad`
/// swaps in a deliberately conflicting set so the violation codes are
/// visible; `--json` emits the machine-readable report.
fn verify_main(args: &[String]) -> Result<String, String> {
    use snic::types::{AccelKind, ByteSize, NfId};
    use snic::verify::{verify_manifests, BusSpec, DeviceSpec, EnforcementMode, VnicManifest};

    let mut json = false;
    let mut bad = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--bad" => bad = true,
            other => {
                return Err(format!(
                    "usage: snicctl verify [--json] [--bad] (unknown flag '{other}')"
                ))
            }
        }
    }

    const MB: u64 = 1 << 20;
    let spec = DeviceSpec {
        mode: EnforcementMode::Snic,
        dram: 2048 * MB,
        nf_region_base: 0x0800_0000,
        nic_os: vec![(0x0010_0000, 0x2_0000), (0x0200_0000, 32 * MB)],
        cores: 16,
        core_tlb_entries: 64,
        accel: vec![(AccelKind::Crypto, 8), (AccelKind::Dpi, 8)],
        rx_capacity: 64 * MB,
        tx_capacity: 64 * MB,
        bus: BusSpec::Temporal { epoch: 96 },
    };
    let mut manifests: Vec<VnicManifest> = (0..6u64)
        .map(|i| {
            let mut m = VnicManifest::minimal(
                NfId(i + 1),
                snic::types::CoreId(i as u16),
                (0x0800_0000 + i * 64 * MB, 48 * MB),
            );
            m.vpp.pb = ByteSize::mib(4);
            m
        })
        .collect();
    if bad {
        // Overlap nf 2 onto nf 1's region and double-claim core 0.
        manifests[1].region = (0x0800_0000 + 16 * MB, 48 * MB);
        manifests[1].cores = vec![snic::types::CoreId(0)];
    }
    let report = verify_manifests(&spec, &manifests);
    Ok(if json {
        report.to_json()
    } else {
        report.to_string()
    })
}

/// `snicctl serve <requests.jsonl | -> [flags]`: drive an in-process
/// `snicd` daemon over a request file (or stdin with `-`) and print
/// one response line per completed request. `--restore <image>` boots
/// from a snapshot (replayed responses are not re-emitted);
/// `--snapshot-out <path>` writes the latest sealed image after the
/// run (the one the last `snapshot` op produced, or a fresh image of
/// the final state).
fn serve_main(args: &[String]) -> Result<String, String> {
    use snic::serve::daemon::{Daemon, DaemonConfig};
    use snic::serve::snapshot;

    let usage = "usage: snicctl serve <requests.jsonl | -> [--seed N] [--auto-steps N] \
         [--restore <image>] [--snapshot-out <path>]";
    let mut input: Option<String> = None;
    let mut cfg = DaemonConfig::default();
    let mut restore_path: Option<String> = None;
    let mut snapshot_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("{usage}\n(--seed needs an integer)"))?;
            }
            "--auto-steps" => {
                cfg.auto_steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("{usage}\n(--auto-steps needs an integer)"))?;
            }
            "--restore" => restore_path = it.next().cloned(),
            "--snapshot-out" => snapshot_out = it.next().cloned(),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_string());
            }
            other => return Err(format!("{usage}\n(unexpected '{other}')")),
        }
    }
    let input = input.ok_or(usage.to_string())?;
    let text = if input == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("usage: cannot read stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("usage: cannot read {input}: {e}"))?
    };
    let mut daemon = match restore_path {
        Some(path) => {
            let image = std::fs::read_to_string(&path)
                .map_err(|e| format!("usage: cannot read {path}: {e}"))?;
            snapshot::restore(&image)
                .map_err(|e| format!("restore failed: {e}"))?
                .0
        }
        None => Daemon::new(cfg),
    };
    let mut responses = Vec::new();
    for line in text.lines() {
        responses.extend(daemon.ingest(line));
    }
    if let Some(path) = snapshot_out {
        let image = daemon
            .last_snapshot()
            .map(str::to_string)
            .unwrap_or_else(|| snapshot::render_image(&daemon));
        std::fs::write(&path, image).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(responses.join("\n"))
}

/// `snicctl soak [--seed N] [--gate] [--emit-schedule]`: run the
/// seeded multi-tenant overload + fault-plan soak (~30 simulated
/// seconds) and print the per-tenant table and run digest. `--gate`
/// additionally enforces the acceptance criteria — non-faulted tenants
/// undisrupted, backpressure engaged, the victim frozen/reclaimed/
/// thawed, Pass 4 clean — plus a mid-run snapshot/restart differential
/// that must be byte-identical. `--emit-schedule` prints the raw
/// schedule instead (pipe it to `snicd` or `snicctl serve -`).
fn soak_main(args: &[String]) -> Result<String, String> {
    use snic::serve::soak;

    let usage = "usage: snicctl soak [--seed N] [--gate] [--emit-schedule]";
    let mut seed: u64 = 0xBEEF;
    let mut gate = false;
    let mut emit = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("{usage}\n(--seed needs an integer)"))?;
            }
            "--gate" => gate = true,
            "--emit-schedule" => emit = true,
            other => return Err(format!("{usage}\n(unknown flag '{other}')")),
        }
    }
    if emit {
        return Ok(soak::schedule(seed).join("\n"));
    }
    let report = soak::run(seed);
    let mut out = format!(
        "soak seed={seed:#x}: {} requests ingested\n\n{}\nvictim: {:?}\ndigest: {}",
        report.responses.len(),
        report.table(),
        report.victim,
        report.digest()
    );
    if gate {
        report.gate()?;
        let split = soak::schedule(seed).len() / 2;
        let (a, b) = soak::run_with_restart(seed, split)?;
        if a.responses != b.responses || a.transcript != b.transcript || a.state != b.state {
            return Err(format!(
                "mid-soak restart at line {split} is not byte-identical to the \
                 uninterrupted run"
            ));
        }
        out.push_str(&format!(
            "\ngate: OK (restart differential at line {split} byte-identical)"
        ));
    }
    Ok(out)
}

/// `snicctl leakage [--smoke] [--gate]`: measure the covert-channel
/// leakage-bandwidth matrix — 3 families × 4 L2 geometries × 3 temporal
/// epochs × {commodity, S-NIC} — and print the capacity table in bits
/// per simulated second. `--smoke` sweeps only the paper-default epoch
/// (the lint-gate form, a strict subset of the full matrix). `--gate`
/// additionally diffs the measured cells against the golden snapshot
/// (`tests/golden/leakage.txt`) and enforces the differential security
/// bounds: every S-NIC cell under the capacity ceiling, every
/// exploitable commodity cell over the floor.
fn leakage_main(args: &[String]) -> Result<String, String> {
    use snic::leakage::{full_specs, smoke_specs, LeakageMatrix, Mode, CELL_BITS};
    use snic::sim::Exec;

    let usage = "usage: snicctl leakage [--smoke] [--gate]";
    let mut smoke = false;
    let mut gate = false;
    for a in args {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            other => return Err(format!("{usage}\n(unknown flag '{other}')")),
        }
    }
    let specs = if smoke { smoke_specs() } else { full_specs() };
    let matrix = LeakageMatrix::measure(specs, Exec::Parallel, CELL_BITS);
    let worst_snic = matrix
        .cells
        .iter()
        .filter(|c| c.spec.mode == Mode::Snic)
        .map(|c| c.capacity_bps)
        .fold(0.0f64, f64::max);
    let best_commodity = matrix
        .cells
        .iter()
        .filter(|c| c.spec.mode == Mode::Commodity)
        .map(|c| c.capacity_bps)
        .fold(0.0f64, f64::max);
    let mut out = format!(
        "{}\nbest commodity {best_commodity:.1} bps | worst S-NIC {worst_snic:.4} bps",
        matrix.render().trim_end()
    );
    if gate {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/leakage.txt");
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read golden {path}: {e} (bless with SNIC_BLESS=1)"))?;
        let golden = LeakageMatrix::from_text(&text)?;
        let mut problems = matrix.diff(&golden);
        problems.extend(matrix.check_bounds());
        if !problems.is_empty() {
            return Err(format!("leakage gate failed:\n{}", problems.join("\n")));
        }
        out.push_str(&format!(
            "\ngate: OK ({} cells match golden, bounds hold)",
            matrix.cells.len()
        ));
    }
    Ok(out)
}

/// Run the classic line-oriented `.snic` script mode.
fn script_main(argv: &[String]) -> Result<String, (i32, String)> {
    let usage = || {
        "usage: snicctl <script.snic | -> | snicctl analyze [--json] [--gate] | \
         snicctl verify [--json] [--bad] | snicctl bench [--full] [--shards N] | \
         snicctl telemetry ... | snicctl serve <requests.jsonl | -> ... | \
         snicctl soak [--gate] | snicctl leakage [--smoke] [--gate] | \
         snicctl trace <describe|sweep|billion> ..."
            .to_string()
    };
    let arg = argv.first().cloned().ok_or_else(|| (2, usage()))?;
    let script = if arg == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| (2, format!("cannot read stdin: {e}")))?;
        s
    } else {
        std::fs::read_to_string(&arg).map_err(|e| (2, format!("cannot read {arg}: {e}")))?
    };
    let mut session = Session::new();
    let mut out = Vec::new();
    for (lineno, line) in script.lines().enumerate() {
        match session.execute(line) {
            Ok(o) if o.is_empty() => {}
            Ok(o) => out.push(o),
            Err(e) => return Err((3, format!("line {}: {e}", lineno + 1))),
        }
    }
    Ok(out.join("\n"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Each verb owns a distinct exit code for operational failures (see
    // the README table); errors whose text starts with "usage:" exit 2
    // across the board.
    let (result, fail_code) = match argv.first().map(String::as_str) {
        Some("analyze") => (analyze_main(&argv[1..]), 5),
        Some("verify") => (verify_main(&argv[1..]), 4),
        Some("bench") => (bench_main(&argv[1..]), 6),
        Some("telemetry") => (telemetry_main(&argv[1..]), 7),
        Some("serve") => (serve_main(&argv[1..]), 8),
        Some("soak") => (soak_main(&argv[1..]), 9),
        Some("leakage") => (leakage_main(&argv[1..]), 10),
        Some("trace") => (trace_main(&argv[1..]), 11),
        _ => match script_main(&argv) {
            Ok(out) => (Ok(out), 3),
            Err((code, e)) => {
                eprintln!("snicctl: {e}");
                std::process::exit(code);
            }
        },
    };
    match result {
        Ok(out) => {
            if !out.is_empty() {
                println!("{out}");
            }
        }
        Err(e) => {
            eprintln!("snicctl: {e}");
            std::process::exit(if e.starts_with("usage:") {
                2
            } else {
                fail_code
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &str) -> Vec<String> {
        let mut s = Session::new();
        script
            .lines()
            .map(|l| s.execute(l).expect("script line"))
            .filter(|o| !o.is_empty())
            .collect()
    }

    #[test]
    fn full_lifecycle_script() {
        let out = run("\
nic snic
launch fw core=0 mem=8 port=80
send 10 port=80
stats fw
poll fw
teardown fw
");
        assert!(out[0].contains("Snic"));
        assert!(out[1].contains("launched fw"));
        assert!(out[2].contains("10 matched"));
        assert!(out[3].contains("delivered=0"));
        assert!(out[4].contains("polled 10"));
        assert!(out[5].contains("tore down fw"));
    }

    #[test]
    fn attestation_command_verifies() {
        let out = run("\
nic snic
launch ids core=1 mem=4
attest ids
");
        assert!(out[2].contains("verified=true"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run("# a comment\n\nnic commodity\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("Commodity"));
    }

    #[test]
    fn errors_are_reported() {
        let mut s = Session::new();
        assert!(s.execute("launch x core=0 mem=4").is_err(), "no NIC yet");
        s.execute("nic snic").unwrap();
        assert!(s.execute("bogus").is_err());
        assert!(s.execute("launch x core=0").is_err(), "missing mem=");
        assert!(s.execute("teardown ghost").is_err());
        // Core conflicts surface as errors too.
        s.execute("launch a core=0 mem=4").unwrap();
        assert!(s.execute("launch b core=0 mem=4").is_err());
    }

    #[test]
    fn telemetry_usage_and_diff() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(telemetry_main(&s(&["bogus"])).is_err());
        assert!(telemetry_main(&s(&["record", "only-one-path"])).is_err());
        let dir = std::env::temp_dir();
        let (a, b) = (dir.join("snicctl-tel-a.txt"), dir.join("snicctl-tel-b.txt"));
        std::fs::write(&a, "# snic-telemetry summary v1\ncounter 0 nf.tx_sent 1\n").unwrap();
        std::fs::write(&b, "# snic-telemetry summary v1\ncounter 0 nf.tx_sent 3\n").unwrap();
        let (a, b) = (
            a.to_string_lossy().into_owned(),
            b.to_string_lossy().into_owned(),
        );
        let rendered = telemetry_main(&s(&["summary", &a])).unwrap();
        assert!(rendered.contains("nf.tx_sent"), "{rendered}");
        let diff = telemetry_main(&s(&["diff", &a, &b])).unwrap();
        assert!(diff.contains("nf.tx_sent"), "{diff}");
        let same = telemetry_main(&s(&["diff", &a, &a])).unwrap();
        assert!(same.contains("no differences"), "{same}");
    }

    #[test]
    fn bench_rejects_unknown_flags() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(bench_main(&s(&["--bogus"])).is_err());
        assert!(bench_main(&s(&["--full", "extra"])).is_err());
        assert!(bench_main(&s(&["--full", "--full"])).is_err());
        assert!(bench_main(&s(&["--shards"])).is_err());
        assert!(bench_main(&s(&["--shards", "0"])).is_err());
        assert!(bench_main(&s(&["--shards", "many"])).is_err());
    }

    #[test]
    fn analyze_command_clean_nfs_and_rejected_corpus() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(analyze_main(&s(&["--bogus"])).is_err());
        // The gate must pass on the shipped NFs and corpus.
        let out = analyze_main(&s(&["--gate"])).unwrap();
        assert!(out.contains("CLEAN"), "{out}");
        assert!(out.contains("P0-TAINT-LEAK"), "{out}");
        let j = analyze_main(&s(&["--json"])).unwrap();
        assert!(j.contains("\"ok\":true"), "{j}");
        assert!(j.contains("\"expected_code\":\"P0-DMA-OVERFLOW\""), "{j}");
        assert!(j.contains("certificate_digest"), "{j}");
    }

    #[test]
    fn verify_command_human_and_json() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(verify_main(&s(&["--bogus"])).is_err());
        let clean = verify_main(&s(&[])).unwrap();
        assert!(clean.contains("verified"), "{clean}");
        let bad = verify_main(&s(&["--bad"])).unwrap();
        assert!(bad.contains("REFUSED"), "{bad}");
        let j = verify_main(&s(&["--bad", "--json"])).unwrap();
        assert!(j.contains("\"ok\":false"), "{j}");
        assert!(j.contains("P1-REGION-OVERLAP"), "{j}");
        assert!(j.contains("P1-CORE-CONFLICT"), "{j}");
    }

    #[test]
    fn serve_command_round_trips_requests_and_snapshots() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(serve_main(&s(&[])).is_err());
        assert!(serve_main(&s(&["in.jsonl", "--bogus"])).is_err());
        let dir = std::env::temp_dir();
        let reqs = dir.join("snicctl-serve-reqs.jsonl");
        let snap = dir.join("snicctl-serve-snap.img");
        std::fs::write(
            &reqs,
            "{\"op\":\"launch\",\"tenant\":\"a\",\"id\":1,\"name\":\"fw\",\"mem\":8,\"port\":80}\n\
             {\"op\":\"send\",\"tenant\":\"a\",\"id\":2,\"count\":3,\"port\":80}\n\
             {\"op\":\"health\",\"id\":3}\n",
        )
        .unwrap();
        let (reqs, snap) = (
            reqs.to_string_lossy().into_owned(),
            snap.to_string_lossy().into_owned(),
        );
        let out = serve_main(&s(&[&reqs, "--snapshot-out", &snap])).unwrap();
        assert!(out.contains("\"op\":\"launch\",\"ok\":true"), "{out}");
        assert!(out.contains("\"delivered\":3"), "{out}");
        // The written image restores; replayed responses stay quiet.
        let empty = dir.join("snicctl-serve-empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let empty = empty.to_string_lossy().into_owned();
        let out3 = serve_main(&s(&[&empty, "--restore", &snap])).unwrap();
        assert!(out3.is_empty(), "replayed responses are not re-emitted");
        assert!(serve_main(&s(&[&empty, "--restore", "/no/such/image"])).is_err());
    }

    #[test]
    fn soak_command_gate_and_schedule() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(soak_main(&s(&["--bogus"])).is_err());
        let sched = soak_main(&s(&["--emit-schedule"])).unwrap();
        assert!(sched.lines().count() > 50, "schedule is non-trivial");
        let out = soak_main(&s(&["--gate"])).unwrap();
        assert!(out.contains("gate: OK"), "{out}");
        assert!(out.contains("digest: "), "{out}");
    }

    #[test]
    fn trace_command_describe_sweep_and_gate() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(trace_main(&s(&[])).is_err());
        assert!(trace_main(&s(&["bogus"])).is_err());
        assert!(trace_main(&s(&["describe", "--tenants", "0"])).is_err());
        assert!(trace_main(&s(&["describe", "--tenants", "65"])).is_err());
        assert!(trace_main(&s(&["billion", "--events"])).is_err());
        let desc = trace_main(&s(&["describe", "--tenants", "8", "--events", "80000"])).unwrap();
        assert_eq!(desc.matches("  tenant ").count(), 8, "{desc}");
        assert!(desc.contains("Dpi"), "{desc}");
        let sweep = trace_main(&s(&[
            "sweep",
            "--tenants",
            "4",
            "--events-per-tenant",
            "2000",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert!(sweep.contains("digest"), "{sweep}");
        // A miniature gated run exercises the identity pre-check, the
        // exact-count check, and the RSS budget path end to end.
        let gated = trace_main(&s(&[
            "billion",
            "--tenants",
            "4",
            "--events",
            "40000",
            "--shards",
            "2",
            "--gate",
        ]))
        .unwrap();
        assert!(gated.contains("serial≡sharded identity OK"), "{gated}");
        assert!(gated.contains("gate: OK"), "{gated}");
    }

    #[test]
    fn attacks_command_both_modes() {
        let mut s = Session::new();
        s.execute("nic commodity").unwrap();
        let c = s.execute("attacks").unwrap();
        assert_eq!(c.matches("SUCCEEDED").count(), 4, "{c}");
        s.execute("nic snic").unwrap();
        let p = s.execute("attacks").unwrap();
        assert_eq!(p.matches("blocked").count(), 4, "{p}");
    }
}
