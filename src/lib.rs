//! # S-NIC: strongly isolated virtual smart NICs
//!
//! Facade crate for the reproduction of *"SmartNIC Security Isolation in
//! the Cloud with S-NIC"* (EuroSys '24). It re-exports every workspace
//! crate under one roof so examples and downstream users can write
//! `use snic::core::SmartNic;` etc.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snic_accel as accel;
pub use snic_analyze as analyze;
pub use snic_attacks as attacks;
pub use snic_bench as bench;
pub use snic_core as core;
pub use snic_cost as cost;
pub use snic_crypto as crypto;
pub use snic_faults as faults;
pub use snic_leakage as leakage;
pub use snic_mem as mem;
pub use snic_nf as nf;
pub use snic_pktio as pktio;
pub use snic_serve as serve;
pub use snic_sim as sim;
pub use snic_telemetry as telemetry;
pub use snic_trace as trace;
pub use snic_types as types;
pub use snic_uarch as uarch;
pub use snic_verify as verify;
