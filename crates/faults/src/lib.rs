//! Deterministic fault injection for the S-NIC device model.
//!
//! The paper's central claim is *containment*: a crashing or malicious
//! function — or the untrusted NIC OS itself — must not perturb
//! co-located vNICs (§3.3 attacks, §4.3 cluster-fatal accelerator
//! faults, §4.6 teardown scrubbing). Demonstrating containment needs a
//! way to make things fail *mid-flight*, reproducibly. This crate
//! provides that:
//!
//! - [`FaultKind`] — the fault taxonomy (NF core crash, accelerator
//!   cluster fault, DMA bus error, transient resource exhaustion,
//!   NIC-OS crash, power loss mid-teardown);
//! - [`FaultPlan`] — a declarative, seedable schedule of faults, each
//!   armed by a [`FaultTrigger`] (simulated time, Nth event at a
//!   call-site tag, or every event at a tag);
//! - [`FaultInjector`] — the runtime object the device consults at
//!   instrumented call sites; it also records a totally ordered
//!   [`FaultRecord`] transcript of injections, lifecycle transitions,
//!   and scrub progress that `snic-verify`'s Pass 3 lints.
//!
//! **Determinism is the contract.** Nothing here reads a wall clock or
//! an OS entropy source: triggers fire on simulated [`Picos`] time and
//! per-site event counters, and [`FaultPlan::seeded`] derives its
//! pseudo-random schedule from a caller-supplied seed via a fixed LCG.
//! The same plan driven by the same operation sequence yields a
//! byte-identical transcript, on any thread of the `snic-sim` pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use snic_types::{NfId, NfState, Picos};

pub mod serve;

pub use serve::{render_serve_transcript, ServeEventKind, ServeRecord};

/// The fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An NF core crashes mid-run (wild stores, then halt).
    NfCrash,
    /// An accelerator cluster faults — fatal for the cluster (§4.3);
    /// on a commodity NIC the cluster is *shared*, so the fault is
    /// fatal for every tenant using that engine.
    AccelClusterFault,
    /// A DMA transfer is aborted by a bus error.
    DmaBusError,
    /// On-NIC DRAM transiently exhausted at `nf_launch` (retryable).
    DramExhaustion,
    /// Accelerator pool transiently exhausted at `nf_launch`
    /// (retryable).
    AccelPoolExhaustion,
    /// The (untrusted, restartable) NIC OS crashes. By design this
    /// must leave running NFs untouched (§4.6).
    NicOsCrash,
    /// Power loss — when it strikes mid-`nf_teardown`, the scrub
    /// watermark must survive so the region is never reused before
    /// zeroization completes (§4.6).
    PowerLoss,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::NfCrash => "nf-crash",
            FaultKind::AccelClusterFault => "accel-cluster-fault",
            FaultKind::DmaBusError => "dma-bus-error",
            FaultKind::DramExhaustion => "dram-exhaustion",
            FaultKind::AccelPoolExhaustion => "accel-pool-exhaustion",
            FaultKind::NicOsCrash => "nic-os-crash",
            FaultKind::PowerLoss => "power-loss",
        };
        f.write_str(s)
    }
}

/// An instrumented call site in the device model. Triggers reference
/// sites by tag, so a plan can say "the 3rd scrub chunk" or "every DMA"
/// without knowing absolute simulated times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `nf_launch` entry (resource admission).
    Launch,
    /// `nf_teardown` entry.
    Teardown,
    /// One scrub chunk inside `nf_teardown` (or a resumed scrub).
    Scrub,
    /// A host DMA transfer (either direction).
    Dma,
    /// Packet delivery into an NF (`rx_packet`).
    Rx,
    /// An NF data-path memory operation (`nf_read` / `nf_write` / TX).
    DataPath,
    /// An accelerator submission on behalf of an NF.
    Accel,
    /// A NIC-OS management-plane call.
    NicOs,
}

/// Number of distinct [`FaultSite`] tags (sizes the per-site counters).
const SITE_COUNT: usize = 8;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::Launch => 0,
            FaultSite::Teardown => 1,
            FaultSite::Scrub => 2,
            FaultSite::Dma => 3,
            FaultSite::Rx => 4,
            FaultSite::DataPath => 5,
            FaultSite::Accel => 6,
            FaultSite::NicOs => 7,
        }
    }

    /// All sites, for plan builders that sweep the space.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::Launch,
        FaultSite::Teardown,
        FaultSite::Scrub,
        FaultSite::Dma,
        FaultSite::Rx,
        FaultSite::DataPath,
        FaultSite::Accel,
        FaultSite::NicOs,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Launch => "launch",
            FaultSite::Teardown => "teardown",
            FaultSite::Scrub => "scrub",
            FaultSite::Dma => "dma",
            FaultSite::Rx => "rx",
            FaultSite::DataPath => "datapath",
            FaultSite::Accel => "accel",
            FaultSite::NicOs => "nicos",
        };
        f.write_str(s)
    }
}

/// When a planned fault fires. Every trigger is one-shot: after firing
/// the rule disarms (schedule the same rule twice for a double fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire at the first instrumented check at `site` once simulated
    /// time reaches `at`.
    AtTime {
        /// The site the fault is delivered through.
        site: FaultSite,
        /// Simulated-time threshold.
        at: Picos,
    },
    /// Fire on the `n`th event at `site` (1-based: `n = 1` is the
    /// first occurrence).
    OnNthEvent {
        /// The tagged call site.
        site: FaultSite,
        /// Which occurrence fires the fault.
        n: u64,
    },
}

impl FaultTrigger {
    fn site(&self) -> FaultSite {
        match self {
            FaultTrigger::AtTime { site, .. } => *site,
            FaultTrigger::OnNthEvent { site, .. } => *site,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What is injected.
    pub fault: FaultKind,
}

/// A declarative schedule of faults. Plans are plain data: build one,
/// hand it to the device, replay it as often as needed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a rule; builder style.
    pub fn inject(mut self, trigger: FaultTrigger, fault: FaultKind) -> FaultPlan {
        self.rules.push(FaultRule { trigger, fault });
        self
    }

    /// Shorthand: fire `fault` on the `n`th event at `site`.
    pub fn on_nth(self, site: FaultSite, n: u64, fault: FaultKind) -> FaultPlan {
        self.inject(FaultTrigger::OnNthEvent { site, n }, fault)
    }

    /// Shorthand: fire `fault` at the first `site` check at/after `at`.
    pub fn at_time(self, site: FaultSite, at: Picos, fault: FaultKind) -> FaultPlan {
        self.inject(FaultTrigger::AtTime { site, at }, fault)
    }

    /// A pseudo-random plan of `count` faults derived entirely from
    /// `seed` (fixed LCG; no wall clock, no OS entropy). Each fault is
    /// drawn from the taxonomy and armed on a small Nth-event trigger
    /// at its natural site, so short scripted episodes still hit it.
    pub fn seeded(seed: u64, count: usize) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // Knuth MMIX LCG: deterministic across platforms.
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        const MENU: [(FaultKind, FaultSite); 7] = [
            (FaultKind::NfCrash, FaultSite::DataPath),
            (FaultKind::AccelClusterFault, FaultSite::Accel),
            (FaultKind::DmaBusError, FaultSite::Dma),
            (FaultKind::DramExhaustion, FaultSite::Launch),
            (FaultKind::AccelPoolExhaustion, FaultSite::Launch),
            (FaultKind::NicOsCrash, FaultSite::NicOs),
            (FaultKind::PowerLoss, FaultSite::Scrub),
        ];
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let (fault, site) = MENU[(next() % MENU.len() as u64) as usize];
            let n = next() % 4 + 1;
            plan = plan.on_nth(site, n, fault);
        }
        plan
    }

    /// The scheduled rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One entry in the fault/lifecycle transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A planned fault fired at an instrumented site.
    Injected {
        /// The fault delivered.
        fault: FaultKind,
        /// The site it was delivered through.
        site: FaultSite,
    },
    /// A lifecycle transition of one NF.
    Transition {
        /// Prior state.
        from: NfState,
        /// New state.
        to: NfState,
    },
    /// `nf_teardown` began reclaiming a region.
    TeardownStarted {
        /// Region base.
        base: u64,
        /// Region length.
        len: u64,
    },
    /// Scrub progressed to `watermark` bytes of `len` (crash-consistent
    /// metadata: this is what survives a power loss).
    ScrubProgress {
        /// Region base.
        base: u64,
        /// Bytes zeroized so far.
        watermark: u64,
        /// Region length.
        len: u64,
    },
    /// Zeroization of the region completed; it is now reusable.
    ScrubCompleted {
        /// Region base.
        base: u64,
        /// Region length.
        len: u64,
    },
    /// A region was handed to a (new) function.
    RegionReused {
        /// Region base.
        base: u64,
        /// Region length.
        len: u64,
    },
    /// The device lost power.
    PowerLost,
    /// The device powered back up (and resumed pending scrubs).
    PowerRestored,
    /// The NIC OS crashed and was restarted; running NFs must be
    /// untouched.
    NicOsRestarted,
    /// The orchestrator retried a transient failure after backing off.
    RetryBackoff {
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Backoff applied before the next attempt.
        backoff: Picos,
    },
    /// Harness-observed perturbation of a victim that should have been
    /// isolated from the fault (blast radius escaping containment).
    VictimPerturbed {
        /// Which observable differed from the fault-free control run.
        metric: &'static str,
    },
    /// The whole device hard-crashed (commodity blast radius).
    DeviceCrashed,
}

/// One transcript record: a totally ordered, reproducible event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Position in the transcript (0-based, dense).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Picos,
    /// The function the event concerns, when attributable to one.
    pub nf: Option<NfId>,
    /// What happened.
    pub kind: FaultEventKind,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:06} t={}ps", self.seq, self.at.0)?;
        if let Some(nf) = self.nf {
            write!(f, " {nf}")?;
        }
        write!(f, "] ")?;
        match &self.kind {
            FaultEventKind::Injected { fault, site } => write!(f, "inject {fault} @{site}"),
            FaultEventKind::Transition { from, to } => write!(f, "state {from} -> {to}"),
            FaultEventKind::TeardownStarted { base, len } => {
                write!(f, "teardown start {base:#x}+{len:#x}")
            }
            FaultEventKind::ScrubProgress {
                base,
                watermark,
                len,
            } => write!(f, "scrub {base:#x} watermark {watermark:#x}/{len:#x}"),
            FaultEventKind::ScrubCompleted { base, len } => {
                write!(f, "scrub complete {base:#x}+{len:#x}")
            }
            FaultEventKind::RegionReused { base, len } => {
                write!(f, "region reused {base:#x}+{len:#x}")
            }
            FaultEventKind::PowerLost => write!(f, "power lost"),
            FaultEventKind::PowerRestored => write!(f, "power restored"),
            FaultEventKind::NicOsRestarted => write!(f, "nic-os restarted"),
            FaultEventKind::RetryBackoff { attempt, backoff } => {
                write!(f, "retry attempt {attempt} backoff {}ps", backoff.0)
            }
            FaultEventKind::VictimPerturbed { metric } => {
                write!(f, "VICTIM PERTURBED ({metric})")
            }
            FaultEventKind::DeviceCrashed => write!(f, "device hard-crashed"),
        }
    }
}

/// Render a transcript as one canonical string (byte-comparable across
/// runs — the determinism tests diff these).
pub fn render_transcript(records: &[FaultRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// The runtime injector the device consults at instrumented sites.
///
/// Also the transcript recorder: the device (and the harness) append
/// lifecycle events through [`FaultInjector::note`], so injections and
/// their consequences share one total order.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    rules: Vec<(FaultRule, bool)>,
    counts: [u64; SITE_COUNT],
    log: Vec<FaultRecord>,
}

impl FaultInjector {
    /// An injector armed with `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rules: plan.rules.into_iter().map(|r| (r, false)).collect(),
            counts: [0; SITE_COUNT],
            log: Vec::new(),
        }
    }

    /// An injector that never fires (the default device wiring).
    pub fn disarmed() -> FaultInjector {
        FaultInjector::default()
    }

    /// Append `plan`'s rules to the armed set *without* disturbing the
    /// per-site counters or the transcript. This is how a resident
    /// daemon injects faults mid-stream: `FaultInjector::new` would
    /// erase the lifecycle history recorded so far, which Pass 3 and
    /// the serving layer both lint.
    ///
    /// Nth-event triggers count from the injector's birth, not from the
    /// arming point: arming `OnNthEvent { n: 3 }` after two events have
    /// already passed at that site fires on the very next one, and a
    /// rule whose ordinal has already gone by never fires. Callers that
    /// mean "the k-th event from now" should offset by
    /// [`FaultInjector::count`].
    pub fn arm(&mut self, plan: FaultPlan) {
        self.rules
            .extend(plan.rules.into_iter().map(|r| (r, false)));
    }

    /// Consult the injector at `site` at simulated time `now`,
    /// attributing the event to `nf` when known. Increments the site
    /// counter, evaluates armed rules in plan order, and returns the
    /// first fault that fires (logging it). At most one fault fires per
    /// check; a second matching rule fires on the next check.
    pub fn check(&mut self, site: FaultSite, now: Picos, nf: Option<NfId>) -> Option<FaultKind> {
        self.counts[site.index()] += 1;
        let count = self.counts[site.index()];
        let mut fired: Option<FaultKind> = None;
        for (rule, done) in &mut self.rules {
            if *done || rule.trigger.site() != site {
                continue;
            }
            let hit = match rule.trigger {
                FaultTrigger::AtTime { at, .. } => now >= at,
                FaultTrigger::OnNthEvent { n, .. } => count == n,
            };
            if hit {
                *done = true;
                fired = Some(rule.fault);
                break;
            }
        }
        if let Some(fault) = fired {
            self.note(now, nf, FaultEventKind::Injected { fault, site });
        }
        fired
    }

    /// Append a lifecycle/consequence event to the transcript.
    pub fn note(&mut self, at: Picos, nf: Option<NfId>, kind: FaultEventKind) {
        let seq = self.log.len() as u64;
        self.log.push(FaultRecord { seq, at, nf, kind });
    }

    /// How many events have been observed at `site`.
    pub fn count(&self, site: FaultSite) -> u64 {
        self.counts[site.index()]
    }

    /// The transcript so far.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Drain the transcript (counters and armed rules stay).
    pub fn take_log(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.log)
    }

    /// True if every scheduled rule has fired.
    pub fn exhausted(&self) -> bool {
        self.rules.iter().all(|(_, done)| *done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_event_trigger_fires_once() {
        let plan = FaultPlan::none().on_nth(FaultSite::Dma, 3, FaultKind::DmaBusError);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.check(FaultSite::Dma, Picos(1), None), None);
        assert_eq!(inj.check(FaultSite::Dma, Picos(2), None), None);
        assert_eq!(
            inj.check(FaultSite::Dma, Picos(3), None),
            Some(FaultKind::DmaBusError)
        );
        // One-shot: the 3rd event fired it; later events don't.
        assert_eq!(inj.check(FaultSite::Dma, Picos(4), None), None);
        assert!(inj.exhausted());
        assert_eq!(inj.count(FaultSite::Dma), 4);
    }

    #[test]
    fn time_trigger_fires_at_threshold() {
        let plan = FaultPlan::none().at_time(FaultSite::Scrub, Picos(100), FaultKind::PowerLoss);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.check(FaultSite::Scrub, Picos(99), None), None);
        assert_eq!(
            inj.check(FaultSite::Scrub, Picos(100), None),
            Some(FaultKind::PowerLoss)
        );
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::none().on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion);
        let mut inj = FaultInjector::new(plan);
        // Events at other sites never advance the Launch counter.
        assert_eq!(inj.check(FaultSite::Rx, Picos(0), None), None);
        assert_eq!(inj.check(FaultSite::Dma, Picos(0), None), None);
        assert_eq!(
            inj.check(FaultSite::Launch, Picos(0), None),
            Some(FaultKind::DramExhaustion)
        );
    }

    #[test]
    fn transcript_is_deterministic() {
        let run = || {
            let mut inj = FaultInjector::new(FaultPlan::seeded(42, 5));
            for i in 0..40u64 {
                for site in FaultSite::ALL {
                    let _ = inj.check(site, Picos(i * 10), Some(NfId(i % 3)));
                }
            }
            render_transcript(inj.log())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + same schedule => identical transcript");
        assert!(!a.is_empty());
    }

    #[test]
    fn seeded_plans_differ_by_seed() {
        let a = FaultPlan::seeded(1, 8);
        let b = FaultPlan::seeded(2, 8);
        assert_eq!(a.rules().len(), 8);
        assert_ne!(a, b);
        assert_eq!(a, FaultPlan::seeded(1, 8));
    }

    #[test]
    fn note_orders_with_injections() {
        let plan = FaultPlan::none().on_nth(FaultSite::Rx, 1, FaultKind::NfCrash);
        let mut inj = FaultInjector::new(plan);
        inj.note(
            Picos(0),
            Some(NfId(1)),
            FaultEventKind::Transition {
                from: NfState::Launched,
                to: NfState::Running,
            },
        );
        let _ = inj.check(FaultSite::Rx, Picos(5), Some(NfId(1)));
        inj.note(
            Picos(5),
            Some(NfId(1)),
            FaultEventKind::Transition {
                from: NfState::Running,
                to: NfState::Faulted,
            },
        );
        let seqs: Vec<u64> = inj.log().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let text = render_transcript(inj.log());
        assert!(text.contains("inject nf-crash @rx"), "{text}");
        assert!(text.contains("state running -> faulted"), "{text}");
    }

    #[test]
    fn arm_appends_without_clearing_history() {
        let mut inj =
            FaultInjector::new(FaultPlan::none().on_nth(FaultSite::Rx, 1, FaultKind::NfCrash));
        assert_eq!(
            inj.check(FaultSite::Rx, Picos(1), None),
            Some(FaultKind::NfCrash)
        );
        let before = inj.log().len();
        assert!(before > 0);
        // Arm a second plan mid-stream: transcript and counters survive,
        // and the new rule's ordinal is absolute (count() + k from now).
        let next = inj.count(FaultSite::Rx) + 1;
        inj.arm(FaultPlan::none().on_nth(FaultSite::Rx, next, FaultKind::NfCrash));
        assert_eq!(inj.log().len(), before, "arming must not touch the log");
        assert!(!inj.exhausted());
        assert_eq!(
            inj.check(FaultSite::Rx, Picos(2), None),
            Some(FaultKind::NfCrash)
        );
        assert!(inj.exhausted());
    }

    #[test]
    fn render_is_line_per_record() {
        let mut inj = FaultInjector::disarmed();
        inj.note(Picos(1), None, FaultEventKind::PowerLost);
        inj.note(Picos(2), None, FaultEventKind::PowerRestored);
        let text = render_transcript(inj.log());
        assert_eq!(text.lines().count(), 2);
    }
}
