//! Admission-lifecycle transcript records for the resident daemon.
//!
//! `snicd` (the `snic-serve` crate) is the serving layer above the
//! device: it admits, queues, sheds, serves, freezes, and reclaims
//! per-tenant request streams. Just as [`crate::FaultRecord`] gives
//! Pass 3 a totally ordered, byte-stable account of *device* lifecycle
//! events, [`ServeRecord`] gives Pass 4 the same for the *admission*
//! layer: every queue transition a request or tenant goes through, in
//! one deterministic order.
//!
//! The type lives here — next to the fault taxonomy, below both the
//! daemon and the verifier in the dependency graph — so `snic-verify`
//! can lint daemon transcripts without depending on the daemon.

use std::fmt;

use snic_types::Picos;

/// What happened to a request (or a tenant's whole queue) at the
/// admission layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEventKind {
    /// A request passed admission and entered its tenant's queue.
    Admitted {
        /// The protocol operation name (`launch`, `send`, ...).
        op: &'static str,
        /// Queue depth *after* enqueueing this request.
        depth: u32,
        /// The configured per-tenant depth bound.
        bound: u32,
    },
    /// A request was refused at admission and never queued.
    Shed {
        /// The stable rejection code (`SERVE-OVERLOADED`, ...).
        code: &'static str,
    },
    /// A queued request was dequeued and executed.
    Served {
        /// Whether the device (or control-plane handler) succeeded.
        ok: bool,
        /// The rejection/error code when `ok` is false.
        code: Option<&'static str>,
    },
    /// A queued request's deadline passed before service; it was
    /// cancelled without touching the device.
    Expired,
    /// The tenant's queue was frozen: a fault was attributed to one of
    /// its functions, and blast-radius containment at the serving layer
    /// stops all further service for it until reclamation.
    Frozen {
        /// Why (a fault kind or error rendering).
        reason: String,
    },
    /// The tenant's queue thawed after reclamation.
    Thawed,
    /// The tenant's faulted functions were torn down and its queue
    /// drained; `shed` requests were refused with `SERVE-FROZEN`.
    Reclaimed {
        /// Queued requests shed during reclamation.
        shed: u32,
    },
    /// The daemon entered draining: no further admissions.
    DrainStarted,
    /// Every queue is empty; the daemon is quiescent.
    DrainCompleted {
        /// Requests served over the daemon's lifetime.
        served: u64,
    },
    /// A crash-safe snapshot image was taken.
    SnapshotTaken {
        /// First 8 hex digits of the image digest.
        digest: String,
    },
}

/// One totally ordered admission-layer event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRecord {
    /// Position in the transcript (0-based, dense).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Picos,
    /// The tenant the event concerns (empty for daemon-wide events).
    pub tenant: String,
    /// The protocol request id (0 for tenant- or daemon-wide events).
    pub id: u64,
    /// What happened.
    pub kind: ServeEventKind,
}

impl fmt::Display for ServeRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:06} t={}ps", self.seq, self.at.0)?;
        if !self.tenant.is_empty() {
            write!(f, " tenant={}", self.tenant)?;
        }
        if self.id != 0 {
            write!(f, " id={}", self.id)?;
        }
        write!(f, "] ")?;
        match &self.kind {
            ServeEventKind::Admitted { op, depth, bound } => {
                write!(f, "admit {op} depth={depth}/{bound}")
            }
            ServeEventKind::Shed { code } => write!(f, "shed {code}"),
            ServeEventKind::Served { ok: true, .. } => write!(f, "serve ok"),
            ServeEventKind::Served { ok: false, code } => {
                write!(f, "serve err {}", code.unwrap_or("?"))
            }
            ServeEventKind::Expired => write!(f, "expire"),
            ServeEventKind::Frozen { reason } => write!(f, "freeze ({reason})"),
            ServeEventKind::Thawed => write!(f, "thaw"),
            ServeEventKind::Reclaimed { shed } => write!(f, "reclaim shed={shed}"),
            ServeEventKind::DrainStarted => write!(f, "drain start"),
            ServeEventKind::DrainCompleted { served } => {
                write!(f, "drain complete served={served}")
            }
            ServeEventKind::SnapshotTaken { digest } => write!(f, "snapshot {digest}"),
        }
    }
}

/// Render an admission transcript as one canonical string (byte-
/// comparable across runs; the restart differential diffs these).
pub fn render_serve_transcript(records: &[ServeRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, tenant: &str, id: u64, kind: ServeEventKind) -> ServeRecord {
        ServeRecord {
            seq,
            at: Picos(seq * 10),
            tenant: tenant.to_string(),
            id,
            kind,
        }
    }

    #[test]
    fn render_is_canonical_and_line_per_record() {
        let records = vec![
            rec(
                0,
                "alpha",
                7,
                ServeEventKind::Admitted {
                    op: "launch",
                    depth: 1,
                    bound: 8,
                },
            ),
            rec(
                1,
                "alpha",
                8,
                ServeEventKind::Shed {
                    code: "SERVE-OVERLOADED",
                },
            ),
            rec(
                2,
                "alpha",
                7,
                ServeEventKind::Served {
                    ok: true,
                    code: None,
                },
            ),
            rec(
                3,
                "alpha",
                0,
                ServeEventKind::Frozen {
                    reason: "nf-crash".into(),
                },
            ),
            rec(4, "", 0, ServeEventKind::DrainCompleted { served: 1 }),
        ];
        let text = render_serve_transcript(&records);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("admit launch depth=1/8"), "{text}");
        assert!(text.contains("shed SERVE-OVERLOADED"), "{text}");
        assert!(text.contains("freeze (nf-crash)"), "{text}");
        assert!(text.contains("drain complete served=1"), "{text}");
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, render_serve_transcript(&records));
    }

    #[test]
    fn daemon_wide_records_omit_tenant_and_id() {
        let r = rec(0, "", 0, ServeEventKind::DrainStarted);
        let s = r.to_string();
        assert!(!s.contains("tenant="), "{s}");
        assert!(!s.contains("id="), "{s}");
    }
}
