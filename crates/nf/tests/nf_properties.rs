//! Property-based tests of the network functions' core invariants.

use proptest::prelude::*;
use snic_nf::dpi::AhoCorasick;
use snic_nf::lpm::{synth_prefixes, Dir24_8, Prefix};
use snic_nf::maglev::build_table;
use snic_nf::{MonitorNf, NatNf, NetworkFunction, NullSink, Verdict};
use snic_types::packet::PacketBuilder;
use snic_types::{ByteSize, FiveTuple, Picos, Protocol};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn aho_corasick_matches_naive_count(
        patterns in proptest::collection::vec(
            proptest::collection::vec(97u8..110, 1..6), 1..12),
        haystack in proptest::collection::vec(97u8..110, 0..300),
    ) {
        let ac = AhoCorasick::build(&patterns);
        let naive: u64 = patterns
            .iter()
            .map(|p| haystack.windows(p.len()).filter(|w| w == &p.as_slice()).count() as u64)
            .sum();
        prop_assert_eq!(ac.scan(&haystack, &mut NullSink), naive);
    }

    #[test]
    fn nat_port_assignment_is_injective(flow_seeds in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut nat = NatNf::with_defaults(0);
        let mut seen_ports = std::collections::HashMap::new();
        for &s in &flow_seeds {
            let pkt = PacketBuilder::new(s, 0xc633_0001, Protocol::Tcp, (s % 60000 + 1024) as u16, 80).build();
            let flow = FiveTuple::from_packet(&pkt).unwrap();
            if let Verdict::Rewritten(out) = nat.process(&pkt, &mut NullSink) {
                let port = out.tcp().unwrap().src_port;
                // Same flow → same port; different flows → different ports.
                if let Some(prev) = seen_ports.insert(port, flow) {
                    prop_assert_eq!(prev, flow, "port {} reused across flows", port);
                }
            }
        }
    }

    #[test]
    fn maglev_lookup_stable_under_table_rebuild(
        n_backends in 2usize..12,
        probes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        // Rebuilding with identical backends yields the identical table.
        let backends: Vec<String> = (0..n_backends).map(|i| format!("b{i}")).collect();
        let t1 = build_table(&backends, 1009);
        let t2 = build_table(&backends, 1009);
        for p in probes {
            let idx = (p % 1009) as usize;
            prop_assert_eq!(t1[idx], t2[idx]);
        }
    }

    #[test]
    fn lpm_matches_naive_longest_prefix(
        count in 1usize..60,
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let prefixes = synth_prefixes(count, seed);
        let mut table = Dir24_8::new();
        for &p in &prefixes {
            table.insert(p);
        }
        let mask = |addr: u32, len: u8| if len == 0 { 0 } else { addr & (u32::MAX << (32 - u32::from(len))) };
        for addr in probes {
            let candidates: Vec<&Prefix> = prefixes
                .iter()
                .filter(|x| mask(addr, x.len) == mask(x.addr, x.len))
                .collect();
            let best_len = candidates.iter().map(|x| x.len).max();
            let unambiguous = candidates.iter().filter(|x| Some(x.len) == best_len).count() <= 1;
            if unambiguous {
                let want = candidates.iter().max_by_key(|x| x.len).map(|x| x.next_hop);
                prop_assert_eq!(table.lookup(addr, &mut NullSink), want, "addr {:#010x}", addr);
            }
        }
    }

    #[test]
    fn monitor_counts_sum_to_packets(flow_ids in proptest::collection::vec(0u32..50, 1..300)) {
        let mut mon = MonitorNf::new(ByteSize::mib(1));
        for (i, &f) in flow_ids.iter().enumerate() {
            let flow = FiveTuple {
                src_ip: f, dst_ip: 1, protocol: Protocol::Udp, src_port: 1, dst_port: 2,
            };
            mon.observe(flow, Picos(i as u64), &mut NullSink);
        }
        let total: u64 = (0..50u32)
            .map(|f| {
                mon.count_of(&FiveTuple {
                    src_ip: f, dst_ip: 1, protocol: Protocol::Udp, src_port: 1, dst_port: 2,
                })
            })
            .sum();
        prop_assert_eq!(total, flow_ids.len() as u64);
        prop_assert_eq!(mon.packets(), flow_ids.len() as u64);
    }

    #[test]
    fn firewall_verdict_is_deterministic_per_flow(
        srcs in proptest::collection::vec(any::<u32>(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut fw = snic_nf::FirewallNf::new(snic_nf::firewall::synth_rules(100, seed), 1 << 14);
        for s in srcs {
            let pkt = PacketBuilder::new(s, 0xc633_0000 | (s & 0xffff), Protocol::Tcp, 1024, 80).build();
            let first = fw.process(&pkt, &mut NullSink);
            for _ in 0..3 {
                prop_assert_eq!(&fw.process(&pkt, &mut NullSink), &first);
            }
        }
    }
}

#[test]
fn nat_reverse_traffic_concept() {
    // Forward translation then check the reverse map knows the flow.
    let mut nat = NatNf::with_defaults(0);
    let pkt = PacketBuilder::new(0x0a000001, 0xc6330001, Protocol::Tcp, 7777, 80).build();
    let Verdict::Rewritten(out) = nat.process(&pkt, &mut NullSink) else {
        panic!()
    };
    let flow = FiveTuple::from_packet(&pkt).unwrap();
    assert_eq!(nat.lookup(&flow), Some(out.tcp().unwrap().src_port));
}
