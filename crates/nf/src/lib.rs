//! The six network functions of the paper's evaluation (§5.1).
//!
//! | NF | Paper description | Module |
//! |----|-------------------|--------|
//! | Firewall (FW) | Stateful firewall, 643 Emerging-Threats-style rules, 200 K-entry flow cache | [`firewall`] |
//! | DPI | Aho-Corasick pattern matching over 33,471 patterns | [`dpi`] |
//! | NAT | MazuNAT-derived translator, first 65,535 flows get ports | [`nat`] |
//! | LB | Google's Maglev consistent-hashing load balancer | [`maglev`] |
//! | LPM | DIR-24-8 longest-prefix match over 16,000 random rules | [`lpm`] |
//! | Monitor (Mon) | Per-five-tuple packet counters over measurement windows | [`monitor`] |
//!
//! The [`sketch`] module adds a bounded-memory Monitor variant
//! (count-min + SpaceSaving heavy hitters) as an S-NIC-friendly
//! alternative to the HashMap Monitor's large preallocation.
//!
//! Each NF is a *real implementation* — it classifies/translates/matches
//! actual packets — and doubles as the source of the memory-reference
//! streams that drive the Figure 5 microarchitectural experiments: every
//! data-structure probe reports its (virtual address, kind, instruction
//! cost) to an [`AccessSink`], so the uarch engine replays exactly the
//! locality the algorithm produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod covert;
pub mod dpi;
pub mod firewall;
pub mod lowering;
pub mod lpm;
pub mod maglev;
pub mod monitor;
pub mod nat;
pub mod profile;
pub mod sketch;

pub use common::{AccessSink, NetworkFunction, NfKind, NullSink, RecordingSink, Verdict};
pub use dpi::DpiNf;
pub use firewall::FirewallNf;
pub use lowering::{analysis_manifest, launch_analysis};
pub use lpm::LpmNf;
pub use maglev::MaglevNf;
pub use monitor::MonitorNf;
pub use nat::NatNf;
pub use profile::{paper_profile, MemoryProfile};
pub use sketch::{CountMinSketch, SketchMonitor};

use snic_types::Packet;
use snic_uarch::stream::Access;

/// Construct one NF of each kind with default (paper-matching) parameters.
///
/// `seed` controls rule/pattern generation so experiments are reproducible.
pub fn build_all(seed: u64) -> Vec<Box<dyn NetworkFunction>> {
    NfKind::ALL.iter().map(|&k| build(k, seed)).collect()
}

/// Construct one NF by kind.
pub fn build(kind: NfKind, seed: u64) -> Box<dyn NetworkFunction> {
    match kind {
        NfKind::Firewall => Box::new(FirewallNf::with_defaults(seed)),
        NfKind::Dpi => Box::new(DpiNf::with_defaults(seed)),
        NfKind::Nat => Box::new(NatNf::with_defaults(seed)),
        NfKind::LoadBalancer => Box::new(MaglevNf::with_defaults(seed)),
        NfKind::Lpm => Box::new(LpmNf::with_defaults(seed)),
        NfKind::Monitor => Box::new(MonitorNf::with_defaults(seed)),
    }
}

/// Run `nf` over `packets`, recording its reference stream.
pub fn record_stream(nf: &mut dyn NetworkFunction, packets: &[Packet]) -> Vec<Access> {
    let mut sink = RecordingSink::new();
    for p in packets {
        let _ = nf.process(p, &mut sink);
    }
    sink.into_accesses()
}

/// Run `nf` over an iterator of packets, recording its reference
/// stream — the lazy counterpart of [`record_stream`] (identical output
/// for the same packets, but the packet sequence itself need never be
/// materialized).
pub fn record_stream_iter(
    nf: &mut dyn NetworkFunction,
    packets: impl Iterator<Item = Packet>,
) -> Vec<Access> {
    let mut sink = RecordingSink::new();
    for p in packets {
        let _ = nf.process(&p, &mut sink);
    }
    sink.into_accesses()
}

/// Streams an NF's reference trace packet by packet in O(per-packet)
/// resident memory — the [`TraceSource`](snic_uarch::TraceSource)
/// backend behind streamed figure sweeps.
///
/// The recorder owns the NF and a packet iterator plus factories for
/// both; [`TraceSource::rewind`](snic_uarch::TraceSource::rewind)
/// rebuilds NF and iterator from the factories, so a rewound pass
/// replays the bit-identical access sequence (both factories must be
/// deterministic — seeded generation, not ambient randomness).
pub struct StreamingRecorder<F, G, I> {
    make_nf: F,
    make_packets: G,
    nf: Box<dyn NetworkFunction>,
    packets: I,
    sink: RecordingSink,
    /// Events of `sink` already copied out by `fill`.
    emitted: usize,
}

impl<F, G, I> StreamingRecorder<F, G, I>
where
    F: FnMut() -> Box<dyn NetworkFunction>,
    G: FnMut() -> I,
    I: Iterator<Item = Packet>,
{
    /// Build a recorder from deterministic NF and packet factories.
    pub fn new(mut make_nf: F, mut make_packets: G) -> StreamingRecorder<F, G, I> {
        let nf = make_nf();
        let packets = make_packets();
        StreamingRecorder {
            make_nf,
            make_packets,
            nf,
            packets,
            sink: RecordingSink::new(),
            emitted: 0,
        }
    }
}

impl<F, G, I> snic_uarch::TraceSource for StreamingRecorder<F, G, I>
where
    F: FnMut() -> Box<dyn NetworkFunction> + Send,
    G: FnMut() -> I + Send,
    I: Iterator<Item = Packet> + Send,
{
    fn fill(&mut self, out: &mut [Access]) -> usize {
        let mut n = 0;
        while n < out.len() {
            let recorded = self.sink.accesses();
            let avail = recorded.len() - self.emitted;
            if avail > 0 {
                let take = (out.len() - n).min(avail);
                out[n..n + take].copy_from_slice(&recorded[self.emitted..self.emitted + take]);
                self.emitted += take;
                n += take;
                continue;
            }
            self.sink.clear();
            self.emitted = 0;
            match self.packets.next() {
                None => break,
                Some(p) => {
                    let _ = self.nf.process(&p, &mut self.sink);
                }
            }
        }
        n
    }

    fn rewind(&mut self) {
        self.nf = (self.make_nf)();
        self.packets = (self.make_packets)();
        self.sink.clear();
        self.emitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_trace::{IctfConfig, IctfLikeTrace};
    use snic_uarch::TraceSource;

    fn packets(n: usize) -> Vec<Packet> {
        let mut trace = IctfLikeTrace::new(IctfConfig {
            flows: 64,
            seed: 0x5eed,
            ..IctfConfig::default()
        });
        (0..n).map(|_| trace.next_packet()).collect()
    }

    #[test]
    fn streaming_recorder_matches_record_stream() {
        let pkts = packets(200);
        for kind in NfKind::ALL {
            let materialized = record_stream(build(kind, 7).as_mut(), &pkts);
            let p = pkts.clone();
            let mut rec =
                StreamingRecorder::new(move || build(kind, 7), move || p.clone().into_iter());
            // Awkward buffer size so packet boundaries straddle fills.
            let mut buf = vec![
                Access {
                    insns: 1,
                    addr: 0,
                    kind: snic_uarch::AccessKind::Load,
                };
                97
            ];
            let mut streamed = Vec::new();
            loop {
                let n = rec.fill(&mut buf);
                if n == 0 {
                    break;
                }
                streamed.extend_from_slice(&buf[..n]);
            }
            assert_eq!(streamed, materialized, "{kind:?}");

            // A rewound recorder replays the identical sequence.
            rec.rewind();
            let mut replay = Vec::new();
            loop {
                let n = rec.fill(&mut buf);
                if n == 0 {
                    break;
                }
                replay.extend_from_slice(&buf[..n]);
            }
            assert_eq!(replay, materialized, "{kind:?} after rewind");
        }
    }

    #[test]
    fn record_stream_iter_matches_record_stream() {
        let pkts = packets(100);
        let eager = record_stream(build(NfKind::Firewall, 3).as_mut(), &pkts);
        let lazy = record_stream_iter(
            build(NfKind::Firewall, 3).as_mut(),
            pkts.clone().into_iter(),
        );
        assert_eq!(eager, lazy);
    }
}
