//! The six network functions of the paper's evaluation (§5.1).
//!
//! | NF | Paper description | Module |
//! |----|-------------------|--------|
//! | Firewall (FW) | Stateful firewall, 643 Emerging-Threats-style rules, 200 K-entry flow cache | [`firewall`] |
//! | DPI | Aho-Corasick pattern matching over 33,471 patterns | [`dpi`] |
//! | NAT | MazuNAT-derived translator, first 65,535 flows get ports | [`nat`] |
//! | LB | Google's Maglev consistent-hashing load balancer | [`maglev`] |
//! | LPM | DIR-24-8 longest-prefix match over 16,000 random rules | [`lpm`] |
//! | Monitor (Mon) | Per-five-tuple packet counters over measurement windows | [`monitor`] |
//!
//! The [`sketch`] module adds a bounded-memory Monitor variant
//! (count-min + SpaceSaving heavy hitters) as an S-NIC-friendly
//! alternative to the HashMap Monitor's large preallocation.
//!
//! Each NF is a *real implementation* — it classifies/translates/matches
//! actual packets — and doubles as the source of the memory-reference
//! streams that drive the Figure 5 microarchitectural experiments: every
//! data-structure probe reports its (virtual address, kind, instruction
//! cost) to an [`AccessSink`], so the uarch engine replays exactly the
//! locality the algorithm produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod covert;
pub mod dpi;
pub mod firewall;
pub mod lowering;
pub mod lpm;
pub mod maglev;
pub mod monitor;
pub mod nat;
pub mod profile;
pub mod sketch;

pub use common::{AccessSink, NetworkFunction, NfKind, NullSink, RecordingSink, Verdict};
pub use dpi::DpiNf;
pub use firewall::FirewallNf;
pub use lowering::{analysis_manifest, launch_analysis};
pub use lpm::LpmNf;
pub use maglev::MaglevNf;
pub use monitor::MonitorNf;
pub use nat::NatNf;
pub use profile::{paper_profile, MemoryProfile};
pub use sketch::{CountMinSketch, SketchMonitor};

use snic_types::Packet;
use snic_uarch::stream::Access;

/// Construct one NF of each kind with default (paper-matching) parameters.
///
/// `seed` controls rule/pattern generation so experiments are reproducible.
pub fn build_all(seed: u64) -> Vec<Box<dyn NetworkFunction>> {
    NfKind::ALL.iter().map(|&k| build(k, seed)).collect()
}

/// Construct one NF by kind.
pub fn build(kind: NfKind, seed: u64) -> Box<dyn NetworkFunction> {
    match kind {
        NfKind::Firewall => Box::new(FirewallNf::with_defaults(seed)),
        NfKind::Dpi => Box::new(DpiNf::with_defaults(seed)),
        NfKind::Nat => Box::new(NatNf::with_defaults(seed)),
        NfKind::LoadBalancer => Box::new(MaglevNf::with_defaults(seed)),
        NfKind::Lpm => Box::new(LpmNf::with_defaults(seed)),
        NfKind::Monitor => Box::new(MonitorNf::with_defaults(seed)),
    }
}

/// Run `nf` over `packets`, recording its reference stream.
pub fn record_stream(nf: &mut dyn NetworkFunction, packets: &[Packet]) -> Vec<Access> {
    let mut sink = RecordingSink::new();
    for p in packets {
        let _ = nf.process(p, &mut sink);
    }
    sink.into_accesses()
}
