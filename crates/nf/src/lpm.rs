//! Longest-prefix matching (LPM) with the DIR-24-8 algorithm.
//!
//! §5.1: "Longest prefix matching using the DIR-24-8 algorithm for IP
//! packet routing. Like NetBricks, we generate 16,000 random rules to
//! construct the lookup table."
//!
//! DIR-24-8 (Gupta/Lin/McKeown, INFOCOM '98) keeps a 2^24-entry first
//! table indexed by the top 24 address bits; prefixes longer than /24
//! spill into 256-entry second-level tables. Lookups take one memory
//! access for the common case and two for long prefixes — which is
//! exactly the access pattern the reference stream reports.

use rand::Rng;
use rand::SeedableRng;
use snic_types::{ByteSize, Packet};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::profile::{paper_profile, vec_bytes, MemoryProfile};

/// Entry flag: the low 15 bits index a tbl8 segment instead of a hop.
const EXTEND_FLAG: u32 = 1 << 31;
/// "No route" marker.
const INVALID: u32 = !EXTEND_FLAG;

/// A routing prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// Network address.
    pub addr: u32,
    /// Prefix length, 0–32.
    pub len: u8,
    /// Next-hop identifier (must be < 2^24 so it fits an entry).
    pub next_hop: u32,
}

/// The DIR-24-8 table.
#[derive(Debug)]
pub struct Dir24_8 {
    tbl24: Vec<u32>,
    tbl8: Vec<u32>,
    /// Prefix length that produced each tbl24 range, to resolve overlaps
    /// (longer prefixes must win).
    depth24: Vec<u8>,
    depth8: Vec<u8>,
}

impl Default for Dir24_8 {
    fn default() -> Self {
        Self::new()
    }
}

impl Dir24_8 {
    /// An empty table (all lookups miss). Allocates the full 64 MB tbl24,
    /// like DPDK's implementation — this is what gives LPM its Table 6
    /// footprint.
    pub fn new() -> Dir24_8 {
        Dir24_8 {
            tbl24: vec![INVALID; 1 << 24],
            tbl8: Vec::new(),
            depth24: vec![0; 1 << 24],
            depth8: Vec::new(),
        }
    }

    /// Insert a prefix; longer prefixes override shorter ones.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or `next_hop` does not fit 24 bits.
    pub fn insert(&mut self, p: Prefix) {
        assert!(p.len <= 32, "prefix length out of range");
        assert!(p.next_hop < (1 << 24), "next hop too large");
        assert_eq!(
            self.depth24.len(),
            self.tbl24.len(),
            "cannot insert into a sealed table"
        );
        if p.len <= 24 {
            let shift = 24 - u32::from(p.len);
            let base = (mask(p.addr, p.len) >> 8) as usize;
            let count = 1usize << shift;
            for i in base..base + count {
                match self.tbl24[i] {
                    e if e & EXTEND_FLAG != 0 => {
                        // Push into the existing tbl8 segment where shorter.
                        let seg = (e & !EXTEND_FLAG) as usize;
                        for j in 0..256 {
                            let idx = seg * 256 + j;
                            if self.depth8[idx] <= p.len {
                                self.tbl8[idx] = p.next_hop;
                                self.depth8[idx] = p.len;
                            }
                        }
                    }
                    _ => {
                        if self.depth24[i] <= p.len {
                            self.tbl24[i] = p.next_hop;
                            self.depth24[i] = p.len;
                        }
                    }
                }
            }
        } else {
            let i = (mask(p.addr, 24) >> 8) as usize;
            let seg = match self.tbl24[i] {
                e if e & EXTEND_FLAG != 0 => (e & !EXTEND_FLAG) as usize,
                old => {
                    // Allocate a segment seeded with the old /<=24 entry.
                    let seg = self.tbl8.len() / 256;
                    self.tbl8.extend(std::iter::repeat_n(old, 256));
                    self.depth8
                        .extend(std::iter::repeat_n(self.depth24[i], 256));
                    self.tbl24[i] = EXTEND_FLAG | seg as u32;
                    seg
                }
            };
            let low_bits = 32 - u32::from(p.len);
            let base = (mask(p.addr, p.len) & 0xff) as usize;
            for j in base..base + (1usize << low_bits) {
                let idx = seg * 256 + j;
                if self.depth8[idx] <= p.len {
                    self.tbl8[idx] = p.next_hop;
                    self.depth8[idx] = p.len;
                }
            }
        }
    }

    /// Look up `addr`, reporting table touches to `sink`.
    pub fn lookup(&self, addr: u32, sink: &mut dyn AccessSink) -> Option<u32> {
        let i = (addr >> 8) as usize;
        sink.touch(layout::HEAP_BASE + (i as u64) * 4, AccessKind::Load, 80);
        let e = self.tbl24[i];
        let hop = if e & EXTEND_FLAG != 0 {
            let seg = (e & !EXTEND_FLAG) as usize;
            let idx = seg * 256 + (addr & 0xff) as usize;
            sink.touch(
                layout::HEAP_BASE + 0x400_0000 + (idx as u64) * 4,
                AccessKind::Load,
                40,
            );
            self.tbl8[idx]
        } else {
            e
        };
        if hop == INVALID {
            None
        } else {
            Some(hop)
        }
    }

    /// Free the build-time depth arrays (16 MB for tbl24 alone). The
    /// depths only resolve overlaps *during* [`Dir24_8::insert`];
    /// lookups never read them, so a table that is done being built can
    /// drop them. The many-tenant streamed colocations hold one LPM
    /// table per tenant, where this is a fifth of the footprint.
    ///
    /// # Panics
    ///
    /// [`Dir24_8::insert`] panics after sealing.
    pub fn seal(&mut self) {
        self.depth24 = Vec::new();
        self.depth8 = Vec::new();
    }

    /// Number of allocated tbl8 segments.
    pub fn tbl8_segments(&self) -> usize {
        self.tbl8.len() / 256
    }

    /// Resident bytes of the tables (entries only; depth arrays are a
    /// build-time aid the paper's DPDK implementation also carries).
    pub fn table_bytes(&self) -> ByteSize {
        ByteSize(vec_bytes(self.tbl24.len(), 4) + vec_bytes(self.tbl8.len(), 4))
    }
}

fn mask(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - u32::from(len)))
    }
}

/// Generate `count` random prefixes as NetBricks does (random address,
/// random length 8–32, random hop).
pub fn synth_prefixes(count: usize, seed: u64) -> Vec<Prefix> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Prefix {
            addr: rng.random(),
            len: rng.random_range(8..=32),
            next_hop: rng.random_range(0..1 << 24),
        })
        .collect()
}

/// The LPM network function.
#[derive(Debug)]
pub struct LpmNf {
    table: Dir24_8,
    routed: u64,
    unrouted: u64,
}

impl LpmNf {
    /// Build from explicit prefixes.
    pub fn new(prefixes: &[Prefix]) -> LpmNf {
        let mut table = Dir24_8::new();
        for &p in prefixes {
            table.insert(p);
        }
        // The NF never inserts after construction; keep only what
        // lookups read.
        table.seal();
        LpmNf {
            table,
            routed: 0,
            unrouted: 0,
        }
    }

    /// The paper's configuration: 16,000 random rules.
    pub fn with_defaults(seed: u64) -> LpmNf {
        LpmNf::new(&synth_prefixes(16_000, seed))
    }

    /// Packets with a route.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Packets with no matching prefix.
    pub fn unrouted(&self) -> u64 {
        self.unrouted
    }

    /// The underlying table.
    pub fn table(&self) -> &Dir24_8 {
        &self.table
    }
}

impl NetworkFunction for LpmNf {
    fn kind(&self) -> NfKind {
        NfKind::Lpm
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 150);
        let Ok(ip) = pkt.ipv4() else {
            return Verdict::Drop;
        };
        match self.table.lookup(ip.dst, sink) {
            Some(hop) => {
                self.routed += 1;
                Verdict::Steer(hop)
            }
            None => {
                self.unrouted += 1;
                Verdict::Drop
            }
        }
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::lpm_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        MemoryProfile {
            heap_stack: self.table.table_bytes(),
            ..paper_profile(NfKind::Lpm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{NullSink, RecordingSink};

    fn p(addr: u32, len: u8, hop: u32) -> Prefix {
        Prefix {
            addr,
            len,
            next_hop: hop,
        }
    }

    #[test]
    fn exact_slash24_route() {
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000100, 24, 7));
        assert_eq!(t.lookup(0x0a000100, &mut NullSink), Some(7));
        assert_eq!(t.lookup(0x0a0001ff, &mut NullSink), Some(7));
        assert_eq!(t.lookup(0x0a000200, &mut NullSink), None);
    }

    #[test]
    fn longest_prefix_wins_within_tbl24() {
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000000, 8, 1));
        t.insert(p(0x0a0b0000, 16, 2));
        assert_eq!(t.lookup(0x0a0b0105, &mut NullSink), Some(2));
        assert_eq!(t.lookup(0x0a0c0105, &mut NullSink), Some(1));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = Dir24_8::new();
        a.insert(p(0x0a000000, 8, 1));
        a.insert(p(0x0a0b0000, 16, 2));
        let mut b = Dir24_8::new();
        b.insert(p(0x0a0b0000, 16, 2));
        b.insert(p(0x0a000000, 8, 1));
        for probe in [0x0a0b0105u32, 0x0a0c0105, 0x0b000000] {
            assert_eq!(
                a.lookup(probe, &mut NullSink),
                b.lookup(probe, &mut NullSink)
            );
        }
    }

    #[test]
    fn slash32_route_via_tbl8() {
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000000, 8, 1));
        t.insert(p(0x0a000105, 32, 9));
        assert_eq!(t.lookup(0x0a000105, &mut NullSink), Some(9));
        // Neighbors in the same /24 fall back to the covering /8.
        assert_eq!(t.lookup(0x0a000106, &mut NullSink), Some(1));
        assert_eq!(t.tbl8_segments(), 1);
    }

    #[test]
    fn long_prefix_then_short_overlay() {
        // Insert /32 first, then a /16 that covers it: /32 must survive.
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000105, 32, 9));
        t.insert(p(0x0a000000, 16, 1));
        assert_eq!(t.lookup(0x0a000105, &mut NullSink), Some(9));
        assert_eq!(t.lookup(0x0a000106, &mut NullSink), Some(1));
    }

    #[test]
    fn lookup_agrees_with_naive_scan() {
        let prefixes = synth_prefixes(300, 5);
        let t = {
            let mut t = Dir24_8::new();
            for &x in &prefixes {
                t.insert(x);
            }
            t
        };
        let naive = |addr: u32| {
            prefixes
                .iter()
                .filter(|x| mask(addr, x.len) == mask(x.addr, x.len))
                .max_by_key(|x| x.len)
                .map(|x| x.next_hop)
        };
        let mut rng_state = 0x1234_5678u32;
        for _ in 0..2000 {
            rng_state = rng_state
                .wrapping_mul(1_664_525)
                .wrapping_add(1_013_904_223);
            let addr = rng_state;
            let got = t.lookup(addr, &mut NullSink);
            let want = naive(addr);
            // Ties between equal-length prefixes may resolve either way;
            // compare only when the naive answer is unambiguous.
            let candidates: Vec<_> = prefixes
                .iter()
                .filter(|x| mask(addr, x.len) == mask(x.addr, x.len))
                .collect();
            let max_len = candidates.iter().map(|x| x.len).max();
            let ambiguous = candidates.iter().filter(|x| Some(x.len) == max_len).count() > 1;
            if !ambiguous {
                assert_eq!(got, want, "addr {addr:#010x}");
            }
        }
    }

    #[test]
    fn sealed_table_looks_up_but_rejects_inserts() {
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000000, 16, 1));
        t.insert(p(0x0b000105, 32, 2));
        t.seal();
        assert_eq!(t.lookup(0x0a000001, &mut NullSink), Some(1));
        assert_eq!(t.lookup(0x0b000105, &mut NullSink), Some(2));
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                t.insert(p(0x0c000000, 8, 3))
            }))
            .is_err(),
            "insert after seal must panic"
        );
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = Dir24_8::new();
        t.insert(p(0, 0, 42));
        assert_eq!(t.lookup(0xffff_ffff, &mut NullSink), Some(42));
        assert_eq!(t.lookup(0, &mut NullSink), Some(42));
    }

    #[test]
    fn tbl24_lookup_touches_one_address_tbl8_two() {
        let mut t = Dir24_8::new();
        t.insert(p(0x0a000000, 16, 1));
        t.insert(p(0x0b000105, 32, 2));
        let mut s1 = RecordingSink::new();
        let _ = t.lookup(0x0a000001, &mut s1);
        assert_eq!(s1.accesses().len(), 1);
        let mut s2 = RecordingSink::new();
        let _ = t.lookup(0x0b000105, &mut s2);
        assert_eq!(s2.accesses().len(), 2);
    }

    #[test]
    fn table_bytes_dominated_by_tbl24() {
        let t = Dir24_8::new();
        assert_eq!(t.table_bytes(), ByteSize((1u64 << 24) * 4));
    }

    #[test]
    fn nf_routes_and_counts() {
        use snic_types::packet::PacketBuilder;
        use snic_types::Protocol;
        let mut nf = LpmNf::new(&[p(0xc6330000, 16, 3)]);
        let hit = PacketBuilder::new(1, 0xc633_0007, Protocol::Udp, 1, 2).build();
        let miss = PacketBuilder::new(1, 0x0101_0101, Protocol::Udp, 1, 2).build();
        assert_eq!(nf.process(&hit, &mut NullSink), Verdict::Steer(3));
        assert_eq!(nf.process(&miss, &mut NullSink), Verdict::Drop);
        assert_eq!((nf.routed(), nf.unrouted()), (1, 1));
    }

    #[test]
    fn default_profile_close_to_paper_64mb() {
        let nf = LpmNf::with_defaults(1);
        let heap = nf.memory_profile().heap_stack.as_mib_f64();
        // Paper: 64.90 MB. tbl24 alone is 64 MB; tbl8 segments add a bit.
        assert!((64.0..70.0).contains(&heap), "heap = {heap} MiB");
    }
}
