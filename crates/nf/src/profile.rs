//! NF memory profiles (Table 6 / Appendix B).
//!
//! A profile has the paper's four regions: text, static data, code, and
//! heap+stack. The text/data/code sizes come from the paper's MIPS builds
//! (our Rust build targets a different ABI, so we take those constants as
//! given — documented substitution); the heap value can be either the
//! paper's figure ([`paper_profile`]) or the live measurement an NF
//! reports from its own data structures.

use snic_mem::planner::{plan_regions, PagePolicy};
use snic_types::ByteSize;

use crate::common::NfKind;

/// The four-region memory profile of one NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryProfile {
    /// Text segment.
    pub text: ByteSize,
    /// Static data segment.
    pub data: ByteSize,
    /// Code segment.
    pub code: ByteSize,
    /// Heap plus stack (maximum observed).
    pub heap_stack: ByteSize,
}

impl MemoryProfile {
    /// Total across all regions.
    pub fn total(&self) -> ByteSize {
        self.text + self.data + self.code + self.heap_stack
    }

    /// The regions as a slice in Table 6 order.
    pub fn regions(&self) -> [ByteSize; 4] {
        [self.text, self.data, self.code, self.heap_stack]
    }

    /// TLB entries needed under `policy` (waste-minimizing planner).
    pub fn tlb_entries(&self, policy: &PagePolicy) -> u64 {
        plan_regions(&self.regions(), policy).total_entries()
    }
}

/// Convert a Table 6 value given in MB (two decimals) to bytes.
fn mb(v: f64) -> ByteSize {
    ByteSize((v * 1024.0 * 1024.0) as u64)
}

/// The paper's measured profile for `kind` (Table 6).
pub fn paper_profile(kind: NfKind) -> MemoryProfile {
    match kind {
        NfKind::Firewall => MemoryProfile {
            text: mb(0.87),
            data: mb(0.08),
            code: mb(2.50),
            heap_stack: mb(13.75),
        },
        NfKind::Dpi => MemoryProfile {
            text: mb(1.34),
            data: mb(0.56),
            code: mb(2.59),
            heap_stack: mb(46.65),
        },
        NfKind::Nat => MemoryProfile {
            text: mb(0.86),
            data: mb(0.05),
            code: mb(2.49),
            heap_stack: mb(40.48),
        },
        NfKind::LoadBalancer => MemoryProfile {
            text: mb(0.86),
            data: mb(0.05),
            code: mb(2.49),
            heap_stack: mb(10.40),
        },
        NfKind::Lpm => MemoryProfile {
            text: mb(0.86),
            data: mb(0.06),
            code: mb(2.51),
            heap_stack: mb(64.90),
        },
        NfKind::Monitor => MemoryProfile {
            text: mb(0.85),
            data: mb(0.05),
            code: mb(2.48),
            heap_stack: mb(357.15),
        },
    }
}

/// The paper's steady-state ("memory used") totals from Table 8, in MB.
pub fn paper_steady_state_mb(kind: NfKind) -> f64 {
    match kind {
        NfKind::Firewall => 17.20,
        NfKind::Dpi => 51.14,
        NfKind::Nat => 31.72,
        NfKind::LoadBalancer => 4.16,
        NfKind::Lpm => 68.33,
        NfKind::Monitor => 246.31,
    }
}

/// Estimate the resident bytes of a `std::collections::HashMap` with the
/// given capacity and entry size.
///
/// Rust's hashbrown-based map stores one control byte plus one
/// `(K, V)` slot per bucket, and buckets number `capacity / 0.875`
/// rounded to a power of two. This estimator is used by NFs to report
/// live heap usage without a global allocator hook.
pub fn hashmap_bytes(capacity: usize, entry_size: usize) -> u64 {
    if capacity == 0 {
        return 0;
    }
    let buckets = ((capacity as f64) / 0.875).ceil() as u64;
    let buckets = buckets.next_power_of_two();
    buckets * (entry_size as u64 + 1)
}

/// Estimate the resident bytes of a `Vec` with the given capacity.
pub fn vec_bytes(capacity: usize, entry_size: usize) -> u64 {
    (capacity * entry_size) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_table6() {
        // Table 6 "Total" column, MB.
        let expect = [
            (NfKind::Firewall, 17.20),
            (NfKind::Dpi, 51.14),
            (NfKind::Nat, 43.88),
            (NfKind::LoadBalancer, 13.80),
            (NfKind::Lpm, 68.33),
            (NfKind::Monitor, 360.54),
        ];
        for (kind, mb_total) in expect {
            let total = paper_profile(kind).total().as_mib_f64();
            assert!(
                (total - mb_total).abs() < 0.02,
                "{kind:?}: {total} vs {mb_total}"
            );
        }
    }

    #[test]
    fn tlb_entries_match_table6_equal_policy() {
        // Table 6 "Equal" column.
        let expect = [
            (NfKind::Firewall, 11),
            (NfKind::Dpi, 28),
            (NfKind::Nat, 25),
            (NfKind::LoadBalancer, 10),
            (NfKind::Lpm, 37),
            (NfKind::Monitor, 183),
        ];
        for (kind, entries) in expect {
            assert_eq!(
                paper_profile(kind).tlb_entries(&PagePolicy::Equal),
                entries,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn tlb_entries_match_table6_flex_high() {
        // Table 6 "Flex-high" column.
        let expect = [
            (NfKind::Firewall, 11),
            (NfKind::Dpi, 13),
            (NfKind::Nat, 10),
            (NfKind::LoadBalancer, 10),
            (NfKind::Lpm, 7),
            (NfKind::Monitor, 12),
        ];
        for (kind, entries) in expect {
            assert_eq!(
                paper_profile(kind).tlb_entries(&PagePolicy::FlexHigh),
                entries,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn tlb_entries_near_table6_flex_low() {
        // Table 6 "Flex-low" column. The paper's region sizes are rounded
        // to two decimals, which can shift small-page counts by ±2; allow
        // that slack and record exact values in EXPERIMENTS.md.
        let expect = [
            (NfKind::Firewall, 34i64),
            (NfKind::Dpi, 51),
            (NfKind::Nat, 37),
            (NfKind::LoadBalancer, 22),
            (NfKind::Lpm, 23),
            (NfKind::Monitor, 46),
        ];
        for (kind, entries) in expect {
            let got = paper_profile(kind).tlb_entries(&PagePolicy::FlexLow) as i64;
            assert!(
                (got - entries).abs() <= 2,
                "{kind:?}: got {got}, paper {entries}"
            );
        }
    }

    #[test]
    fn max_entries_across_nfs_is_183() {
        // Table 2's sizing: "183 TLB entries" is the minimum that maps
        // every evaluated function under the Equal policy.
        let max = NfKind::ALL
            .iter()
            .map(|&k| paper_profile(k).tlb_entries(&PagePolicy::Equal))
            .max()
            .unwrap();
        assert_eq!(max, 183);
    }

    #[test]
    fn hashmap_estimate_is_plausible() {
        // 200k entries of 64 bytes: at least the raw data, at most ~4x.
        let b = hashmap_bytes(200_000, 64);
        assert!(b >= 200_000 * 64);
        assert!(b <= 4 * 200_000 * 64);
        assert_eq!(hashmap_bytes(0, 64), 0);
    }

    #[test]
    fn steady_state_below_peak() {
        for k in NfKind::ALL {
            let steady = paper_steady_state_mb(k);
            let peak = paper_profile(k).total().as_mib_f64();
            assert!(steady <= peak + 0.01, "{k:?}");
        }
    }
}
