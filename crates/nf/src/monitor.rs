//! Flow monitor (Mon).
//!
//! §5.1: "Uses a HashMap to record the number of packets for each 5-tuple
//! flow." The monitor is the memory-hungriest NF in Table 6 (361 MB peak)
//! because its map grows with the number of distinct flows in the
//! measurement window, and its *peak* exceeds its steady state due to two
//! effects Appendix C dissects (Figure 7): DPDK hugepage initialization
//! (a temporary staging buffer doubles the resident pool briefly) and
//! `HashMap` resizings (old and new tables coexist during rehash).
//!
//! Both effects are modeled explicitly through an
//! [`snic_mem::tracker::AllocationTracker`], so the Figure 7 time series
//! and the Table 8 memory-utilization ratio are *measured* from the same
//! event stream the monitor produces.

use snic_mem::tracker::AllocationTracker;
use snic_types::{ByteSize, FiveTuple, Packet, Picos};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::firewall::DetHashMap;
use crate::profile::{paper_profile, MemoryProfile};

/// Modeled bytes per map slot: key (16 B five-tuple packed) + count (8 B)
/// + control byte, rounded to 32 for alignment.
pub(crate) const SLOT_BYTES: u64 = 32;

/// The flow-monitor NF.
#[derive(Debug)]
pub struct MonitorNf {
    counts: DetHashMap<FiveTuple, u64>,
    tracker: AllocationTracker,
    /// Current modeled bucket count of the map.
    buckets: u64,
    /// DPDK hugepage pool size.
    hugepage_pool: ByteSize,
    initialized: bool,
    last_time: Picos,
    packets: u64,
}

impl MonitorNf {
    /// Create a monitor with the given DPDK hugepage pool size.
    pub fn new(hugepage_pool: ByteSize) -> MonitorNf {
        MonitorNf {
            counts: DetHashMap::default(),
            tracker: AllocationTracker::new(),
            buckets: 0,
            hugepage_pool,
            initialized: false,
            last_time: Picos::ZERO,
            packets: 0,
        }
    }

    /// Paper defaults: a 64 MB hugepage pool (DPDK's common default for
    /// NIC dataplanes).
    pub fn with_defaults(_seed: u64) -> MonitorNf {
        MonitorNf::new(ByteSize::mib(64))
    }

    /// Distinct flows currently tracked.
    pub fn tracked_flows(&self) -> usize {
        self.counts.len()
    }

    /// Packets observed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Packet count for a flow.
    pub fn count_of(&self, flow: &FiveTuple) -> u64 {
        self.counts.get(flow).copied().unwrap_or(0)
    }

    /// The allocation event log (drives Figure 7 and Table 8).
    pub fn tracker(&self) -> &AllocationTracker {
        &self.tracker
    }

    /// Peak resident bytes so far (S-NIC's minimum preallocation).
    pub fn peak_bytes(&self) -> ByteSize {
        self.tracker.peak()
    }

    /// Steady-state resident bytes.
    pub fn steady_bytes(&self) -> ByteSize {
        self.tracker.current()
    }

    fn ensure_init(&mut self, time: Picos) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        // DPDK hugepage initialization: a temporary normal buffer holds
        // the data while the hugepage region is populated.
        self.tracker
            .alloc(time, self.hugepage_pool, "hugepage-staging");
        self.tracker
            .alloc(time, self.hugepage_pool, "hugepage-pool");
        self.tracker
            .release(time, self.hugepage_pool, "hugepage-staging");
        // Initial map allocation.
        self.buckets = 8;
        self.tracker
            .alloc(time, ByteSize(self.buckets * SLOT_BYTES), "flow-map");
    }

    fn maybe_resize(&mut self, time: Picos) {
        // hashbrown grows when len exceeds 7/8 of buckets.
        if self.counts.len() as u64 * 8 <= self.buckets * 7 {
            return;
        }
        let new_buckets = self.buckets * 2;
        // During rehash the old and new tables coexist: this is the spike.
        self.tracker
            .alloc(time, ByteSize(new_buckets * SLOT_BYTES), "flow-map-resize");
        self.tracker
            .release(time, ByteSize(self.buckets * SLOT_BYTES), "flow-map-old");
        self.buckets = new_buckets;
    }

    /// Observe one flow occurrence at `time` (the trace-driven interface
    /// used by the Figure 7 experiment).
    pub fn observe(&mut self, flow: FiveTuple, time: Picos, sink: &mut dyn AccessSink) {
        let time = time.max(self.last_time);
        self.last_time = time;
        self.ensure_init(time);
        self.packets += 1;
        // Bucket probe + counter update.
        let addr = layout::HEAP_BASE + (flow.stable_hash() % self.buckets.max(1)) * SLOT_BYTES;
        sink.touch(addr, AccessKind::Load, 200);
        let is_new = !self.counts.contains_key(&flow);
        *self.counts.entry(flow).or_insert(0) += 1;
        sink.touch(addr, AccessKind::Store, 30);
        if is_new {
            self.maybe_resize(time);
        }
    }

    /// End the measurement window: report the flow count and reset the
    /// map (as the UnivMon-style five-minute measurement does). Capacity
    /// is retained, matching `HashMap::clear`.
    pub fn end_window(&mut self, time: Picos) -> usize {
        let flows = self.counts.len();
        self.counts.clear();
        self.last_time = self.last_time.max(time);
        flows
    }
}

impl NetworkFunction for MonitorNf {
    fn kind(&self) -> NfKind {
        NfKind::Monitor
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 150);
        sink.touch(layout::PKTBUF_BASE + 64, AccessKind::Load, 70);
        let Ok(ft) = FiveTuple::from_packet(pkt) else {
            return Verdict::Drop;
        };
        let t = pkt.arrival;
        self.observe(ft, t, sink);
        Verdict::Forward
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::monitor_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        MemoryProfile {
            heap_stack: self.peak_bytes().max(ByteSize(self.buckets * SLOT_BYTES)),
            ..paper_profile(NfKind::Monitor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::NullSink;
    use snic_types::Protocol;

    fn flow(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: i,
            dst_ip: !i,
            protocol: Protocol::Tcp,
            src_port: 1,
            dst_port: 2,
        }
    }

    #[test]
    fn counts_per_flow() {
        let mut m = MonitorNf::new(ByteSize::mib(1));
        for _ in 0..3 {
            m.observe(flow(1), Picos(1), &mut NullSink);
        }
        m.observe(flow(2), Picos(2), &mut NullSink);
        assert_eq!(m.count_of(&flow(1)), 3);
        assert_eq!(m.count_of(&flow(2)), 1);
        assert_eq!(m.count_of(&flow(3)), 0);
        assert_eq!(m.tracked_flows(), 2);
        assert_eq!(m.packets(), 4);
    }

    #[test]
    fn hugepage_init_creates_startup_spike() {
        let mut m = MonitorNf::new(ByteSize::mib(10));
        m.observe(flow(1), Picos(0), &mut NullSink);
        // Peak saw staging + pool = 20 MB; steady has only the pool.
        assert!(m.peak_bytes() >= ByteSize::mib(20));
        assert!(m.steady_bytes() < ByteSize::mib(11));
    }

    #[test]
    fn map_growth_produces_resize_spikes() {
        let mut m = MonitorNf::new(ByteSize::mib(1));
        for i in 0..10_000u32 {
            m.observe(flow(i), Picos(u64::from(i)), &mut NullSink);
        }
        let resizes = m
            .tracker()
            .events()
            .iter()
            .filter(|e| e.label == "flow-map-resize")
            .count();
        assert!(resizes >= 8, "expected repeated doublings, saw {resizes}");
        // Modeled bucket count stays within the hashbrown growth rule.
        assert!(m.buckets >= 10_000 * 8 / 7);
    }

    #[test]
    fn mur_below_one_with_growth() {
        let mut m = MonitorNf::new(ByteSize::mib(4));
        for i in 0..50_000u32 {
            m.observe(flow(i), Picos(u64::from(i)), &mut NullSink);
        }
        let mur = m.tracker().mur();
        assert!(mur < 1.0, "peak must exceed steady state, mur = {mur}");
        assert!(mur > 0.3, "mur implausibly low: {mur}");
    }

    #[test]
    fn end_window_resets_counts() {
        let mut m = MonitorNf::new(ByteSize::mib(1));
        for i in 0..100u32 {
            m.observe(flow(i), Picos(u64::from(i)), &mut NullSink);
        }
        assert_eq!(m.end_window(Picos(200)), 100);
        assert_eq!(m.tracked_flows(), 0);
        // Observations continue into the next window.
        m.observe(flow(1), Picos(300), &mut NullSink);
        assert_eq!(m.tracked_flows(), 1);
    }

    #[test]
    fn time_series_is_monotone_in_time() {
        let mut m = MonitorNf::new(ByteSize::mib(2));
        for i in 0..5000u32 {
            m.observe(flow(i), Picos(u64::from(i) * 1000), &mut NullSink);
        }
        let series = m.tracker().time_series(50);
        assert_eq!(series.len(), 50);
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
        // The curve ends at the steady state.
        assert_eq!(series.last().unwrap().1, m.steady_bytes());
    }

    #[test]
    fn out_of_order_timestamps_are_clamped() {
        let mut m = MonitorNf::new(ByteSize::mib(1));
        m.observe(flow(1), Picos(1000), &mut NullSink);
        // An earlier timestamp must not panic the tracker.
        m.observe(flow(2), Picos(500), &mut NullSink);
        assert_eq!(m.packets(), 2);
    }

    #[test]
    fn process_uses_packet_arrival_time() {
        use snic_types::packet::PacketBuilder;
        let mut m = MonitorNf::new(ByteSize::mib(1));
        let mut p = PacketBuilder::new(1, 2, Protocol::Udp, 3, 4).build();
        p.arrival = Picos::millis(5);
        assert_eq!(m.process(&p, &mut NullSink), Verdict::Forward);
        assert_eq!(m.tracked_flows(), 1);
    }
}
