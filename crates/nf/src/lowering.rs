//! Lowerings from the six paper NFs into the Pass 0 dataflow IR.
//!
//! Each lowering mirrors its NF's `AccessSink` instrumentation op for op:
//! every `sink.touch(addr, kind, insns)` the real implementation can emit
//! has a corresponding IR load/store whose abstract address range covers
//! `addr` and whose weight is the same `insns`. That makes the IR
//! *ground-truthed*: the differential tests in this module record real
//! access streams and check they stay inside the IR's declared regions
//! and under the certificate's instruction ceiling.
//!
//! Loop structure follows the algorithms: the firewall's rule scan, the
//! DPI payload walk with its failure-link and dictionary-link inner
//! loops, and the single-probe NFs (NAT, LB, LPM, Monitor) are all
//! expressed with explicit trip bounds derived from the NF's own
//! configuration (rule count, automaton depth, table sizes).

use snic_analyze::{
    AnalysisManifest, LaunchAnalysis, NfProgram, Operand, ProgramBuilder, RegionClass, RegionId,
    Taint, Terminator,
};

use crate::common::{layout, NetworkFunction, NfKind};
use crate::dpi::DpiNf;
use crate::firewall::FirewallNf;
use crate::lpm::LpmNf;
use crate::maglev::MaglevNf;
use crate::monitor::MonitorNf;
use crate::nat::NatNf;

/// Largest payload the DPI lowering prices (jumbo-frame MTU); payloads
/// are bounded by the packet buffer, and the trace generators stay far
/// below this.
pub const MAX_PAYLOAD_BYTES: u64 = 9216;

fn pkt_window() -> (u64, u64) {
    (layout::PKTBUF_BASE, layout::DATA_BASE - layout::PKTBUF_BASE)
}

fn data_window() -> (u64, u64) {
    (layout::DATA_BASE, layout::HEAP_BASE - layout::DATA_BASE)
}

fn heap_window() -> (u64, u64) {
    (layout::HEAP_BASE, layout::STACK_BASE - layout::HEAP_BASE)
}

/// The analyzer's view of an NF launch manifest: the three layout
/// windows every NF maps (packet buffer, static data, heap/stack), no
/// accelerators, no host DMA, and a per-kind admission ceiling sized
/// from the lowering's worst-case path.
pub fn analysis_manifest(kind: NfKind) -> AnalysisManifest {
    let max_insns_per_packet = match kind {
        NfKind::Firewall => 4_000,
        // Worst case walks every payload byte through a full failure
        // chain: MAX_PAYLOAD * (depth+1) * 6 + dictionary walks.
        NfKind::Dpi => 4_000_000,
        NfKind::Nat => 1_500,
        NfKind::LoadBalancer => 1_200,
        NfKind::Lpm => 600,
        NfKind::Monitor => 1_000,
    };
    AnalysisManifest {
        regions: vec![pkt_window(), data_window(), heap_window()],
        accel: Vec::new(),
        dma_window: None,
        max_insns_per_packet,
    }
}

/// The Pass 0 submission for an NF: its IR plus the manifest for its
/// kind. `None` for NFs without a lowering (e.g. the sketch monitor).
pub fn launch_analysis(nf: &dyn NetworkFunction) -> Option<LaunchAnalysis> {
    nf.dataflow_ir().map(|program| LaunchAnalysis {
        program,
        manifest: analysis_manifest(nf.kind()),
    })
}

fn declare_windows(p: &mut ProgramBuilder) -> (RegionId, RegionId, RegionId) {
    let (pb, pl) = pkt_window();
    let (db, dl) = data_window();
    let (hb, hl) = heap_window();
    (
        p.region("pktbuf", pb, pl, RegionClass::PacketBuf),
        p.region("data", db, dl, RegionClass::Private),
        p.region("heap", hb, hl, RegionClass::Private),
    )
}

/// FW: header parse, flow-cache probe, and on a miss the linear rule
/// scan (one load per 4-rule cache line) plus eviction/insert stores.
pub fn firewall_ir(nf: &FirewallNf) -> NfProgram {
    let mut p = ProgramBuilder::new("FW");
    let (pkt, data, heap) = declare_windows(&mut p);
    let buckets = (nf.cache_limit() as u64).next_power_of_two();
    let rules = nf.rule_count() as u64;

    let _ = p.load(pkt, Operand::Imm(0), 64, 180);
    let _ = p.load(pkt, Operand::Imm(64), 64, 90);
    let hash = p.havoc(0, u64::MAX, Taint::PACKET, 0);
    let slot = p.modulo(Operand::Reg(hash), buckets, 0);
    let bucket_off = p.arith(
        Operand::Imm(0),
        Operand::Reg(slot),
        crate::firewall::CACHE_BUCKET_BYTES,
        0,
    );
    let _ = p.load(heap, Operand::Reg(bucket_off), 24, 220);

    let scan = p.add_block();
    let insert = p.add_block();
    let done = p.add_block();
    // Hit path goes straight to `done`; miss path runs the scan loop.
    p.terminate(Terminator::Branch(vec![done, scan]));

    p.select(scan);
    let i = p.havoc(0, rules.max(1) - 1, Taint::NONE, 0);
    let rule_off = p.arith(
        Operand::Imm(0),
        Operand::Reg(i),
        crate::firewall::RULE_BYTES,
        0,
    );
    let _ = p.load(data, Operand::Reg(rule_off), 16, 10);
    p.terminate(Terminator::Branch(vec![scan, insert]));
    p.loop_bound(scan, rules.div_ceil(4).max(1));

    p.select(insert);
    let evict_hash = p.havoc(0, u64::MAX, Taint::STATE, 0);
    let evict_slot = p.modulo(Operand::Reg(evict_hash), buckets, 0);
    let evict_off = p.arith(
        Operand::Imm(0),
        Operand::Reg(evict_slot),
        crate::firewall::CACHE_BUCKET_BYTES,
        0,
    );
    p.store(heap, Operand::Reg(evict_off), Operand::Reg(hash), 24, 25);
    p.store(heap, Operand::Reg(bucket_off), Operand::Reg(hash), 24, 40);
    p.terminate(Terminator::Jump(done));

    p.select(done);
    p.emit(Operand::Reg(hash), 0);
    p.finish()
}

/// DPI: header load, streamed payload lines, then the Aho-Corasick walk
/// — a per-byte outer loop containing the failure-link and
/// dictionary-link inner loops, both bounded by the trie depth.
pub fn dpi_ir(nf: &DpiNf) -> NfProgram {
    let mut p = ProgramBuilder::new("DPI");
    let (pkt, _, heap) = declare_windows(&mut p);
    let nodes = nf.automaton().node_count() as u64;
    // Failure walk touches at most depth+1 nodes per byte; the dict walk
    // at most depth.
    let walk = nf.automaton().max_depth() as u64 + 1;

    let _ = p.load(pkt, Operand::Imm(0), 64, 120);

    let lines = p.add_block();
    let bytes = p.add_block();
    let fail_walk = p.add_block();
    let dict_walk = p.add_block();
    let next_byte = p.add_block();
    let done = p.add_block();
    p.terminate(Terminator::Jump(lines));

    // One load per 64-byte payload line.
    p.select(lines);
    let line = p.havoc(0, MAX_PAYLOAD_BYTES / 64 - 1, Taint::NONE, 0);
    let line_off = p.arith(Operand::Imm(64), Operand::Reg(line), 64, 0);
    let _ = p.load(pkt, Operand::Reg(line_off), 64, 3);
    p.terminate(Terminator::Branch(vec![lines, bytes]));
    p.loop_bound(lines, MAX_PAYLOAD_BYTES / 64);

    // Outer loop: one iteration per payload byte.
    p.select(bytes);
    p.terminate(Terminator::Jump(fail_walk));
    p.loop_bound(bytes, MAX_PAYLOAD_BYTES);

    // Inner loop 1: follow failure links until a transition exists. The
    // current node mixes packet data (which byte) and automaton state.
    p.select(fail_walk);
    let cur = p.havoc(0, nodes - 1, Taint::PACKET.union(Taint::STATE), 0);
    let node_off = p.arith(
        Operand::Imm(0),
        Operand::Reg(cur),
        crate::dpi::NODE_BYTES,
        0,
    );
    let _ = p.load(heap, Operand::Reg(node_off), 96, 6);
    p.terminate(Terminator::Branch(vec![fail_walk, dict_walk]));
    p.loop_bound(fail_walk, walk);

    // Inner loop 2: count matches via dictionary suffix links.
    p.select(dict_walk);
    let m = p.havoc(0, nodes - 1, Taint::PACKET.union(Taint::STATE), 0);
    let m_off = p.arith(Operand::Imm(0), Operand::Reg(m), crate::dpi::NODE_BYTES, 0);
    let _ = p.load(heap, Operand::Reg(m_off), 96, 4);
    p.terminate(Terminator::Branch(vec![dict_walk, next_byte]));
    p.loop_bound(dict_walk, walk);

    p.select(next_byte);
    p.terminate(Terminator::Branch(vec![bytes, done]));

    p.select(done);
    p.emit(Operand::Imm(0), 0);
    p.finish()
}

/// NAT: header parse, translation-bucket probe, then either a hit
/// update or a new-entry insert (forward record + reverse map), and the
/// two header-rewrite stores.
pub fn nat_ir(nf: &NatNf) -> NfProgram {
    let _ = nf;
    let mut p = ProgramBuilder::new("NAT");
    let (pkt, _, heap) = declare_windows(&mut p);
    let buckets = (crate::nat::NAT_MAX_FLOWS as u64 + 1).next_power_of_two();
    let state = crate::nat::FLOW_STATE_BYTES as u64;

    let _ = p.load(pkt, Operand::Imm(0), 64, 180);
    let _ = p.load(pkt, Operand::Imm(64), 64, 80);
    let hash = p.havoc(0, u64::MAX, Taint::PACKET, 0);
    let slot = p.modulo(Operand::Reg(hash), buckets, 0);
    let bucket_off = p.arith(Operand::Imm(0), Operand::Reg(slot), state, 0);
    let _ = p.load(heap, Operand::Reg(bucket_off), 240, 220);

    let hit = p.add_block();
    let miss = p.add_block();
    let rewrite = p.add_block();
    p.terminate(Terminator::Branch(vec![hit, miss]));

    p.select(hit);
    let count_off = p.arith(Operand::Reg(bucket_off), Operand::Imm(64), 1, 0);
    p.store(heap, Operand::Reg(count_off), Operand::Reg(hash), 8, 40);
    p.terminate(Terminator::Jump(rewrite));

    p.select(miss);
    p.store(heap, Operand::Reg(bucket_off), Operand::Reg(hash), 240, 80);
    // Reverse map: allocated port (internal state) indexes a side table.
    let port = p.havoc(0, u64::from(u16::MAX) - 1, Taint::STATE, 0);
    let rev_off = p.arith(Operand::Imm(0x2_000_000), Operand::Reg(port), 32, 0);
    p.store(heap, Operand::Reg(rev_off), Operand::Reg(hash), 32, 30);
    p.terminate(Terminator::Jump(rewrite));

    p.select(rewrite);
    p.store(pkt, Operand::Imm(12), Operand::Reg(hash), 4, 90);
    p.store(pkt, Operand::Imm(34), Operand::Reg(hash), 2, 60);
    p.emit(Operand::Reg(hash), 0);
    p.finish()
}

/// LB (Maglev): header parse, connection-tracking probe, and on a miss
/// one lookup-table load plus the tracking insert.
pub fn maglev_ir(nf: &MaglevNf) -> NfProgram {
    let mut p = ProgramBuilder::new("LB");
    let (pkt, data, heap) = declare_windows(&mut p);
    let ct_buckets = 65_536u64;
    let table_slots = nf.table().len() as u64;

    let _ = p.load(pkt, Operand::Imm(0), 64, 180);
    let _ = p.load(pkt, Operand::Imm(64), 64, 80);
    let hash = p.havoc(0, u64::MAX, Taint::PACKET, 0);
    let ct_slot = p.modulo(Operand::Reg(hash), ct_buckets, 0);
    let ct_off = p.arith(Operand::Imm(0), Operand::Reg(ct_slot), 40, 0);
    let _ = p.load(heap, Operand::Reg(ct_off), 40, 200);

    let miss = p.add_block();
    let done = p.add_block();
    p.terminate(Terminator::Branch(vec![done, miss]));

    p.select(miss);
    let slot = p.modulo(Operand::Reg(hash), table_slots, 0);
    let slot_off = p.arith(Operand::Imm(0), Operand::Reg(slot), 4, 0);
    let backend = p.load(data, Operand::Reg(slot_off), 4, 60);
    p.store(heap, Operand::Reg(ct_off), Operand::Reg(backend), 40, 40);
    p.terminate(Terminator::Jump(done));

    p.select(done);
    p.emit(Operand::Reg(hash), 0);
    p.finish()
}

/// LPM (DIR-24-8): header load, the tbl24 probe indexed by the top 24
/// destination bits, and for extended entries one tbl8 probe.
pub fn lpm_ir(nf: &LpmNf) -> NfProgram {
    let mut p = ProgramBuilder::new("LPM");
    let (pkt, _, heap) = declare_windows(&mut p);
    let tbl8_entries = (nf.table().tbl8_segments() as u64 * 256).max(1);

    let _ = p.load(pkt, Operand::Imm(0), 64, 150);
    let idx24 = p.havoc(0, (1 << 24) - 1, Taint::PACKET, 0);
    let off24 = p.arith(Operand::Imm(0), Operand::Reg(idx24), 4, 0);
    let _ = p.load(heap, Operand::Reg(off24), 4, 80);

    let tbl8 = p.add_block();
    let done = p.add_block();
    p.terminate(Terminator::Branch(vec![done, tbl8]));

    p.select(tbl8);
    // Segment index comes from the tbl24 entry (state) and the low
    // address byte (packet).
    let idx8 = p.havoc(0, tbl8_entries - 1, Taint::PACKET.union(Taint::STATE), 0);
    let off8 = p.arith(Operand::Imm(0x400_0000), Operand::Reg(idx8), 4, 0);
    let _ = p.load(heap, Operand::Reg(off8), 4, 40);
    p.terminate(Terminator::Jump(done));

    p.select(done);
    p.emit(Operand::Imm(0), 0);
    p.finish()
}

/// Monitor: header parse plus one counter-slot probe and update. The map
/// grows by doubling, so the slot range is bounded by the region's
/// capacity rather than the current bucket count.
pub fn monitor_ir(nf: &MonitorNf) -> NfProgram {
    let _ = nf;
    let mut p = ProgramBuilder::new("Mon");
    let (pkt, _, heap) = declare_windows(&mut p);
    let (_, heap_len) = heap_window();
    let cap_slots = heap_len / crate::monitor::SLOT_BYTES;

    let _ = p.load(pkt, Operand::Imm(0), 64, 150);
    let _ = p.load(pkt, Operand::Imm(64), 64, 70);
    let hash = p.havoc(0, u64::MAX, Taint::PACKET, 0);
    let slot = p.modulo(Operand::Reg(hash), cap_slots, 0);
    let off = p.arith(
        Operand::Imm(0),
        Operand::Reg(slot),
        crate::monitor::SLOT_BYTES,
        0,
    );
    let _ = p.load(heap, Operand::Reg(off), 32, 200);
    p.store(heap, Operand::Reg(off), Operand::Reg(hash), 32, 30);
    p.emit(Operand::Reg(hash), 0);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{NfKind, RecordingSink};
    use snic_analyze::analyze;
    use snic_types::packet::PacketBuilder;
    use snic_types::{Packet, Protocol};

    fn small_nf(kind: NfKind) -> Box<dyn NetworkFunction> {
        match kind {
            // DPI's default 33k-pattern build is slow; the small build
            // exercises the same lowering.
            NfKind::Dpi => Box::new(DpiNf::with_small(7)),
            other => crate::build(other, 7),
        }
    }

    fn traffic() -> Vec<Packet> {
        (0..40u32)
            .map(|i| {
                PacketBuilder::new(
                    0x0a00_0000 | i,
                    0xc633_0000 | (i * 7),
                    if i % 3 == 0 {
                        Protocol::Udp
                    } else {
                        Protocol::Tcp
                    },
                    (1024 + i * 13) as u16,
                    if i % 2 == 0 { 80 } else { 443 },
                )
                .payload(format!("payload {i} abc/def.{i}").into_bytes())
                .build()
            })
            .collect()
    }

    #[test]
    fn all_six_nfs_analyze_clean() {
        for kind in NfKind::ALL {
            let nf = small_nf(kind);
            let la = launch_analysis(nf.as_ref()).expect("paper NFs have lowerings");
            let report = analyze(&la.program, &la.manifest);
            assert!(report.is_clean(), "{kind:?}:\n{report}");
            assert!(report.certificate.is_some());
        }
    }

    #[test]
    fn recorded_accesses_stay_inside_declared_regions() {
        for kind in NfKind::ALL {
            let mut nf = small_nf(kind);
            let program = nf.dataflow_ir().expect("lowering");
            let stream = crate::record_stream(nf.as_mut(), &traffic());
            assert!(!stream.is_empty(), "{kind:?} produced no accesses");
            for a in &stream {
                let covered = program
                    .regions
                    .iter()
                    .any(|r| a.addr >= r.base && a.addr < r.base + r.len);
                assert!(
                    covered,
                    "{kind:?}: access {:#x} outside declared regions",
                    a.addr
                );
            }
        }
    }

    #[test]
    fn per_packet_insns_stay_under_proven_ceiling() {
        for kind in NfKind::ALL {
            let mut nf = small_nf(kind);
            let la = launch_analysis(nf.as_ref()).unwrap();
            let ceiling = analyze(&la.program, &la.manifest)
                .insn_ceiling
                .expect("ceiling");
            for pkt in traffic() {
                let mut sink = RecordingSink::new();
                let _ = nf.process(&pkt, &mut sink);
                let spent: u64 = sink.accesses().iter().map(|a| u64::from(a.insns)).sum();
                assert!(
                    spent <= ceiling,
                    "{kind:?}: spent {spent} insns > proven ceiling {ceiling}"
                );
            }
        }
    }

    #[test]
    fn ceilings_fit_admission_limits_with_paper_configs() {
        // The per-kind admission limits must hold at paper scale, not
        // just the small test builds (DPI checked via its small build's
        // identical depth bound: synth patterns are 4-30 bytes at every
        // scale).
        for kind in NfKind::ALL {
            let nf = small_nf(kind);
            let la = launch_analysis(nf.as_ref()).unwrap();
            let report = analyze(&la.program, &la.manifest);
            let ceiling = report.insn_ceiling.expect("ceiling");
            assert!(
                ceiling <= la.manifest.max_insns_per_packet,
                "{kind:?}: ceiling {ceiling} exceeds limit {}",
                la.manifest.max_insns_per_packet
            );
        }
    }

    #[test]
    fn ir_digest_tracks_nf_configuration() {
        let small = DpiNf::with_small(1);
        let smaller = DpiNf::new(&crate::dpi::synth_patterns(100, 1));
        assert_ne!(
            small.dataflow_ir().unwrap().digest(),
            smaller.dataflow_ir().unwrap().digest(),
            "different automata must change the IR digest"
        );
        let fw_a = FirewallNf::with_defaults(1);
        let fw_b = FirewallNf::with_defaults(2);
        assert_eq!(
            fw_a.dataflow_ir().unwrap().digest(),
            fw_b.dataflow_ir().unwrap().digest(),
            "same shape, same digest regardless of rule contents"
        );
    }

    #[test]
    fn sketch_monitor_has_no_lowering() {
        let sk = crate::sketch::SketchMonitor::with_defaults(1);
        assert!(launch_analysis(&sk).is_none());
    }
}
