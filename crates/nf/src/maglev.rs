//! Maglev consistent-hashing load balancer (LB).
//!
//! §5.1: "Google's software load balancer called Maglev. This function
//! uses consistent hashing to distribute flows." This is the real Maglev
//! table-population algorithm (Eisenbud et al., NSDI '16 §3.4): each
//! backend has a pseudo-random permutation of table slots derived from
//! `offset`/`skip`; backends take turns claiming their next unclaimed
//! slot until the table is full. Connection tracking pins in-flight flows
//! to their original backend across backend set changes.

use snic_types::{ByteSize, FiveTuple, Packet};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::firewall::DetHashMap;
use crate::profile::{hashmap_bytes, paper_profile, vec_bytes, MemoryProfile};

/// The paper-scale lookup-table size (Maglev uses a prime; 65,537 is the
/// classic "small" configuration from the Maglev paper).
pub const DEFAULT_TABLE_SIZE: usize = 65_537;

/// FNV-1a over a byte slice with a salt, used for offset/skip derivation.
fn fnv1a(data: &[u8], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build the Maglev lookup table for `backends` names over `size` slots.
///
/// # Panics
///
/// Panics if `backends` is empty or `size == 0`.
pub fn build_table(backends: &[String], size: usize) -> Vec<u32> {
    assert!(!backends.is_empty(), "Maglev needs at least one backend");
    assert!(size > 0, "Maglev table must be non-empty");
    let n = backends.len();
    let m = size as u64;
    // Permutation parameters per backend.
    let params: Vec<(u64, u64)> = backends
        .iter()
        .map(|b| {
            let offset = fnv1a(b.as_bytes(), 0x9e37) % m;
            let skip = fnv1a(b.as_bytes(), 0x85eb) % (m - 1).max(1) + 1;
            (offset, skip)
        })
        .collect();
    let mut next = vec![0u64; n];
    let mut entry = vec![u32::MAX; size];
    let mut filled = 0usize;
    while filled < size {
        for (i, &(offset, skip)) in params.iter().enumerate() {
            // Find backend i's next unclaimed slot in its permutation.
            let mut c = (offset + next[i] * skip) % m;
            while entry[c as usize] != u32::MAX {
                next[i] += 1;
                c = (offset + next[i] * skip) % m;
            }
            entry[c as usize] = i as u32;
            next[i] += 1;
            filled += 1;
            if filled == size {
                break;
            }
        }
    }
    entry
}

/// The Maglev load-balancer NF.
#[derive(Debug)]
pub struct MaglevNf {
    backends: Vec<String>,
    table: Vec<u32>,
    /// Connection tracking: flows pinned to their original backend.
    conn_track: DetHashMap<FiveTuple, u32>,
    steered: u64,
}

impl MaglevNf {
    /// Build with explicit backends and table size.
    pub fn new(backends: Vec<String>, table_size: usize) -> MaglevNf {
        let table = build_table(&backends, table_size);
        MaglevNf {
            backends,
            table,
            conn_track: DetHashMap::default(),
            steered: 0,
        }
    }

    /// Paper-scale defaults: 100 backends, 65,537-slot table.
    pub fn with_defaults(seed: u64) -> MaglevNf {
        let backends: Vec<String> = (0..100).map(|i| format!("backend-{seed}-{i}")).collect();
        MaglevNf::new(backends, DEFAULT_TABLE_SIZE)
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The lookup table (for distribution tests).
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Backend index a flow hashes to (ignoring connection tracking).
    pub fn table_lookup(&self, ft: &FiveTuple) -> u32 {
        self.table[(ft.stable_hash() % self.table.len() as u64) as usize]
    }

    /// Packets steered so far.
    pub fn steered(&self) -> u64 {
        self.steered
    }

    /// Replace the backend set (simulating a backend failure/addition) and
    /// rebuild the table. Tracked connections keep their old backend.
    pub fn set_backends(&mut self, backends: Vec<String>) {
        let size = self.table.len();
        self.table = build_table(&backends, size);
        self.backends = backends;
    }
}

impl NetworkFunction for MaglevNf {
    fn kind(&self) -> NfKind {
        NfKind::LoadBalancer
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 180);
        sink.touch(layout::PKTBUF_BASE + 64, AccessKind::Load, 80);
        let Ok(ft) = FiveTuple::from_packet(pkt) else {
            return Verdict::Drop;
        };

        // Connection-tracking probe.
        let ct_buckets = 65_536u64;
        let ct_addr = layout::HEAP_BASE + (ft.stable_hash() % ct_buckets) * 40;
        sink.touch(ct_addr, AccessKind::Load, 200);

        let backend = if let Some(&b) = self.conn_track.get(&ft) {
            b
        } else {
            // Table lookup: one load into the (static) lookup table.
            let slot = ft.stable_hash() % self.table.len() as u64;
            sink.touch(layout::DATA_BASE + slot * 4, AccessKind::Load, 60);
            let b = self.table[slot as usize];
            self.conn_track.insert(ft, b);
            sink.touch(ct_addr, AccessKind::Store, 40);
            b
        };
        self.steered += 1;
        Verdict::Steer(backend)
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::maglev_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        let heap =
            vec_bytes(self.table.len(), 4) + hashmap_bytes(self.conn_track.len().max(1024), 40);
        MemoryProfile {
            heap_stack: ByteSize(heap),
            ..paper_profile(NfKind::LoadBalancer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::NullSink;
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn backends(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("b{i}")).collect()
    }

    fn pkt(i: u32) -> Packet {
        PacketBuilder::new(i, 99, Protocol::Tcp, (i % 60_000 + 1024) as u16, 443).build()
    }

    #[test]
    fn table_fully_populated() {
        let t = build_table(&backends(7), 1009);
        assert_eq!(t.len(), 1009);
        assert!(t.iter().all(|&e| e < 7));
    }

    #[test]
    fn table_is_balanced() {
        // Maglev's guarantee: max/min slot counts differ by at most ~1%
        // for M >> N; with small M allow a loose bound.
        let n = 10;
        let t = build_table(&backends(n), 10_007);
        let mut counts = vec![0u64; n];
        for &e in &t {
            counts[e as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "imbalance {max}/{min}");
    }

    #[test]
    fn table_is_deterministic() {
        assert_eq!(
            build_table(&backends(5), 101),
            build_table(&backends(5), 101)
        );
    }

    #[test]
    fn single_backend_gets_everything() {
        let t = build_table(&backends(1), 101);
        assert!(t.iter().all(|&e| e == 0));
    }

    #[test]
    fn consistent_hashing_minimal_disruption() {
        // Removing one backend should remap only ~1/N of slots among the
        // survivors (plus all of the removed backend's slots).
        let before = build_table(&backends(10), 10_007);
        let mut nine = backends(10);
        nine.remove(9);
        let after = build_table(&nine, 10_007);
        let moved_survivors = before
            .iter()
            .zip(after.iter())
            .filter(|&(&b, &a)| b != 9 && b != a)
            .count();
        let survivor_slots = before.iter().filter(|&&b| b != 9).count();
        let moved_frac = moved_survivors as f64 / survivor_slots as f64;
        assert!(
            moved_frac < 0.25,
            "consistent hashing moved {moved_frac:.2} of slots"
        );
    }

    #[test]
    fn flows_steered_consistently() {
        let mut lb = MaglevNf::new(backends(8), 1009);
        let a = lb.process(&pkt(1), &mut NullSink);
        let b = lb.process(&pkt(1), &mut NullSink);
        assert_eq!(a, b);
        assert_eq!(lb.steered(), 2);
    }

    #[test]
    fn connection_tracking_pins_flows_across_rebuild() {
        let mut lb = MaglevNf::new(backends(8), 1009);
        // Establish 200 flows.
        let picks: Vec<Verdict> = (0..200)
            .map(|i| lb.process(&pkt(i), &mut NullSink))
            .collect();
        // Remove a backend; tracked flows must keep their assignment.
        lb.set_backends(backends(7));
        for (i, old) in picks.iter().enumerate() {
            let new = lb.process(&pkt(i as u32), &mut NullSink);
            assert_eq!(*old, new, "flow {i} moved despite connection tracking");
        }
    }

    #[test]
    fn distribution_over_flows_roughly_uniform() {
        let mut lb = MaglevNf::new(backends(4), 10_007);
        let mut counts = [0u64; 4];
        for i in 0..8000 {
            match lb.process(&pkt(i), &mut NullSink) {
                Verdict::Steer(b) => counts[b as usize] += 1,
                other => panic!("unexpected verdict {other:?}"),
            }
        }
        for &c in &counts {
            assert!((1400..2600).contains(&c), "skewed distribution: {counts:?}");
        }
    }

    #[test]
    fn malformed_packet_dropped() {
        let mut lb = MaglevNf::new(backends(2), 101);
        let junk = Packet::from_bytes(bytes::Bytes::from_static(&[1u8; 8]));
        assert_eq!(lb.process(&junk, &mut NullSink), Verdict::Drop);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_panics() {
        let _ = build_table(&[], 101);
    }
}
