//! Deep packet inspection (DPI) via Aho-Corasick multi-pattern matching.
//!
//! §5.1: "A pattern-matching application that uses the Aho-Corasick
//! algorithm ... We use 33,471 patterns extracted from six open source
//! rulesets." The rulesets are not redistributable, so patterns are
//! synthesized with a realistic length distribution; the automaton itself
//! is a complete from-scratch Aho-Corasick implementation (trie + BFS
//! failure links + dictionary suffix links).
//!
//! The matcher walk doubles as the DPI reference stream: each visited
//! node reports a load of its node record, giving the uarch engine the
//! true locality of the automaton (hot shallow nodes, cold deep nodes).

use rand::Rng;
use rand::SeedableRng;
use snic_types::{ByteSize, Packet};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::profile::{paper_profile, MemoryProfile};

/// Modeled bytes per automaton node record (for stream addresses and the
/// memory profile): transitions, failure link, dictionary link, output
/// count.
pub(crate) const NODE_BYTES: u64 = 96;

/// One node of the automaton.
#[derive(Debug, Clone)]
struct Node {
    /// Sorted `(byte, next)` transitions.
    children: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Dictionary suffix link (nearest ancestor-by-fail that is a match).
    dict: u32,
    /// Number of patterns ending exactly here.
    matches_here: u32,
}

impl Node {
    fn new() -> Node {
        Node {
            children: Vec::new(),
            fail: 0,
            dict: 0,
            matches_here: 0,
        }
    }

    fn child(&self, b: u8) -> Option<u32> {
        self.children
            .binary_search_by_key(&b, |&(c, _)| c)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// A built Aho-Corasick automaton.
#[derive(Debug)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_count: usize,
    /// Trie depth = longest compiled pattern; bounds every failure-link
    /// and dictionary-link walk (links strictly decrease depth).
    max_depth: usize,
}

impl AhoCorasick {
    /// Build the automaton from `patterns`. Empty patterns are ignored.
    pub fn build(patterns: &[Vec<u8>]) -> AhoCorasick {
        let mut nodes = vec![Node::new()];
        let mut pattern_count = 0;
        let mut max_depth = 0usize;
        // Phase 1: trie.
        for pat in patterns {
            if pat.is_empty() {
                continue;
            }
            pattern_count += 1;
            max_depth = max_depth.max(pat.len());
            let mut cur = 0u32;
            for &b in pat {
                cur = match nodes[cur as usize].child(b) {
                    Some(next) => next,
                    None => {
                        let next = nodes.len() as u32;
                        nodes.push(Node::new());
                        let pos = nodes[cur as usize]
                            .children
                            .binary_search_by_key(&b, |&(c, _)| c)
                            .unwrap_err();
                        nodes[cur as usize].children.insert(pos, (b, next));
                        next
                    }
                };
            }
            nodes[cur as usize].matches_here += 1;
        }
        // Phase 2: BFS failure + dictionary links.
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].children.clone();
        for &(_, c) in &root_children {
            nodes[c as usize].fail = 0;
            queue.push_back(c);
        }
        while let Some(u) = queue.pop_front() {
            let u_fail = nodes[u as usize].fail;
            nodes[u as usize].dict = if nodes[u_fail as usize].matches_here > 0 {
                u_fail
            } else {
                nodes[u_fail as usize].dict
            };
            let children: Vec<(u8, u32)> = nodes[u as usize].children.clone();
            for (b, v) in children {
                // Find fail(v): deepest proper suffix with a b-transition.
                let mut f = u_fail;
                let fv = loop {
                    if let Some(next) = nodes[f as usize].child(b) {
                        break next;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = fv;
                queue.push_back(v);
            }
        }
        AhoCorasick {
            nodes,
            pattern_count,
            max_depth,
        }
    }

    /// Number of automaton states.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Trie depth (longest compiled pattern), bounding link walks.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Modeled graph size in bytes (what the accelerator profile reports).
    pub fn graph_bytes(&self) -> ByteSize {
        ByteSize(self.nodes.len() as u64 * NODE_BYTES)
    }

    /// Scan `haystack`, returning the total number of pattern occurrences.
    /// Every node visit reports a load to `sink`.
    pub fn scan(&self, haystack: &[u8], sink: &mut dyn AccessSink) -> u64 {
        let mut total = 0u64;
        let mut cur = 0u32;
        for &b in haystack {
            // Follow failure links until a transition exists.
            loop {
                sink.touch(
                    layout::HEAP_BASE + u64::from(cur) * NODE_BYTES,
                    AccessKind::Load,
                    6,
                );
                if let Some(next) = self.nodes[cur as usize].child(b) {
                    cur = next;
                    break;
                }
                if cur == 0 {
                    break;
                }
                cur = self.nodes[cur as usize].fail;
            }
            // Count matches ending at this position via dictionary links.
            let mut m = cur;
            while m != 0 {
                let node = &self.nodes[m as usize];
                if node.matches_here > 0 {
                    total += u64::from(node.matches_here);
                    sink.touch(
                        layout::HEAP_BASE + u64::from(m) * NODE_BYTES,
                        AccessKind::Load,
                        4,
                    );
                }
                m = node.dict;
            }
        }
        total
    }
}

/// Synthesize a ruleset-shaped pattern list: mostly short ASCII tokens
/// with a heavy tail of longer signatures (Snort content strings are
/// typically 4–30 bytes).
pub fn synth_patterns(count: usize, seed: u64) -> Vec<Vec<u8>> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-%";
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    while out.len() < count {
        let len = 4 + (rng.random::<f64>().powi(2) * 26.0) as usize;
        let pat: Vec<u8> = (0..len)
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
            .collect();
        if seen.insert(pat.clone()) {
            out.push(pat);
        }
    }
    out
}

/// The DPI network function.
#[derive(Debug)]
pub struct DpiNf {
    automaton: AhoCorasick,
    total_matches: u64,
    packets: u64,
}

impl DpiNf {
    /// Build from an explicit pattern list.
    pub fn new(patterns: &[Vec<u8>]) -> DpiNf {
        DpiNf {
            automaton: AhoCorasick::build(patterns),
            total_matches: 0,
            packets: 0,
        }
    }

    /// The paper's configuration: 33,471 patterns.
    pub fn with_defaults(seed: u64) -> DpiNf {
        DpiNf::new(&synth_patterns(33_471, seed))
    }

    /// Smaller build for quick tests and examples.
    pub fn with_small(seed: u64) -> DpiNf {
        DpiNf::new(&synth_patterns(2_000, seed))
    }

    /// Total signature occurrences seen.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &AhoCorasick {
        &self.automaton
    }
}

impl NetworkFunction for DpiNf {
    fn kind(&self) -> NfKind {
        NfKind::Dpi
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        self.packets += 1;
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 120);
        let payload = pkt.payload();
        // Payload is streamed from the packet buffer: one load per line.
        for line in 0..(payload.len() as u64).div_ceil(64) {
            sink.touch(layout::PKTBUF_BASE + 64 + line * 64, AccessKind::Load, 3);
        }
        let matches = self.automaton.scan(payload, sink);
        self.total_matches += matches;
        Verdict::Matched(matches as u32)
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::dpi_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        MemoryProfile {
            heap_stack: self.automaton.graph_bytes(),
            ..paper_profile(NfKind::Dpi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{NullSink, RecordingSink};
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn pats(list: &[&str]) -> Vec<Vec<u8>> {
        list.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn count(ac: &AhoCorasick, hay: &str) -> u64 {
        ac.scan(hay.as_bytes(), &mut NullSink)
    }

    #[test]
    fn classic_aho_corasick_example() {
        // The canonical {he, she, his, hers} over "ushers": she, he, hers.
        let ac = AhoCorasick::build(&pats(&["he", "she", "his", "hers"]));
        assert_eq!(count(&ac, "ushers"), 3);
    }

    #[test]
    fn overlapping_matches_counted() {
        let ac = AhoCorasick::build(&pats(&["aa"]));
        assert_eq!(count(&ac, "aaaa"), 3);
    }

    #[test]
    fn duplicate_patterns_count_twice() {
        let ac = AhoCorasick::build(&pats(&["ab", "ab"]));
        assert_eq!(count(&ac, "ab"), 2);
    }

    #[test]
    fn substring_patterns_via_dict_links() {
        let ac = AhoCorasick::build(&pats(&["abcde", "cd", "e"]));
        assert_eq!(count(&ac, "abcde"), 3);
    }

    #[test]
    fn no_match_in_clean_text() {
        let ac = AhoCorasick::build(&pats(&["virus", "exploit"]));
        assert_eq!(count(&ac, "perfectly clean traffic"), 0);
    }

    #[test]
    fn empty_haystack_and_patterns() {
        let ac = AhoCorasick::build(&pats(&["x", ""]));
        assert_eq!(ac.pattern_count(), 1, "empty pattern ignored");
        assert_eq!(count(&ac, ""), 0);
    }

    #[test]
    fn matches_agree_with_naive_search() {
        let patterns = synth_patterns(50, 3);
        let ac = AhoCorasick::build(&patterns);
        let mut gen = super::profile_test_support::lcg(77);
        let hay: Vec<u8> = (0..4000)
            .map(|_| b"abcdef0123/._-%"[gen() as usize % 15])
            .collect();
        let naive: u64 = patterns
            .iter()
            .map(|p| hay.windows(p.len()).filter(|w| w == &p.as_slice()).count() as u64)
            .sum();
        assert_eq!(ac.scan(&hay, &mut NullSink), naive);
    }

    #[test]
    fn scan_touches_graph_addresses() {
        let ac = AhoCorasick::build(&pats(&["attack"]));
        let mut sink = RecordingSink::new();
        ac.scan(b"an attack string", &mut sink);
        assert!(!sink.accesses().is_empty());
        assert!(sink.accesses().iter().all(|a| a.addr >= layout::HEAP_BASE));
    }

    #[test]
    fn nf_counts_payload_matches() {
        let mut nf = DpiNf::new(&pats(&["malware"]));
        let p = PacketBuilder::new(1, 2, Protocol::Tcp, 1, 2)
            .payload(b"download malware here; malware!".to_vec())
            .build();
        match nf.process(&p, &mut NullSink) {
            Verdict::Matched(2) => {}
            other => panic!("expected Matched(2), got {other:?}"),
        }
        assert_eq!(nf.total_matches(), 2);
    }

    #[test]
    fn synth_patterns_distinct_and_sized() {
        let p = synth_patterns(500, 9);
        assert_eq!(p.len(), 500);
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(p.iter().all(|x| (4..=30).contains(&x.len())));
    }

    #[test]
    fn graph_size_scales_with_patterns() {
        let small = DpiNf::new(&synth_patterns(100, 1));
        let big = DpiNf::new(&synth_patterns(1000, 1));
        assert!(big.automaton().graph_bytes() > small.automaton().graph_bytes());
        assert!(big.automaton().node_count() > small.automaton().node_count());
    }
}

#[cfg(test)]
pub(crate) mod profile_test_support {
    /// Tiny deterministic byte generator for tests.
    pub fn lcg(seed: u64) -> impl FnMut() -> u8 {
        let mut s = seed;
        move || {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (s >> 33) as u8
        }
    }
}
