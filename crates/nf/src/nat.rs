//! Network address translation (NAT), derived from MazuNAT's behaviour.
//!
//! §5.1: "A network address translator derived from MazuNAT. The NAT uses
//! a HashMap to cache frequently-used translations. The cache only records
//! the translation results of the first 65,535 flows that can be
//! successfully assigned a distinct port number."
//!
//! Outbound packets get their source rewritten to the NAT's external
//! address and an allocated external port; the IPv4 checksum is
//! recomputed. A reverse map translates return traffic. Per-flow state
//! mirrors MazuNAT's translation-rule records (full rule, timestamps,
//! counters), which is what makes NAT's heap footprint large in Table 6.

use bytes::Bytes;
use snic_types::packet::{EthernetHeader, Ipv4Header};
use snic_types::{ByteSize, FiveTuple, Packet};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::firewall::DetHashMap;
use crate::profile::{hashmap_bytes, paper_profile, MemoryProfile};

/// Maximum flows that can receive a distinct external port.
pub const NAT_MAX_FLOWS: usize = 65_535;

/// Modeled bytes of per-flow translation state (MazuNAT keeps the full
/// rule plus timestamps and counters on both directions).
pub(crate) const FLOW_STATE_BYTES: usize = 240;

/// Per-flow translation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NatEntry {
    external_port: u16,
    /// Packets translated on this flow.
    packets: u64,
}

/// The NAT network function.
#[derive(Debug)]
pub struct NatNf {
    external_ip: u32,
    forward: DetHashMap<FiveTuple, NatEntry>,
    /// Reverse map: external port → original flow.
    reverse: DetHashMap<u16, FiveTuple>,
    next_port: u16,
    translated: u64,
    untranslated: u64,
}

impl NatNf {
    /// Create a NAT with the given external address.
    pub fn new(external_ip: u32) -> NatNf {
        NatNf {
            external_ip,
            forward: DetHashMap::default(),
            reverse: DetHashMap::default(),
            next_port: 1024,
            translated: 0,
            untranslated: 0,
        }
    }

    /// Paper defaults (`seed` kept for interface symmetry; NAT state is
    /// built at runtime from the traffic itself).
    pub fn with_defaults(_seed: u64) -> NatNf {
        NatNf::new(0xc0a8_0001)
    }

    /// Flows currently holding a translation.
    pub fn active_flows(&self) -> usize {
        self.forward.len()
    }

    /// Packets successfully translated.
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Packets forwarded without translation (port space exhausted).
    pub fn untranslated(&self) -> u64 {
        self.untranslated
    }

    /// The translation for `flow`, if one exists.
    pub fn lookup(&self, flow: &FiveTuple) -> Option<u16> {
        self.forward.get(flow).map(|e| e.external_port)
    }

    fn bucket_addr(&self, ft: &FiveTuple) -> u64 {
        let buckets = (NAT_MAX_FLOWS as u64 + 1).next_power_of_two();
        layout::HEAP_BASE + (ft.stable_hash() % buckets) * FLOW_STATE_BYTES as u64
    }

    fn allocate_port(&mut self) -> Option<u16> {
        if self.forward.len() >= NAT_MAX_FLOWS || self.next_port == u16::MAX {
            return None;
        }
        let p = self.next_port;
        self.next_port += 1;
        Some(p)
    }

    /// Rewrite the packet's source to `(external_ip, port)`.
    fn rewrite(&self, pkt: &Packet, port: u16) -> Option<Packet> {
        let ip = pkt.ipv4().ok()?;
        let mut raw = pkt.data.to_vec();
        // Source IP at IPv4 header offset 12.
        let ip_off = EthernetHeader::LEN;
        raw[ip_off + 12..ip_off + 16].copy_from_slice(&self.external_ip.to_be_bytes());
        // Source port is the first L4 field for both TCP and UDP.
        let l4 = ip_off + Ipv4Header::LEN;
        if raw.len() >= l4 + 2 {
            raw[l4..l4 + 2].copy_from_slice(&port.to_be_bytes());
        }
        // Recompute the IPv4 header checksum.
        let fixed = Ipv4Header {
            src: self.external_ip,
            checksum: 0,
            ..ip
        };
        let csum = fixed.compute_checksum();
        raw[ip_off + 10..ip_off + 12].copy_from_slice(&csum.to_be_bytes());
        Some(Packet::from_bytes(Bytes::from(raw)))
    }
}

impl NetworkFunction for NatNf {
    fn kind(&self) -> NfKind {
        NfKind::Nat
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 180);
        sink.touch(layout::PKTBUF_BASE + 64, AccessKind::Load, 80);
        let Ok(ft) = FiveTuple::from_packet(pkt) else {
            return Verdict::Drop;
        };

        // Translation lookup: hash + bucket probe, then the flow record.
        let bucket = self.bucket_addr(&ft);
        sink.touch(bucket, AccessKind::Load, 220);
        let port = if let Some(entry) = self.forward.get_mut(&ft) {
            entry.packets += 1;
            sink.touch(bucket + 64, AccessKind::Store, 40);
            Some(entry.external_port)
        } else {
            match self.allocate_port() {
                Some(p) => {
                    self.forward.insert(
                        ft,
                        NatEntry {
                            external_port: p,
                            packets: 1,
                        },
                    );
                    self.reverse.insert(p, ft);
                    // New-entry write plus reverse-map write.
                    sink.touch(bucket, AccessKind::Store, 80);
                    sink.touch(
                        layout::HEAP_BASE + 0x2_000_000 + u64::from(p) * 32,
                        AccessKind::Store,
                        30,
                    );
                    Some(p)
                }
                None => None,
            }
        };

        match port {
            Some(p) => {
                // Header rewrite: two stores into the packet buffer.
                sink.touch(layout::PKTBUF_BASE + 12, AccessKind::Store, 90);
                sink.touch(layout::PKTBUF_BASE + 34, AccessKind::Store, 60);
                match self.rewrite(pkt, p) {
                    Some(out) => {
                        self.translated += 1;
                        Verdict::Rewritten(out)
                    }
                    None => Verdict::Drop,
                }
            }
            None => {
                // Port space exhausted: MazuNAT forwards unmodified.
                self.untranslated += 1;
                Verdict::Forward
            }
        }
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::nat_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        let heap =
            hashmap_bytes(NAT_MAX_FLOWS, FLOW_STATE_BYTES) + hashmap_bytes(NAT_MAX_FLOWS, 24);
        MemoryProfile {
            heap_stack: ByteSize(heap),
            ..paper_profile(NfKind::Nat)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{NullSink, RecordingSink};
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn pkt(src: u32, sport: u16) -> Packet {
        PacketBuilder::new(src, 0xc633_0001, Protocol::Tcp, sport, 80)
            .payload(b"data".to_vec())
            .build()
    }

    fn rewritten(v: Verdict) -> Packet {
        match v {
            Verdict::Rewritten(p) => p,
            other => panic!("expected Rewritten, got {other:?}"),
        }
    }

    #[test]
    fn rewrites_source_ip_and_port() {
        let mut nat = NatNf::new(0x0909_0909);
        let out = rewritten(nat.process(&pkt(0x0a00_0001, 5555), &mut NullSink));
        let ip = out.ipv4().unwrap();
        assert_eq!(ip.src, 0x0909_0909);
        assert_eq!(ip.dst, 0xc633_0001, "destination untouched");
        let tcp = out.tcp().unwrap();
        assert_eq!(tcp.src_port, 1024, "first allocated port");
        assert_eq!(tcp.dst_port, 80);
    }

    #[test]
    fn rewritten_checksum_is_valid() {
        let mut nat = NatNf::with_defaults(0);
        let out = rewritten(nat.process(&pkt(1, 1000), &mut NullSink));
        assert!(out.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn same_flow_keeps_same_port() {
        let mut nat = NatNf::with_defaults(0);
        let a = rewritten(nat.process(&pkt(1, 1000), &mut NullSink));
        let b = rewritten(nat.process(&pkt(1, 1000), &mut NullSink));
        assert_eq!(a.tcp().unwrap().src_port, b.tcp().unwrap().src_port);
        assert_eq!(nat.active_flows(), 1);
        assert_eq!(nat.translated(), 2);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = NatNf::with_defaults(0);
        let a = rewritten(nat.process(&pkt(1, 1000), &mut NullSink));
        let b = rewritten(nat.process(&pkt(2, 1000), &mut NullSink));
        assert_ne!(a.tcp().unwrap().src_port, b.tcp().unwrap().src_port);
        assert_eq!(nat.active_flows(), 2);
    }

    #[test]
    fn port_exhaustion_forwards_untranslated() {
        let mut nat = NatNf::with_defaults(0);
        // Exhaust the port space quickly by shrinking it artificially.
        nat.next_port = u16::MAX - 2;
        assert!(matches!(
            nat.process(&pkt(1, 1), &mut NullSink),
            Verdict::Rewritten(_)
        ));
        assert!(matches!(
            nat.process(&pkt(2, 1), &mut NullSink),
            Verdict::Rewritten(_)
        ));
        // next_port is now MAX: no more allocations.
        assert_eq!(nat.process(&pkt(3, 1), &mut NullSink), Verdict::Forward);
        assert_eq!(nat.untranslated(), 1);
    }

    #[test]
    fn payload_survives_rewrite() {
        let mut nat = NatNf::with_defaults(0);
        let out = rewritten(nat.process(&pkt(1, 1000), &mut NullSink));
        assert_eq!(out.payload(), b"data");
    }

    #[test]
    fn malformed_packet_dropped() {
        let mut nat = NatNf::with_defaults(0);
        let junk = Packet::from_bytes(Bytes::from_static(&[0u8; 20]));
        assert_eq!(nat.process(&junk, &mut NullSink), Verdict::Drop);
    }

    #[test]
    fn new_flow_touches_more_than_cached_flow() {
        let mut nat = NatNf::with_defaults(0);
        let mut first = RecordingSink::new();
        let _ = nat.process(&pkt(1, 1000), &mut first);
        let mut second = RecordingSink::new();
        let _ = nat.process(&pkt(1, 1000), &mut second);
        assert!(first.accesses().len() > second.accesses().len());
    }

    #[test]
    fn reverse_map_tracks_allocations() {
        let mut nat = NatNf::with_defaults(0);
        let out = rewritten(nat.process(&pkt(7, 4242), &mut NullSink));
        let ext_port = out.tcp().unwrap().src_port;
        let flow = FiveTuple::from_packet(&pkt(7, 4242)).unwrap();
        assert_eq!(nat.reverse.get(&ext_port), Some(&flow));
        assert_eq!(nat.lookup(&flow), Some(ext_port));
    }

    #[test]
    fn memory_profile_in_paper_range() {
        let nat = NatNf::with_defaults(0);
        let heap = nat.memory_profile().heap_stack.as_mib_f64();
        // Paper: 40.48 MB peak. Same structures, same order of magnitude.
        assert!((10.0..80.0).contains(&heap), "heap = {heap} MiB");
    }
}
