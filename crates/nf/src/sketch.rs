//! Sketch-based flow monitoring (bounded-memory Monitor variant).
//!
//! §4.8 observes that S-NIC's fixed preallocation "may lead to
//! underutilization": the HashMap Monitor must be provisioned for its
//! *peak* (361 MB in Table 6), most of which is HashMap slack. A
//! sketching monitor — in the spirit of UnivMon, which the paper uses
//! for its measurement methodology — bounds memory *by construction*:
//! a count-min sketch plus a small heavy-hitter table give approximate
//! per-flow counts in a few hundred kilobytes, making the NF a perfect
//! fit for S-NIC's launch-time memory reservation (MUR = 100%).
//!
//! Implemented from scratch: count-min with conservative update and a
//! min-heap-free heavy-hitter table using the SpaceSaving eviction rule.

use snic_types::{ByteSize, FiveTuple, Packet};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::firewall::DetHashMap;
use crate::profile::{paper_profile, MemoryProfile};

/// A count-min sketch over flow keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// `depth` rows of `width` counters.
    counters: Vec<u64>,
    width: usize,
    depth: usize,
}

impl CountMinSketch {
    /// Create a sketch with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero width or depth.
    pub fn new(width: usize, depth: usize) -> CountMinSketch {
        assert!(width > 0 && depth > 0, "degenerate sketch");
        CountMinSketch {
            counters: vec![0; width * depth],
            width,
            depth,
        }
    }

    fn index(&self, row: usize, key: &FiveTuple) -> usize {
        // Derive per-row hashes from the stable flow hash by remixing
        // with a row-specific odd multiplier.
        let h = key
            .stable_hash()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15u64.wrapping_add(2 * row as u64 + 1))
            .rotate_left(17 + row as u32);
        row * self.width + (h % self.width as u64) as usize
    }

    /// Increment `key` with *conservative update*: only the minimal
    /// counters grow, which tightens the overestimate.
    pub fn increment(&mut self, key: &FiveTuple) {
        let idxs: Vec<usize> = (0..self.depth).map(|r| self.index(r, key)).collect();
        let current = idxs
            .iter()
            .map(|&i| self.counters[i])
            .min()
            .expect("depth > 0");
        for &i in &idxs {
            if self.counters[i] == current {
                self.counters[i] = current + 1;
            }
        }
    }

    /// Point estimate for `key` (never underestimates).
    pub fn estimate(&self, key: &FiveTuple) -> u64 {
        (0..self.depth)
            .map(|r| self.counters[self.index(r, key)])
            .min()
            .expect("depth > 0")
    }

    /// Resident bytes.
    pub fn bytes(&self) -> ByteSize {
        ByteSize((self.counters.len() * 8) as u64)
    }
}

/// The sketch-based monitor NF.
#[derive(Debug)]
pub struct SketchMonitor {
    sketch: CountMinSketch,
    /// SpaceSaving-style heavy-hitter table: flow → estimated count.
    heavy: DetHashMap<FiveTuple, u64>,
    heavy_capacity: usize,
    packets: u64,
}

impl SketchMonitor {
    /// Create a monitor with a `width`×`depth` sketch and `heavy_capacity`
    /// tracked heavy hitters.
    pub fn new(width: usize, depth: usize, heavy_capacity: usize) -> SketchMonitor {
        assert!(heavy_capacity > 0, "need at least one heavy-hitter slot");
        SketchMonitor {
            sketch: CountMinSketch::new(width, depth),
            heavy: DetHashMap::default(),
            heavy_capacity,
            packets: 0,
        }
    }

    /// Paper-flavoured defaults: ~2 MB of sketch + 4K heavy hitters —
    /// 180x smaller than the HashMap Monitor's Table 6 peak.
    pub fn with_defaults(_seed: u64) -> SketchMonitor {
        SketchMonitor::new(65_536, 4, 4_096)
    }

    /// Observe one flow occurrence.
    pub fn observe(&mut self, flow: FiveTuple, sink: &mut dyn AccessSink) {
        self.packets += 1;
        // Sketch row touches.
        for r in 0..self.sketch.depth {
            let idx = self.sketch.index(r, &flow);
            sink.touch(layout::HEAP_BASE + (idx as u64) * 8, AccessKind::Store, 40);
        }
        self.sketch.increment(&flow);
        let est = self.sketch.estimate(&flow);
        // Heavy-hitter maintenance (SpaceSaving: evict the current
        // minimum when full and the newcomer beats it).
        if self.heavy.contains_key(&flow) || self.heavy.len() < self.heavy_capacity {
            self.heavy.insert(flow, est);
        } else if let Some((&victim, &victim_count)) = self.heavy.iter().min_by_key(|&(_, &c)| c) {
            if est > victim_count {
                self.heavy.remove(&victim);
                self.heavy.insert(flow, est);
            }
        }
        sink.touch(layout::HEAP_BASE + 0x400_0000, AccessKind::Store, 30);
    }

    /// Estimated count for a flow.
    pub fn estimate(&self, flow: &FiveTuple) -> u64 {
        self.sketch.estimate(flow)
    }

    /// The current heavy hitters, most frequent first.
    pub fn heavy_hitters(&self) -> Vec<(FiveTuple, u64)> {
        let mut v: Vec<(FiveTuple, u64)> = self.heavy.iter().map(|(&f, &c)| (f, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Packets observed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total resident bytes — *constant*, which is the point.
    pub fn bytes(&self) -> ByteSize {
        ByteSize(self.sketch.bytes().bytes() + (self.heavy_capacity as u64) * 40)
    }
}

impl NetworkFunction for SketchMonitor {
    fn kind(&self) -> NfKind {
        NfKind::Monitor
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 150);
        let Ok(ft) = FiveTuple::from_packet(pkt) else {
            return Verdict::Drop;
        };
        self.observe(ft, sink);
        Verdict::Forward
    }

    fn memory_profile(&self) -> MemoryProfile {
        MemoryProfile {
            heap_stack: self.bytes(),
            ..paper_profile(NfKind::Monitor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::NullSink;
    use snic_types::Protocol;

    fn flow(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: i,
            dst_ip: !i,
            protocol: Protocol::Udp,
            src_port: 7,
            dst_port: 9,
        }
    }

    #[test]
    fn estimates_never_underestimate() {
        let mut m = SketchMonitor::new(1024, 4, 64);
        for i in 0..200u32 {
            for _ in 0..=(i % 7) {
                m.observe(flow(i), &mut NullSink);
            }
        }
        for i in 0..200u32 {
            let truth = u64::from(i % 7) + 1;
            assert!(m.estimate(&flow(i)) >= truth, "flow {i}");
        }
    }

    #[test]
    fn estimates_are_tight_when_sketch_is_roomy() {
        let mut m = SketchMonitor::new(16_384, 4, 64);
        for i in 0..500u32 {
            m.observe(flow(i), &mut NullSink);
        }
        // With width >> flows, conservative update keeps estimates exact.
        let exact = (0..500u32).filter(|&i| m.estimate(&flow(i)) == 1).count();
        assert!(exact >= 490, "only {exact}/500 exact estimates");
    }

    #[test]
    fn heavy_hitters_surface_the_elephants() {
        let mut m = SketchMonitor::new(8_192, 4, 8);
        // Two elephants among 300 mice.
        for _ in 0..500 {
            m.observe(flow(1_000_001), &mut NullSink);
            m.observe(flow(1_000_002), &mut NullSink);
        }
        for i in 0..300u32 {
            m.observe(flow(i), &mut NullSink);
        }
        let hh = m.heavy_hitters();
        let top2: Vec<FiveTuple> = hh.iter().take(2).map(|&(f, _)| f).collect();
        assert!(top2.contains(&flow(1_000_001)));
        assert!(top2.contains(&flow(1_000_002)));
        assert!(hh[0].1 >= 500);
    }

    #[test]
    fn memory_is_constant_regardless_of_flows() {
        let mut m = SketchMonitor::with_defaults(0);
        let before = m.bytes();
        for i in 0..50_000u32 {
            m.observe(flow(i), &mut NullSink);
        }
        assert_eq!(m.bytes(), before, "sketch memory must not grow");
        assert_eq!(m.packets(), 50_000);
        // Vastly below the HashMap Monitor's Table 6 peak.
        assert!(m.bytes() < ByteSize::mib(4));
    }

    #[test]
    #[should_panic(expected = "degenerate sketch")]
    fn zero_geometry_panics() {
        let _ = CountMinSketch::new(0, 4);
    }
}
