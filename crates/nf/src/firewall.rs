//! Stateful firewall (FW).
//!
//! §5.1: "A stateful firewall that drops packets by scanning a list of
//! rules. Recently-accessed rules are cached in a HashMap ... We limit the
//! cache size to 200,000 entries, which is the cached flow limit in Open
//! vSwitch. The function uses rules from the Emerging Threats site. We
//! configure the function with 643 rules, as in the SafeBricks paper."
//!
//! The Emerging Threats ruleset is not distributable, so rules are
//! synthesized with the same shape: prefix matches on source/destination,
//! optional protocol, destination port ranges, and a first-match
//! allow/deny action.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use rand::Rng;
use rand::SeedableRng;
use snic_types::{FiveTuple, Packet, Protocol};

use crate::common::{layout, AccessKind, AccessSink, NetworkFunction, NfKind, Verdict};
use crate::profile::{hashmap_bytes, paper_profile, vec_bytes, MemoryProfile};

/// Deterministic hash map (fixed-key SipHash) so runs are reproducible.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// One firewall rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirewallRule {
    /// Source prefix `(addr, len)`; len 0 = wildcard.
    pub src: (u32, u8),
    /// Destination prefix `(addr, len)`.
    pub dst: (u32, u8),
    /// Protocol constraint (`None` = any).
    pub protocol: Option<Protocol>,
    /// Destination port range, inclusive.
    pub dst_ports: (u16, u16),
    /// `true` = allow, `false` = deny.
    pub allow: bool,
}

impl FirewallRule {
    /// True if the rule matches the five-tuple.
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        prefix_match(ft.src_ip, self.src)
            && prefix_match(ft.dst_ip, self.dst)
            && self.protocol.is_none_or(|p| p == ft.protocol)
            && (self.dst_ports.0..=self.dst_ports.1).contains(&ft.dst_port)
    }
}

fn prefix_match(addr: u32, (net, len): (u32, u8)) -> bool {
    if len == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - u32::from(len.min(32)));
    addr & mask == net & mask
}

/// Generate an Emerging-Threats-shaped ruleset.
pub fn synth_rules(count: usize, seed: u64) -> Vec<FirewallRule> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rules = Vec::with_capacity(count);
    for i in 0..count {
        let deny_heavy = i < count * 9 / 10; // Most ET rules are drops.
        let dst_base = if rng.random::<f64>() < 0.5 {
            0xc633_0000 // The trace's destination /16, so rules actually fire.
        } else {
            rng.random()
        };
        const PORTS: [u16; 7] = [0, 80, 443, 22, 25, 53, 1024];
        let port_lo = PORTS[rng.random_range(0..PORTS.len())];
        let port_hi = if port_lo == 0 {
            u16::MAX
        } else {
            port_lo.saturating_add(rng.random_range(0..32))
        };
        rules.push(FirewallRule {
            src: (rng.random(), [0u8, 8, 16, 24][rng.random_range(0..4usize)]),
            dst: (
                dst_base | rng.random_range(0u32..1 << 16),
                [16u8, 24, 32][rng.random_range(0..3usize)],
            ),
            protocol: match rng.random_range(0..3) {
                0 => Some(Protocol::Tcp),
                1 => Some(Protocol::Udp),
                _ => None,
            },
            dst_ports: (port_lo, port_hi),
            allow: !deny_heavy && rng.random::<f64>() < 0.5,
        });
    }
    rules
}

/// Bytes per rule in the packed static-data representation (4+1+4+1+1+2+2+1
/// rounded up for alignment).
pub(crate) const RULE_BYTES: u64 = 16;
/// Bytes per flow-cache bucket in the modeled layout.
pub(crate) const CACHE_BUCKET_BYTES: u64 = 24;

/// The stateful firewall NF.
#[derive(Debug)]
pub struct FirewallNf {
    rules: Vec<FirewallRule>,
    cache: DetHashMap<FiveTuple, bool>,
    cache_limit: usize,
    /// Flow keys in insertion order, for FIFO eviction when full.
    eviction_queue: std::collections::VecDeque<FiveTuple>,
    hits: u64,
    misses: u64,
    dropped: u64,
}

impl FirewallNf {
    /// Build with an explicit ruleset and cache limit.
    pub fn new(rules: Vec<FirewallRule>, cache_limit: usize) -> FirewallNf {
        assert!(cache_limit > 0, "cache limit must be positive");
        FirewallNf {
            rules,
            cache: DetHashMap::default(),
            cache_limit,
            eviction_queue: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
            dropped: 0,
        }
    }

    /// The paper's configuration: 643 rules, 200,000-entry cache.
    pub fn with_defaults(seed: u64) -> FirewallNf {
        FirewallNf::new(synth_rules(643, seed), 200_000)
    }

    /// Cache hit count.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Cache miss count.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of cached flows.
    pub fn cached_flows(&self) -> usize {
        self.cache.len()
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Configured flow-cache capacity.
    pub fn cache_limit(&self) -> usize {
        self.cache_limit
    }

    fn bucket_addr(&self, ft: &FiveTuple) -> u64 {
        let buckets = (self.cache_limit as u64).next_power_of_two();
        layout::HEAP_BASE + (ft.stable_hash() % buckets) * CACHE_BUCKET_BYTES
    }

    fn scan_rules(&self, ft: &FiveTuple, sink: &mut dyn AccessSink) -> bool {
        for (i, rule) in self.rules.iter().enumerate() {
            // The rule array is scanned linearly; report one load per
            // cache line of rules (4 rules per 64 B line).
            if i.is_multiple_of(4) {
                sink.touch(
                    layout::DATA_BASE + (i as u64) * RULE_BYTES,
                    AccessKind::Load,
                    10,
                );
            }
            if rule.matches(ft) {
                return rule.allow;
            }
        }
        true // Default allow.
    }
}

impl NetworkFunction for FirewallNf {
    fn kind(&self) -> NfKind {
        NfKind::Firewall
    }

    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict {
        // Header parse: two loads from the packet buffer.
        sink.touch(layout::PKTBUF_BASE, AccessKind::Load, 180);
        sink.touch(layout::PKTBUF_BASE + 64, AccessKind::Load, 90);
        let Ok(ft) = FiveTuple::from_packet(pkt) else {
            self.dropped += 1;
            return Verdict::Drop;
        };

        // Flow-cache probe (hash + bucket load).
        sink.touch(self.bucket_addr(&ft), AccessKind::Load, 220);
        let allow = if let Some(&allow) = self.cache.get(&ft) {
            self.hits += 1;
            allow
        } else {
            self.misses += 1;
            let allow = self.scan_rules(&ft, sink);
            if self.cache.len() >= self.cache_limit {
                if let Some(old) = self.eviction_queue.pop_front() {
                    self.cache.remove(&old);
                    sink.touch(self.bucket_addr(&old), AccessKind::Store, 25);
                }
            }
            self.cache.insert(ft, allow);
            self.eviction_queue.push_back(ft);
            sink.touch(self.bucket_addr(&ft), AccessKind::Store, 40);
            allow
        };

        if allow {
            Verdict::Forward
        } else {
            self.dropped += 1;
            Verdict::Drop
        }
    }

    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        Some(crate::lowering::firewall_ir(self))
    }

    fn memory_profile(&self) -> MemoryProfile {
        let paper = paper_profile(NfKind::Firewall);
        let heap = hashmap_bytes(self.cache_limit, 24)
            + vec_bytes(self.rules.len(), RULE_BYTES as usize)
            + vec_bytes(self.cache_limit, 16); // Eviction queue.
        MemoryProfile {
            heap_stack: snic_types::ByteSize(heap),
            ..paper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{NullSink, RecordingSink};
    use snic_types::packet::PacketBuilder;

    fn pkt(src: u32, dst: u32, dport: u16) -> Packet {
        PacketBuilder::new(src, dst, Protocol::Tcp, 4000, dport).build()
    }

    #[test]
    fn deny_rule_drops_matching_packet() {
        let rules = vec![FirewallRule {
            src: (0, 0),
            dst: (0x0a00_0000, 8),
            protocol: Some(Protocol::Tcp),
            dst_ports: (80, 80),
            allow: false,
        }];
        let mut fw = FirewallNf::new(rules, 10);
        assert_eq!(
            fw.process(&pkt(1, 0x0a01_0203, 80), &mut NullSink),
            Verdict::Drop
        );
        assert_eq!(
            fw.process(&pkt(1, 0x0a01_0203, 81), &mut NullSink),
            Verdict::Forward
        );
        assert_eq!(fw.dropped(), 1);
    }

    #[test]
    fn first_match_wins() {
        let rules = vec![
            FirewallRule {
                src: (0, 0),
                dst: (0, 0),
                protocol: None,
                dst_ports: (0, u16::MAX),
                allow: true,
            },
            FirewallRule {
                src: (0, 0),
                dst: (0, 0),
                protocol: None,
                dst_ports: (0, u16::MAX),
                allow: false,
            },
        ];
        let mut fw = FirewallNf::new(rules, 10);
        assert_eq!(fw.process(&pkt(1, 2, 80), &mut NullSink), Verdict::Forward);
    }

    #[test]
    fn cache_hit_after_first_packet() {
        let mut fw = FirewallNf::with_defaults(1);
        let p = pkt(5, 6, 443);
        let _ = fw.process(&p, &mut NullSink);
        let _ = fw.process(&p, &mut NullSink);
        assert_eq!(fw.cache_misses(), 1);
        assert_eq!(fw.cache_hits(), 1);
    }

    #[test]
    fn cached_verdict_matches_scan_verdict() {
        let mut fw = FirewallNf::with_defaults(2);
        for i in 0..50u32 {
            let p = pkt(i, 0xc633_0000 | i, 80);
            let first = fw.process(&p, &mut NullSink);
            let second = fw.process(&p, &mut NullSink);
            assert_eq!(first, second, "flow {i}");
        }
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        let mut fw = FirewallNf::new(synth_rules(10, 3), 16);
        for i in 0..100u32 {
            let _ = fw.process(&pkt(i, i + 1, 80), &mut NullSink);
        }
        assert!(fw.cached_flows() <= 16);
        assert_eq!(fw.cache_misses(), 100);
    }

    #[test]
    fn evicted_flow_rescans() {
        let mut fw = FirewallNf::new(synth_rules(10, 3), 4);
        let first = pkt(1, 2, 80);
        let _ = fw.process(&first, &mut NullSink);
        for i in 10..20u32 {
            let _ = fw.process(&pkt(i, i, 80), &mut NullSink);
        }
        let misses_before = fw.cache_misses();
        let _ = fw.process(&first, &mut NullSink);
        assert_eq!(
            fw.cache_misses(),
            misses_before + 1,
            "evicted flow must miss"
        );
    }

    #[test]
    fn cache_hit_touches_fewer_addresses_than_miss() {
        let mut fw = FirewallNf::with_defaults(4);
        let p = pkt(9, 0xdead_beef, 9999); // Unlikely to match early rules.
        let mut miss_sink = RecordingSink::new();
        let _ = fw.process(&p, &mut miss_sink);
        let mut hit_sink = RecordingSink::new();
        let _ = fw.process(&p, &mut hit_sink);
        assert!(miss_sink.accesses().len() > hit_sink.accesses().len());
        assert_eq!(hit_sink.accesses().len(), 3); // Two pktbuf + one bucket.
    }

    #[test]
    fn rule_scan_touches_data_segment() {
        let mut fw = FirewallNf::with_defaults(5);
        let mut sink = RecordingSink::new();
        let _ = fw.process(&pkt(1, 0xdead_beef, 9999), &mut sink);
        assert!(sink
            .accesses()
            .iter()
            .any(|a| (layout::DATA_BASE..layout::HEAP_BASE).contains(&a.addr)));
    }

    #[test]
    fn synth_rules_deterministic_and_sized() {
        let a = synth_rules(643, 7);
        let b = synth_rules(643, 7);
        assert_eq!(a.len(), 643);
        assert_eq!(a, b);
        assert_ne!(a, synth_rules(643, 8));
    }

    #[test]
    fn prefix_match_edge_cases() {
        assert!(prefix_match(0x0a000001, (0x0a000000, 8)));
        assert!(!prefix_match(0x0b000001, (0x0a000000, 8)));
        assert!(prefix_match(0x12345678, (0, 0)), "len 0 is wildcard");
        assert!(prefix_match(0x12345678, (0x12345678, 32)));
        assert!(!prefix_match(0x12345679, (0x12345678, 32)));
    }

    #[test]
    fn memory_profile_heap_in_plausible_range() {
        let fw = FirewallNf::with_defaults(6);
        let heap = fw.memory_profile().heap_stack.as_mib_f64();
        // Paper: 13.75 MB. Ours models the same structures; require the
        // same order of magnitude.
        assert!((4.0..40.0).contains(&heap), "heap = {heap} MiB");
    }

    #[test]
    fn malformed_packet_dropped() {
        let mut fw = FirewallNf::with_defaults(8);
        let junk = Packet::from_bytes(bytes::Bytes::from_static(&[0u8; 10]));
        assert_eq!(fw.process(&junk, &mut NullSink), Verdict::Drop);
    }
}
