//! The network-function abstraction and access recording.

use snic_types::Packet;
pub use snic_uarch::stream::{Access, AccessKind};

use crate::profile::MemoryProfile;

/// The six NF kinds of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NfKind {
    /// Stateful firewall.
    Firewall,
    /// Deep packet inspection.
    Dpi,
    /// Network address translation.
    Nat,
    /// Maglev load balancer.
    LoadBalancer,
    /// Longest-prefix-match router.
    Lpm,
    /// Flow monitor.
    Monitor,
}

impl NfKind {
    /// All kinds in the paper's table order.
    pub const ALL: [NfKind; 6] = [
        NfKind::Firewall,
        NfKind::Dpi,
        NfKind::Nat,
        NfKind::LoadBalancer,
        NfKind::Lpm,
        NfKind::Monitor,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NfKind::Firewall => "FW",
            NfKind::Dpi => "DPI",
            NfKind::Nat => "NAT",
            NfKind::LoadBalancer => "LB",
            NfKind::Lpm => "LPM",
            NfKind::Monitor => "Mon",
        }
    }
}

/// What the NF decided about a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged.
    Forward,
    /// Forward a rewritten packet (NAT).
    Rewritten(Packet),
    /// Drop the packet.
    Drop,
    /// Forward to a specific backend (LB) or next hop (LPM).
    Steer(u32),
    /// Forward; payload matched `n` DPI signatures.
    Matched(u32),
}

/// Receiver of memory-reference events.
///
/// Implementations must be cheap: NFs call `touch` on every data-structure
/// probe, even in throughput benchmarks (where [`NullSink`] makes the call
/// free).
pub trait AccessSink {
    /// Record one reference: `insns` instructions retired since the last
    /// event, then an access of `kind` at virtual address `addr`.
    fn touch(&mut self, addr: u64, kind: AccessKind, insns: u32);
}

/// Discards all events (throughput mode).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn touch(&mut self, _addr: u64, _kind: AccessKind, _insns: u32) {}
}

/// Collects events into a vector (trace mode).
#[derive(Debug, Default)]
pub struct RecordingSink {
    accesses: Vec<Access>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// The recorded events.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Consume into the event vector.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }

    /// Reset to empty, keeping the allocation — streaming recorders
    /// reuse one sink across every packet of a billion-event run.
    pub fn clear(&mut self) {
        self.accesses.clear();
    }
}

impl AccessSink for RecordingSink {
    #[inline]
    fn touch(&mut self, addr: u64, kind: AccessKind, insns: u32) {
        self.accesses.push(Access {
            insns: insns.max(1),
            addr,
            kind,
        });
    }
}

/// A network function: real packet semantics plus reference-stream
/// emission.
///
/// `Send` is a supertrait so boxed NFs can ride inside streaming trace
/// sources that `snic-sim` moves across its worker threads; every NF is
/// plain owned data, so this costs nothing.
pub trait NetworkFunction: Send {
    /// Which of the six evaluation NFs this is.
    fn kind(&self) -> NfKind;

    /// Process one packet, reporting data-structure touches to `sink`.
    fn process(&mut self, pkt: &Packet, sink: &mut dyn AccessSink) -> Verdict;

    /// Current memory profile: static sections plus measured heap.
    fn memory_profile(&self) -> MemoryProfile;

    /// The NF's dataflow IR for Pass 0 static analysis (see
    /// [`crate::lowering`]). `None` means the NF provides no program for
    /// the analyzer — `nf_launch` will refuse it when analysis is
    /// required.
    fn dataflow_ir(&self) -> Option<snic_analyze::NfProgram> {
        None
    }
}

/// Virtual-address-space layout shared by all NFs.
///
/// Matches the qualitative layout of Table 6 (text / static data / code /
/// heap+stack). Streams only reference data addresses; instruction
/// fetches are not modeled (gem5's data-side experiment).
pub mod layout {
    /// Base of the packet-buffer window (the VPP writes packets here).
    pub const PKTBUF_BASE: u64 = 0x0100_0000;
    /// Base of static data (rule arrays, lookup tables built at init).
    pub const DATA_BASE: u64 = 0x0800_0000;
    /// Base of the heap (hash tables, caches, AC graph).
    pub const HEAP_BASE: u64 = 0x1000_0000;
    /// Base of the stack region.
    pub const STACK_BASE: u64 = 0x7f00_0000;

    // The regions must stay disjoint and ordered; checked at compile time.
    const _: () = assert!(PKTBUF_BASE < DATA_BASE);
    const _: () = assert!(DATA_BASE < HEAP_BASE);
    const _: () = assert!(HEAP_BASE < STACK_BASE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        let names: Vec<&str> = NfKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["FW", "DPI", "NAT", "LB", "LPM", "Mon"]);
    }

    #[test]
    fn recording_sink_collects_in_order() {
        let mut s = RecordingSink::new();
        s.touch(0x10, AccessKind::Load, 3);
        s.touch(0x20, AccessKind::Store, 0); // insns clamped to 1.
        let v = s.into_accesses();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].addr, 0x10);
        assert_eq!(v[1].insns, 1);
        assert_eq!(v[1].kind, AccessKind::Store);
    }

    #[test]
    fn null_sink_is_noop() {
        let mut s = NullSink;
        s.touch(0, AccessKind::Load, 1); // Must not panic or allocate.
    }
}
