//! Covert-channel encoder/decoder reference streams (§3.3, quantified).
//!
//! The §3.3 attacks describe *qualitative* leakage vectors: cache
//! contention, bus contention, and teardown timing. This module builds
//! the concrete NF pairs that turn each vector into a working covert
//! channel — a **sender** stream whose memory behaviour depends on a
//! payload bit, and a **receiver** stream whose microarchitectural
//! observables (L2 hit/miss counts, bus-grant latencies) recover it.
//! `snic-leakage` drives these pairs through the uarch engine and
//! measures each channel's capacity in bits per second of simulated
//! time, commodity vs S-NIC.
//!
//! All streams are plain [`Access`] vectors: deterministic, replayable,
//! and tenant-tagged by the engine, so the same pair runs unchanged
//! under every cache geometry, bus discipline, and epoch length.
//!
//! # Synchronisation
//!
//! Sender and receiver share no clock except the engine's deterministic
//! interleaving, so each stream embeds its schedule as instruction-count
//! gaps: the receiver primes, idles through a long compute gap while the
//! sender acts, then probes. The gap constants below leave generous
//! margin over the worst-case phase durations (including temporal-bus
//! epoch waits), which the leakage round-trip suites verify empirically
//! across geometries and epoch lengths.

use snic_uarch::stream::{Access, AccessKind};

/// Cache-line size every channel is built against (matches
/// `MachineConfig`).
pub const LINE: u64 = 64;

/// L1 geometry the schedules are tuned for: 32 KiB, 4-way, 64 B lines.
const L1_SETS: u64 = 128;
const L1_WAYS: u32 = 4;

/// Receiver compute gap (cycles) between the prime/flush phases and the
/// probe phase of the cache channel. The sender's transmission window.
pub const PP_RECV_GAP: u32 = 4_000_000;

/// Sender start delay (cycles): waits out the receiver's prime+flush
/// phases before touching the cache.
pub const PP_SEND_DELAY: u32 = 1_000_000;

/// Thrash rounds the cache-channel sender makes over the probed sets.
const PP_SEND_ROUNDS: u32 = 2;

/// Push one load per element of `it`.
fn loads(v: &mut Vec<Access>, it: impl Iterator<Item = u64>, insns: u32) {
    for addr in it {
        v.push(Access {
            insns,
            addr,
            kind: AccessKind::Load,
        });
    }
}

/// The line address covering way-column `w` of L2 set `s`.
fn set_line(w: u32, s: u64, l2_sets: u64) -> u64 {
    (u64::from(w) * l2_sets + s) * LINE
}

/// How many L2 sets the cache channel primes and probes: one per L1 set
/// (so each probed set owns a private L1 set and the flush argument
/// below holds), clipped to the cache.
pub fn pp_sets(l2_sets: u64) -> u64 {
    l2_sets.min(L1_SETS)
}

/// Ways the cache-channel receiver primes per probed set. Four ways are
/// reserved to flush the receiver's own L1 (see
/// [`prime_probe_receiver`]), so geometries with at most [`L1_WAYS`]
/// more ways than that — notably the 4-way L2 — cannot host a probe set
/// that survives the receiver's own L1 eviction traffic, and the
/// channel degenerates (returns 0).
pub fn pp_primed_ways(l2_ways: u32) -> u32 {
    L1_WAYS.min(l2_ways.saturating_sub(L1_WAYS))
}

/// Cache-occupancy receiver: prime, flush own L1, idle, probe.
///
/// Prime fills `pp_primed_ways` way-columns of the first [`pp_sets`]
/// L2 sets; the flush phase touches [`L1_WAYS`] *more* way-columns of
/// the same sets. Every line of probed set `s` maps to L1 set
/// `s mod 128`, so the flush lines evict the primed lines from the
/// receiver's 4-way L1 while — because primed + flush ways still fit
/// the L2 set — leaving them resident in an uncontended L2. The probe
/// phase therefore re-touches every primed line as an L1 miss whose L2
/// outcome is the channel signal: hits when the set was left alone,
/// misses when a co-tenant evicted it during the gap.
pub fn prime_probe_receiver(l2_sets: u64, l2_ways: u32) -> Vec<Access> {
    let pw = pp_primed_ways(l2_ways);
    let sets = pp_sets(l2_sets);
    if pw == 0 {
        // Degenerate geometry: nothing survives the L1 flush. Emit a
        // minimal stream so the decoder still observes *something*
        // (a constant, payload-independent signal).
        return vec![Access {
            insns: 1,
            addr: 0,
            kind: AccessKind::Load,
        }];
    }
    let mut v = Vec::with_capacity((2 * pw + L1_WAYS) as usize * sets as usize + 1);
    // Prime + L1 flush: way-major order spaces same-L1-set touches
    // `sets` events apart.
    for w in 0..pw + L1_WAYS {
        loads(&mut v, (0..sets).map(|s| set_line(w, s, l2_sets)), 1);
    }
    // The transmission gap. The touched address is a flush line that is
    // L1-resident, so the gap event itself perturbs nothing in L2.
    v.push(Access {
        insns: PP_RECV_GAP,
        addr: set_line(pw, 0, l2_sets),
        kind: AccessKind::Load,
    });
    // Probe, in prime order.
    for w in 0..pw {
        loads(&mut v, (0..sets).map(|s| set_line(w, s, l2_sets)), 1);
    }
    v
}

/// Number of probe events [`prime_probe_receiver`] emits (the decoder's
/// full-scale signal).
pub fn pp_probe_count(l2_sets: u64, l2_ways: u32) -> u64 {
    u64::from(pp_primed_ways(l2_ways)) * pp_sets(l2_sets)
}

/// Granularity of the sender's start-delay spin (instructions per spin
/// event). The engine sequences bus admission by event *start* time, so
/// a delay expressed as one huge-`insns` event would start at cycle 0,
/// issue its (first-touch) bus request a million cycles later, and
/// stall every later-starting request behind it — a modeling artifact,
/// not contention. Spinning in small steps on one line keeps every
/// event's start honest: the first step cold-misses early, the rest are
/// L1 hits that never arbitrate. The step stays below a co-tenant's
/// tightest miss round trip (≈ 139 cycles) so even that first-touch
/// request is admitted in true time order.
const SPIN_STEP: u32 = 100;

/// Push `total / SPIN_STEP` compute-only spin events on `addr`.
fn spin(v: &mut Vec<Access>, addr: u64, total: u32) {
    for _ in 0..total / SPIN_STEP {
        v.push(Access {
            insns: SPIN_STEP,
            addr,
            kind: AccessKind::Load,
        });
    }
}

/// Cache-occupancy sender: wait out the receiver's prime, then — for a
/// 1 bit — thrash every probed set with enough of its own lines to
/// evict the receiver's primed ways from a *shared* L2; for a 0 bit,
/// stay off the probed sets entirely. Sender addresses carry the
/// sender's tenant tag, so they conflict with the receiver's lines only
/// when the cache discipline lets tenants share sets.
pub fn prime_probe_sender(bit: bool, l2_sets: u64, l2_ways: u32) -> Vec<Access> {
    let sets = pp_sets(l2_sets);
    let mut v = Vec::new();
    // Scratch line past the thrash range; lands outside the probed
    // sets whenever the geometry has room for it.
    spin(
        &mut v,
        set_line(PP_SEND_ROUNDS * l2_ways, sets % l2_sets, l2_sets),
        PP_SEND_DELAY,
    );
    if bit {
        for r in 0..PP_SEND_ROUNDS {
            for w in 0..l2_ways {
                loads(
                    &mut v,
                    (0..sets).map(|s| set_line(r * l2_ways + w, s, l2_sets)),
                    1,
                );
            }
        }
    }
    v
}

/// Bus-timing receiver probes: never-reusing loads that miss both
/// cache levels, so every probe issues a bus request whose grant
/// latency is the channel signal.
pub const BUS_PROBES: usize = 256;

/// Sender-side pacing (instructions between flood accesses) for the
/// bus and scrub senders.
///
/// The engine models one outstanding blocking miss per lane, so a
/// lane's bus requests are spaced by its full miss round trip
/// (≈ 139 cycles at 1-instruction pacing) while each transfer occupies
/// the bus for only 16. Under FCFS the only lane that ever waits is
/// the one *catching up*: the faster lane's request lands inside the
/// slower lane's in-flight transfer and queues behind it. The receiver
/// therefore streams at maximum rate (1-instruction pacing) and the
/// sender runs *slower* by this co-prime de-tune, so the receiver's
/// phase drifts through the sender's 16-cycle occupancy window and a
/// measurable fraction of receiver grants are delayed — exactly
/// per-period lock-step (equal pacing) or a long compute gap on the
/// receiver side would each drive that fraction to zero.
const SEND_PACING: u32 = 20;

/// Flood accesses the bus sender issues for a 1 bit.
pub const BUS_FLOOD: usize = 1024;

/// Streaming (always-miss) load sequence: `count` consecutive lines
/// from `base`, `insns` apart. Addresses never repeat, so each access
/// cold-misses L1 and L2 regardless of co-tenant behaviour — the
/// *cache* observables of such a stream are payload-independent by
/// construction, isolating the bus-timing signal.
fn streaming(base: u64, count: usize, insns: u32) -> Vec<Access> {
    let mut v = Vec::with_capacity(count);
    loads(&mut v, (0..count as u64).map(|k| base + k * LINE), insns);
    v
}

/// Private-address-space base for streaming regions (far above any
/// cache-channel address, well inside the 2^40-byte NF space).
const STREAM_BASE: u64 = 1 << 32;

/// Bus-contention receiver: [`BUS_PROBES`] back-to-back streaming
/// misses at maximum issue rate. The decoder counts how many of the
/// receiver's own grants arrived later than they would on an idle bus
/// (see [`SEND_PACING`] for why the receiver must be the *fast* lane).
pub fn bus_receiver() -> Vec<Access> {
    streaming(STREAM_BASE, BUS_PROBES, 1)
}

/// Bus-contention sender: for a 1 bit, flood the bus with paced
/// streaming misses overlapping the receiver's whole probe window; for
/// a 0 bit, a single access (so the stream is never empty) that the
/// FCFS arbiter retires long before the receiver's probes sweep past.
pub fn bus_sender(bit: bool) -> Vec<Access> {
    if bit {
        streaming(STREAM_BASE, BUS_FLOOD, SEND_PACING)
    } else {
        streaming(STREAM_BASE, 1, SEND_PACING)
    }
}

/// Scrub-latency channel: receiver probe count. Sized so the probe
/// window sits inside the longest scrub's duration.
pub const SCRUB_PROBES: usize = 2048;

/// Scrubbed footprint, in cache lines, for a 0 bit (a small departing
/// function) and a 1 bit (a large one). The teardown scrubber's
/// zeroization traffic is proportional to the footprint, and on a
/// shared bus its duration is visible to the receiver.
pub const SCRUB_LINES_0: usize = 16;
/// Scrubbed footprint for a 1 bit; see [`SCRUB_LINES_0`].
pub const SCRUB_LINES_1: usize = 2048;

/// Scrub-latency receiver: like [`bus_receiver`] but long enough to
/// span the entire scrub duration.
pub fn scrub_receiver() -> Vec<Access> {
    streaming(STREAM_BASE, SCRUB_PROBES, 1)
}

/// The scrubber's zeroization stream: paced stores over the departing
/// function's footprint. The *sender's* secret is the footprint size —
/// the scrubber is the NIC-OS acting on the sender's behalf, which is
/// exactly why §4.6 runs teardown scrubbing inside the departing
/// function's isolation domain.
pub fn scrub_stream(bit: bool) -> Vec<Access> {
    let lines = if bit { SCRUB_LINES_1 } else { SCRUB_LINES_0 };
    let mut v = Vec::with_capacity(lines);
    for k in 0..lines as u64 {
        v.push(Access {
            insns: SEND_PACING,
            addr: STREAM_BASE + k * LINE,
            kind: AccessKind::Store,
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_probe_lines_are_primed_lines() {
        let (sets, ways) = (128, 8);
        let v = prime_probe_receiver(sets, ways);
        let pw = pp_primed_ways(ways) as usize;
        let primed: Vec<u64> = v[..pw * sets as usize].iter().map(|a| a.addr).collect();
        let probes: Vec<u64> = v[v.len() - pw * sets as usize..]
            .iter()
            .map(|a| a.addr)
            .collect();
        assert_eq!(primed, probes, "probe phase must revisit the primed lines");
    }

    #[test]
    fn four_way_geometry_degenerates() {
        assert_eq!(pp_primed_ways(4), 0);
        assert_eq!(prime_probe_receiver(256, 4).len(), 1);
        assert_eq!(pp_probe_count(256, 4), 0);
    }

    #[test]
    fn sender_zero_bit_stays_off_probed_sets() {
        let (sets, ways) = (512, 8);
        let probed = pp_sets(sets);
        for a in prime_probe_sender(false, sets, ways) {
            assert!(
                (a.addr / LINE) % sets >= probed,
                "0-bit sender touched probed set {}",
                (a.addr / LINE) % sets
            );
        }
    }

    #[test]
    fn sender_one_bit_covers_every_probed_set_with_full_associativity() {
        let (sets, ways) = (128, 8);
        let v = prime_probe_sender(true, sets, ways);
        for s in 0..pp_sets(sets) {
            let distinct: std::collections::BTreeSet<u64> = v
                .iter()
                .skip(1)
                .filter(|a| (a.addr / LINE) % sets == s)
                .map(|a| a.addr / LINE)
                .collect();
            assert!(
                distinct.len() >= ways as usize,
                "set {s}: only {} distinct thrash lines",
                distinct.len()
            );
        }
    }

    #[test]
    fn streaming_receivers_never_reuse_a_line() {
        for v in [bus_receiver(), scrub_receiver()] {
            let lines: std::collections::BTreeSet<u64> = v.iter().map(|a| a.addr / LINE).collect();
            assert_eq!(lines.len(), v.len(), "streaming probes must be cold misses");
        }
    }

    #[test]
    fn scrub_footprints_differ_and_are_stores() {
        let s0 = scrub_stream(false);
        let s1 = scrub_stream(true);
        assert_eq!(s0.len(), SCRUB_LINES_0);
        assert_eq!(s1.len(), SCRUB_LINES_1);
        assert!(s0.iter().chain(&s1).all(|a| a.kind == AccessKind::Store));
    }
}
