//! The trusted hardware's page-ownership tracking (§4.1).
//!
//! "The hardware maintains another bitmap which tracks which physical RAM
//! pages have been allocated to a network function." `nf_launch` consults
//! this structure to reject launches whose page table references pages
//! already bound to a live function; `nf_teardown` releases them after
//! scrubbing.

use std::collections::HashMap;

use snic_types::{ByteSize, NfId, SnicError};

use crate::phys::PAGE_GRANULE;

/// Page-granular ownership map over physical memory.
#[derive(Debug, Default)]
pub struct PageOwnership {
    /// Granule index → owner.
    owners: HashMap<u64, NfId>,
}

impl PageOwnership {
    /// An empty map (all pages unowned, i.e. NIC-OS-accessible).
    pub fn new() -> PageOwnership {
        PageOwnership::default()
    }

    /// Claim `base..base+len` for `owner`.
    ///
    /// Fails with [`SnicError::PageOwned`] (naming the first conflicting
    /// page and its owner) if any page is already claimed — even by the
    /// same NF, since `nf_launch` walks each page exactly once.
    pub fn claim(&mut self, base: u64, len: u64, owner: NfId) -> Result<(), SnicError> {
        let first = base / PAGE_GRANULE;
        let last = (base + len).div_ceil(PAGE_GRANULE);
        for g in first..last {
            if let Some(&existing) = self.owners.get(&g) {
                return Err(SnicError::PageOwned {
                    addr: g * PAGE_GRANULE,
                    owner: existing,
                });
            }
        }
        for g in first..last {
            self.owners.insert(g, owner);
        }
        Ok(())
    }

    /// Release every page owned by `owner`; returns the count released.
    pub fn release_owner(&mut self, owner: NfId) -> usize {
        let before = self.owners.len();
        self.owners.retain(|_, &mut o| o != owner);
        before - self.owners.len()
    }

    /// Owner of the page containing `addr`, if any.
    pub fn owner_of(&self, addr: u64) -> Option<NfId> {
        self.owners.get(&(addr / PAGE_GRANULE)).copied()
    }

    /// Total bytes currently owned by `owner`.
    pub fn owned_bytes(&self, owner: NfId) -> ByteSize {
        ByteSize(self.owners.values().filter(|&&o| o == owner).count() as u64 * PAGE_GRANULE)
    }

    /// Total bytes owned by any NF.
    pub fn total_owned(&self) -> ByteSize {
        ByteSize(self.owners.len() as u64 * PAGE_GRANULE)
    }

    /// The owned address space as maximal `(base, len, owner)` ranges,
    /// sorted by base — adjacent same-owner granules are coalesced. This
    /// is the verifier's view of the ownership map.
    pub fn owned_ranges(&self) -> Vec<(u64, u64, NfId)> {
        let mut granules: Vec<(u64, NfId)> = self.owners.iter().map(|(&g, &o)| (g, o)).collect();
        granules.sort_unstable_by_key(|&(g, _)| g);
        let mut out: Vec<(u64, u64, NfId)> = Vec::new();
        for (g, owner) in granules {
            let base = g * PAGE_GRANULE;
            match out.last_mut() {
                Some((b, l, o)) if *o == owner && *b + *l == base => *l += PAGE_GRANULE,
                _ => out.push((base, PAGE_GRANULE, owner)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_then_conflict() {
        let mut o = PageOwnership::new();
        o.claim(0x10_000, 0x4000, NfId(1)).unwrap();
        match o.claim(0x12_000, 0x1000, NfId(2)) {
            Err(SnicError::PageOwned { owner, .. }) => assert_eq!(owner, NfId(1)),
            other => panic!("expected PageOwned, got {other:?}"),
        }
    }

    #[test]
    fn self_conflict_also_rejected() {
        let mut o = PageOwnership::new();
        o.claim(0, 0x1000, NfId(1)).unwrap();
        assert!(o.claim(0, 0x1000, NfId(1)).is_err());
    }

    #[test]
    fn failed_claim_leaves_no_partial_state() {
        let mut o = PageOwnership::new();
        o.claim(0x4000, 0x1000, NfId(1)).unwrap();
        // This claim overlaps at its tail; the head pages must not leak.
        assert!(o.claim(0x2000, 0x3000, NfId(2)).is_err());
        assert_eq!(o.owner_of(0x2000), None);
        assert_eq!(o.owner_of(0x3000), None);
    }

    #[test]
    fn release_frees_only_one_owner() {
        let mut o = PageOwnership::new();
        o.claim(0, 0x2000, NfId(1)).unwrap();
        o.claim(0x10_000, 0x2000, NfId(2)).unwrap();
        let released = o.release_owner(NfId(1));
        assert_eq!(released, 2);
        assert_eq!(o.owner_of(0), None);
        assert_eq!(o.owner_of(0x10_000), Some(NfId(2)));
    }

    #[test]
    fn owned_bytes_accounting() {
        let mut o = PageOwnership::new();
        o.claim(0, 3 * PAGE_GRANULE, NfId(9)).unwrap();
        assert_eq!(o.owned_bytes(NfId(9)), ByteSize(3 * PAGE_GRANULE));
        assert_eq!(o.owned_bytes(NfId(1)), ByteSize::ZERO);
        assert_eq!(o.total_owned(), ByteSize(3 * PAGE_GRANULE));
    }

    #[test]
    fn owned_ranges_coalesce_per_owner() {
        let mut o = PageOwnership::new();
        o.claim(0, 2 * PAGE_GRANULE, NfId(1)).unwrap();
        o.claim(2 * PAGE_GRANULE, PAGE_GRANULE, NfId(2)).unwrap();
        o.claim(10 * PAGE_GRANULE, PAGE_GRANULE, NfId(1)).unwrap();
        assert_eq!(
            o.owned_ranges(),
            vec![
                (0, 2 * PAGE_GRANULE, NfId(1)),
                (2 * PAGE_GRANULE, PAGE_GRANULE, NfId(2)),
                (10 * PAGE_GRANULE, PAGE_GRANULE, NfId(1)),
            ]
        );
    }

    #[test]
    fn partial_page_claims_round_up() {
        let mut o = PageOwnership::new();
        // One byte still claims its whole granule.
        o.claim(PAGE_GRANULE, 1, NfId(3)).unwrap();
        assert_eq!(o.owner_of(PAGE_GRANULE + 100), Some(NfId(3)));
        assert!(o.claim(PAGE_GRANULE + 200, 8, NfId(4)).is_err());
    }
}
