//! Virtual→physical page mappings with mixed page sizes.
//!
//! §4.2 of the paper: a network function's address space is covered by "a
//! handful of TLB entries, with variable-sized pages (e.g., 2 MB, 32 MB,
//! and 128 MB) minimizing internal fragmentation". A [`PageTable`] is the
//! software description that `nf_launch` walks to install locked TLB
//! entries and to populate the ownership bitmap.

use snic_types::ByteSize;

/// One mapping: a virtual range onto a physical range of equal length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapping {
    /// Virtual base address (aligned to `page_size`).
    pub va: u64,
    /// Physical base address (aligned to `page_size`).
    pub pa: u64,
    /// Page size in bytes.
    pub page_size: u64,
    /// Whether the mapping permits stores.
    pub writable: bool,
}

impl PageMapping {
    /// True if `va` falls inside this mapping.
    pub fn covers(&self, va: u64) -> bool {
        va >= self.va && va - self.va < self.page_size
    }

    /// Translate a covered virtual address.
    pub fn translate(&self, va: u64) -> u64 {
        debug_assert!(self.covers(va));
        self.pa + (va - self.va)
    }
}

/// A page table: an ordered set of non-overlapping mappings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTable {
    mappings: Vec<PageMapping>,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Add a mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is misaligned or overlaps (virtually) with an
    /// existing mapping — page tables handed to `nf_launch` are built by
    /// software that must keep them well-formed.
    pub fn map(&mut self, m: PageMapping) {
        // The model stores base+length ranges rather than bit-sliced tags,
        // so bases need only page-granule (4 KiB) alignment; this lets the
        // launch path pack variable-sized pages back to back.
        assert!(
            m.page_size > 0 && m.page_size.is_multiple_of(4096),
            "odd page size"
        );
        assert_eq!(m.va % 4096, 0, "virtual base misaligned");
        assert_eq!(m.pa % 4096, 0, "physical base misaligned");
        for e in &self.mappings {
            let disjoint = m.va + m.page_size <= e.va || e.va + e.page_size <= m.va;
            assert!(disjoint, "overlapping virtual mapping at {:#x}", m.va);
        }
        self.mappings.push(m);
        self.mappings.sort_by_key(|e| e.va);
    }

    /// Translate `va`, returning the physical address if mapped.
    pub fn walk(&self, va: u64) -> Option<u64> {
        self.find(va).map(|m| m.translate(va))
    }

    /// Find the mapping covering `va`.
    pub fn find(&self, va: u64) -> Option<&PageMapping> {
        // Mappings are sorted by va; binary search for the candidate.
        let idx = self.mappings.partition_point(|m| m.va <= va);
        idx.checked_sub(1)
            .map(|i| &self.mappings[i])
            .filter(|m| m.covers(va))
    }

    /// All mappings, sorted by virtual address.
    pub fn mappings(&self) -> &[PageMapping] {
        &self.mappings
    }

    /// Number of mappings (equals the TLB entries needed to pin the table).
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True if there are no mappings.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Total mapped virtual span.
    pub fn mapped_bytes(&self) -> ByteSize {
        ByteSize(self.mappings.iter().map(|m| m.page_size).sum())
    }

    /// Iterate over the physical ranges this table maps.
    pub fn phys_ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.mappings.iter().map(|m| (m.pa, m.page_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn table() -> PageTable {
        let mut t = PageTable::new();
        t.map(PageMapping {
            va: 0,
            pa: 16 * MB,
            page_size: 2 * MB,
            writable: false,
        });
        t.map(PageMapping {
            va: 2 * MB,
            pa: 64 * MB,
            page_size: 32 * MB,
            writable: true,
        });
        t
    }

    #[test]
    fn walk_translates_offsets() {
        let t = table();
        assert_eq!(t.walk(0), Some(16 * MB));
        assert_eq!(t.walk(100), Some(16 * MB + 100));
        assert_eq!(t.walk(2 * MB + 5), Some(64 * MB + 5));
        assert_eq!(t.walk(34 * MB - 1), Some(96 * MB - 1));
    }

    #[test]
    fn walk_misses_outside_mappings() {
        let t = table();
        assert_eq!(t.walk(34 * MB), None);
        assert_eq!(t.walk(u64::MAX), None);
    }

    #[test]
    fn find_returns_permissions() {
        let t = table();
        assert!(!t.find(0).unwrap().writable);
        assert!(t.find(3 * MB).unwrap().writable);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut t = table();
        t.map(PageMapping {
            va: MB,
            pa: 0,
            page_size: 2 * MB,
            writable: false,
        });
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misalignment_rejected() {
        let mut t = PageTable::new();
        t.map(PageMapping {
            va: 3,
            pa: 0,
            page_size: 2 * MB,
            writable: false,
        });
    }

    #[test]
    fn mapped_bytes_totals() {
        assert_eq!(table().mapped_bytes(), ByteSize(34 * MB));
        assert_eq!(table().len(), 2);
    }

    #[test]
    fn empty_table_walks_to_none() {
        let t = PageTable::new();
        assert!(t.is_empty());
        assert_eq!(t.walk(0), None);
    }
}
