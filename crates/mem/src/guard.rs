//! Mediated memory access: the trusted-hardware checks in one place.
//!
//! Every load/store in the device model flows through a [`MemoryGuard`],
//! which combines the physical backing store with the denylist and
//! ownership structures. The guard runs in one of two modes:
//!
//! - **commodity** (`enforcing = false`): the LiquidIO/Agilio behaviour of
//!   §3.2 — any principal may read or write any physical address
//!   (`xkphys`-style flat addressing). This is what the §3.3 attacks
//!   exploit.
//! - **S-NIC** (`enforcing = true`): network functions have *no* physical
//!   addressing at all (only TLB-mediated virtual access), and the
//!   management core is subject to the denylist.

use std::cell::RefCell;

use snic_types::{ByteSize, CoreId, IsolationError, NfId, SnicError};

use crate::denylist::Denylist;
use crate::phys::PhysMem;
use crate::tlb::Tlb;

/// Who is issuing a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Principal {
    /// A programmable core running the given network function.
    Nf(NfId, CoreId),
    /// The management core (NIC OS).
    Management,
    /// Trusted hardware itself (launch microcode, scrubbing, packet DMA
    /// that has already been checked by its own TLB bank).
    TrustedHardware,
}

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// One audited physical access, recorded for offline trace analysis.
///
/// `granted = false` entries are accesses the guard refused (S-NIC
/// denials); analyzers that look for *leaks* consider only granted ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Who issued the access.
    pub who: Principal,
    /// Physical address.
    pub addr: u64,
    /// Bytes accessed.
    pub len: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Whether the guard allowed it.
    pub granted: bool,
}

/// The mediated physical memory of the NIC.
#[derive(Debug)]
pub struct MemoryGuard {
    mem: PhysMem,
    denylist: Denylist,
    enforcing: bool,
    /// Audit log (`None` = recording off). `RefCell` because reads go
    /// through `&self`.
    audit: RefCell<Option<Vec<AccessRecord>>>,
}

impl MemoryGuard {
    /// Create a guard over `size` bytes of DRAM.
    pub fn new(size: ByteSize, enforcing: bool) -> MemoryGuard {
        MemoryGuard {
            mem: PhysMem::new(size),
            denylist: Denylist::new(),
            enforcing,
            audit: RefCell::new(None),
        }
    }

    /// Begin recording every physical access into the audit log
    /// (clearing any previous log).
    pub fn start_audit(&mut self) {
        *self.audit.borrow_mut() = Some(Vec::new());
    }

    /// Drain the audit log, leaving recording enabled. Returns an empty
    /// vector if recording was never started.
    pub fn take_audit(&mut self) -> Vec<AccessRecord> {
        match self.audit.borrow_mut().as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Whether the audit log is recording.
    pub fn audit_enabled(&self) -> bool {
        self.audit.borrow().is_some()
    }

    fn record(&self, who: Principal, addr: u64, len: usize, kind: AccessKind, granted: bool) {
        if let Some(log) = self.audit.borrow_mut().as_mut() {
            log.push(AccessRecord {
                who,
                addr,
                len: len as u64,
                kind,
                granted,
            });
        }
    }

    /// Whether S-NIC enforcement is active.
    pub fn enforcing(&self) -> bool {
        self.enforcing
    }

    /// The denylist (mutated by launch/teardown microcode).
    pub fn denylist_mut(&mut self) -> &mut Denylist {
        &mut self.denylist
    }

    /// The denylist, read-only.
    pub fn denylist(&self) -> &Denylist {
        &self.denylist
    }

    /// Raw access for trusted hardware paths that have already performed
    /// their own checks (launch microcode hashing pages, teardown scrub).
    pub fn raw_mem(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// Read-only raw view.
    pub fn raw_mem_ref(&self) -> &PhysMem {
        &self.mem
    }

    fn check_phys(&self, who: Principal, addr: u64, len: usize) -> Result<(), SnicError> {
        if !self.mem.in_bounds(addr, len) {
            return Err(SnicError::InvalidConfig(format!(
                "physical access oob at {addr:#x}"
            )));
        }
        if !self.enforcing {
            return Ok(());
        }
        match who {
            Principal::TrustedHardware => Ok(()),
            Principal::Management => {
                self.denylist.check(addr, len as u64)?;
                Ok(())
            }
            Principal::Nf(_, core) => {
                // Under S-NIC there is no NF-visible physical addressing.
                Err(IsolationError::TlbMiss { core, addr }.into())
            }
        }
    }

    /// Physical read (`xkphys`-style on commodity NICs).
    pub fn read_phys(&self, who: Principal, addr: u64, out: &mut [u8]) -> Result<(), SnicError> {
        let checked = self.check_phys(who, addr, out.len());
        self.record(who, addr, out.len(), AccessKind::Load, checked.is_ok());
        checked?;
        self.mem.read(addr, out);
        Ok(())
    }

    /// Physical write.
    pub fn write_phys(&mut self, who: Principal, addr: u64, data: &[u8]) -> Result<(), SnicError> {
        let checked = self.check_phys(who, addr, data.len());
        self.record(who, addr, data.len(), AccessKind::Store, checked.is_ok());
        checked?;
        self.mem.write(addr, data);
        Ok(())
    }

    /// Physical `u64` read.
    pub fn read_phys_u64(&self, who: Principal, addr: u64) -> Result<u64, SnicError> {
        let mut buf = [0u8; 8];
        self.read_phys(who, addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Physical `u64` write.
    pub fn write_phys_u64(&mut self, who: Principal, addr: u64, v: u64) -> Result<(), SnicError> {
        self.write_phys(who, addr, &v.to_le_bytes())
    }

    /// Virtual read through `tlb` (the S-NIC path for NF cores).
    pub fn read_virt(&self, tlb: &Tlb, va: u64, out: &mut [u8]) -> Result<(), SnicError> {
        let pa = tlb.translate(va, false)?;
        if !self.mem.in_bounds(pa, out.len()) {
            return Err(SnicError::InvalidConfig(format!(
                "translated access oob at {pa:#x}"
            )));
        }
        self.mem.read(pa, out);
        Ok(())
    }

    /// Virtual write through `tlb`.
    pub fn write_virt(&mut self, tlb: &Tlb, va: u64, data: &[u8]) -> Result<(), SnicError> {
        let pa = tlb.translate(va, true)?;
        if !self.mem.in_bounds(pa, data.len()) {
            return Err(SnicError::InvalidConfig(format!(
                "translated access oob at {pa:#x}"
            )));
        }
        self.mem.write(pa, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::PageMapping;

    const MB: u64 = 1 << 20;

    fn commodity() -> MemoryGuard {
        MemoryGuard::new(ByteSize::mib(256), false)
    }

    fn snic() -> MemoryGuard {
        MemoryGuard::new(ByteSize::mib(256), true)
    }

    #[test]
    fn commodity_allows_cross_nf_physical_access() {
        let mut g = commodity();
        // NF 1 writes; NF 2 reads the same physical address — the packet
        // corruption attack's enabling condition.
        g.write_phys(Principal::Nf(NfId(1), CoreId(0)), 0x1000, b"secret")
            .unwrap();
        let mut buf = [0u8; 6];
        g.read_phys(Principal::Nf(NfId(2), CoreId(1)), 0x1000, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"secret");
    }

    #[test]
    fn snic_denies_nf_physical_access() {
        let g = snic();
        let mut buf = [0u8; 4];
        let err = g
            .read_phys(Principal::Nf(NfId(1), CoreId(0)), 0x1000, &mut buf)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::TlbMiss { .. })
        ));
    }

    #[test]
    fn snic_management_respects_denylist() {
        let mut g = snic();
        g.write_phys(Principal::TrustedHardware, 0x4000, b"nf-state")
            .unwrap();
        g.denylist_mut().deny(0x4000, 0x1000, NfId(5)).unwrap();
        let mut buf = [0u8; 8];
        let err = g
            .read_phys(Principal::Management, 0x4000, &mut buf)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::Denylisted { owner: NfId(5), .. })
        ));
        // Non-denied addresses remain readable.
        assert!(g.read_phys(Principal::Management, 0x8000, &mut buf).is_ok());
    }

    #[test]
    fn commodity_management_ignores_denylist() {
        // A commodity NIC has no denylist hardware; even if software
        // configures one, nothing enforces it.
        let mut g = commodity();
        g.denylist_mut().deny(0x4000, 0x1000, NfId(5)).unwrap();
        let mut buf = [0u8; 8];
        assert!(g.read_phys(Principal::Management, 0x4000, &mut buf).is_ok());
    }

    #[test]
    fn virt_access_through_tlb() {
        let mut g = snic();
        let mut tlb = Tlb::new(CoreId(2), 4);
        tlb.install(PageMapping {
            va: 0,
            pa: 16 * MB,
            page_size: 2 * MB,
            writable: true,
        })
        .unwrap();
        tlb.lock();
        g.write_virt(&tlb, 0x100, b"flow table").unwrap();
        let mut buf = [0u8; 10];
        g.read_virt(&tlb, 0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"flow table");
        // The bytes physically landed inside the mapped window.
        let mut phys = [0u8; 10];
        g.read_phys(Principal::TrustedHardware, 16 * MB + 0x100, &mut phys)
            .unwrap();
        assert_eq!(&phys, b"flow table");
    }

    #[test]
    fn virt_access_outside_mapping_faults() {
        let g = snic();
        let tlb = Tlb::new(CoreId(2), 4);
        let mut buf = [0u8; 4];
        assert!(g.read_virt(&tlb, 0x100, &mut buf).is_err());
    }

    #[test]
    fn out_of_bounds_physical_rejected_in_both_modes() {
        let mut buf = [0u8; 16];
        assert!(commodity()
            .read_phys(Principal::Management, 300 * MB, &mut buf)
            .is_err());
        assert!(snic()
            .read_phys(Principal::Management, 300 * MB, &mut buf)
            .is_err());
    }

    #[test]
    fn audit_log_records_grants_and_denials() {
        let mut g = snic();
        assert!(!g.audit_enabled());
        // Accesses before start_audit leave no trace.
        let mut buf = [0u8; 4];
        g.read_phys(Principal::Management, 0x1000, &mut buf)
            .unwrap();
        g.start_audit();
        assert!(g.audit_enabled());
        g.write_phys(Principal::TrustedHardware, 0x2000, b"ab")
            .unwrap();
        let _ = g.read_phys(Principal::Nf(NfId(1), CoreId(0)), 0x2000, &mut buf);
        let log = g.take_audit();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[0],
            AccessRecord {
                who: Principal::TrustedHardware,
                addr: 0x2000,
                len: 2,
                kind: AccessKind::Store,
                granted: true,
            }
        );
        assert_eq!(log[1].who, Principal::Nf(NfId(1), CoreId(0)));
        assert_eq!(log[1].kind, AccessKind::Load);
        assert!(!log[1].granted, "S-NIC refuses NF physical loads");
        // Draining keeps recording on.
        assert!(g.audit_enabled());
        assert!(g.take_audit().is_empty());
    }

    #[test]
    fn trusted_hardware_bypasses_denylist() {
        let mut g = snic();
        g.denylist_mut().deny(0x1000, 0x1000, NfId(1)).unwrap();
        let mut buf = [0u8; 4];
        assert!(g
            .read_phys(Principal::TrustedHardware, 0x1000, &mut buf)
            .is_ok());
    }
}
