//! The management-core memory denylist (§4.2).
//!
//! "The denylist page table, which resides in private hardware memory,
//! contains a mapping for a physical address if that address should not be
//! accessed by the management core." We model it as an interval set over
//! physical addresses, each interval tagged with the owning network
//! function; lookups are the dual page-table walk the paper describes.

use snic_types::{IsolationError, NfId, SnicError};

/// An interval-set denylist over physical addresses.
#[derive(Debug, Clone, Default)]
pub struct Denylist {
    /// Sorted, non-overlapping `(base, len, owner)` intervals.
    intervals: Vec<(u64, u64, NfId)>,
}

impl Denylist {
    /// An empty denylist.
    pub fn new() -> Denylist {
        Denylist::default()
    }

    /// Deny `base..base+len`, recording `owner` as the owning NF.
    ///
    /// Fails if the range is empty or overlaps an existing denied range:
    /// the ownership bitmap guarantees launch-time exclusivity, so an
    /// overlap indicates a bug in the launch path.
    pub fn deny(&mut self, base: u64, len: u64, owner: NfId) -> Result<(), SnicError> {
        if len == 0 {
            return Err(SnicError::InvalidConfig("empty denylist range".into()));
        }
        for &(b, l, _) in &self.intervals {
            let disjoint = base + len <= b || b + l <= base;
            if !disjoint {
                return Err(SnicError::InvalidConfig(format!(
                    "overlapping denylist range at {base:#x}"
                )));
            }
        }
        self.intervals.push((base, len, owner));
        self.intervals.sort_by_key(|&(b, _, _)| b);
        Ok(())
    }

    /// Remove every range owned by `owner` (the allowlisting step of
    /// `nf_teardown`); returns the ranges removed.
    pub fn allow_owner(&mut self, owner: NfId) -> Vec<(u64, u64)> {
        let mut removed = Vec::new();
        self.intervals.retain(|&(b, l, o)| {
            if o == owner {
                removed.push((b, l));
                false
            } else {
                true
            }
        });
        removed
    }

    /// The dual page-table walk: check whether `addr..addr+len` touches a
    /// denylisted page.
    pub fn check(&self, addr: u64, len: u64) -> Result<(), IsolationError> {
        let end = addr.saturating_add(len);
        // Intervals are sorted by base and disjoint; scan until past `end`.
        for &(b, l, owner) in &self.intervals {
            if b >= end {
                break;
            }
            if addr < b + l {
                return Err(IsolationError::Denylisted {
                    addr: addr.max(b),
                    owner,
                });
            }
        }
        Ok(())
    }

    /// The sorted, disjoint `(base, len, owner)` intervals — consumed by
    /// the static verifier's denylist-completeness check.
    pub fn intervals(&self) -> &[(u64, u64, NfId)] {
        &self.intervals
    }

    /// Number of denied intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if nothing is denied.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total denied bytes.
    pub fn denied_bytes(&self) -> u64 {
        self.intervals.iter().map(|&(_, l, _)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_denylist_allows_everything() {
        let d = Denylist::new();
        assert!(d.check(0, u64::MAX / 2).is_ok());
    }

    #[test]
    fn denied_range_rejected_with_owner() {
        let mut d = Denylist::new();
        d.deny(0x1000, 0x1000, NfId(7)).unwrap();
        match d.check(0x1800, 8) {
            Err(IsolationError::Denylisted { owner, .. }) => assert_eq!(owner, NfId(7)),
            other => panic!("expected Denylisted, got {other:?}"),
        }
    }

    #[test]
    fn boundary_conditions() {
        let mut d = Denylist::new();
        d.deny(0x1000, 0x1000, NfId(1)).unwrap();
        // One byte before and the first byte after are allowed.
        assert!(d.check(0xfff, 1).is_ok());
        assert!(d.check(0x2000, 1).is_ok());
        // First and last denied bytes are rejected.
        assert!(d.check(0x1000, 1).is_err());
        assert!(d.check(0x1fff, 1).is_err());
        // A straddling access is rejected.
        assert!(d.check(0xff0, 0x20).is_err());
    }

    #[test]
    fn allow_owner_removes_only_that_owner() {
        let mut d = Denylist::new();
        d.deny(0x1000, 0x1000, NfId(1)).unwrap();
        d.deny(0x3000, 0x1000, NfId(2)).unwrap();
        let removed = d.allow_owner(NfId(1));
        assert_eq!(removed, vec![(0x1000, 0x1000)]);
        assert!(d.check(0x1000, 1).is_ok());
        assert!(d.check(0x3000, 1).is_err());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn overlap_and_empty_ranges_rejected() {
        let mut d = Denylist::new();
        d.deny(0x1000, 0x1000, NfId(1)).unwrap();
        assert!(matches!(
            d.deny(0x1800, 0x1000, NfId(2)),
            Err(SnicError::InvalidConfig(_))
        ));
        assert!(d.deny(0x9000, 0, NfId(3)).is_err());
        // The failed calls left the interval set untouched.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn denied_bytes_accumulate() {
        let mut d = Denylist::new();
        d.deny(0, 100, NfId(1)).unwrap();
        d.deny(200, 300, NfId(2)).unwrap();
        assert_eq!(d.denied_bytes(), 400);
    }

    proptest! {
        #[test]
        fn check_agrees_with_naive_scan(
            ranges in proptest::collection::vec((0u64..10_000, 1u64..500), 0..10),
            probe in 0u64..12_000,
            len in 1u64..600,
        ) {
            // Build, skipping overlaps the same way a caller would.
            let mut d = Denylist::new();
            let mut kept: Vec<(u64, u64)> = Vec::new();
            for (i, &(b, l)) in ranges.iter().enumerate() {
                if kept.iter().all(|&(kb, kl)| b + l <= kb || kb + kl <= b) {
                    kept.push((b, l));
                    d.deny(b, l, NfId(i as u64)).unwrap();
                }
            }
            let naive_denied = kept.iter().any(|&(b, l)| probe < b + l && b < probe + len);
            prop_assert_eq!(d.check(probe, len).is_err(), naive_denied);
        }
    }
}
