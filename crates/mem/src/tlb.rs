//! Fully-associative, lockable TLBs.
//!
//! Under S-NIC, `nf_launch` installs a small number of TLB entries that
//! cover all valid mappings for a function, then sets the TLB read-only:
//! "any subsequent TLB misses represent a bug in the network function, and
//! cause S-NIC to destroy the function" (§4.2). Accelerator clusters and
//! packet schedulers get the same treatment (§4.3, §4.4).

use snic_types::{CoreId, IsolationError};

use crate::pagetable::{PageMapping, PageTable};

/// One TLB entry (same shape as a [`PageMapping`] plus validity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The mapping held by this entry.
    pub mapping: PageMapping,
}

/// A fully-associative TLB with a fixed number of entry slots.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Core this TLB serves (used in fault reports).
    core: CoreId,
    capacity: usize,
    entries: Vec<TlbEntry>,
    locked: bool,
}

impl Tlb {
    /// Create an empty, unlocked TLB with `capacity` entry slots.
    pub fn new(core: CoreId, capacity: usize) -> Tlb {
        Tlb {
            core,
            capacity,
            entries: Vec::new(),
            locked: false,
        }
    }

    /// Entry slots available in hardware.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once `lock` has been called.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Install one entry.
    ///
    /// Fails with [`IsolationError::TlbLocked`] after locking, and with
    /// [`IsolationError::TlbCapacity`] if hardware capacity is exceeded —
    /// the launch planner must size mappings before installation.
    pub fn install(&mut self, mapping: PageMapping) -> Result<(), IsolationError> {
        if self.locked {
            return Err(IsolationError::TlbLocked);
        }
        if self.entries.len() >= self.capacity {
            return Err(IsolationError::TlbCapacity {
                core: self.core,
                capacity: self.capacity,
            });
        }
        self.entries.push(TlbEntry { mapping });
        Ok(())
    }

    /// Install every mapping of `table`.
    pub fn install_table(&mut self, table: &PageTable) -> Result<(), IsolationError> {
        for m in table.mappings() {
            self.install(*m)?;
        }
        Ok(())
    }

    /// Make the TLB read-only (done by `nf_launch` once configured).
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Clear all entries and unlock (done by `nf_teardown`).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.locked = false;
    }

    /// Translate a virtual address for a load (`write = false`) or store.
    ///
    /// A miss — or a store through a read-only entry — is an isolation
    /// error; under S-NIC the device model treats it as fatal for the NF.
    pub fn translate(&self, va: u64, write: bool) -> Result<u64, IsolationError> {
        for e in &self.entries {
            if e.mapping.covers(va) {
                if write && !e.mapping.writable {
                    return Err(IsolationError::TlbMiss {
                        core: self.core,
                        addr: va,
                    });
                }
                return Ok(e.mapping.translate(va));
            }
        }
        Err(IsolationError::TlbMiss {
            core: self.core,
            addr: va,
        })
    }

    /// The physical ranges reachable through this TLB.
    pub fn reachable_ranges(&self) -> Vec<(u64, u64)> {
        self.entries
            .iter()
            .map(|e| (e.mapping.pa, e.mapping.page_size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn mapping(va: u64, pa: u64, size: u64, writable: bool) -> PageMapping {
        PageMapping {
            va,
            pa,
            page_size: size,
            writable,
        }
    }

    fn loaded_tlb() -> Tlb {
        let mut t = Tlb::new(CoreId(1), 8);
        t.install(mapping(0, 32 * MB, 2 * MB, true)).unwrap();
        t.install(mapping(2 * MB, 128 * MB, 2 * MB, false)).unwrap();
        t
    }

    #[test]
    fn translate_hits() {
        let t = loaded_tlb();
        assert_eq!(t.translate(100, false).unwrap(), 32 * MB + 100);
        assert_eq!(t.translate(2 * MB + 8, false).unwrap(), 128 * MB + 8);
    }

    #[test]
    fn miss_is_isolation_error() {
        let t = loaded_tlb();
        match t.translate(64 * MB, false) {
            Err(IsolationError::TlbMiss { core, addr }) => {
                assert_eq!(core, CoreId(1));
                assert_eq!(addr, 64 * MB);
            }
            other => panic!("expected TlbMiss, got {other:?}"),
        }
    }

    #[test]
    fn store_through_readonly_entry_faults() {
        let t = loaded_tlb();
        assert!(t.translate(2 * MB + 8, true).is_err());
        assert!(t.translate(100, true).is_ok());
    }

    #[test]
    fn locked_tlb_rejects_installs() {
        let mut t = loaded_tlb();
        t.lock();
        assert!(t.is_locked());
        let err = t.install(mapping(4 * MB, 0, 2 * MB, true)).unwrap_err();
        assert_eq!(err, IsolationError::TlbLocked);
        // Translation still works while locked.
        assert!(t.translate(0, false).is_ok());
    }

    #[test]
    fn reset_unlocks_and_clears() {
        let mut t = loaded_tlb();
        t.lock();
        t.reset();
        assert!(!t.is_locked());
        assert!(t.is_empty());
        assert!(t.translate(0, false).is_err());
    }

    #[test]
    fn capacity_overflow_is_typed_error() {
        let mut t = Tlb::new(CoreId(0), 1);
        t.install(mapping(0, 0, 2 * MB, true)).unwrap();
        let err = t
            .install(mapping(2 * MB, 2 * MB, 2 * MB, true))
            .unwrap_err();
        assert_eq!(
            err,
            IsolationError::TlbCapacity {
                core: CoreId(0),
                capacity: 1,
            }
        );
    }

    #[test]
    fn install_table_copies_all() {
        let mut pt = PageTable::new();
        pt.map(mapping(0, 0, 2 * MB, true));
        pt.map(mapping(2 * MB, 4 * MB, 2 * MB, true));
        let mut t = Tlb::new(CoreId(3), 4);
        t.install_table(&pt).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.reachable_ranges(), vec![(0, 2 * MB), (4 * MB, 2 * MB)]);
    }
}
