//! The page-allocation planner behind Tables 5 and 6.
//!
//! Given the sizes of a function's memory regions (text, static data,
//! code, heap+stack) and a set of allowed page sizes, compute the number
//! of TLB entries needed to map everything while minimizing wasted
//! (over-allocated) memory: "When allocating pages for a function's code,
//! static data, heap, and stack regions, we try to minimize the amount of
//! wasted memory" (Table 6 caption).
//!
//! Note on naming: §5.2 of the paper defines *Flex-low* as
//! {128 KB, 2 MB, 64 MB} and *Flex-high* as {2 MB, 32 MB, 128 MB};
//! Table 5's row labels are swapped relative to that definition. We follow
//! the §5.2 text (and Table 6, which is consistent with it).

use snic_types::ByteSize;

/// Named page-size policies from the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagePolicy {
    /// Only 2 MB pages.
    Equal,
    /// 128 KB, 2 MB, and 64 MB pages.
    FlexLow,
    /// 2 MB, 32 MB, and 128 MB pages.
    FlexHigh,
    /// Arbitrary page sizes (bytes); must be non-empty.
    Custom(Vec<u64>),
}

impl PagePolicy {
    /// The allowed page sizes in ascending order.
    pub fn page_sizes(&self) -> Vec<u64> {
        const KB: u64 = 1 << 10;
        const MB: u64 = 1 << 20;
        let mut sizes = match self {
            PagePolicy::Equal => vec![2 * MB],
            PagePolicy::FlexLow => vec![128 * KB, 2 * MB, 64 * MB],
            PagePolicy::FlexHigh => vec![2 * MB, 32 * MB, 128 * MB],
            PagePolicy::Custom(s) => s.clone(),
        };
        assert!(!sizes.is_empty(), "page policy with no sizes");
        sizes.sort_unstable();
        sizes
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PagePolicy::Equal => "Equal",
            PagePolicy::FlexLow => "Flex-low",
            PagePolicy::FlexHigh => "Flex-high",
            PagePolicy::Custom(_) => "Custom",
        }
    }
}

/// The plan for one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPlan {
    /// Requested region size.
    pub requested: ByteSize,
    /// Pages chosen: `(page_size, count)` pairs, largest first.
    pub pages: Vec<(u64, u64)>,
}

impl RegionPlan {
    /// Number of TLB entries (total page count).
    pub fn entries(&self) -> u64 {
        self.pages.iter().map(|&(_, c)| c).sum()
    }

    /// Total bytes allocated.
    pub fn allocated(&self) -> ByteSize {
        ByteSize(self.pages.iter().map(|&(s, c)| s * c).sum())
    }

    /// Bytes over-allocated relative to the request.
    pub fn waste(&self) -> ByteSize {
        self.allocated().saturating_sub(self.requested)
    }
}

/// Aggregate plan over several regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Per-region plans in input order.
    pub regions: Vec<RegionPlan>,
}

impl PlanOutcome {
    /// Total TLB entries across all regions.
    pub fn total_entries(&self) -> u64 {
        self.regions.iter().map(|r| r.entries()).sum()
    }

    /// Total allocated bytes.
    pub fn total_allocated(&self) -> ByteSize {
        ByteSize(self.regions.iter().map(|r| r.allocated().bytes()).sum())
    }

    /// Total wasted bytes.
    pub fn total_waste(&self) -> ByteSize {
        ByteSize(self.regions.iter().map(|r| r.waste().bytes()).sum())
    }
}

/// Plan one region: waste-minimizing greedy cover.
///
/// Page sizes in the paper's policies divide each other evenly, so taking
/// as many of the largest page as fits, recursing downward, and covering
/// the final remainder with the smallest page size yields the minimum
/// possible waste; among waste-minimal covers it also minimizes entries at
/// every level above the smallest.
pub fn plan_region(size: ByteSize, policy: &PagePolicy) -> RegionPlan {
    let sizes = policy.page_sizes();
    let mut pages = Vec::new();
    let mut remaining = size.bytes();
    for (idx, &ps) in sizes.iter().enumerate().rev() {
        if remaining == 0 {
            break;
        }
        if idx == 0 {
            // Smallest size: cover the remainder, rounding up.
            let count = remaining.div_ceil(ps);
            pages.push((ps, count));
            remaining = 0;
        } else {
            let count = remaining / ps;
            if count > 0 {
                pages.push((ps, count));
                remaining -= count * ps;
            }
        }
    }
    RegionPlan {
        requested: size,
        pages,
    }
}

/// Plan a set of regions under one policy.
pub fn plan_regions(regions: &[ByteSize], policy: &PagePolicy) -> PlanOutcome {
    PlanOutcome {
        regions: regions.iter().map(|&r| plan_region(r, policy)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Region sizes from Table 6 are given in MB with two decimals; this
    /// helper converts them to bytes.
    fn mb(v: f64) -> ByteSize {
        ByteSize((v * 1024.0 * 1024.0) as u64)
    }

    /// The Monitor NF's Table 6 profile: text/data/code/heap in MB.
    fn monitor_regions() -> Vec<ByteSize> {
        vec![mb(0.85), mb(0.05), mb(2.48), mb(357.15)]
    }

    #[test]
    fn monitor_equal_matches_paper_183() {
        let plan = plan_regions(&monitor_regions(), &PagePolicy::Equal);
        assert_eq!(plan.total_entries(), 183);
    }

    #[test]
    fn monitor_flex_low_matches_paper_46() {
        let plan = plan_regions(&monitor_regions(), &PagePolicy::FlexLow);
        assert_eq!(plan.total_entries(), 46);
    }

    #[test]
    fn monitor_flex_high_matches_paper_12() {
        let plan = plan_regions(&monitor_regions(), &PagePolicy::FlexHigh);
        assert_eq!(plan.total_entries(), 12);
    }

    #[test]
    fn firewall_equal_matches_paper_11() {
        let fw = vec![mb(0.87), mb(0.08), mb(2.50), mb(13.75)];
        assert_eq!(plan_regions(&fw, &PagePolicy::Equal).total_entries(), 11);
        assert_eq!(plan_regions(&fw, &PagePolicy::FlexHigh).total_entries(), 11);
    }

    #[test]
    fn waste_is_bounded_by_smallest_page_per_region() {
        let policy = PagePolicy::FlexLow;
        let smallest = policy.page_sizes()[0];
        for size in [1u64, 1000, 1 << 20, 50 << 20, 357 << 20] {
            let plan = plan_region(ByteSize(size), &policy);
            assert!(plan.waste().bytes() < smallest, "size {size}");
            assert!(plan.allocated().bytes() >= size);
        }
    }

    #[test]
    fn zero_region_needs_no_pages() {
        let plan = plan_region(ByteSize::ZERO, &PagePolicy::Equal);
        assert_eq!(plan.entries(), 0);
        assert_eq!(plan.waste(), ByteSize::ZERO);
    }

    #[test]
    fn exact_multiple_has_zero_waste() {
        let plan = plan_region(ByteSize::mib(64), &PagePolicy::FlexLow);
        assert_eq!(plan.waste(), ByteSize::ZERO);
        assert_eq!(plan.entries(), 1, "one 64 MB page suffices");
    }

    #[test]
    fn flex_low_prefers_small_pages_over_waste() {
        // 1.15 MB: one 2 MB page wastes 0.85 MB, but ten 128 KB pages
        // waste only 0.1 MB — the planner must choose the latter.
        let plan = plan_region(
            ByteSize((1.15 * 1024.0 * 1024.0) as u64),
            &PagePolicy::FlexLow,
        );
        assert_eq!(plan.pages, vec![(128 << 10, 10)]);
    }

    #[test]
    fn policy_page_sizes_sorted_ascending() {
        for p in [PagePolicy::Equal, PagePolicy::FlexLow, PagePolicy::FlexHigh] {
            let s = p.page_sizes();
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn custom_policy_round_trips() {
        let p = PagePolicy::Custom(vec![1 << 20, 1 << 16]);
        assert_eq!(p.page_sizes(), vec![1 << 16, 1 << 20]);
        let plan = plan_region(ByteSize((1 << 20) + 5), &p);
        assert_eq!(plan.entries(), 2);
    }
}
