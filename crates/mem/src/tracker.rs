//! Allocation time-series accounting.
//!
//! S-NIC preallocates a fixed amount of memory at `nf_launch` time and has
//! no OS to grow it later (§4.8), so a function must be provisioned for
//! its *peak* usage. Appendix C (Figure 7, Table 8) quantifies the cost:
//! the Monitor NF's peak is inflated by DPDK hugepage initialization
//! (which temporarily doubles the resident data) and by `HashMap`
//! resizings (old + new tables coexist during rehash). This module records
//! an allocation event log and derives the peak, the steady state, and the
//! memory utilization ratio (MUR).

use snic_types::{ByteSize, Picos};

/// One allocation or release event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocEvent {
    /// When the event occurred.
    pub time: Picos,
    /// Bytes allocated (positive) or released (negative).
    pub delta: i64,
    /// Label for reporting (static to keep the log compact).
    pub label: &'static str,
}

/// An append-only allocation event log with peak tracking.
#[derive(Debug, Clone, Default)]
pub struct AllocationTracker {
    events: Vec<AllocEvent>,
    current: i64,
    peak: i64,
}

impl AllocationTracker {
    /// A fresh tracker with nothing allocated.
    pub fn new() -> AllocationTracker {
        AllocationTracker::default()
    }

    /// Record an allocation.
    pub fn alloc(&mut self, time: Picos, bytes: ByteSize, label: &'static str) {
        self.push(time, bytes.bytes() as i64, label);
    }

    /// Record a release.
    ///
    /// # Panics
    ///
    /// Panics if more is released than is currently allocated — that is a
    /// bookkeeping bug in the caller.
    pub fn release(&mut self, time: Picos, bytes: ByteSize, label: &'static str) {
        assert!(
            self.current >= bytes.bytes() as i64,
            "release of {} exceeds current {}",
            bytes,
            self.current
        );
        self.push(time, -(bytes.bytes() as i64), label);
    }

    fn push(&mut self, time: Picos, delta: i64, label: &'static str) {
        if let Some(last) = self.events.last() {
            assert!(time >= last.time, "allocation events must be time-ordered");
        }
        self.current += delta;
        self.peak = self.peak.max(self.current);
        self.events.push(AllocEvent { time, delta, label });
    }

    /// Currently allocated bytes.
    pub fn current(&self) -> ByteSize {
        ByteSize(self.current as u64)
    }

    /// Peak allocation over the whole log.
    ///
    /// This is the minimum S-NIC preallocation that would have kept the
    /// function alive.
    pub fn peak(&self) -> ByteSize {
        ByteSize(self.peak as u64)
    }

    /// Memory utilization ratio: steady-state ÷ peak (Table 8).
    ///
    /// The steady state is the allocation level at the end of the log.
    /// Returns 1.0 for an empty log.
    pub fn mur(&self) -> f64 {
        if self.peak == 0 {
            return 1.0;
        }
        self.current as f64 / self.peak as f64
    }

    /// The raw event log.
    pub fn events(&self) -> &[AllocEvent] {
        &self.events
    }

    /// Sample the usage curve at `samples` evenly spaced instants across
    /// the log's time span: the Figure 7 time series.
    pub fn time_series(&self, samples: usize) -> Vec<(Picos, ByteSize)> {
        if self.events.is_empty() || samples == 0 {
            return Vec::new();
        }
        let start = self.events.first().expect("non-empty").time;
        let end = self.events.last().expect("non-empty").time;
        let span = end.0.saturating_sub(start.0).max(1);
        let mut out = Vec::with_capacity(samples);
        let mut level: i64 = 0;
        let mut idx = 0usize;
        for s in 0..samples {
            let t = Picos(start.0 + span * s as u64 / (samples.max(2) - 1).max(1) as u64);
            while idx < self.events.len() && self.events[idx].time <= t {
                level += self.events[idx].delta;
                idx += 1;
            }
            out.push((t, ByteSize(level.max(0) as u64)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_exceeds_steady_state_after_spike() {
        let mut t = AllocationTracker::new();
        t.alloc(Picos(0), ByteSize::mib(100), "base");
        t.alloc(Picos(10), ByteSize::mib(100), "hugepage temp");
        t.release(Picos(20), ByteSize::mib(100), "hugepage temp");
        assert_eq!(t.peak(), ByteSize::mib(200));
        assert_eq!(t.current(), ByteSize::mib(100));
        assert!((t.mur() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mur_one_when_no_spike() {
        let mut t = AllocationTracker::new();
        t.alloc(Picos(0), ByteSize::mib(50), "base");
        assert!((t.mur() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_mur_is_one() {
        assert!((AllocationTracker::new().mur() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds current")]
    fn over_release_panics() {
        let mut t = AllocationTracker::new();
        t.alloc(Picos(0), ByteSize::mib(1), "a");
        t.release(Picos(1), ByteSize::mib(2), "a");
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_events_panic() {
        let mut t = AllocationTracker::new();
        t.alloc(Picos(10), ByteSize::mib(1), "a");
        t.alloc(Picos(5), ByteSize::mib(1), "b");
    }

    #[test]
    fn time_series_tracks_levels() {
        let mut t = AllocationTracker::new();
        t.alloc(Picos(0), ByteSize::mib(10), "a");
        t.alloc(Picos(100), ByteSize::mib(30), "b");
        t.release(Picos(200), ByteSize::mib(30), "b");
        let series = t.time_series(3);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, ByteSize::mib(10));
        assert_eq!(series[1].1, ByteSize::mib(40));
        assert_eq!(series[2].1, ByteSize::mib(10));
    }

    #[test]
    fn time_series_empty_log() {
        assert!(AllocationTracker::new().time_series(10).is_empty());
    }

    #[test]
    fn hashmap_resize_pattern_inflates_peak() {
        // Model a map that doubles twice: during each rehash, old + new
        // tables coexist.
        let mut t = AllocationTracker::new();
        let mut size = 64u64;
        t.alloc(Picos(0), ByteSize::mib(size), "map");
        for step in 1..=2u64 {
            let new = size * 2;
            t.alloc(Picos(step * 10), ByteSize::mib(new), "map-resize");
            t.release(Picos(step * 10 + 1), ByteSize::mib(size), "map-old");
            size = new;
        }
        assert_eq!(t.current(), ByteSize::mib(256));
        // Peak hit during the last rehash: 128 (old) + 256 (new).
        assert_eq!(t.peak(), ByteSize::mib(384));
        assert!((t.mur() - 256.0 / 384.0).abs() < 1e-9);
    }
}
