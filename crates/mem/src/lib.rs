//! The S-NIC memory subsystem.
//!
//! Implements the mechanisms of §4.2 of the paper — single-owner RAM
//! semantics — and the TLB-sizing machinery behind Tables 5 and 6:
//!
//! - [`phys`]: sparse physical memory with byte-level content, so the §3.3
//!   attacks can really read and corrupt data,
//! - [`pagetable`]: virtual→physical mappings with mixed page sizes,
//! - [`tlb`]: fully-associative, lockable TLBs (read-only after
//!   `nf_launch`; misses are fatal under S-NIC),
//! - [`denylist`]: the management-core memory denylist implemented as a
//!   dual page-table walk,
//! - [`ownership`]: the trusted hardware's page-ownership bitmap,
//! - [`guard`]: mediated access combining TLB + denylist + ownership,
//! - [`planner`]: the page-allocation planner that minimizes wasted
//!   memory for a set of allowed page sizes (Equal / Flex-low /
//!   Flex-high configurations),
//! - [`tracker`]: allocation time-series accounting (DPDK hugepage-init
//!   and `HashMap`-resize spikes) used for Figure 7 and the memory
//!   utilization ratios of Table 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod denylist;
pub mod guard;
pub mod ownership;
pub mod pagetable;
pub mod phys;
pub mod planner;
pub mod tlb;
pub mod tracker;

pub use denylist::Denylist;
pub use guard::{AccessKind, AccessRecord, MemoryGuard, Principal};
pub use ownership::PageOwnership;
pub use pagetable::{PageMapping, PageTable};
pub use phys::{PhysMem, PAGE_GRANULE};
pub use planner::{plan_regions, PagePolicy, PlanOutcome, RegionPlan};
pub use tlb::{Tlb, TlbEntry};
pub use tracker::{AllocEvent, AllocationTracker};
