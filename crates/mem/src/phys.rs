//! Sparse physical memory with real byte contents.
//!
//! The concrete attacks of §3.3 (packet corruption, DPI ruleset stealing)
//! work by reading and writing *actual bytes* through flat physical
//! addressing, so the device model needs a backing store, not just an
//! address-range bookkeeping structure. Memory is materialized lazily in
//! 4 KiB granules; untouched granules read as zero.

use std::collections::HashMap;

use snic_types::ByteSize;

/// Granule size for lazy materialization (also the ownership granule).
pub const PAGE_GRANULE: u64 = 4096;

/// Sparse, lazily-materialized physical memory.
#[derive(Debug, Default)]
pub struct PhysMem {
    granules: HashMap<u64, Box<[u8]>>,
    size: u64,
}

impl PhysMem {
    /// Create a physical memory of `size` bytes.
    pub fn new(size: ByteSize) -> PhysMem {
        PhysMem {
            granules: HashMap::new(),
            size: size.bytes(),
        }
    }

    /// Total addressable size in bytes.
    pub fn size(&self) -> ByteSize {
        ByteSize(self.size)
    }

    /// True if `addr..addr+len` lies inside the address space.
    pub fn in_bounds(&self, addr: u64, len: usize) -> bool {
        addr.checked_add(len as u64)
            .is_some_and(|end| end <= self.size)
    }

    /// Read `out.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds; callers (the guard layer)
    /// bounds-check first.
    pub fn read(&self, addr: u64, out: &mut [u8]) {
        assert!(
            self.in_bounds(addr, out.len()),
            "physical read out of bounds"
        );
        let mut done = 0usize;
        while done < out.len() {
            let cur = addr + done as u64;
            let g = cur / PAGE_GRANULE;
            let off = (cur % PAGE_GRANULE) as usize;
            let n = ((PAGE_GRANULE as usize) - off).min(out.len() - done);
            match self.granules.get(&g) {
                Some(data) => out[done..done + n].copy_from_slice(&data[off..off + n]),
                None => out[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Write `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        assert!(
            self.in_bounds(addr, data.len()),
            "physical write out of bounds"
        );
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let g = cur / PAGE_GRANULE;
            let off = (cur % PAGE_GRANULE) as usize;
            let n = ((PAGE_GRANULE as usize) - off).min(data.len() - done);
            let granule = self
                .granules
                .entry(g)
                .or_insert_with(|| vec![0u8; PAGE_GRANULE as usize].into_boxed_slice());
            granule[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Read a `u64` (little-endian) at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Write a `u64` (little-endian) at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Zero the byte range `addr..addr+len` (used by `nf_teardown`'s
    /// memory scrubbing, §4.6).
    pub fn scrub(&mut self, addr: u64, len: u64) {
        assert!(self.in_bounds(addr, len as usize), "scrub out of bounds");
        // Drop fully-covered granules; zero the partial edges.
        let first = addr / PAGE_GRANULE;
        let last = (addr + len).div_ceil(PAGE_GRANULE);
        for g in first..last {
            let g_start = g * PAGE_GRANULE;
            let g_end = g_start + PAGE_GRANULE;
            if addr <= g_start && addr + len >= g_end {
                self.granules.remove(&g);
            } else if let Some(data) = self.granules.get_mut(&g) {
                let s = addr.max(g_start) - g_start;
                let e = (addr + len).min(g_end) - g_start;
                data[s as usize..e as usize].fill(0);
            }
        }
    }

    /// Number of materialized granules (resident footprint of the model).
    pub fn resident_granules(&self) -> usize {
        self.granules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(ByteSize::mib(64))
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let m = mem();
        let mut buf = [0xffu8; 16];
        m.read(0x1234, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        m.write(0x10_000, b"network function state");
        let mut buf = [0u8; 22];
        m.read(0x10_000, &mut buf);
        assert_eq!(&buf, b"network function state");
    }

    #[test]
    fn write_straddling_granules() {
        let mut m = mem();
        let addr = PAGE_GRANULE - 3;
        m.write(addr, &[1, 2, 3, 4, 5, 6]);
        let mut buf = [0u8; 6];
        m.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(m.resident_granules(), 2);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = mem();
        m.write_u64(0x2000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x2000), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn scrub_zeroes_range() {
        let mut m = mem();
        m.write(0x3000, &[0xaa; 8192]);
        m.scrub(0x3000, 8192);
        let mut buf = [0xffu8; 8192];
        m.read(0x3000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn scrub_partial_granule_preserves_neighbors() {
        let mut m = mem();
        m.write(0, &[0x11; 4096]);
        m.scrub(100, 200);
        let mut buf = [0u8; 4096];
        m.read(0, &mut buf);
        assert_eq!(buf[99], 0x11);
        assert_eq!(buf[100], 0);
        assert_eq!(buf[299], 0);
        assert_eq!(buf[300], 0x11);
    }

    #[test]
    fn scrub_reclaims_full_granules() {
        let mut m = mem();
        m.write(0, &[0x22; 16384]);
        assert_eq!(m.resident_granules(), 4);
        m.scrub(0, 16384);
        assert_eq!(m.resident_granules(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let m = PhysMem::new(ByteSize::kib(4));
        let mut buf = [0u8; 8];
        m.read(4090, &mut buf);
    }

    #[test]
    fn bounds_check() {
        let m = PhysMem::new(ByteSize::kib(4));
        assert!(m.in_bounds(0, 4096));
        assert!(!m.in_bounds(1, 4096));
        assert!(!m.in_bounds(u64::MAX, 2));
    }
}
