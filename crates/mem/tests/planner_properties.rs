//! Property-based tests of the page-allocation planner.

use proptest::prelude::*;
use snic_mem::planner::{plan_region, plan_regions, PagePolicy};
use snic_types::ByteSize;

fn policies() -> Vec<PagePolicy> {
    vec![PagePolicy::Equal, PagePolicy::FlexLow, PagePolicy::FlexHigh]
}

proptest! {
    #[test]
    fn coverage_and_waste_bound(size in 1u64..(512 << 20)) {
        for policy in policies() {
            let plan = plan_region(ByteSize(size), &policy);
            // Always covers the request.
            prop_assert!(plan.allocated().bytes() >= size, "{policy:?}");
            // Waste below one smallest page.
            let smallest = policy.page_sizes()[0];
            prop_assert!(plan.waste().bytes() < smallest, "{policy:?}");
            prop_assert!(plan.entries() > 0);
        }
    }

    #[test]
    fn equal_policy_entry_count_is_ceiling(size in 1u64..(512 << 20)) {
        let plan = plan_region(ByteSize(size), &PagePolicy::Equal);
        prop_assert_eq!(plan.entries(), size.div_ceil(2 << 20));
    }

    #[test]
    fn bigger_pages_never_need_more_entries(size in 1u64..(512 << 20)) {
        // Flex-high's largest page dominates Equal's, so it can never
        // need more entries than Equal.
        let equal = plan_region(ByteSize(size), &PagePolicy::Equal).entries();
        let flex_high = plan_region(ByteSize(size), &PagePolicy::FlexHigh).entries();
        prop_assert!(flex_high <= equal, "{flex_high} > {equal} at {size}");
    }

    #[test]
    fn multi_region_totals_are_sums(
        regions in proptest::collection::vec(1u64..(64 << 20), 1..6),
    ) {
        let sizes: Vec<ByteSize> = regions.iter().map(|&r| ByteSize(r)).collect();
        let outcome = plan_regions(&sizes, &PagePolicy::FlexLow);
        let per_region_sum: u64 =
            sizes.iter().map(|&s| plan_region(s, &PagePolicy::FlexLow).entries()).sum();
        prop_assert_eq!(outcome.total_entries(), per_region_sum);
        prop_assert!(outcome.total_allocated().bytes() >= regions.iter().sum::<u64>());
    }

    #[test]
    fn plans_are_deterministic(size in 1u64..(256 << 20)) {
        for policy in policies() {
            prop_assert_eq!(
                plan_region(ByteSize(size), &policy),
                plan_region(ByteSize(size), &policy)
            );
        }
    }
}
