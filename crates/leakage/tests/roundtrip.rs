//! Property-based round-trip guarantees for the covert channels.
//!
//! Commodity mode: every family transmits arbitrary seeded payloads
//! with **zero** bit errors across exploitable geometries, epoch
//! lengths, and payload lengths — the channels are real, not
//! statistical flukes. S-NIC mode: the decoder's output is bit-for-bit
//! identical for a payload and its complement (the receiver observes
//! *nothing* payload-dependent), and the resulting BER sits in the
//! wide band a payload-independent decoder must produce on balanced
//! random payloads.

use proptest::prelude::*;
use snic_leakage::{payload_bits, Channel, ChannelFamily, Geometry, Mode};

/// Exploitable geometries: enough L2 ways that the prime+probe set
/// survives the receiver's own L1 flush (see
/// `snic_nf::covert::pp_primed_ways`).
fn exploitable_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        Just(Geometry {
            ways: 16,
            sets: 512
        }),
        Just(Geometry {
            ways: 8,
            sets: 1024
        }),
        Just(Geometry { ways: 8, sets: 128 }),
        Just(Geometry {
            ways: 12,
            sets: 256
        }),
    ]
}

fn family() -> impl Strategy<Value = ChannelFamily> {
    prop_oneof![
        Just(ChannelFamily::Cache),
        Just(ChannelFamily::Bus),
        Just(ChannelFamily::Scrub),
    ]
}

fn epoch() -> impl Strategy<Value = u64> {
    prop_oneof![Just(64u64), Just(96), Just(192)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn commodity_round_trip_is_error_free(
        fam in family(),
        geom in exploitable_geometry(),
        ep in epoch(),
        seed in any::<u64>(),
        len in 4usize..12,
    ) {
        let ch = Channel::new(fam, geom, ep, Mode::Commodity);
        for (i, bit) in payload_bits(seed, len).into_iter().enumerate() {
            let trial = ch.transmit(bit);
            prop_assert_eq!(
                trial.decoded, bit,
                "{:?} {} epoch {}: bit {} of seed {:#x} flipped",
                fam, geom.label(), ep, i, seed
            );
        }
    }

    #[test]
    fn snic_decoder_is_payload_independent(
        fam in family(),
        geom in exploitable_geometry(),
        ep in epoch(),
        seed in any::<u64>(),
    ) {
        let ch = Channel::new(fam, geom, ep, Mode::Snic);
        let payload = payload_bits(seed, 32);
        let mut errors = 0u32;
        for &bit in &payload {
            let trial = ch.transmit(bit);
            let anti = ch.transmit(!bit);
            // The decoder cannot tell a bit from its complement...
            prop_assert_eq!(
                trial.decoded, anti.decoded,
                "{:?} {} epoch {}: S-NIC decode depended on the payload",
                fam, geom.label(), ep
            );
            // ...and the raw observable is the solo constant either way.
            prop_assert_eq!(trial.observable, ch.solo_baseline());
            prop_assert_eq!(anti.observable, ch.solo_baseline());
            errors += u32::from(trial.decoded != bit);
        }
        // A payload-independent decoder errs on every 1 (or every 0) of
        // a balanced random payload: BER lands well inside [1/8, 7/8]
        // for 32 bits, and nowhere near the 0 a working channel shows.
        let ber = f64::from(errors) / payload.len() as f64;
        prop_assert!(
            (0.125..=0.875).contains(&ber),
            "{:?}: S-NIC BER {} outside the payload-independence band",
            fam, ber
        );
    }
}
