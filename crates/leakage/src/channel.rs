//! The three channel families and the per-bit transmit/decode loop.
//!
//! One bit is one engine run: the receiver and sender streams for that
//! bit value run colocated through `run_colocated_ids_sink`, and the
//! decoder compares the receiver's telemetry against a *solo baseline*
//! (the receiver running alone under the same machine configuration,
//! measured once per channel instance). The baseline is the decoder's
//! calibration step — exactly what a real attacker does by training on
//! an idle machine — and it also absorbs every payload-independent
//! artifact of the configuration, such as the temporal arbiter delaying
//! the receiver's own grants to its epoch.
//!
//! The decoder reads *only* the telemetry [`Summary`]: L2 miss counts
//! for the cache channel, delayed-grant counts for the bus and scrub
//! channels. Nothing outside the receiver's own observable counters
//! enters the bit decision.

use snic_nf::covert;
use snic_telemetry::{metrics, Recorder, Summary};
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::run_colocated_ids_sink;
use snic_uarch::stream::{Access, EventSource, ReplayStream};

/// Tenants in every leakage scenario: receiver (0) and sender (1).
pub const TENANTS: u32 = 2;

/// One covert-channel family (§3.3 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChannelFamily {
    /// Prime+probe L2 cache occupancy.
    Cache,
    /// FCFS bus grant-latency contention.
    Bus,
    /// Teardown-scrub duration, observed through bus contention.
    Scrub,
}

impl ChannelFamily {
    /// Every family, in matrix order.
    pub const ALL: [ChannelFamily; 3] = [
        ChannelFamily::Cache,
        ChannelFamily::Bus,
        ChannelFamily::Scrub,
    ];

    /// Stable one-word label used in the matrix text form.
    pub fn label(self) -> &'static str {
        match self {
            ChannelFamily::Cache => "cache",
            ChannelFamily::Bus => "bus",
            ChannelFamily::Scrub => "scrub",
        }
    }

    /// Parse a [`ChannelFamily::label`].
    pub fn from_label(s: &str) -> Option<ChannelFamily> {
        ChannelFamily::ALL.into_iter().find(|f| f.label() == s)
    }
}

/// An L2 geometry under sweep: associativity × set count (64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Geometry {
    /// L2 associativity.
    pub ways: u32,
    /// L2 set count.
    pub sets: u64,
}

impl Geometry {
    /// Total L2 bytes this geometry describes.
    pub fn l2_bytes(self) -> u64 {
        self.sets * u64::from(self.ways) * covert::LINE
    }

    /// Stable label used in the matrix text form, e.g. `16w512s`.
    pub fn label(self) -> String {
        format!("{}w{}s", self.ways, self.sets)
    }

    /// Parse a [`Geometry::label`].
    pub fn from_label(s: &str) -> Option<Geometry> {
        let (ways, rest) = s.split_once('w')?;
        let sets = rest.strip_suffix('s')?;
        Some(Geometry {
            ways: ways.parse().ok()?,
            sets: sets.parse().ok()?,
        })
    }
}

/// Isolation mode under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Shared LRU L2, FCFS bus.
    Commodity,
    /// Statically way-partitioned L2, temporal bus (§4.2 + §4.5).
    Snic,
}

impl Mode {
    /// Both modes, commodity first.
    pub const ALL: [Mode; 2] = [Mode::Commodity, Mode::Snic];

    /// Stable label used in the matrix text form.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Commodity => "commodity",
            Mode::Snic => "snic",
        }
    }

    /// Parse a [`Mode::label`].
    pub fn from_label(s: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// The machine a (geometry, epoch, mode) cell runs on: the paper
/// machine with the L2 geometry and temporal epoch overridden.
pub fn machine_config(geom: Geometry, epoch_cycles: u64, mode: Mode) -> MachineConfig {
    let mut cfg = match mode {
        Mode::Commodity => MachineConfig::commodity(TENANTS, geom.l2_bytes()),
        Mode::Snic => MachineConfig::snic(TENANTS, geom.l2_bytes()),
    };
    cfg.l2.ways = geom.ways;
    cfg.epoch_cycles = epoch_cycles;
    cfg
}

/// The receiver's reference stream for one bit slot.
pub fn receiver_stream(family: ChannelFamily, geom: Geometry) -> Vec<Access> {
    match family {
        ChannelFamily::Cache => covert::prime_probe_receiver(geom.sets, geom.ways),
        ChannelFamily::Bus => covert::bus_receiver(),
        ChannelFamily::Scrub => covert::scrub_receiver(),
    }
}

/// The sender's reference stream encoding `bit`.
pub fn sender_stream(family: ChannelFamily, bit: bool, geom: Geometry) -> Vec<Access> {
    match family {
        ChannelFamily::Cache => covert::prime_probe_sender(bit, geom.sets, geom.ways),
        ChannelFamily::Bus => covert::bus_sender(bit),
        ChannelFamily::Scrub => covert::scrub_stream(bit),
    }
}

/// Decode threshold on the receiver's observable delta (colocated −
/// solo): above ⇒ 1. Each sits well clear of both the 0-bit residue
/// (a handful of stray evictions or collisions) and the 1-bit full
/// scale, verified empirically by the round-trip suites.
pub fn decode_threshold(family: ChannelFamily, geom: Geometry) -> u64 {
    match family {
        ChannelFamily::Cache => covert::pp_probe_count(geom.sets, geom.ways) / 2,
        ChannelFamily::Bus => covert::BUS_PROBES as u64 / 32,
        ChannelFamily::Scrub => covert::SCRUB_PROBES as u64 / 32,
    }
}

/// The receiver-side telemetry counter the decoder thresholds.
fn observable(family: ChannelFamily, summary: &Summary) -> u64 {
    match family {
        ChannelFamily::Cache => summary.counter(0, metrics::L2_MISSES),
        ChannelFamily::Bus | ChannelFamily::Scrub => summary.counter(0, metrics::BUS_DELAYED),
    }
}

/// Outcome of transmitting one bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitTrial {
    /// The payload bit the sender encoded.
    pub sent: bool,
    /// The bit the decoder recovered.
    pub decoded: bool,
    /// The receiver's raw observable for this run (pre-delta).
    pub observable: u64,
    /// Simulated cycles the slot occupied (the slowest lane's clock).
    pub cycles: u64,
}

/// One instantiated channel: a family on a concrete machine, with its
/// solo baseline measured and its decode threshold fixed.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: MachineConfig,
    family: ChannelFamily,
    geom: Geometry,
    solo: u64,
    threshold: u64,
}

impl Channel {
    /// Instantiate a channel and calibrate its solo baseline.
    pub fn new(family: ChannelFamily, geom: Geometry, epoch_cycles: u64, mode: Mode) -> Channel {
        let cfg = machine_config(geom, epoch_cycles, mode);
        let recorder = Recorder::new();
        run_colocated_ids_sink(
            &cfg,
            vec![replay(receiver_stream(family, geom))],
            &[],
            &[0],
            &recorder,
        );
        let solo = observable(family, &recorder.summary());
        Channel {
            cfg,
            family,
            geom,
            solo,
            threshold: decode_threshold(family, geom),
        }
    }

    /// The machine this channel runs on.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The receiver's calibrated solo observable.
    pub fn solo_baseline(&self) -> u64 {
        self.solo
    }

    /// Transmit one bit: run sender and receiver colocated, decode from
    /// the receiver's telemetry delta against the solo baseline.
    pub fn transmit(&self, bit: bool) -> BitTrial {
        let recorder = Recorder::new();
        run_colocated_ids_sink(
            &self.cfg,
            vec![
                replay(receiver_stream(self.family, self.geom)),
                replay(sender_stream(self.family, bit, self.geom)),
            ],
            &[],
            &[0, 1],
            &recorder,
        );
        let summary = recorder.summary();
        let obs = observable(self.family, &summary);
        let cycles = (0..u64::from(TENANTS))
            .map(|d| summary.counter(d, metrics::CYCLES))
            .max()
            .unwrap_or(0);
        BitTrial {
            sent: bit,
            decoded: obs.saturating_sub(self.solo) > self.threshold,
            observable: obs,
            cycles,
        }
    }
}

fn replay(accesses: Vec<Access>) -> EventSource {
    EventSource::Replay(ReplayStream::new(accesses))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for f in ChannelFamily::ALL {
            assert_eq!(ChannelFamily::from_label(f.label()), Some(f));
        }
        for m in Mode::ALL {
            assert_eq!(Mode::from_label(m.label()), Some(m));
        }
        let g = Geometry {
            ways: 16,
            sets: 512,
        };
        assert_eq!(Geometry::from_label(&g.label()), Some(g));
        assert_eq!(Geometry::from_label("16w512"), None);
        assert_eq!(ChannelFamily::from_label("dram"), None);
    }

    #[test]
    fn commodity_cache_channel_transmits_a_bit() {
        let geom = Geometry {
            ways: 16,
            sets: 512,
        };
        let ch = Channel::new(ChannelFamily::Cache, geom, 96, Mode::Commodity);
        let one = ch.transmit(true);
        let zero = ch.transmit(false);
        assert!(one.decoded, "1-bit thrash must show as probe misses");
        assert!(!zero.decoded, "0-bit idle sender must decode as 0");
        assert!(one.cycles > 0 && zero.cycles > 0);
    }

    #[test]
    fn snic_observables_are_payload_independent() {
        let geom = Geometry {
            ways: 16,
            sets: 512,
        };
        for family in ChannelFamily::ALL {
            let ch = Channel::new(family, geom, 96, Mode::Snic);
            let one = ch.transmit(true);
            let zero = ch.transmit(false);
            assert_eq!(
                one.observable, zero.observable,
                "{family:?}: S-NIC receiver observable must not depend on the payload"
            );
            assert_eq!(
                one.observable,
                ch.solo_baseline(),
                "{family:?}: colocated S-NIC observable must equal the solo baseline"
            );
        }
    }
}
