//! The leakage-bandwidth matrix: sweep, stable text form, diff, gates.
//!
//! A cell is one `(family, geometry, epoch, mode)` point; measuring it
//! transmits [`CELL_BITS`] seeded payload bits through the channel and
//! reports bit-error rate, raw bit-rate, plug-in mutual information,
//! and capacity in bits per second of *simulated* time. The whole
//! matrix fans through [`snic_sim::map_exec`], each cell fully
//! self-contained (its payload seed derives from the cell key, not the
//! sweep order), so serial and parallel execution are byte-identical —
//! and the smoke subset measures to exactly the same values as the
//! corresponding rows of the full matrix.
//!
//! The text form is versioned and diffable like the telemetry
//! `Summary`, and `tests/golden/leakage.txt` snapshots the full sweep
//! (`SNIC_BLESS=1` to regenerate).

use crate::capacity::{payload_bits, splitmix64, Confusion};
use crate::channel::{Channel, ChannelFamily, Geometry, Mode};
use snic_nf::covert;
use snic_sim::{map_exec, Exec};

/// Payload bits transmitted per cell (both full and smoke sweeps, so
/// smoke rows diff cleanly against the full golden).
pub const CELL_BITS: usize = 16;

/// L2 geometries under sweep. The 4-way point is deliberately
/// *unexploitable* for the cache family — prime+probe needs more
/// associativity than the receiver's own L1 flush consumes (see
/// [`covert::pp_primed_ways`]) — and pins down that the harness reports
/// capacity 0 rather than fabricating signal.
pub const GEOMETRIES: [Geometry; 4] = [
    Geometry {
        ways: 16,
        sets: 512,
    },
    Geometry {
        ways: 8,
        sets: 1024,
    },
    Geometry { ways: 8, sets: 128 },
    Geometry {
        ways: 4,
        sets: 2048,
    },
];

/// Temporal-arbiter epoch lengths under sweep (cycles). Commodity
/// ignores the epoch (FCFS), so its rows repeat across this axis — kept
/// anyway so every S-NIC cell has its like-for-like baseline row.
pub const EPOCHS: [u64; 3] = [64, 96, 192];

/// The epoch the smoke sweep keeps (the paper-default 96).
pub const SMOKE_EPOCH: u64 = 96;

/// Hard ceiling every S-NIC cell must stay under, in bits/sec. The
/// engine's purity property makes S-NIC capacity *exactly* 0; the
/// ceiling is slack only so the gate message stays meaningful if a
/// regression produces epsilon leakage.
pub const SNIC_CAPACITY_CEILING_BPS: f64 = 0.01;

/// Floor every commodity cell of an exploitable geometry must clear,
/// in bits/sec.
pub const COMMODITY_CAPACITY_FLOOR_BPS: f64 = 1.0;

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellSpec {
    /// Channel family.
    pub family: ChannelFamily,
    /// L2 geometry.
    pub geom: Geometry,
    /// Temporal epoch length in cycles.
    pub epoch: u64,
    /// Isolation mode.
    pub mode: Mode,
}

impl CellSpec {
    /// Stable cell key, also the text-form prefix:
    /// `cache 16w512s 96 commodity`.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.family.label(),
            self.geom.label(),
            self.epoch,
            self.mode.label()
        )
    }

    /// Whether this geometry can host this family's channel at all.
    /// Bus and scrub channels work on any geometry (they are
    /// cache-independent streaming probes); the cache channel needs
    /// enough L2 associativity to survive the receiver's own L1 flush.
    pub fn exploitable(&self) -> bool {
        match self.family {
            ChannelFamily::Cache => covert::pp_primed_ways(self.geom.ways) > 0,
            ChannelFamily::Bus | ChannelFamily::Scrub => true,
        }
    }

    /// Deterministic per-cell payload seed, a pure function of the key
    /// so sweep order and subsetting never change a cell's payload.
    pub fn seed(&self) -> u64 {
        let mut state = 0x5eed_1ea6_u64;
        for b in self.key().bytes() {
            state ^= u64::from(b);
            splitmix64(&mut state);
        }
        splitmix64(&mut state)
    }
}

/// The full sweep: 3 families × 4 geometries × 3 epochs × 2 modes.
pub fn full_specs() -> Vec<CellSpec> {
    let mut out = Vec::new();
    for family in ChannelFamily::ALL {
        for geom in GEOMETRIES {
            for epoch in EPOCHS {
                for mode in Mode::ALL {
                    out.push(CellSpec {
                        family,
                        geom,
                        epoch,
                        mode,
                    });
                }
            }
        }
    }
    out
}

/// The smoke subset: every family × geometry × mode at [`SMOKE_EPOCH`]
/// only. Cells measure to the same values as their full-sweep twins.
pub fn smoke_specs() -> Vec<CellSpec> {
    full_specs()
        .into_iter()
        .filter(|s| s.epoch == SMOKE_EPOCH)
        .collect()
}

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageCell {
    /// The swept point.
    pub spec: CellSpec,
    /// Payload bits transmitted.
    pub bits: u64,
    /// Bits decoded wrongly.
    pub errors: u64,
    /// Bit-error rate.
    pub ber: f64,
    /// Simulated transmission time, in milliseconds.
    pub sim_ms: f64,
    /// Raw signalling rate, bits per simulated second.
    pub raw_bps: f64,
    /// Plug-in mutual information, bits per channel use.
    pub mi: f64,
    /// Estimated channel capacity, bits per simulated second.
    pub capacity_bps: f64,
}

impl LeakageCell {
    /// The numeric column rendering (everything after the key).
    fn values(&self) -> String {
        format!(
            "{} {} {:.4} {:.4} {:.4} {:.4} {:.4}",
            self.bits, self.errors, self.ber, self.sim_ms, self.raw_bps, self.mi, self.capacity_bps
        )
    }
}

/// Measure one cell: calibrate, transmit [`CELL_BITS`] seeded bits,
/// convert the confusion matrix to capacity.
pub fn measure_cell(spec: &CellSpec, bits: usize) -> LeakageCell {
    let channel = Channel::new(spec.family, spec.geom, spec.epoch, spec.mode);
    let payload = payload_bits(spec.seed(), bits);
    let mut confusion = Confusion::default();
    let mut cycles = 0u64;
    for &bit in &payload {
        let trial = channel.transmit(bit);
        confusion.record(bit, trial.decoded);
        cycles += trial.cycles;
    }
    let seconds = cycles as f64 / channel.config().core_hz as f64;
    let raw_bps = bits as f64 / seconds;
    let mi = confusion.mutual_information();
    LeakageCell {
        spec: *spec,
        bits: bits as u64,
        errors: confusion.errors(),
        ber: confusion.ber(),
        sim_ms: seconds * 1e3,
        raw_bps,
        mi,
        capacity_bps: raw_bps * mi,
    }
}

/// A measured (or parsed) leakage-bandwidth matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LeakageMatrix {
    /// The cells, in sweep order.
    pub cells: Vec<LeakageCell>,
}

impl LeakageMatrix {
    /// Measure every spec, fanned per [`Exec`]. Order-preserving, so
    /// serial and parallel runs render byte-identically.
    pub fn measure(specs: Vec<CellSpec>, exec: Exec, bits: usize) -> LeakageMatrix {
        LeakageMatrix {
            cells: map_exec(exec, specs, |spec| measure_cell(&spec, bits)),
        }
    }

    /// Stable machine-readable text form, one cell per line:
    ///
    /// ```text
    /// # snic-leakage matrix v1
    /// cell <family> <geometry> <epoch> <mode> <bits> <errors> <ber> <sim_ms> <raw_bps> <mi> <capacity_bps>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# snic-leakage matrix v1\n");
        for c in &self.cells {
            out.push_str(&format!("cell {} {}\n", c.spec.key(), c.values()));
        }
        out
    }

    /// Parse the format written by [`LeakageMatrix::to_text`].
    pub fn from_text(text: &str) -> Result<LeakageMatrix, String> {
        let mut m = LeakageMatrix::default();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || format!("leakage matrix line {}: unparseable: {line:?}", ln + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [tag, family, geom, epoch, mode, bits, errors, ber, sim_ms, raw_bps, mi, capacity] =
                fields.as_slice()
            else {
                return Err(bad());
            };
            if *tag != "cell" {
                return Err(bad());
            }
            let spec = CellSpec {
                family: ChannelFamily::from_label(family).ok_or_else(bad)?,
                geom: Geometry::from_label(geom).ok_or_else(bad)?,
                epoch: epoch.parse().map_err(|_| bad())?,
                mode: Mode::from_label(mode).ok_or_else(bad)?,
            };
            m.cells.push(LeakageCell {
                spec,
                bits: bits.parse().map_err(|_| bad())?,
                errors: errors.parse().map_err(|_| bad())?,
                ber: ber.parse().map_err(|_| bad())?,
                sim_ms: sim_ms.parse().map_err(|_| bad())?,
                raw_bps: raw_bps.parse().map_err(|_| bad())?,
                mi: mi.parse().map_err(|_| bad())?,
                capacity_bps: capacity.parse().map_err(|_| bad())?,
            });
        }
        Ok(m)
    }

    /// Compare every cell of `self` against the same-keyed cell of
    /// `golden` (subset semantics: golden rows missing from `self` —
    /// e.g. the non-smoke epochs — are fine). Returns one line per
    /// discrepancy; empty means `self` ⊆ `golden`.
    pub fn diff(&self, golden: &LeakageMatrix) -> Vec<String> {
        let gold: std::collections::BTreeMap<String, String> = golden
            .cells
            .iter()
            .map(|c| (c.spec.key(), c.values()))
            .collect();
        let mut out = Vec::new();
        for c in &self.cells {
            let key = c.spec.key();
            match gold.get(&key) {
                None => out.push(format!("[{key}] missing from golden")),
                Some(g) if *g != c.values() => {
                    out.push(format!("[{key}] golden: {g} | measured: {}", c.values()));
                }
                Some(_) => {}
            }
        }
        out
    }

    /// Enforce the differential security bounds: every S-NIC cell under
    /// [`SNIC_CAPACITY_CEILING_BPS`], every exploitable commodity cell
    /// over [`COMMODITY_CAPACITY_FLOOR_BPS`]. Returns violations.
    pub fn check_bounds(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            let key = c.spec.key();
            match c.spec.mode {
                Mode::Snic => {
                    if c.capacity_bps > SNIC_CAPACITY_CEILING_BPS {
                        out.push(format!(
                            "[{key}] S-NIC capacity {:.4} bps exceeds ceiling {SNIC_CAPACITY_CEILING_BPS} bps",
                            c.capacity_bps
                        ));
                    }
                }
                Mode::Commodity => {
                    if c.spec.exploitable() && c.capacity_bps <= COMMODITY_CAPACITY_FLOOR_BPS {
                        out.push(format!(
                            "[{key}] commodity capacity {:.4} bps under floor \
                             {COMMODITY_CAPACITY_FLOOR_BPS} bps on an exploitable geometry",
                            c.capacity_bps
                        ));
                    }
                }
            }
        }
        out
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<7} {:<10} {:>6} {:<10} {:>5} {:>7} {:>7} {:>10} {:>7} {:>12}\n",
            "family",
            "geometry",
            "epoch",
            "mode",
            "bits",
            "errors",
            "ber",
            "sim_ms",
            "mi",
            "capacity_bps"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<7} {:<10} {:>6} {:<10} {:>5} {:>7} {:>7.4} {:>10.4} {:>7.4} {:>12.4}\n",
                c.spec.family.label(),
                c.spec.geom.label(),
                c.spec.epoch,
                c.spec.mode.label(),
                c.bits,
                c.errors,
                c.ber,
                c.sim_ms,
                c.mi,
                c.capacity_bps
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_dimensions_cover_the_acceptance_matrix() {
        let specs = full_specs();
        assert_eq!(specs.len(), 3 * 4 * 3 * 2);
        let smoke = smoke_specs();
        assert_eq!(smoke.len(), 3 * 4 * 2);
        assert!(smoke.iter().all(|s| s.epoch == SMOKE_EPOCH));
        // Keys are unique and seeds are key-determined.
        let keys: std::collections::BTreeSet<String> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), specs.len());
        assert_eq!(specs[0].seed(), specs[0].seed());
        assert_ne!(specs[0].seed(), specs[1].seed());
    }

    #[test]
    fn text_form_round_trips_and_diffs() {
        let spec = CellSpec {
            family: ChannelFamily::Bus,
            geom: Geometry { ways: 8, sets: 128 },
            epoch: 96,
            mode: Mode::Commodity,
        };
        let cell = LeakageCell {
            spec,
            bits: 16,
            errors: 1,
            ber: 0.0625,
            sim_ms: 1.2345,
            raw_bps: 12961.9279,
            mi: 0.6626,
            capacity_bps: 8588.9,
        };
        let m = LeakageMatrix { cells: vec![cell] };
        let text = m.to_text();
        let parsed = LeakageMatrix::from_text(&text).unwrap();
        assert_eq!(parsed.to_text(), text, "to_text ∘ from_text is identity");
        assert!(m.diff(&parsed).is_empty());

        let mut other = parsed.clone();
        other.cells[0].errors = 2;
        let d = m.diff(&other);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("bus 8w128s 96 commodity"), "{d:?}");
        assert_eq!(m.diff(&LeakageMatrix::default()).len(), 1, "missing key");
        assert!(LeakageMatrix::from_text("cell bogus\n").is_err());
    }

    #[test]
    fn bounds_catch_both_directions() {
        let snic_leaky = LeakageCell {
            spec: CellSpec {
                family: ChannelFamily::Bus,
                geom: GEOMETRIES[0],
                epoch: 96,
                mode: Mode::Snic,
            },
            bits: 16,
            errors: 0,
            ber: 0.0,
            sim_ms: 1.0,
            raw_bps: 16000.0,
            mi: 1.0,
            capacity_bps: 16000.0,
        };
        let commodity_dead = LeakageCell {
            spec: CellSpec {
                family: ChannelFamily::Bus,
                geom: GEOMETRIES[0],
                epoch: 96,
                mode: Mode::Commodity,
            },
            capacity_bps: 0.0,
            mi: 0.0,
            ..snic_leaky.clone()
        };
        // An unexploitable commodity cell at capacity 0 is *not* a
        // violation: the 4-way geometry cannot host prime+probe.
        let degenerate_ok = LeakageCell {
            spec: CellSpec {
                family: ChannelFamily::Cache,
                geom: Geometry {
                    ways: 4,
                    sets: 2048,
                },
                epoch: 96,
                mode: Mode::Commodity,
            },
            ..commodity_dead.clone()
        };
        let m = LeakageMatrix {
            cells: vec![snic_leaky, commodity_dead, degenerate_ok],
        };
        let v = m.check_bounds();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("exceeds ceiling"));
        assert!(v[1].contains("under floor"));
    }
}
