//! Payload generation and the BER → capacity conversion.
//!
//! The capacity estimate is the *plug-in* mutual information of the
//! empirical (sent, decoded) joint distribution, in bits per channel
//! use, times the measured raw bit-rate. This is conservative twice
//! over: the plug-in estimate uses the empirical input distribution
//! rather than the capacity-achieving one, and the binary-symmetric
//! bound `1 − H₂(BER)` it generalizes assumes the decoder throws away
//! everything but the hard bit decision. A channel reported at
//! `c` bits/sec therefore leaks *at least* `c`; a channel reported at
//! exactly 0 has a decoder whose output never varied at all.

/// One step of the splitmix64 generator (public-domain constants), the
/// same deterministic mixer the rest of the repo seeds with.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded pseudorandom payload a sender transmits: `n` bits drawn
/// from splitmix64, one per output word.
pub fn payload_bits(seed: u64, n: usize) -> Vec<bool> {
    let mut state = seed;
    (0..n).map(|_| splitmix64(&mut state) >> 63 == 1).collect()
}

/// Empirical confusion matrix of one transmission: `counts[sent][decoded]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    counts: [[u64; 2]; 2],
}

impl Confusion {
    /// Record one (sent, decoded) bit pair.
    pub fn record(&mut self, sent: bool, decoded: bool) {
        self.counts[usize::from(sent)][usize::from(decoded)] += 1;
    }

    /// Total bits recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Bits decoded to the wrong value.
    pub fn errors(&self) -> u64 {
        self.counts[0][1] + self.counts[1][0]
    }

    /// Bit-error rate.
    pub fn ber(&self) -> f64 {
        match self.total() {
            0 => 0.0,
            n => self.errors() as f64 / n as f64,
        }
    }

    /// Plug-in mutual information I(sent; decoded) in bits per channel
    /// use, with the 0·log 0 := 0 convention.
    ///
    /// When the decoder's output is constant — the S-NIC case, where
    /// the receiver's observables are payload-independent by the
    /// engine's purity property — one marginal is degenerate, every
    /// term's log argument is exactly 1, and the result is exactly
    /// `0.0` in floating point, not merely small.
    pub fn mutual_information(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let sent: [f64; 2] = [0, 1].map(|x| (self.counts[x][0] + self.counts[x][1]) as f64 / n);
        let dec: [f64; 2] = [0, 1].map(|y| (self.counts[0][y] + self.counts[1][y]) as f64 / n);
        let mut mi = 0.0;
        for (x, &px) in sent.iter().enumerate() {
            for (y, &py) in dec.iter().enumerate() {
                let p = self.counts[x][y] as f64 / n;
                if p > 0.0 {
                    mi += p * (p / (px * py)).log2();
                }
            }
        }
        // Finite-sample noise can leave a tiny negative residue.
        mi.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_balanced_ish() {
        let a = payload_bits(7, 256);
        let b = payload_bits(7, 256);
        assert_eq!(a, b);
        let ones = a.iter().filter(|&&x| x).count();
        assert!((64..=192).contains(&ones), "wildly unbalanced: {ones}/256");
        assert_ne!(payload_bits(8, 256), a, "seed must matter");
    }

    #[test]
    fn perfect_decode_recovers_payload_entropy() {
        let mut c = Confusion::default();
        for i in 0..32 {
            let bit = i % 2 == 0;
            c.record(bit, bit);
        }
        assert_eq!(c.errors(), 0);
        assert_eq!(c.ber(), 0.0);
        assert!((c.mutual_information() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_decoder_has_exactly_zero_information() {
        let mut c = Confusion::default();
        for &bit in &payload_bits(3, 64) {
            c.record(bit, false);
        }
        assert_eq!(c.mutual_information(), 0.0, "exactly zero, not epsilon");
        let ber = c.ber();
        assert!((0.2..=0.8).contains(&ber), "BER ≈ 0.5, got {ber}");
    }

    #[test]
    fn symmetric_noise_matches_binary_entropy_bound() {
        // 25% errors in each sent class (a uniform-input BSC) →
        // I = 1 − H₂(0.25).
        let mut c = Confusion::default();
        for i in 0..64 {
            let bit = i % 2 == 0;
            c.record(bit, if i % 8 < 2 { !bit } else { bit });
        }
        assert_eq!(c.ber(), 0.25);
        let h2 = |p: f64| -p * p.log2() - (1.0 - p) * (1.0 - p).log2();
        assert!((c.mutual_information() - (1.0 - h2(0.25))).abs() < 1e-12);
    }
}
