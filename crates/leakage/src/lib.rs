//! Covert-channel bandwidth battery: what is isolation worth in bits/sec?
//!
//! The §3.3 attacks are qualitative; `snic-verify`'s Pass 2 lints turn
//! them into pass/fail findings. This crate makes the claim
//! *quantitative*: for each of three channel families —
//!
//! - **cache** — prime+probe L2 occupancy ([`snic_nf::covert::prime_probe_sender`]),
//! - **bus** — FCFS grant-latency contention ([`snic_nf::covert::bus_sender`]),
//! - **scrub** — teardown zeroization duration ([`snic_nf::covert::scrub_stream`]),
//!
//! a sender tenant transmits a seeded pseudorandom bitstring to a
//! colocated receiver tenant through the uarch engine, and a decoder
//! recovers the bits from the receiver's *telemetry-observable* signals
//! alone (L2 miss counts, delayed-bus-grant counts). The measured
//! bit-error rate converts to channel capacity in bits per second of
//! simulated time via the plug-in mutual-information estimator
//! ([`capacity::Confusion::mutual_information`]).
//!
//! Sweeping geometry × epoch × {commodity, S-NIC} yields the
//! [`matrix::LeakageMatrix`]: the repo's leakage-bandwidth table
//! (ROADMAP item 3), golden-snapshotted in `tests/golden/leakage.txt`
//! and served by `snicctl leakage`. Every S-NIC cell must sit below
//! [`matrix::SNIC_CAPACITY_CEILING_BPS`]; every commodity cell of an
//! exploitable geometry must clear
//! [`matrix::COMMODITY_CAPACITY_FLOOR_BPS`]. Under the S-NIC discipline
//! the receiver's observables are bit-identical with and without the
//! sender (the engine's purity property), so the decoder's output is
//! *constant* and the estimated mutual information is exactly zero —
//! not merely small.
//!
//! Everything is deterministic: seeded payloads, simulated time, and
//! [`snic_sim::map_exec`] fan-out with serial ≡ parallel byte identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod channel;
pub mod matrix;

pub use capacity::{payload_bits, Confusion};
pub use channel::{Channel, ChannelFamily, Geometry, Mode};
pub use matrix::{
    full_specs, measure_cell, smoke_specs, CellSpec, LeakageCell, LeakageMatrix, CELL_BITS,
    COMMODITY_CAPACITY_FLOOR_BPS, SNIC_CAPACITY_CEILING_BPS,
};
