//! Property tests for packet construction and parsing.

use proptest::prelude::*;
use snic_types::packet::{checksum16, PacketBuilder};
use snic_types::{FiveTuple, Packet, Protocol};

proptest! {
    #[test]
    fn builder_parse_round_trip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        tcp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1200),
    ) {
        let proto = if tcp { Protocol::Tcp } else { Protocol::Udp };
        let pkt = PacketBuilder::new(src, dst, proto, sport, dport)
            .payload(payload.clone())
            .build();
        let ft = FiveTuple::from_packet(&pkt).unwrap();
        prop_assert_eq!(ft.src_ip, src);
        prop_assert_eq!(ft.dst_ip, dst);
        prop_assert_eq!(ft.src_port, sport);
        prop_assert_eq!(ft.dst_port, dport);
        prop_assert_eq!(ft.protocol, proto);
        prop_assert_eq!(pkt.payload(), payload.as_slice());
        prop_assert!(pkt.ipv4().unwrap().checksum_ok());
        prop_assert!(pkt.ipv4_checksum_ok());
    }

    #[test]
    fn corrupting_any_header_byte_breaks_checksum_or_parse(
        flip in 14usize..34,
        bit in 0u8..8,
    ) {
        // Flipping any single bit of the IPv4 header must be detectable:
        // either the checksum fails or the parse rejects the packet.
        let pkt = PacketBuilder::new(0x0a000001, 0xc6330001, Protocol::Tcp, 1000, 80).build();
        let mut raw = pkt.data.to_vec();
        raw[flip] ^= 1 << bit;
        let bad = Packet::from_bytes(bytes::Bytes::from(raw));
        let detectable = !bad.ipv4_checksum_ok() || bad.ipv4().is_err();
        prop_assert!(detectable, "flip at byte {flip} bit {bit} went unnoticed");
    }

    #[test]
    fn checksum16_detects_single_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 2..64),
        idx in 0usize..64,
        bit in 0u8..8,
    ) {
        // Make length even so the flip never lands in implicit padding.
        let mut data = data;
        if data.len() % 2 == 1 {
            data.pop();
        }
        let idx = idx % data.len();
        let original = checksum16(&data);
        data[idx] ^= 1 << bit;
        prop_assert_ne!(checksum16(&data), original);
    }

    #[test]
    fn stable_hash_symmetric_inputs_differ(a in any::<u32>(), b in any::<u32>()) {
        prop_assume!(a != b);
        // Directionality matters: (a→b) hashes differently from (b→a)
        // (with overwhelming probability; equality would be a collision).
        let fwd = FiveTuple { src_ip: a, dst_ip: b, protocol: Protocol::Tcp, src_port: 1, dst_port: 2 };
        let rev = fwd.reversed();
        prop_assert_ne!(fwd.stable_hash(), rev.stable_hash());
    }
}
