//! Packet representation and protocol header parsing/serialization.
//!
//! The device model moves packets as byte buffers ([`bytes::Bytes`] under a
//! small metadata wrapper). Headers are parsed on demand with bounds-checked
//! readers; serialization writes network byte order. Supported protocols are
//! the ones the paper's workloads need: Ethernet II, IPv4, TCP, UDP, and
//! VXLAN (RFC 7348, §4.4 of the paper).

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::SnicError;
use crate::flow::Protocol;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministically derive a locally-administered unicast MAC from a seed.
    pub fn from_seed(seed: u64) -> MacAddr {
        let b = seed.to_be_bytes();
        // Locally administered (bit 1 of first octet set), unicast (bit 0 clear).
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// UDP destination port assigned to VXLAN by RFC 7348.
pub const VXLAN_UDP_PORT: u16 = 4789;

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (e.g. [`ETHERTYPE_IPV4`]).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Wire length of an Ethernet II header.
    pub const LEN: usize = 14;

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<EthernetHeader, SnicError> {
        if buf.len() < Self::LEN {
            return Err(SnicError::Malformed("ethernet header truncated"));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }

    /// Append the wire form to `out`.
    pub fn write(&self, out: &mut BytesMut) {
        out.put_slice(&self.dst.0);
        out.put_slice(&self.src.0);
        out.put_u16(self.ethertype);
    }
}

/// An IPv4 header (options unsupported; IHL is always 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Layer-4 protocol.
    pub protocol: Protocol,
    /// Total length (header + payload) in bytes.
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Header checksum as found on the wire (recomputed by [`Self::write`]).
    pub checksum: u16,
}

impl Ipv4Header {
    /// Wire length (no options).
    pub const LEN: usize = 20;

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Ipv4Header, SnicError> {
        if buf.len() < Self::LEN {
            return Err(SnicError::Malformed("ipv4 header truncated"));
        }
        let vihl = buf[0];
        if vihl >> 4 != 4 {
            return Err(SnicError::Malformed("not an ipv4 packet"));
        }
        if vihl & 0x0f != 5 {
            return Err(SnicError::Malformed("ipv4 options unsupported"));
        }
        Ok(Ipv4Header {
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            ttl: buf[8],
            protocol: Protocol::from_wire(buf[9]),
            checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        })
    }

    /// Compute the RFC 791 header checksum over the 20-byte header with the
    /// checksum field zeroed.
    pub fn compute_checksum(&self) -> u16 {
        let mut tmp = BytesMut::with_capacity(Self::LEN);
        self.write_with_checksum(&mut tmp, 0);
        checksum16(&tmp)
    }

    /// Append the wire form to `out`, recomputing the checksum.
    pub fn write(&self, out: &mut BytesMut) {
        let csum = self.compute_checksum();
        self.write_with_checksum(out, csum);
    }

    fn write_with_checksum(&self, out: &mut BytesMut, csum: u16) {
        out.put_u8(0x45);
        out.put_u8(0); // DSCP/ECN.
        out.put_u16(self.total_len);
        out.put_u16(0); // Identification.
        out.put_u16(0); // Flags/fragment offset.
        out.put_u8(self.ttl);
        out.put_u8(self.protocol.to_wire());
        out.put_u16(csum);
        out.put_u32(self.src);
        out.put_u32(self.dst);
    }

    /// True if the on-wire checksum matches the *modeled* header fields.
    ///
    /// Unmodeled fields (identification, DSCP, flags) are assumed zero,
    /// which holds for headers built by [`PacketBuilder`]. To validate a
    /// header of unknown provenance, use [`Packet::ipv4_checksum_ok`],
    /// which checks the raw bytes.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// One's-complement 16-bit checksum over `data` (RFC 1071).
pub fn checksum16(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A TCP header (no options parsed; data offset honored when skipping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header length in bytes (data offset × 4).
    pub header_len: u8,
    /// Flag bits (FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10).
    pub flags: u8,
}

impl TcpHeader {
    /// Minimum wire length.
    pub const MIN_LEN: usize = 20;

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<TcpHeader, SnicError> {
        if buf.len() < Self::MIN_LEN {
            return Err(SnicError::Malformed("tcp header truncated"));
        }
        let header_len = (buf[12] >> 4) * 4;
        if usize::from(header_len) < Self::MIN_LEN {
            return Err(SnicError::Malformed("tcp data offset below minimum"));
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            header_len,
            flags: buf[13],
        })
    }

    /// Append a 20-byte wire form to `out` (checksum left zero; the NIC
    /// checksum accelerator fills it in the real device).
    pub fn write(&self, out: &mut BytesMut) {
        out.put_u16(self.src_port);
        out.put_u16(self.dst_port);
        out.put_u32(self.seq);
        out.put_u32(self.ack);
        out.put_u8(5 << 4);
        out.put_u8(self.flags);
        out.put_u16(0xffff); // Window.
        out.put_u16(0); // Checksum (offloaded).
        out.put_u16(0); // Urgent pointer.
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of UDP header plus payload.
    pub len: u16,
}

impl UdpHeader {
    /// Wire length.
    pub const LEN: usize = 8;

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpHeader, SnicError> {
        if buf.len() < Self::LEN {
            return Err(SnicError::Malformed("udp header truncated"));
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            len: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }

    /// Append the wire form to `out` (checksum zero = disabled, legal for IPv4).
    pub fn write(&self, out: &mut BytesMut) {
        out.put_u16(self.src_port);
        out.put_u16(self.dst_port);
        out.put_u16(self.len);
        out.put_u16(0);
    }
}

/// A VXLAN header (RFC 7348).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VxlanHeader {
    /// 24-bit Virtual Network Identifier.
    pub vni: u32,
}

impl VxlanHeader {
    /// Wire length.
    pub const LEN: usize = 8;

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<VxlanHeader, SnicError> {
        if buf.len() < Self::LEN {
            return Err(SnicError::Malformed("vxlan header truncated"));
        }
        if buf[0] & 0x08 == 0 {
            return Err(SnicError::Malformed("vxlan I flag not set"));
        }
        Ok(VxlanHeader {
            vni: u32::from_be_bytes([0, buf[4], buf[5], buf[6]]),
        })
    }

    /// Append the wire form to `out`.
    pub fn write(&self, out: &mut BytesMut) {
        out.put_u8(0x08); // Flags: I bit set.
        out.put_slice(&[0, 0, 0]);
        let v = self.vni.to_be_bytes();
        out.put_slice(&[v[1], v[2], v[3]]);
        out.put_u8(0); // Reserved.
    }
}

/// A packet as handled by the device model.
///
/// The buffer always begins with an Ethernet header; `arrival` is the
/// simulated time at which the packet entered the RX port (zero for
/// synthetic packets that have not traversed the port model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Raw frame bytes starting at the Ethernet header.
    pub data: Bytes,
    /// Simulated arrival time in picoseconds.
    pub arrival: crate::units::Picos,
}

impl Packet {
    /// Wrap raw frame bytes.
    pub fn from_bytes(data: Bytes) -> Packet {
        Packet {
            data,
            arrival: crate::units::Picos::ZERO,
        }
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Parse the Ethernet header.
    pub fn ethernet(&self) -> Result<EthernetHeader, SnicError> {
        EthernetHeader::parse(&self.data)
    }

    /// True if the IPv4 header checksum validates over the raw header
    /// bytes (RFC 1071: the one's-complement sum of the full header,
    /// including the checksum field, folds to zero). Unlike
    /// [`Ipv4Header::checksum_ok`], this covers every byte of the
    /// header, including fields the parsed struct does not model.
    pub fn ipv4_checksum_ok(&self) -> bool {
        let start = EthernetHeader::LEN;
        self.data.len() >= start + Ipv4Header::LEN
            && checksum16(&self.data[start..start + Ipv4Header::LEN]) == 0
    }

    /// Parse the IPv4 header, if this is an IPv4 frame.
    pub fn ipv4(&self) -> Result<Ipv4Header, SnicError> {
        let eth = self.ethernet()?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(SnicError::Malformed("not an ipv4 ethertype"));
        }
        Ipv4Header::parse(&self.data[EthernetHeader::LEN..])
    }

    /// Offset of the layer-4 header within the frame.
    pub fn l4_offset(&self) -> usize {
        EthernetHeader::LEN + Ipv4Header::LEN
    }

    /// Parse the TCP header of a TCP/IPv4 frame.
    pub fn tcp(&self) -> Result<TcpHeader, SnicError> {
        let ip = self.ipv4()?;
        if ip.protocol != Protocol::Tcp {
            return Err(SnicError::Malformed("not a tcp packet"));
        }
        TcpHeader::parse(&self.data[self.l4_offset()..])
    }

    /// Parse the UDP header of a UDP/IPv4 frame.
    pub fn udp(&self) -> Result<UdpHeader, SnicError> {
        let ip = self.ipv4()?;
        if ip.protocol != Protocol::Udp {
            return Err(SnicError::Malformed("not a udp packet"));
        }
        UdpHeader::parse(&self.data[self.l4_offset()..])
    }

    /// The application payload (bytes after the L4 header).
    pub fn payload(&self) -> &[u8] {
        let ip = match self.ipv4() {
            Ok(ip) => ip,
            Err(_) => return &[],
        };
        let l4 = self.l4_offset();
        let l4_len = match ip.protocol {
            Protocol::Tcp => match TcpHeader::parse(&self.data[l4..]) {
                Ok(t) => usize::from(t.header_len),
                Err(_) => return &[],
            },
            Protocol::Udp => UdpHeader::LEN,
            Protocol::Other(_) => 0,
        };
        self.data.get(l4 + l4_len..).unwrap_or(&[])
    }
}

/// Builder for synthetic test/workload packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth: EthernetHeader,
    src_ip: u32,
    dst_ip: u32,
    protocol: Protocol,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    payload: Vec<u8>,
}

impl PacketBuilder {
    /// Start building a packet with the given five-tuple fields.
    pub fn new(src_ip: u32, dst_ip: u32, protocol: Protocol, src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            eth: EthernetHeader {
                dst: MacAddr::from_seed(u64::from(dst_ip)),
                src: MacAddr::from_seed(u64::from(src_ip)),
                ethertype: ETHERTYPE_IPV4,
            },
            src_ip,
            dst_ip,
            protocol,
            src_port,
            dst_port,
            ttl: 64,
            payload: Vec::new(),
        }
    }

    /// Override the Ethernet source/destination MACs.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.eth.src = src;
        self.eth.dst = dst;
        self
    }

    /// Set the application payload bytes.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Set the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Serialize into a [`Packet`].
    pub fn build(self) -> Packet {
        let l4_len = match self.protocol {
            Protocol::Tcp => TcpHeader::MIN_LEN,
            Protocol::Udp => UdpHeader::LEN,
            Protocol::Other(_) => 0,
        };
        let total_len = (Ipv4Header::LEN + l4_len + self.payload.len()) as u16;
        let mut out = BytesMut::with_capacity(EthernetHeader::LEN + usize::from(total_len));
        self.eth.write(&mut out);
        let ip = Ipv4Header {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: self.protocol,
            total_len,
            ttl: self.ttl,
            checksum: 0,
        };
        ip.write(&mut out);
        match self.protocol {
            Protocol::Tcp => {
                TcpHeader {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    seq: 0,
                    ack: 0,
                    header_len: 20,
                    flags: 0x10,
                }
                .write(&mut out);
            }
            Protocol::Udp => {
                UdpHeader {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    len: (UdpHeader::LEN + self.payload.len()) as u16,
                }
                .write(&mut out);
            }
            Protocol::Other(_) => {}
        }
        out.put_slice(&self.payload);
        Packet::from_bytes(out.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        PacketBuilder::new(0x0a000001, 0x0a000002, Protocol::Tcp, 1234, 80)
            .payload(b"hello world".to_vec())
            .build()
    }

    #[test]
    fn builder_round_trips_ethernet() {
        let p = sample();
        let eth = p.ethernet().unwrap();
        assert_eq!(eth.ethertype, ETHERTYPE_IPV4);
        assert_eq!(eth.src, MacAddr::from_seed(0x0a000001));
    }

    #[test]
    fn builder_round_trips_ipv4() {
        let p = sample();
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.src, 0x0a000001);
        assert_eq!(ip.dst, 0x0a000002);
        assert_eq!(ip.protocol, Protocol::Tcp);
        assert!(ip.checksum_ok());
        assert_eq!(usize::from(ip.total_len), 20 + 20 + 11);
    }

    #[test]
    fn builder_round_trips_tcp() {
        let p = sample();
        let tcp = p.tcp().unwrap();
        assert_eq!(tcp.src_port, 1234);
        assert_eq!(tcp.dst_port, 80);
        assert_eq!(p.payload(), b"hello world");
    }

    #[test]
    fn builder_round_trips_udp() {
        let p = PacketBuilder::new(1, 2, Protocol::Udp, 53, 5353)
            .payload(vec![9u8; 32])
            .build();
        let udp = p.udp().unwrap();
        assert_eq!(udp.src_port, 53);
        assert_eq!(udp.len, 8 + 32);
        assert_eq!(p.payload().len(), 32);
    }

    #[test]
    fn vxlan_round_trip() {
        let hdr = VxlanHeader { vni: 0x00ab_cdef };
        let mut out = BytesMut::new();
        hdr.write(&mut out);
        assert_eq!(out.len(), VxlanHeader::LEN);
        assert_eq!(VxlanHeader::parse(&out).unwrap(), hdr);
    }

    #[test]
    fn vxlan_rejects_missing_flag() {
        let buf = [0u8; 8];
        assert!(VxlanHeader::parse(&buf).is_err());
    }

    #[test]
    fn truncated_headers_rejected() {
        assert!(EthernetHeader::parse(&[0u8; 5]).is_err());
        assert!(Ipv4Header::parse(&[0x45; 10]).is_err());
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn non_ipv4_version_rejected() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // Version 6.
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn checksum16_known_vector() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum16(&data), !0xddf2);
    }

    #[test]
    fn checksum16_odd_length() {
        // A trailing odd byte is padded with zero.
        assert_eq!(checksum16(&[0xff]), checksum16(&[0xff, 0x00]));
    }

    #[test]
    fn corrupting_header_breaks_checksum() {
        let p = sample();
        let mut raw = p.data.to_vec();
        raw[EthernetHeader::LEN + 16] ^= 0xff; // Flip a dst-ip byte.
        let bad = Packet::from_bytes(Bytes::from(raw));
        assert!(!bad.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([1, 2, 3, 4, 5, 0xab]).to_string(),
            "01:02:03:04:05:ab"
        );
    }
}
