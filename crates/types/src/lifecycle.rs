//! The recoverable vNIC lifecycle state machine.
//!
//! §4.6 frames `nf_teardown` as the instruction that makes a function's
//! resources *safely* reusable: pages are scrubbed before the denylist
//! entry is lifted, so the next tenant can never read the prior
//! tenant's plaintext. The lifecycle below makes the intermediate
//! states of that contract explicit, so fault injection (a core crash,
//! a power loss mid-scrub) lands a function in a *named* state with
//! defined exits instead of leaving the device model in an ad-hoc
//! half-torn-down shape.

/// Lifecycle state of one network function on the device.
///
/// ```text
///   nf_launch ──► Launched ──► Running ──► Scrubbing ──► Reclaimed
///                    │            │            ▲  │
///                    │            ▼            │  │ (power loss:
///                    └───────► Faulted ────────┘  │  scrub resumes
///                                                 ▼  from watermark)
///                                             Scrubbing
/// ```
///
/// `Faulted` is absorbing until `nf_teardown`: a crashed or faulted
/// function keeps its cores and its (still-denylisted) memory so that
/// nothing it owned can leak or be repurposed before scrubbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfState {
    /// `nf_launch` completed; the function has not yet run.
    Launched,
    /// The function is processing packets / issuing memory traffic.
    Running,
    /// The function (or an accelerator cluster bound to it) faulted.
    /// Its resources are frozen: cores stay bound, memory stays
    /// denylisted, and every data-path operation is refused.
    Faulted,
    /// `nf_teardown` is scrubbing the function's region. A power loss
    /// here leaves a persistent watermark; the region is unusable until
    /// the scrub resumes and completes.
    Scrubbing,
    /// Teardown completed: memory scrubbed, resources returned.
    Reclaimed,
}

impl NfState {
    /// Whether the function may execute data-path operations
    /// (packet RX/TX, memory access, DMA) in this state.
    pub fn is_operational(self) -> bool {
        matches!(self, NfState::Launched | NfState::Running)
    }

    /// Whether `from -> to` is a legal lifecycle edge. The fault linter
    /// (snic-verify Pass 3) flags any transcript transition outside
    /// this relation.
    pub fn can_transition(self, to: NfState) -> bool {
        use NfState::*;
        matches!(
            (self, to),
            (Launched, Running)
                | (Launched, Faulted)
                | (Launched, Scrubbing)
                | (Running, Faulted)
                | (Running, Scrubbing)
                | (Faulted, Scrubbing)
                | (Scrubbing, Scrubbing) // scrub resumed after power loss
                | (Scrubbing, Reclaimed)
        )
    }
}

impl core::fmt::Display for NfState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NfState::Launched => "launched",
            NfState::Running => "running",
            NfState::Faulted => "faulted",
            NfState::Scrubbing => "scrubbing",
            NfState::Reclaimed => "reclaimed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_states() {
        assert!(NfState::Launched.is_operational());
        assert!(NfState::Running.is_operational());
        assert!(!NfState::Faulted.is_operational());
        assert!(!NfState::Scrubbing.is_operational());
        assert!(!NfState::Reclaimed.is_operational());
    }

    #[test]
    fn legal_edges() {
        assert!(NfState::Launched.can_transition(NfState::Running));
        assert!(NfState::Running.can_transition(NfState::Faulted));
        assert!(NfState::Faulted.can_transition(NfState::Scrubbing));
        assert!(NfState::Scrubbing.can_transition(NfState::Scrubbing));
        assert!(NfState::Scrubbing.can_transition(NfState::Reclaimed));
    }

    #[test]
    fn illegal_edges() {
        // Reclaimed is terminal; Faulted cannot silently resume.
        assert!(!NfState::Reclaimed.can_transition(NfState::Running));
        assert!(!NfState::Faulted.can_transition(NfState::Running));
        assert!(!NfState::Scrubbing.can_transition(NfState::Running));
        assert!(!NfState::Running.can_transition(NfState::Launched));
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(NfState::Scrubbing.to_string(), "scrubbing");
    }
}
