//! Common foundation types for the S-NIC reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: packets and their protocol headers, five-tuple flow keys,
//! principal identifiers (tenants, network functions, cores, accelerator
//! clusters), physical units (bytes, cycles, picoseconds, bandwidth), and
//! the common error type used by the device model.
//!
//! Everything here is plain data: no simulation logic lives in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod flow;
pub mod ids;
pub mod lifecycle;
pub mod packet;
pub mod units;

pub use error::{IsolationError, SnicError, TransientResource};
pub use flow::{FiveTuple, FlowDirection, Protocol};
pub use ids::{AccelClusterId, AccelKind, CoreId, NfId, PortId, TenantId, VppId};
pub use lifecycle::NfState;
pub use packet::{EthernetHeader, Ipv4Header, MacAddr, Packet, TcpHeader, UdpHeader, VxlanHeader};
pub use units::{Bandwidth, ByteSize, Cycles, Picos};
