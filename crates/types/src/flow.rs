//! Flow identification: layer-4 protocols and the classic five-tuple.
//!
//! Switching rules on the NIC (§3.1, §4.4) are predicates over a packet's
//! five-tuple — source IP, destination IP, protocol, source port, and
//! destination port — so the five-tuple is the unit of flow identity used
//! by every network function in the evaluation.

use crate::error::SnicError;
use crate::packet::Packet;

/// Layer-4 protocol carried in an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
    /// Any other IP protocol number.
    Other(u8),
}

impl Protocol {
    /// Decode from the IP protocol field.
    pub fn from_wire(v: u8) -> Protocol {
        match v {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }

    /// Encode to the IP protocol field.
    pub fn to_wire(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }
}

/// Direction of a packet relative to a flow's initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDirection {
    /// From the flow initiator toward the responder.
    Forward,
    /// From the responder back to the initiator.
    Reverse,
}

/// A five-tuple flow key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Layer-4 protocol.
    pub protocol: Protocol,
    /// Source port (zero for protocols without ports).
    pub src_port: u16,
    /// Destination port (zero for protocols without ports).
    pub dst_port: u16,
}

impl FiveTuple {
    /// Extract the five-tuple from a packet.
    ///
    /// Returns an error for non-IPv4 frames or truncated L4 headers; for IP
    /// protocols without ports the port fields are zero.
    pub fn from_packet(pkt: &Packet) -> Result<FiveTuple, SnicError> {
        let ip = pkt.ipv4()?;
        let (src_port, dst_port) = match ip.protocol {
            Protocol::Tcp => {
                let t = pkt.tcp()?;
                (t.src_port, t.dst_port)
            }
            Protocol::Udp => {
                let u = pkt.udp()?;
                (u.src_port, u.dst_port)
            }
            Protocol::Other(_) => (0, 0),
        };
        Ok(FiveTuple {
            src_ip: ip.src,
            dst_ip: ip.dst,
            protocol: ip.protocol,
            src_port,
            dst_port,
        })
    }

    /// The five-tuple of packets flowing in the opposite direction.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A 64-bit mixing hash of the tuple.
    ///
    /// Used by NFs (Maglev, Monitor) that need a stable, cheap, well-mixed
    /// hash independent of `std::collections` hasher randomization — the
    /// simulator must be deterministic across runs.
    pub fn stable_hash(&self) -> u64 {
        // SplitMix64-style finalizer over the packed tuple fields.
        let mut x = (u64::from(self.src_ip) << 32) | u64::from(self.dst_ip);
        x ^= (u64::from(self.src_port) << 24)
            | (u64::from(self.dst_port) << 8)
            | u64::from(self.protocol.to_wire());
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.src_ip.to_be_bytes();
        let d = self.dst_ip.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} ({:?})",
            s[0],
            s[1],
            s[2],
            s[3],
            self.src_port,
            d[0],
            d[1],
            d[2],
            d[3],
            self.dst_port,
            self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    #[test]
    fn protocol_wire_round_trip() {
        for v in 0..=255u8 {
            assert_eq!(Protocol::from_wire(v).to_wire(), v);
        }
    }

    #[test]
    fn five_tuple_from_tcp_packet() {
        let p = PacketBuilder::new(10, 20, Protocol::Tcp, 1111, 2222).build();
        let ft = FiveTuple::from_packet(&p).unwrap();
        assert_eq!(ft.src_ip, 10);
        assert_eq!(ft.dst_ip, 20);
        assert_eq!(ft.src_port, 1111);
        assert_eq!(ft.dst_port, 2222);
    }

    #[test]
    fn five_tuple_other_protocol_has_zero_ports() {
        let p = PacketBuilder::new(1, 2, Protocol::Other(47), 0, 0).build();
        let ft = FiveTuple::from_packet(&p).unwrap();
        assert_eq!((ft.src_port, ft.dst_port), (0, 0));
        assert_eq!(ft.protocol, Protocol::Other(47));
    }

    #[test]
    fn reversed_is_involution() {
        let ft = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            protocol: Protocol::Udp,
            src_port: 3,
            dst_port: 4,
        };
        assert_eq!(ft.reversed().reversed(), ft);
        assert_ne!(ft.reversed(), ft);
    }

    #[test]
    fn stable_hash_spreads() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u32 {
            let ft = FiveTuple {
                src_ip: i,
                dst_ip: !i,
                protocol: Protocol::Tcp,
                src_port: (i % 65_535) as u16,
                dst_port: 80,
            };
            seen.insert(ft.stable_hash());
        }
        assert_eq!(seen.len(), 10_000, "stable_hash collided on trivial inputs");
    }

    #[test]
    fn display_is_dotted_quad() {
        let ft = FiveTuple {
            src_ip: 0x0a000001,
            dst_ip: 0xc0a80102,
            protocol: Protocol::Tcp,
            src_port: 80,
            dst_port: 443,
        };
        let s = ft.to_string();
        assert!(s.contains("10.0.0.1:80"), "{s}");
        assert!(s.contains("192.168.1.2:443"), "{s}");
    }
}
