//! Principal and resource identifiers.
//!
//! The paper's threat model (§2) distinguishes eight principal types; the
//! ones that appear as *identifiers* in the device model are tenants and
//! their network functions, plus the physical resources that `nf_launch`
//! binds to a virtual smart NIC: programmable cores, accelerator clusters,
//! virtual packet pipelines, and physical ports.

/// Identifier of a datacenter tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Opaque identifier of a launched network function.
///
/// Returned by the `nf_launch` trusted instruction (Table 1 of the paper);
/// the NIC OS passes it back to `nf_teardown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NfId(pub u64);

/// Index of a programmable (or management) core on the NIC SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u16);

/// Index of a hardware-thread cluster inside an accelerator (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccelClusterId {
    /// Which accelerator the cluster belongs to.
    pub kind: AccelKind,
    /// Cluster index within that accelerator.
    pub index: u16,
}

/// The accelerator families modeled by the reproduction.
///
/// These follow the paper's evaluation (§5.2, Table 3 and Table 7): a deep
/// packet inspection engine, a compression engine, and a storage/RAID
/// engine, plus the cryptographic co-processor used by attestation
/// (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccelKind {
    /// Deep packet inspection (regular-expression / Aho-Corasick engine).
    Dpi,
    /// Data compression.
    Zip,
    /// Storage parity acceleration.
    Raid,
    /// Cryptographic co-processor (SHA/RSA offload).
    Crypto,
}

impl AccelKind {
    /// All accelerator kinds, in the order used by the paper's tables.
    pub const ALL: [AccelKind; 4] = [
        AccelKind::Dpi,
        AccelKind::Zip,
        AccelKind::Raid,
        AccelKind::Crypto,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AccelKind::Dpi => "DPI",
            AccelKind::Zip => "ZIP",
            AccelKind::Raid => "RAID",
            AccelKind::Crypto => "CRYPTO",
        }
    }
}

/// Index of a virtual packet pipeline (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VppId(pub u16);

/// Index of a physical RX or TX port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl core::fmt::Display for TenantId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

impl core::fmt::Display for NfId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "nf{}", self.0)
    }
}

impl core::fmt::Display for CoreId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_kind_names_are_stable() {
        assert_eq!(AccelKind::Dpi.name(), "DPI");
        assert_eq!(AccelKind::Zip.name(), "ZIP");
        assert_eq!(AccelKind::Raid.name(), "RAID");
        assert_eq!(AccelKind::Crypto.name(), "CRYPTO");
    }

    #[test]
    fn ids_order_and_compare() {
        assert!(NfId(1) < NfId(2));
        assert!(CoreId(0) < CoreId(15));
        assert_eq!(TenantId(7), TenantId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TenantId(3).to_string(), "tenant3");
        assert_eq!(NfId(9).to_string(), "nf9");
        assert_eq!(CoreId(2).to_string(), "core2");
    }

    #[test]
    fn cluster_id_hashes_distinctly() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for kind in AccelKind::ALL {
            for index in 0..4 {
                set.insert(AccelClusterId { kind, index });
            }
        }
        assert_eq!(set.len(), 16);
    }
}
