//! Physical units used throughout the simulator.
//!
//! All simulated time is integral (picoseconds or cycles) so experiments
//! are deterministic and never accumulate floating-point drift. Conversions
//! to human-readable floating point happen only at reporting boundaries.

/// A size in bytes.
///
/// Thin wrapper so that byte quantities cannot be accidentally mixed with
/// cycle or time quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Construct from mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Construct from gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Size in mebibytes, as floating point (reporting only).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Round up to the next multiple of `align` (which must be non-zero).
    pub fn align_up(self, align: u64) -> ByteSize {
        assert!(align > 0, "alignment must be non-zero");
        ByteSize(self.0.div_ceil(align) * align)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: ByteSize) -> Option<ByteSize> {
        self.0.checked_add(other.0).map(ByteSize)
    }
}

impl core::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl core::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl core::fmt::Display for ByteSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
            write!(f, "{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2}MiB", b as f64 / (1024.0 * 1024.0))
        } else if b >= 1024 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A duration or timestamp in picoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Picos(pub u64);

impl Picos {
    /// Zero duration.
    pub const ZERO: Picos = Picos(0);

    /// Construct from nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        Picos(n * 1_000)
    }

    /// Construct from microseconds.
    pub const fn micros(n: u64) -> Self {
        Picos(n * 1_000_000)
    }

    /// Construct from milliseconds.
    pub const fn millis(n: u64) -> Self {
        Picos(n * 1_000_000_000)
    }

    /// Duration in milliseconds as floating point (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in seconds as floating point (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Picos) -> Picos {
        Picos(self.0.saturating_sub(other.0))
    }
}

impl core::ops::Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

/// A count of clock cycles on some clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Convert a cycle count on a clock of `hz` to picoseconds.
    ///
    /// Uses 128-bit intermediate arithmetic, so it does not overflow for any
    /// realistic simulation length.
    pub fn to_picos(self, hz: u64) -> Picos {
        assert!(hz > 0, "clock frequency must be non-zero");
        Picos(((self.0 as u128 * 1_000_000_000_000u128) / hz as u128) as u64)
    }
}

impl core::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

/// Bandwidth in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Construct from gigabits per second.
    pub const fn gbps(n: u64) -> Self {
        Bandwidth(n * 1_000_000_000 / 8)
    }

    /// Construct from megabytes per second.
    pub const fn mbytes_per_sec(n: u64) -> Self {
        Bandwidth(n * 1_000_000)
    }

    /// Bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Time to transfer `size` at this bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn transfer_time(self, size: ByteSize) -> Picos {
        assert!(self.0 > 0, "cannot transfer over zero bandwidth");
        Picos(((size.0 as u128 * 1_000_000_000_000u128) / self.0 as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::kib(2).bytes(), 2048);
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20);
        assert_eq!(ByteSize::gib(1).bytes(), 1 << 30);
    }

    #[test]
    fn byte_size_align_up() {
        assert_eq!(ByteSize(5).align_up(4), ByteSize(8));
        assert_eq!(ByteSize(8).align_up(4), ByteSize(8));
        assert_eq!(ByteSize(0).align_up(4096), ByteSize(0));
    }

    #[test]
    #[should_panic(expected = "alignment must be non-zero")]
    fn byte_size_align_zero_panics() {
        let _ = ByteSize(5).align_up(0);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(4).to_string(), "4.00KiB");
        assert_eq!(ByteSize::mib(360).to_string(), "360.00MiB");
    }

    #[test]
    fn cycles_to_picos() {
        // 1200 cycles at 1.2 GHz is exactly 1 microsecond.
        assert_eq!(Cycles(1200).to_picos(1_200_000_000), Picos::micros(1));
    }

    #[test]
    fn bandwidth_transfer_time() {
        // 1 GB/s moving 1 MB takes 1 ms.
        let bw = Bandwidth(1_000_000_000);
        assert_eq!(bw.transfer_time(ByteSize(1_000_000)), Picos::millis(1));
    }

    #[test]
    fn picos_accumulate() {
        let mut t = Picos::ZERO;
        t += Picos::nanos(5);
        t += Picos::micros(1);
        assert_eq!(t, Picos(1_005_000));
        assert!((Picos::millis(2).as_millis_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn byte_size_sum() {
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
    }
}
