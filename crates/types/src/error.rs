//! Error types shared across the workspace.

use crate::ids::{AccelClusterId, CoreId, NfId};

/// An isolation violation detected by the trusted hardware.
///
/// On a commodity NIC these conditions are *not* errors — the access simply
/// proceeds, which is precisely the weakness §3 of the paper demonstrates.
/// Under S-NIC the device model returns one of these variants and the
/// offending access has no effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsolationError {
    /// A core attempted to touch a physical address outside its TLB mappings.
    TlbMiss {
        /// The core that faulted.
        core: CoreId,
        /// The offending physical (commodity) or virtual (S-NIC) address.
        addr: u64,
    },
    /// The management core tried to access a denylisted physical page.
    Denylisted {
        /// The physical address that was refused.
        addr: u64,
        /// The function that owns the page.
        owner: NfId,
    },
    /// An accelerator hardware thread faulted outside its TLB bank (fatal
    /// for the cluster per §4.3).
    AccelFault {
        /// The faulting cluster.
        cluster: AccelClusterId,
        /// The offending address.
        addr: u64,
    },
    /// A DMA request targeted memory outside the sanctioned windows (§4.2).
    DmaViolation {
        /// The offending bus address.
        addr: u64,
    },
    /// Attempt to mutate a TLB that `nf_launch` has locked read-only.
    TlbLocked,
    /// Attempt to install more TLB entries than the hardware has slots —
    /// the launch planner must size mappings before installation.
    TlbCapacity {
        /// The core whose TLB overflowed.
        core: CoreId,
        /// Hardware entry slots.
        capacity: usize,
    },
}

impl core::fmt::Display for IsolationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsolationError::TlbMiss { core, addr } => {
                write!(f, "TLB miss on {core} at {addr:#x} (fatal under S-NIC)")
            }
            IsolationError::Denylisted { addr, owner } => {
                write!(
                    f,
                    "management access to {addr:#x} denied; page owned by {owner}"
                )
            }
            IsolationError::AccelFault { cluster, addr } => write!(
                f,
                "accelerator cluster {:?}#{} faulted at {addr:#x}",
                cluster.kind, cluster.index
            ),
            IsolationError::DmaViolation { addr } => {
                write!(f, "DMA to unsanctioned address {addr:#x}")
            }
            IsolationError::TlbLocked => write!(f, "TLB is locked read-only after nf_launch"),
            IsolationError::TlbCapacity { core, capacity } => {
                write!(f, "{core} TLB capacity {capacity} exceeded during install")
            }
        }
    }
}

impl std::error::Error for IsolationError {}

/// Which pooled resource was transiently exhausted.
///
/// Transient exhaustion is *retryable*: the NIC OS orchestrator backs
/// off and reissues the launch, because co-tenant teardowns free the
/// pool over time. This is distinct from the fatal `InvalidConfig`
/// shape ("this request can never fit on this device").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientResource {
    /// On-NIC DRAM: no free region large enough right now.
    Dram,
    /// Accelerator cluster pool: requested clusters busy right now.
    AccelPool,
    /// The (untrusted, restartable) NIC OS crashed mid-call; it has
    /// already restarted, so re-issuing the request succeeds.
    NicOs,
}

impl core::fmt::Display for TransientResource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransientResource::Dram => write!(f, "on-NIC DRAM"),
            TransientResource::AccelPool => write!(f, "accelerator cluster pool"),
            TransientResource::NicOs => write!(f, "NIC OS (restarted mid-call)"),
        }
    }
}

/// Top-level error type for S-NIC device-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnicError {
    /// An isolation violation (see [`IsolationError`]).
    Isolation(IsolationError),
    /// `nf_launch` failed: a requested core is already bound to a live NF.
    CoreBusy(CoreId),
    /// `nf_launch` failed: a physical page is already owned by another NF.
    PageOwned {
        /// First conflicting physical page address.
        addr: u64,
        /// The current owner.
        owner: NfId,
    },
    /// `nf_launch` failed: requested accelerator clusters are unavailable.
    AccelUnavailable(AccelClusterId),
    /// `nf_launch` failed: not enough RX/TX buffer space in physical ports.
    PortBufferExhausted,
    /// `nf_launch` failed: not enough cache capacity for the reservation.
    CacheExhausted,
    /// Operation referenced an NF id that does not exist (or was torn down).
    NoSuchNf(NfId),
    /// The request was malformed (bad config blob, zero cores, ...).
    InvalidConfig(String),
    /// Packet parsing failed.
    Malformed(&'static str),
    /// The NIC crashed (e.g. the bus-DoS attack on commodity hardware).
    NicCrashed,
    /// The static verifier refused the manifest set; the payload is the
    /// rendered verification report (every violation with its paper
    /// citation).
    Verification(String),
    /// A pooled resource is exhausted *right now* but co-tenant churn
    /// will free it; the caller should retry with backoff.
    Transient(TransientResource),
    /// Power was lost mid-operation; the device needs a power cycle.
    /// Crash-consistent metadata (e.g. scrub watermarks) survives.
    PowerLoss,
    /// A bus transfer was aborted by a hardware bus error.
    BusError {
        /// The bus address of the aborted transfer.
        addr: u64,
    },
    /// The referenced function is in the `Faulted` lifecycle state:
    /// its resources are frozen until `nf_teardown` scrubs them.
    NfFaulted(NfId),
    /// The requested region overlaps memory whose teardown scrub has
    /// not completed; it cannot be reused until zeroization finishes
    /// (§4.6's contract, upheld across power loss).
    ScrubPending {
        /// Base of the pending-scrub region.
        base: u64,
    },
}

impl SnicError {
    /// Whether the failed operation is worth retrying unchanged.
    ///
    /// Only transient resource exhaustion qualifies: every other
    /// variant is either a permanent property of the request
    /// (`InvalidConfig`, `Verification`), a security refusal
    /// (`Isolation`), or a fault that demands recovery before a retry
    /// can succeed (`NicCrashed`, `PowerLoss`, `NfFaulted`,
    /// `ScrubPending`).
    pub fn is_retryable(&self) -> bool {
        matches!(self, SnicError::Transient(_))
    }
}

impl From<IsolationError> for SnicError {
    fn from(e: IsolationError) -> Self {
        SnicError::Isolation(e)
    }
}

impl core::fmt::Display for SnicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnicError::Isolation(e) => write!(f, "isolation violation: {e}"),
            SnicError::CoreBusy(c) => write!(f, "nf_launch: {c} already bound to a live NF"),
            SnicError::PageOwned { addr, owner } => {
                write!(f, "nf_launch: page {addr:#x} already owned by {owner}")
            }
            SnicError::AccelUnavailable(c) => {
                write!(
                    f,
                    "nf_launch: accelerator cluster {:?}#{} unavailable",
                    c.kind, c.index
                )
            }
            SnicError::PortBufferExhausted => {
                write!(f, "nf_launch: insufficient RX/TX port buffer space")
            }
            SnicError::CacheExhausted => {
                write!(f, "nf_launch: insufficient cache capacity for reservation")
            }
            SnicError::NoSuchNf(id) => write!(f, "no such network function: {id}"),
            SnicError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SnicError::Malformed(what) => write!(f, "malformed packet: {what}"),
            SnicError::NicCrashed => write!(f, "NIC hard-crashed; power cycle required"),
            SnicError::Verification(report) => {
                write!(f, "static verification refused the manifest: {report}")
            }
            SnicError::Transient(res) => {
                write!(f, "transient exhaustion of {res}; retry with backoff")
            }
            SnicError::PowerLoss => write!(f, "power lost mid-operation; device restart required"),
            SnicError::BusError { addr } => write!(f, "bus error aborted transfer at {addr:#x}"),
            SnicError::NfFaulted(nf) => {
                write!(f, "{nf} is faulted; resources frozen until teardown")
            }
            SnicError::ScrubPending { base } => {
                write!(
                    f,
                    "region at {base:#x} awaits scrub completion before reuse"
                )
            }
        }
    }
}

impl std::error::Error for SnicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnicError::Isolation(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let e = SnicError::from(IsolationError::Denylisted {
            addr: 0x1000,
            owner: NfId(3),
        });
        let s = e.to_string();
        assert!(s.contains("0x1000"), "{s}");
        assert!(s.contains("nf3"), "{s}");
    }

    #[test]
    fn source_chains_to_isolation() {
        use std::error::Error;
        let e = SnicError::from(IsolationError::TlbLocked);
        assert!(e.source().is_some());
        assert!(SnicError::NicCrashed.source().is_none());
    }

    #[test]
    fn retryable_split() {
        assert!(SnicError::Transient(TransientResource::Dram).is_retryable());
        assert!(SnicError::Transient(TransientResource::AccelPool).is_retryable());
        assert!(SnicError::Transient(TransientResource::NicOs).is_retryable());
        for fatal in [
            SnicError::NicCrashed,
            SnicError::PowerLoss,
            SnicError::NfFaulted(NfId(1)),
            SnicError::ScrubPending { base: 0x1000 },
            SnicError::BusError { addr: 0x2000 },
            SnicError::InvalidConfig("x".into()),
            SnicError::CoreBusy(CoreId(0)),
            SnicError::from(IsolationError::TlbLocked),
        ] {
            assert!(!fatal.is_retryable(), "{fatal} must not be retryable");
        }
    }

    #[test]
    fn new_variants_display() {
        let s = SnicError::Transient(TransientResource::AccelPool).to_string();
        assert!(s.contains("retry"), "{s}");
        let s = SnicError::ScrubPending { base: 0xabc }.to_string();
        assert!(s.contains("0xabc"), "{s}");
        let s = SnicError::NfFaulted(NfId(4)).to_string();
        assert!(s.contains("nf4"), "{s}");
    }

    #[test]
    fn tlb_miss_display_mentions_core() {
        let e = IsolationError::TlbMiss {
            core: CoreId(4),
            addr: 0xdead_beef,
        };
        assert!(e.to_string().contains("core4"));
    }
}
