//! Aggregate S-NIC hardware overhead (the headline §5.2 numbers).
//!
//! §5.2 accumulates three TLB inventories against the 4-core A9 + 512-
//! entry-TLB reference design:
//!
//! 1. programmable-core TLBs (512 entries × 4 cores): +3.19% area,
//!    +4.45% power,
//! 2. virtualized-accelerator TLB banks (DPI 54 + ZIP 70 + RAID 5
//!    entries, 16 clusters each): "up to 4.2% more die area and 5.3% more
//!    power",
//! 3. VPP + DMA TLBs (3 and 2 entries, 12 units each): "1.5% increase in
//!    chip area, and 1.7% additional power draw".
//!
//! Sum: +8.89% area, +11.45% power.

use crate::tlb_model::{
    tlb_area_mm2, tlb_power_w, CostEstimate, A9_QUAD_512TLB_AREA_MM2, A9_QUAD_512TLB_POWER_W,
};

/// One line of the overhead report.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadLine {
    /// Component name.
    pub component: &'static str,
    /// Added silicon.
    pub cost: CostEstimate,
    /// Area increase relative to the reference design, percent.
    pub area_pct: f64,
    /// Power increase relative to the reference design, percent.
    pub power_pct: f64,
}

/// The full S-NIC overhead report.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Per-component lines.
    pub lines: Vec<OverheadLine>,
}

impl OverheadReport {
    /// Total added area, percent of the reference design.
    pub fn total_area_pct(&self) -> f64 {
        self.lines.iter().map(|l| l.area_pct).sum()
    }

    /// Total added power, percent of the reference design.
    pub fn total_power_pct(&self) -> f64 {
        self.lines.iter().map(|l| l.power_pct).sum()
    }
}

/// Configuration of the S-NIC inventory being costed.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Programmable cores (each gets a private TLB).
    pub cores: u64,
    /// TLB entries per programmable core.
    pub core_tlb_entries: u64,
    /// Clusters per accelerator family.
    pub accel_clusters: u64,
    /// VPP/vDMA units.
    pub vpp_units: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        // The paper's worst-case accounting: 4 cores with 1024 MB/core
        // (512-entry) TLBs, 16 clusters per accelerator, 12 VPP/vDMA.
        OverheadConfig {
            cores: 4,
            core_tlb_entries: 512,
            accel_clusters: 16,
            vpp_units: 12,
        }
    }
}

/// Per-cluster TLB bank sizes (Table 3 / Table 7, 2 MB pages).
pub const DPI_BANK_ENTRIES: u64 = 54;
/// ZIP cluster bank size.
pub const ZIP_BANK_ENTRIES: u64 = 70;
/// RAID cluster bank size.
pub const RAID_BANK_ENTRIES: u64 = 5;
/// VPP scheduler bank size (Table 4).
pub const VPP_BANK_ENTRIES: u64 = 3;
/// DMA bank size (Table 4; the paper notes 2 entries cost the same as 3
/// in McPAT, so we cost it at 3).
pub const DMA_BANK_ENTRIES: u64 = 3;

/// Compute the S-NIC overhead report for `config`.
pub fn snic_overhead(config: &OverheadConfig) -> OverheadReport {
    let ref_area = A9_QUAD_512TLB_AREA_MM2;
    let ref_power = A9_QUAD_512TLB_POWER_W;
    let line = |component, cost: CostEstimate| OverheadLine {
        component,
        area_pct: cost.area_mm2 / ref_area * 100.0,
        power_pct: cost.power_w / ref_power * 100.0,
        cost,
    };

    let cores = CostEstimate::tlbs(config.core_tlb_entries, config.cores);
    let accel = CostEstimate {
        area_mm2: (tlb_area_mm2(DPI_BANK_ENTRIES)
            + tlb_area_mm2(ZIP_BANK_ENTRIES)
            + tlb_area_mm2(RAID_BANK_ENTRIES))
            * config.accel_clusters as f64,
        power_w: (tlb_power_w(DPI_BANK_ENTRIES)
            + tlb_power_w(ZIP_BANK_ENTRIES)
            + tlb_power_w(RAID_BANK_ENTRIES))
            * config.accel_clusters as f64,
    };
    let vpp_dma = CostEstimate {
        area_mm2: (tlb_area_mm2(VPP_BANK_ENTRIES) + tlb_area_mm2(DMA_BANK_ENTRIES))
            * config.vpp_units as f64,
        power_w: (tlb_power_w(VPP_BANK_ENTRIES) + tlb_power_w(DMA_BANK_ENTRIES))
            * config.vpp_units as f64,
    };

    OverheadReport {
        lines: vec![
            line("programmable-core TLBs", cores),
            line("accelerator TLB banks", accel),
            line("VPP + DMA TLB banks", vpp_dma),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_area_near_8_89_percent() {
        let r = snic_overhead(&OverheadConfig::default());
        let total = r.total_area_pct();
        assert!(
            (total - 8.89).abs() < 0.9,
            "total area overhead {total:.2}%"
        );
    }

    #[test]
    fn headline_power_near_11_45_percent() {
        let r = snic_overhead(&OverheadConfig::default());
        let total = r.total_power_pct();
        assert!(
            (total - 11.45).abs() < 1.2,
            "total power overhead {total:.2}%"
        );
    }

    #[test]
    fn component_breakdown_matches_paper_sections() {
        let r = snic_overhead(&OverheadConfig::default());
        // Cores: 3.19% area / 4.45% power.
        assert!(
            (r.lines[0].area_pct - 3.19).abs() < 0.35,
            "{:?}",
            r.lines[0]
        );
        assert!(
            (r.lines[0].power_pct - 4.45).abs() < 0.5,
            "{:?}",
            r.lines[0]
        );
        // Accelerators: ~4.2% area / ~5.3% power.
        assert!((r.lines[1].area_pct - 4.2).abs() < 0.5, "{:?}", r.lines[1]);
        assert!((r.lines[1].power_pct - 5.3).abs() < 0.6, "{:?}", r.lines[1]);
        // VPP/DMA: ~1.5% area / ~1.7% power.
        assert!((r.lines[2].area_pct - 1.5).abs() < 0.3, "{:?}", r.lines[2]);
        assert!((r.lines[2].power_pct - 1.7).abs() < 0.4, "{:?}", r.lines[2]);
    }

    #[test]
    fn overhead_scales_with_inventory() {
        let small = snic_overhead(&OverheadConfig {
            accel_clusters: 4,
            ..Default::default()
        });
        let big = snic_overhead(&OverheadConfig::default());
        assert!(small.total_area_pct() < big.total_area_pct());
    }

    #[test]
    fn smaller_core_tlbs_cost_less() {
        let flex = snic_overhead(&OverheadConfig {
            core_tlb_entries: 13,
            ..Default::default()
        });
        let equal = snic_overhead(&OverheadConfig::default());
        assert!(flex.lines[0].area_pct < equal.lines[0].area_pct / 5.0);
    }
}
