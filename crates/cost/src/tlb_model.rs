//! The calibrated fully-associative TLB (CAM) cost model.
//!
//! Structure: a fixed periphery cost (decoder, comparators' shared
//! logic), a linear per-entry cell cost, and a superlinear match-line /
//! search term — the standard shape of CAM scaling. Coefficients are
//! least-squares fits (relative-error weighted) against the ten per-unit
//! `(entries, area, power)` points recoverable from Tables 2–5 of the
//! paper at 28 nm / 2 GHz:
//!
//! | entries | source |
//! |---------|--------|
//! | 2, 3    | Table 4 (DMA, VPP; the paper notes 2 ≈ 3 in McPAT) |
//! | 5, 54, 70 | Table 3 (RAID/DPI/ZIP clusters, ÷16) |
//! | 13, 51  | Table 5 (Flex policies, ÷48 cores) |
//! | 183, 256, 512 | Table 2 (per-core TLBs, ÷4 cores) |

/// Baseline 4-core ARM Cortex-A9 area (mm², 28 nm) implied by Table 2
/// (each row's Total minus its TLB addition is constant at this value).
pub const A9_QUAD_AREA_MM2: f64 = 4.939;
/// Baseline 4-core A9 power (W) implied by Table 2.
pub const A9_QUAD_POWER_W: f64 = 1.883;
/// The paper's reference configuration (4-core A9 + 512-entry TLBs),
/// which §5.2 uses as the denominator for the accelerator and VPP/DMA
/// percentages.
pub const A9_QUAD_512TLB_AREA_MM2: f64 = 5.102;
/// Power of the reference configuration.
pub const A9_QUAD_512TLB_POWER_W: f64 = 1.971;

// Area model: c0 + c1·N + c2·N^1.7 (mm² per TLB unit).
const AREA_C0: f64 = 2.991995e-3;
const AREA_C1: f64 = 1.976335e-5;
const AREA_C2: f64 = 6.457373e-7;
const AREA_EXP: f64 = 1.7;

// Power model: c0 + c1·N + c2·N^1.35 (W per TLB unit).
const POWER_C0: f64 = 1.389198e-3;
const POWER_C1: f64 = -2.347059e-6;
const POWER_C2: f64 = 4.718857e-6;
const POWER_EXP: f64 = 1.35;

/// Area of one fully-associative TLB with `entries` entries, in mm².
///
/// # Panics
///
/// Panics on zero entries (a TLB with no entries is a config bug).
pub fn tlb_area_mm2(entries: u64) -> f64 {
    assert!(entries > 0, "TLB with zero entries");
    let n = entries as f64;
    AREA_C0 + AREA_C1 * n + AREA_C2 * n.powf(AREA_EXP)
}

/// Power of one fully-associative TLB with `entries` entries, in W.
pub fn tlb_power_w(entries: u64) -> f64 {
    assert!(entries > 0, "TLB with zero entries");
    let n = entries as f64;
    POWER_C0 + POWER_C1 * n + POWER_C2 * n.powf(POWER_EXP)
}

/// A (area, power) pair for some hardware addition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in W.
    pub power_w: f64,
}

impl CostEstimate {
    /// Cost of `units` identical TLBs of `entries` entries.
    pub fn tlbs(entries: u64, units: u64) -> CostEstimate {
        CostEstimate {
            area_mm2: tlb_area_mm2(entries) * units as f64,
            power_w: tlb_power_w(entries) * units as f64,
        }
    }

    /// Element-wise sum.
    pub fn plus(self, other: CostEstimate) -> CostEstimate {
        CostEstimate {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_w: self.power_w + other.power_w,
        }
    }

    /// The zero cost.
    pub fn zero() -> CostEstimate {
        CostEstimate {
            area_mm2: 0.0,
            power_w: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ten calibration points: (entries, per-unit area, per-unit power).
    fn calibration_points() -> Vec<(u64, f64, f64)> {
        vec![
            (2, 0.037 / 12.0, 0.017 / 12.0),
            (3, 0.037 / 12.0, 0.017 / 12.0),
            (5, 0.050 / 16.0, 0.023 / 16.0),
            (13, 0.150 / 48.0, 0.069 / 48.0),
            (51, 0.214 / 48.0, 0.106 / 48.0),
            (54, 0.074 / 16.0, 0.037 / 16.0),
            (70, 0.091 / 16.0, 0.044 / 16.0),
            (183, 0.045 / 4.0, 0.026 / 4.0),
            (256, 0.060 / 4.0, 0.035 / 4.0),
            (512, 0.163 / 4.0, 0.088 / 4.0),
        ]
    }

    #[test]
    fn area_fit_within_8_percent_everywhere() {
        for (n, area, _) in calibration_points() {
            let rel = (tlb_area_mm2(n) - area).abs() / area;
            assert!(
                rel < 0.08,
                "N={n}: model {} vs paper {area} ({rel:.3})",
                tlb_area_mm2(n)
            );
        }
    }

    #[test]
    fn power_fit_within_6_percent_everywhere() {
        for (n, _, power) in calibration_points() {
            let rel = (tlb_power_w(n) - power).abs() / power;
            assert!(
                rel < 0.06,
                "N={n}: model {} vs paper {power} ({rel:.3})",
                tlb_power_w(n)
            );
        }
    }

    #[test]
    fn mean_fit_error_small() {
        let pts = calibration_points();
        let mean_area: f64 = pts
            .iter()
            .map(|&(n, a, _)| (tlb_area_mm2(n) - a).abs() / a)
            .sum::<f64>()
            / pts.len() as f64;
        let mean_power: f64 = pts
            .iter()
            .map(|&(n, _, p)| (tlb_power_w(n) - p).abs() / p)
            .sum::<f64>()
            / pts.len() as f64;
        assert!(mean_area < 0.04, "mean area error {mean_area:.3}");
        assert!(mean_power < 0.03, "mean power error {mean_power:.3}");
    }

    #[test]
    fn models_are_monotone() {
        let mut last_a = 0.0;
        let mut last_p = 0.0;
        for n in 1..=2048u64 {
            let a = tlb_area_mm2(n);
            let p = tlb_power_w(n);
            assert!(a > last_a, "area not monotone at {n}");
            assert!(p > last_p, "power not monotone at {n}");
            last_a = a;
            last_p = p;
        }
    }

    #[test]
    fn table2_rows_reproduce() {
        // Table 2: N-core NICs scale linearly in core count.
        for (entries, area4, power4) in [
            (183u64, 0.045, 0.026),
            (256, 0.060, 0.035),
            (512, 0.163, 0.088),
        ] {
            let c4 = CostEstimate::tlbs(entries, 4);
            assert!(
                (c4.area_mm2 - area4).abs() / area4 < 0.08,
                "{entries}: {c4:?}"
            );
            assert!(
                (c4.power_w - power4).abs() / power4 < 0.06,
                "{entries}: {c4:?}"
            );
            let c48 = CostEstimate::tlbs(entries, 48);
            assert!(
                (c48.area_mm2 - 12.0 * c4.area_mm2).abs() < 1e-9,
                "linear in units"
            );
        }
    }

    #[test]
    fn baseline_constants_consistent_with_table2() {
        // Total column = baseline + addition, for each Table 2 row.
        for (entries, total_area, total_power) in [
            (183u64, 4.984, 1.909),
            (256, 4.999, 1.913),
            (512, 5.102, 1.971),
        ] {
            let add = CostEstimate::tlbs(entries, 4);
            let area = A9_QUAD_AREA_MM2 + add.area_mm2;
            let power = A9_QUAD_POWER_W + add.power_w;
            assert!((area - total_area).abs() < 0.02, "{entries}: area {area}");
            assert!(
                (power - total_power).abs() < 0.01,
                "{entries}: power {power}"
            );
        }
    }

    #[test]
    fn cost_estimate_arithmetic() {
        let a = CostEstimate::tlbs(54, 16);
        let b = CostEstimate::tlbs(70, 16);
        let s = a.plus(b);
        assert!((s.area_mm2 - (a.area_mm2 + b.area_mm2)).abs() < 1e-12);
        let z = CostEstimate::zero().plus(a);
        assert_eq!(z, a);
    }
}
