//! Hardware cost and TCO modeling (the McPAT substitute).
//!
//! §5.2 of the paper sizes S-NIC's new silicon with McPAT at 28 nm /
//! 2 GHz: fully-associative TLBs for programmable cores (Table 2),
//! accelerator clusters (Table 3), and VPP/DMA engines (Table 4), plus a
//! page-size sensitivity study (Table 5) and a three-year TCO comparison
//! against host cores. McPAT is not available as a Rust library, so:
//!
//! - [`tlb_model`] provides an analytic CAM cost model — fixed periphery
//!   plus per-entry cell area plus a superlinear match-line term —
//!   least-squares calibrated against every per-unit value the paper
//!   publishes (ten points across Tables 2–5). The calibration error is
//!   asserted in tests (≤ 8% worst case for area, ≤ 6% for power).
//! - [`overhead`] aggregates the model over S-NIC's full TLB inventory to
//!   reproduce the headline "+8.89% area, +11.45% power" claim.
//! - [`tco`] reimplements the §5.2 three-year TCO arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overhead;
pub mod tco;
pub mod tlb_model;

pub use overhead::{snic_overhead, OverheadReport};
pub use tco::{tco_report, TcoInputs, TcoReport};
pub use tlb_model::{tlb_area_mm2, tlb_power_w, CostEstimate};
