//! Three-year total-cost-of-ownership analysis (§5.2).
//!
//! Reproduces the paper's arithmetic exactly: per-core TCO of a 12-core
//! LiquidIO ($420, 24.7 W) vs a 12-core Xeon E5-2680 v3 ($1745, 113 W)
//! at $0.0733/kWh over three years; S-NIC inflates the NIC's purchase
//! price by its area overhead and its power draw by its power overhead.
//! The "TCO advantage" is the host/NIC per-core cost ratio; S-NIC
//! decreases it by ≈ 8.37%, i.e. preserves ≈ 91.6% of the benefit.

/// Inputs for a TCO comparison.
#[derive(Debug, Clone, Copy)]
pub struct TcoInputs {
    /// NIC purchase cost, USD.
    pub nic_price: f64,
    /// NIC peak power, W.
    pub nic_power_w: f64,
    /// NIC core count.
    pub nic_cores: u32,
    /// Host CPU purchase cost, USD.
    pub host_price: f64,
    /// Host CPU peak power, W.
    pub host_power_w: f64,
    /// Host CPU core count.
    pub host_cores: u32,
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
    /// Amortization horizon in years.
    pub years: f64,
    /// S-NIC area overhead (fraction, e.g. 0.0889).
    pub snic_area_overhead: f64,
    /// S-NIC power overhead (fraction, e.g. 0.1145).
    pub snic_power_overhead: f64,
}

impl Default for TcoInputs {
    fn default() -> Self {
        TcoInputs {
            nic_price: 420.0,
            nic_power_w: 24.7,
            nic_cores: 12,
            host_price: 1745.0,
            host_power_w: 113.0,
            host_cores: 12,
            usd_per_kwh: 0.0733,
            years: 3.0,
            snic_area_overhead: 0.0889,
            snic_power_overhead: 0.1145,
        }
    }
}

/// The TCO comparison output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoReport {
    /// Commodity NIC per-core TCO, USD.
    pub nic_per_core: f64,
    /// Host per-core TCO, USD.
    pub host_per_core: f64,
    /// S-NIC per-core TCO, USD.
    pub snic_per_core: f64,
    /// Host/NIC cost ratio before S-NIC.
    pub advantage_before: f64,
    /// Host/NIC cost ratio with S-NIC.
    pub advantage_after: f64,
    /// Fractional decrease in the advantage (the paper's 8.37%).
    pub advantage_decrease: f64,
}

/// Energy cost of running `power_w` watts for `years` years.
fn energy_cost(power_w: f64, years: f64, usd_per_kwh: f64) -> f64 {
    power_w / 1000.0 * 24.0 * 365.0 * years * usd_per_kwh
}

/// Compute the TCO report.
pub fn tco_report(inputs: &TcoInputs) -> TcoReport {
    let nic_total =
        inputs.nic_price + energy_cost(inputs.nic_power_w, inputs.years, inputs.usd_per_kwh);
    let host_total =
        inputs.host_price + energy_cost(inputs.host_power_w, inputs.years, inputs.usd_per_kwh);
    // S-NIC: purchase scales with die area; energy with power draw.
    let snic_total = inputs.nic_price * (1.0 + inputs.snic_area_overhead)
        + energy_cost(
            inputs.nic_power_w * (1.0 + inputs.snic_power_overhead),
            inputs.years,
            inputs.usd_per_kwh,
        );

    let nic_per_core = nic_total / f64::from(inputs.nic_cores);
    let host_per_core = host_total / f64::from(inputs.host_cores);
    let snic_per_core = snic_total / f64::from(inputs.nic_cores);
    let advantage_before = host_per_core / nic_per_core;
    let advantage_after = host_per_core / snic_per_core;
    TcoReport {
        nic_per_core,
        host_per_core,
        snic_per_core,
        advantage_before,
        advantage_after,
        advantage_decrease: (advantage_before - advantage_after) / advantage_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_tcos_match_paper() {
        let r = tco_report(&TcoInputs::default());
        assert!(
            (r.nic_per_core - 38.97).abs() < 0.05,
            "NIC {:.2}",
            r.nic_per_core
        );
        assert!(
            (r.host_per_core - 163.56).abs() < 0.10,
            "host {:.2}",
            r.host_per_core
        );
        assert!(
            (r.snic_per_core - 42.53).abs() < 0.10,
            "S-NIC {:.2}",
            r.snic_per_core
        );
    }

    #[test]
    fn advantage_decrease_matches_8_37_percent() {
        let r = tco_report(&TcoInputs::default());
        assert!(
            (r.advantage_decrease - 0.0837).abs() < 0.002,
            "decrease {:.4}",
            r.advantage_decrease
        );
        // Preserved benefit: ≈ 91.6%.
        assert!((1.0 - r.advantage_decrease - 0.916).abs() < 0.003);
    }

    #[test]
    fn offloading_still_wins_with_snic() {
        let r = tco_report(&TcoInputs::default());
        assert!(
            r.advantage_after > 3.0,
            "S-NIC must preserve most of the TCO benefit"
        );
        assert!(r.snic_per_core > r.nic_per_core);
        assert!(r.snic_per_core < r.host_per_core);
    }

    #[test]
    fn zero_overhead_means_no_decrease() {
        let r = tco_report(&TcoInputs {
            snic_area_overhead: 0.0,
            snic_power_overhead: 0.0,
            ..TcoInputs::default()
        });
        assert!(r.advantage_decrease.abs() < 1e-12);
    }

    #[test]
    fn energy_cost_sanity() {
        // 1 kW for one year at $0.10/kWh = $876.
        assert!((energy_cost(1000.0, 1.0, 0.10) - 876.0).abs() < 1e-9);
    }

    #[test]
    fn electricity_price_sensitivity() {
        // Cheaper power widens the NIC's advantage (NICs draw less).
        let cheap = tco_report(&TcoInputs {
            usd_per_kwh: 0.01,
            ..TcoInputs::default()
        });
        let pricey = tco_report(&TcoInputs {
            usd_per_kwh: 0.30,
            ..TcoInputs::default()
        });
        assert!(cheap.advantage_before < pricey.advantage_before);
    }
}
