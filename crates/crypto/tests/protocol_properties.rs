//! Property tests across the crypto crate.

use proptest::prelude::*;
use rand::SeedableRng;
use snic_crypto::chacha20::ChaCha20;
use snic_crypto::dh::{DhKeyPair, DhParams};
use snic_crypto::hmac::hmac_sha256;
use snic_crypto::rsa::RsaKeyPair;
use snic_crypto::sha256::sha256;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..500)) {
        let a = sha256(&data);
        prop_assert_eq!(a, sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(a, sha256(&flipped));
        }
    }

    #[test]
    fn chacha_decrypts_what_it_encrypts(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let cipher = ChaCha20::new(&key, &nonce);
        let mut buf = data.clone();
        cipher.apply(counter, &mut buf);
        cipher.apply(counter, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn hmac_keys_separate(data in proptest::collection::vec(any::<u8>(), 1..200)) {
        prop_assert_ne!(hmac_sha256(b"key-a", &data), hmac_sha256(b"key-b", &data));
    }

    #[test]
    fn dh_tiny_group_always_agrees(seed in any::<u64>()) {
        let params = DhParams::tiny_test_group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = DhKeyPair::generate(&mut rng, &params);
        let b = DhKeyPair::generate(&mut rng, &params);
        prop_assert_eq!(a.shared_secret(&b.public), b.shared_secret(&a.public));
    }
}

#[test]
fn rsa_sign_verify_many_messages() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x125a);
    let key = RsaKeyPair::generate(&mut rng, 512);
    for i in 0..20u32 {
        let msg = format!("statement-{i}");
        let sig = key.sign(msg.as_bytes());
        assert!(key.public.verify(msg.as_bytes(), &sig));
        assert!(!key
            .public
            .verify(format!("statement-{}", i + 1).as_bytes(), &sig));
    }
}
