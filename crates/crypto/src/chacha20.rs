//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used to encrypt constellation traffic (§4.7): once two attested
//! endpoints share a symmetric key, packets between them are encrypted so
//! the datacenter operator snooping the NIC/host bus learns nothing.

/// ChaCha20 keystream generator / stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Create a cipher from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> ChaCha20 {
        let mut k = [0u32; 8];
        for (i, c) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        let mut n = [0u32; 3];
        for (i, c) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Generate the 64-byte keystream block for the given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        // "expand 32-byte k" constants.
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` in place with the keystream starting at block `counter`.
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply(&self, counter: u32, data: &mut [u8]) {
        for (blk_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(counter.wrapping_add(blk_idx as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&rfc_key(), &nonce);
        let block = cipher.block(1);
        assert_eq!(
            &block[..8],
            &[0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15]
        );
        assert_eq!(
            &block[56..],
            &[0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e]
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&rfc_key(), &nonce);
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        cipher.apply(1, &mut data);
        assert_eq!(
            &data[..8],
            &[0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80]
        );
        assert_eq!(data[data.len() - 1], 0x4d);
    }

    #[test]
    fn apply_is_involution() {
        let cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
        let original: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        cipher.apply(0, &mut data);
        assert_ne!(data, original);
        cipher.apply(0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let c1 = ChaCha20::new(&[1u8; 32], &[0u8; 12]);
        let c2 = ChaCha20::new(&[1u8; 32], &[1u8; 12]);
        assert_ne!(c1.block(0), c2.block(0));
    }
}
