//! Finite-field Diffie–Hellman (Appendix A of the paper).
//!
//! The attestation protocol is "based on the classic Diffie–Hellman
//! exchange": the function contributes `g^x mod p`, the verifier
//! contributes `g^y mod p`, and both derive the session key from
//! `g^(xy) mod p`. We use the RFC 3526 group 14 (2048-bit MODP) parameters
//! by default; tests use a smaller group for speed.

use rand::Rng;

use crate::bigint::BigUint;
use crate::sha256::sha256;

/// RFC 3526 group 14: 2048-bit MODP prime (generator 2).
const MODP_2048: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// Diffie–Hellman group parameters `(g, p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhParams {
    /// Generator.
    pub g: BigUint,
    /// Prime modulus.
    pub p: BigUint,
}

impl DhParams {
    /// The RFC 3526 2048-bit MODP group with generator 2.
    pub fn rfc3526_group14() -> DhParams {
        DhParams {
            g: BigUint::from_u64(2),
            p: BigUint::from_hex(MODP_2048),
        }
    }

    /// A small (insecure) test group for fast unit tests: p = 2^89-1 is not
    /// prime, so instead we use the 61-bit Mersenne prime 2^61-1 with
    /// generator 3.
    pub fn tiny_test_group() -> DhParams {
        DhParams {
            g: BigUint::from_u64(3),
            p: BigUint::from_u64((1u64 << 61) - 1),
        }
    }
}

/// One party's ephemeral Diffie–Hellman key pair.
#[derive(Debug, Clone)]
pub struct DhKeyPair {
    params: DhParams,
    secret: BigUint,
    /// The public value `g^x mod p` sent to the peer.
    pub public: BigUint,
}

impl DhKeyPair {
    /// Generate an ephemeral key pair over `params`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, params: &DhParams) -> DhKeyPair {
        // Secret exponent in [2, p-2].
        let two = BigUint::from_u64(2);
        let bound = params.p.sub(&BigUint::from_u64(3));
        let secret = BigUint::random_below(rng, &bound).add(&two);
        let public = params.g.modpow(&secret, &params.p);
        DhKeyPair {
            params: params.clone(),
            secret,
            public,
        }
    }

    /// Compute the shared secret `peer_public^x mod p`.
    pub fn shared_secret(&self, peer_public: &BigUint) -> BigUint {
        peer_public.modpow(&self.secret, &self.params.p)
    }

    /// Derive a 256-bit symmetric session key from the shared secret,
    /// bound to both parties' transcripts via the supplied context bytes.
    pub fn session_key(&self, peer_public: &BigUint, context: &[u8]) -> [u8; 32] {
        let mut material = self.shared_secret(peer_public).to_be_bytes();
        material.extend_from_slice(context);
        sha256(&material)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn group14_parameters_sane() {
        let params = DhParams::rfc3526_group14();
        assert_eq!(params.p.bits(), 2048);
        assert!(!params.p.is_even());
        assert_eq!(params.g, BigUint::from_u64(2));
    }

    #[test]
    fn exchange_agrees_tiny_group() {
        let params = DhParams::tiny_test_group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let alice = DhKeyPair::generate(&mut rng, &params);
        let bob = DhKeyPair::generate(&mut rng, &params);
        assert_eq!(
            alice.shared_secret(&bob.public),
            bob.shared_secret(&alice.public)
        );
        assert_eq!(
            alice.session_key(&bob.public, b"ctx"),
            bob.session_key(&alice.public, b"ctx")
        );
        assert_ne!(
            alice.session_key(&bob.public, b"ctx"),
            alice.session_key(&bob.public, b"other"),
        );
    }

    #[test]
    fn exchange_agrees_group14() {
        let params = DhParams::rfc3526_group14();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let alice = DhKeyPair::generate(&mut rng, &params);
        let bob = DhKeyPair::generate(&mut rng, &params);
        let k1 = alice.shared_secret(&bob.public);
        let k2 = bob.shared_secret(&alice.public);
        assert_eq!(k1, k2);
        assert!(
            k1.bits() > 1000,
            "shared secret should be a large group element"
        );
    }

    #[test]
    fn distinct_pairs_distinct_secrets() {
        let params = DhParams::tiny_test_group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = DhKeyPair::generate(&mut rng, &params);
        let b = DhKeyPair::generate(&mut rng, &params);
        let c = DhKeyPair::generate(&mut rng, &params);
        assert_ne!(a.shared_secret(&b.public), a.shared_secret(&c.public));
    }
}
