//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, schoolbook multiplication, Knuth Algorithm D
//! division, binary modular exponentiation, Miller–Rabin primality testing,
//! and modular inverse via the extended Euclidean algorithm. Sized for the
//! needs of [`crate::dh`] (2048-bit) and [`crate::rsa`] (1024–2048 bit), not
//! for general-purpose performance.

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing (most-significant) zero limbs; zero is
/// represented by an empty limb vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> BigUint {
        BigUint::from_u64(1)
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> BigUint {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = [0u8; 8];
            limb[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(limb));
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes without leading zeros (empty for 0).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.split_off(first_nonzero)
    }

    /// Parse from a hexadecimal string (no prefix, whitespace ignored).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters; used for embedded constants only.
    pub fn from_hex(s: &str) -> BigUint {
        let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(
            clean.chars().all(|c| c.is_ascii_hexdigit()),
            "invalid hex constant"
        );
        let nibble = |c: char| c.to_digit(16).expect("validated hex digit") as u8;
        let mut bytes = Vec::with_capacity(clean.len() / 2 + 1);
        let chars: Vec<char> = clean.chars().collect();
        let mut i = 0;
        if chars.len() % 2 == 1 {
            bytes.push(nibble(chars[0]));
            i = 1;
        }
        while i < chars.len() {
            bytes.push((nibble(chars[i]) << 4) | nibble(chars[i + 1]));
            i += 2;
        }
        BigUint::from_be_bytes(&bytes)
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        self.limbs
            .get(limb)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift right by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            // Fast path: single-limb divisor.
            let d = divisor.limbs[0];
            let mut rem = 0u64;
            let mut q = vec![0u64; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (u128::from(rem) << 64) | u128::from(self.limbs[i]);
                q[i] = (cur / u128::from(d)) as u64;
                rem = (cur % u128::from(d)) as u64;
            }
            let mut quot = BigUint { limbs: q };
            quot.normalize();
            return (quot, BigUint::from_u64(rem));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor
            .limbs
            .last()
            .expect("divisor is nonzero, so it has limbs")
            .leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // Extra limb for the algorithm's u[m+n] slot.
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_second = vn[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder,
            // clamped to B-1 (Knuth's step D3 requires the clamp before
            // the two-limb refinement).
            let numerator = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = (numerator / u128::from(v_top)).min((1u128 << 64) - 1);
            let mut rhat = numerator - qhat * u128::from(v_top);
            while rhat < (1u128 << 64)
                && qhat * u128::from(v_second) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_top);
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - (p as u64 as i128) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = i128::from(un[j + n]) - carry as i128 + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            q[j] = qhat as u64;
            if borrow < 0 {
                // q̂ was one too large: add the divisor back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u128::from(un[j + i]) + u128::from(vn[i]) + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quot = BigUint { limbs: q };
        quot.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quot, rem.shr(shift))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus`.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `self^exp mod modulus` by left-to-right binary exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus == &BigUint::one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self.rem(modulus);
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            result = result.mulmod(&result, modulus);
            if exp.bit(i) {
                result = result.mulmod(&base, modulus);
            }
        }
        result
    }

    /// Modular inverse: the `x` with `(self * x) mod modulus == 1`.
    ///
    /// Returns `None` if `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid tracking only the coefficient of `self`, with an
        // explicit sign since BigUint is unsigned.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (BigUint::zero(), false); // (magnitude, negative?)
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed arithmetic on magnitudes).
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return None;
        }
        let (mag, neg) = t0;
        Some(if neg {
            modulus.sub(&mag.rem(modulus)).rem(modulus)
        } else {
            mag.rem(modulus)
        })
    }

    /// Uniformly random value in `[0, bound)` using the supplied RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below zero bound");
        let nbits = bound.bits();
        let nlimbs = nbits.div_ceil(64);
        loop {
            let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.random()).collect();
            // Mask off bits above the bound's width to keep rejection cheap.
            let extra = nlimbs * 64 - nbits;
            if extra > 0 {
                let last = limbs.last_mut().expect("nlimbs >= 1");
                *last &= u64::MAX >> extra;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.is_zero() || self == &BigUint::one() {
            return false;
        }
        let two = BigUint::from_u64(2);
        if self == &two {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Trial division by small primes eliminates most candidates cheaply.
        for p in SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self-1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr(s);
        let n_minus_3 = self.sub(&BigUint::from_u64(3));
        'witness: for _ in 0..rounds {
            // Random base in [2, n-2].
            let a = BigUint::random_below(rng, &n_minus_3).add(&two);
            let mut x = a.modpow(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 8, "prime size too small");
        loop {
            let bound = BigUint::one().shl(bits);
            let mut candidate = BigUint::random_below(rng, &bound);
            // Force top bit (exact size) and bottom bit (odd).
            candidate = candidate.clone().add(&BigUint::one().shl(bits - 1));
            if candidate.bits() > bits {
                continue;
            }
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.is_probable_prime(rng, 16) {
                return candidate;
            }
        }
    }
}

/// Count of trailing zero bits.
fn trailing_zeros(n: &BigUint) -> usize {
    assert!(!n.is_zero());
    let mut count = 0;
    for &limb in &n.limbs {
        if limb == 0 {
            count += 64;
        } else {
            count += limb.trailing_zeros() as usize;
            break;
        }
    }
    count
}

/// `a - b` on signed (magnitude, negative?) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with like signs: compare magnitudes.
        (an, bn) if an == bn => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
        // a - (-b) = a + b, keeping a's sign; (-a) - b = -(a + b).
        (an, _) => (a.0.add(&b.0), an),
    }
}

const SMALL_PRIMES: [u64; 15] = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            core::cmp::Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        core::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                core::cmp::Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl core::fmt::Display for BigUint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let bytes = self.to_be_bytes();
        write!(f, "0x")?;
        for b in bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_be_bytes(&v.to_be_bytes())
    }

    #[test]
    fn round_trip_bytes() {
        let n = BigUint::from_be_bytes(&[0x01, 0x02, 0x03]);
        assert_eq!(n.to_be_bytes(), vec![0x01, 0x02, 0x03]);
        assert_eq!(BigUint::zero().to_be_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_be_bytes(&[0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn from_hex_parses() {
        assert_eq!(BigUint::from_hex("ff"), BigUint::from_u64(255));
        assert_eq!(BigUint::from_hex("1 00"), BigUint::from_u64(256));
        assert_eq!(BigUint::from_hex("abc"), BigUint::from_u64(0xabc));
    }

    #[test]
    fn bits_and_bit() {
        let n = BigUint::from_u64(0b1010);
        assert_eq!(n.bits(), 4);
        assert!(n.bit(1));
        assert!(!n.bit(0));
        assert!(!n.bit(100));
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().shl(100).bits(), 101);
    }

    #[test]
    fn modpow_small_cases() {
        // 3^5 mod 7 = 243 mod 7 = 5.
        let r = BigUint::from_u64(3).modpow(&BigUint::from_u64(5), &BigUint::from_u64(7));
        assert_eq!(r, BigUint::from_u64(5));
        // Fermat: a^(p-1) = 1 mod p.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn modinv_matches_fermat() {
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(42);
        let inv = a.modinv(&p).unwrap();
        assert_eq!(a.mulmod(&inv, &p), BigUint::one());
        // No inverse when gcd != 1.
        assert!(BigUint::from_u64(6).modinv(&BigUint::from_u64(9)).is_none());
    }

    #[test]
    fn known_primes_and_composites() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for p in [2u64, 3, 5, 101, 65_537, 1_000_000_007] {
            assert!(
                BigUint::from_u64(p).is_probable_prime(&mut rng, 16),
                "{p} is prime"
            );
        }
        for c in [1u64, 4, 100, 65_535, 1_000_000_011] {
            assert!(
                !BigUint::from_u64(c).is_probable_prime(&mut rng, 16),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn gen_prime_has_exact_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let p = BigUint::gen_prime(&mut rng, 128);
        assert_eq!(p.bits(), 128);
        assert!(p.is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn knuth_division_addback_case() {
        // Stress the rare add-back branch with a divisor of all-ones limbs.
        let u = BigUint {
            limbs: vec![0, 0, 0x8000_0000_0000_0000, u64::MAX],
        };
        let v = BigUint {
            limbs: vec![u64::MAX, u64::MAX],
        };
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a in any::<u128>(), b in any::<u128>()) {
            let (x, y) = (big(a), big(b));
            let sum = x.add(&y);
            prop_assert_eq!(sum.sub(&y), x);
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let expect = big(u128::from(a) * u128::from(b));
            prop_assert_eq!(BigUint::from_u64(a).mul(&BigUint::from_u64(b)), expect);
        }

        #[test]
        fn div_rem_reconstructs(a in any::<u128>(), b in 1u128..) {
            let (x, y) = (big(a), big(b));
            let (q, r) = x.div_rem(&y);
            prop_assert!(r < y);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }

        #[test]
        fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q, big(a / b));
            prop_assert_eq!(r, big(a % b));
        }

        #[test]
        fn shl_shr_inverse(a in any::<u128>(), s in 0usize..200) {
            let x = big(a);
            prop_assert_eq!(x.shl(s).shr(s), x);
        }

        #[test]
        fn modpow_matches_u128(base in any::<u32>(), e in 0u32..64, m in 2u64..) {
            let mut expect: u128 = 1;
            for _ in 0..e {
                expect = expect * u128::from(base) % u128::from(m);
            }
            let got = BigUint::from_u64(u64::from(base))
                .modpow(&BigUint::from_u64(u64::from(e)), &BigUint::from_u64(m));
            prop_assert_eq!(got, big(expect));
        }

        #[test]
        fn big_division_random_multi_limb(
            a in proptest::collection::vec(any::<u64>(), 1..8),
            b in proptest::collection::vec(any::<u64>(), 1..5),
        ) {
            let mut x = BigUint { limbs: a };
            x.normalize();
            let mut y = BigUint { limbs: b };
            y.normalize();
            prop_assume!(!y.is_zero());
            let (q, r) = x.div_rem(&y);
            prop_assert!(r < y);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }
    }
}
