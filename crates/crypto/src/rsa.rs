//! Textbook RSA signatures for the S-NIC key hierarchy.
//!
//! The paper's NIC signs attestation statements with an attestation key
//! whose public half is endorsed by the endorsement key, which is in turn
//! certified by the NIC vendor (Appendix A). We implement deterministic
//! RSA signatures over SHA-256 digests with a fixed PKCS#1-v1.5-style
//! prefix. Simulation-grade only; see the crate-level disclaimer.

use rand::Rng;

use crate::bigint::BigUint;
use crate::sha256::sha256;

/// Public exponent used for all generated keys.
const PUBLIC_EXPONENT: u64 = 65_537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
}

/// An RSA signature (big-endian bytes of the signature integer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaSignature(pub Vec<u8>);

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    d: BigUint,
}

impl RsaKeyPair {
    /// Generate a key pair with a modulus of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` (too small even for tests).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> RsaKeyPair {
        assert!(bits >= 128, "RSA modulus too small");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = BigUint::gen_prime(rng, bits / 2);
            let q = BigUint::gen_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&phi) else { continue };
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// Sign `message`: pad SHA-256(message) and apply the private exponent.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let em = pad_digest(&sha256(message), self.public.n.bits());
        let m = BigUint::from_be_bytes(&em);
        debug_assert!(m < self.public.n);
        RsaSignature(m.modpow(&self.d, &self.public.n).to_be_bytes())
    }
}

impl RsaPublicKey {
    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &RsaSignature) -> bool {
        let s = BigUint::from_be_bytes(&signature.0);
        if s >= self.n {
            return false;
        }
        let em = s.modpow(&self.e, &self.n).to_be_bytes();
        let expect = pad_digest(&sha256(message), self.n.bits());
        // Compare without the leading zero byte stripped by to_be_bytes.
        let expect_trimmed: Vec<u8> = {
            let start = expect.iter().position(|&b| b != 0).unwrap_or(expect.len());
            expect[start..].to_vec()
        };
        em == expect_trimmed
    }

    /// Serialize for hashing/certification (modulus then exponent).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.n.to_be_bytes();
        out.push(0xff); // Separator.
        out.extend_from_slice(&self.e.to_be_bytes());
        out
    }
}

/// EMSA-PKCS1-v1_5-style padding: `00 01 FF.. 00 | prefix | digest`,
/// sized to the modulus length.
fn pad_digest(digest: &[u8; 32], modulus_bits: usize) -> Vec<u8> {
    // DER prefix for SHA-256 (RFC 8017 §9.2 note 1).
    const PREFIX: [u8; 19] = [
        0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
        0x05, 0x00, 0x04, 0x20,
    ];
    let k = modulus_bits.div_ceil(8);
    let t_len = PREFIX.len() + digest.len();
    assert!(k >= t_len + 11, "modulus too small for PKCS#1 padding");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&PREFIX);
    em.extend_from_slice(digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn test_keypair() -> RsaKeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        RsaKeyPair::generate(&mut rng, 512)
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = test_keypair();
        let sig = kp.sign(b"attestation statement");
        assert!(kp.public.verify(b"attestation statement", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = test_keypair();
        let sig = kp.sign(b"genuine");
        assert!(!kp.public.verify(b"forged", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = test_keypair();
        let mut sig = kp.sign(b"msg");
        sig.0[0] ^= 0x80;
        assert!(!kp.public.verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = test_keypair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        let kp2 = RsaKeyPair::generate(&mut rng, 512);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public.verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_oversized_signature() {
        let kp = test_keypair();
        let huge = RsaSignature(kp.public.n.to_be_bytes());
        assert!(!kp.public.verify(b"msg", &huge));
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = test_keypair();
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn padding_shape() {
        let em = pad_digest(&sha256(b"x"), 512);
        assert_eq!(em.len(), 64);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        assert!(em[2..].iter().take_while(|&&b| b == 0xff).count() >= 8);
    }
}
