//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Constellation channels (§4.7) authenticate messages with HMAC under the
//! symmetric key derived from the Diffie–Hellman exchange.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let mut h = Sha256::new();
        h.update(key);
        k[..32].copy_from_slice(&h.finalize());
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs.
pub fn verify_mac(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut acc = 0u8;
    for i in 0..32 {
        acc |= expected[i] ^ actual[i];
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_mac_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify_mac(&a, &b));
        b[31] ^= 1;
        assert!(!verify_mac(&a, &b));
    }
}
