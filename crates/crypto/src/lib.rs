//! Simulation-grade cryptography for the S-NIC reproduction.
//!
//! The attestation protocol in Appendix A of the paper needs a hash
//! (SHA-256), a Diffie–Hellman exchange, and signatures from a NIC-resident
//! key hierarchy (endorsement key → attestation key). The offline build
//! environment provides no cryptography crates, so this crate implements
//! the needed primitives from scratch:
//!
//! - [`sha256`]: FIPS 180-4 SHA-256 (with test vectors),
//! - [`hmac`]: HMAC-SHA256 (RFC 2104),
//! - [`chacha20`]: the RFC 8439 stream cipher used for constellation
//!   channel encryption,
//! - [`bigint`]: arbitrary-precision unsigned integers with Knuth
//!   division, modular exponentiation, Miller–Rabin primality, and
//!   modular inverse,
//! - [`dh`]: finite-field Diffie–Hellman over the RFC 3526 2048-bit group,
//! - [`rsa`]: textbook RSA signatures (used for the EK/AK chain),
//! - [`keys`]: the endorsement/attestation key hierarchy of Appendix A.
//!
//! # Security disclaimer
//!
//! This is **simulation-grade** cryptography: primitives are implemented
//! faithfully to their specifications and pass published test vectors, but
//! no constant-time or side-channel hardening has been done, and RSA uses
//! deterministic padding without randomization. Do not reuse outside the
//! simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod chacha20;
pub mod dh;
pub mod hmac;
pub mod keys;
pub mod rsa;
pub mod sha256;

pub use bigint::BigUint;
pub use chacha20::ChaCha20;
pub use dh::{DhKeyPair, DhParams};
pub use hmac::hmac_sha256;
pub use keys::{AttestationKey, EndorsementKey, VendorCa};
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
pub use sha256::{sha256, Sha256};
