//! The S-NIC key hierarchy (Appendix A).
//!
//! At manufacturing time the NIC receives an *endorsement key* pair (EK)
//! whose public half is certified by the NIC vendor. After each reboot the
//! NIC generates a fresh *attestation key* pair (AK), stores the private
//! half in a private on-NIC register, and signs the public half with the
//! EK. Attestation statements are signed with the AK; verifiers walk the
//! chain AK → EK → vendor certificate.

use rand::Rng;

use crate::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};

/// Key size (bits) used for the simulated hierarchy. Small enough that key
/// generation inside tests is fast; large enough for PKCS#1 padding.
pub const SIM_KEY_BITS: usize = 768;

/// The NIC vendor's certificate authority.
#[derive(Debug, Clone)]
pub struct VendorCa {
    keypair: RsaKeyPair,
}

/// A certificate: a public key plus the issuer's signature over it.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The certified public key.
    pub subject: RsaPublicKey,
    /// Issuer signature over [`RsaPublicKey::to_bytes`] of the subject.
    pub signature: RsaSignature,
}

impl VendorCa {
    /// Create a vendor CA with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> VendorCa {
        VendorCa {
            keypair: RsaKeyPair::generate(rng, SIM_KEY_BITS),
        }
    }

    /// The vendor's public verification key (distributed to all verifiers).
    pub fn public(&self) -> &RsaPublicKey {
        &self.keypair.public
    }

    /// Issue a certificate for `subject` (burned into a NIC at manufacture).
    pub fn certify(&self, subject: &RsaPublicKey) -> Certificate {
        Certificate {
            subject: subject.clone(),
            signature: self.keypair.sign(&subject.to_bytes()),
        }
    }
}

impl Certificate {
    /// Check the certificate chain against the issuer's public key.
    pub fn verify(&self, issuer: &RsaPublicKey) -> bool {
        issuer.verify(&self.subject.to_bytes(), &self.signature)
    }
}

/// The endorsement key pair burned into a NIC at manufacture.
#[derive(Debug, Clone)]
pub struct EndorsementKey {
    keypair: RsaKeyPair,
    /// Vendor certificate for the EK public half.
    pub certificate: Certificate,
}

impl EndorsementKey {
    /// Manufacture an EK and have the vendor certify it.
    pub fn manufacture<R: Rng + ?Sized>(rng: &mut R, vendor: &VendorCa) -> EndorsementKey {
        let keypair = RsaKeyPair::generate(rng, SIM_KEY_BITS);
        let certificate = vendor.certify(&keypair.public);
        EndorsementKey {
            keypair,
            certificate,
        }
    }

    /// The EK public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.keypair.public
    }

    /// Endorse a freshly generated attestation key (done at NIC boot).
    pub fn endorse(&self, ak_public: &RsaPublicKey) -> Certificate {
        Certificate {
            subject: ak_public.clone(),
            signature: self.keypair.sign(&ak_public.to_bytes()),
        }
    }
}

/// The per-boot attestation key pair.
#[derive(Debug, Clone)]
pub struct AttestationKey {
    keypair: RsaKeyPair,
    /// EK endorsement of the AK public half.
    pub endorsement: Certificate,
}

impl AttestationKey {
    /// Generate an AK at NIC boot and endorse it with the EK.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, ek: &EndorsementKey) -> AttestationKey {
        let keypair = RsaKeyPair::generate(rng, SIM_KEY_BITS);
        let endorsement = ek.endorse(&keypair.public);
        AttestationKey {
            keypair,
            endorsement,
        }
    }

    /// The AK public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.keypair.public
    }

    /// Sign an attestation statement with the AK private half.
    pub fn sign(&self, statement: &[u8]) -> RsaSignature {
        self.keypair.sign(statement)
    }
}

/// Verify a full attestation chain: vendor → EK cert → AK endorsement →
/// statement signature.
pub fn verify_chain(
    vendor_public: &RsaPublicKey,
    ek_certificate: &Certificate,
    ak_endorsement: &Certificate,
    statement: &[u8],
    signature: &RsaSignature,
) -> bool {
    ek_certificate.verify(vendor_public)
        && ak_endorsement.verify(&ek_certificate.subject)
        && ak_endorsement.subject.verify(statement, signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hierarchy() -> (VendorCa, EndorsementKey, AttestationKey) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let vendor = VendorCa::new(&mut rng);
        let ek = EndorsementKey::manufacture(&mut rng, &vendor);
        let ak = AttestationKey::generate(&mut rng, &ek);
        (vendor, ek, ak)
    }

    #[test]
    fn full_chain_verifies() {
        let (vendor, ek, ak) = hierarchy();
        let sig = ak.sign(b"hash-of-initial-state");
        assert!(verify_chain(
            vendor.public(),
            &ek.certificate,
            &ak.endorsement,
            b"hash-of-initial-state",
            &sig,
        ));
    }

    #[test]
    fn chain_rejects_wrong_vendor() {
        let (_, ek, ak) = hierarchy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let other_vendor = VendorCa::new(&mut rng);
        let sig = ak.sign(b"s");
        assert!(!verify_chain(
            other_vendor.public(),
            &ek.certificate,
            &ak.endorsement,
            b"s",
            &sig
        ));
    }

    #[test]
    fn chain_rejects_unendorsed_ak() {
        let (vendor, ek, _) = hierarchy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        // An attacker-made AK endorsed by a different EK.
        let rogue_vendor = VendorCa::new(&mut rng);
        let rogue_ek = EndorsementKey::manufacture(&mut rng, &rogue_vendor);
        let rogue_ak = AttestationKey::generate(&mut rng, &rogue_ek);
        let sig = rogue_ak.sign(b"s");
        assert!(!verify_chain(
            vendor.public(),
            &ek.certificate,
            &rogue_ak.endorsement,
            b"s",
            &sig
        ));
    }

    #[test]
    fn chain_rejects_tampered_statement() {
        let (vendor, ek, ak) = hierarchy();
        let sig = ak.sign(b"original");
        assert!(!verify_chain(
            vendor.public(),
            &ek.certificate,
            &ak.endorsement,
            b"tampered",
            &sig
        ));
    }
}
