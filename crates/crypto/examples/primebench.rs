//! Microbenchmark for prime generation and RSA keygen (diagnostic).
use rand::SeedableRng;
use snic_crypto::bigint::BigUint;
use std::time::Instant;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Raw modpow speed.
    let t = Instant::now();
    let base = BigUint::from_u64(3);
    let m = BigUint::one().shl(255).add(&BigUint::from_u64(19));
    let e = m.sub(&BigUint::from_u64(1));
    for _ in 0..10 {
        let _ = base.modpow(&e, &m);
    }
    println!("10x 256-bit modpow: {:?}", t.elapsed());

    let t = Instant::now();
    let mut count = 0u32;
    // Count candidates examined in one prime search.
    let p = BigUint::gen_prime(&mut rng, 256);
    count += 1;
    println!(
        "256-bit prime ({} bits) in {:?} (count {count})",
        p.bits(),
        t.elapsed()
    );

    let t = Instant::now();
    let p = BigUint::gen_prime(&mut rng, 384);
    println!("384-bit prime ({} bits) in {:?}", p.bits(), t.elapsed());

    let t = Instant::now();
    let kp = snic_crypto::rsa::RsaKeyPair::generate(&mut rng, 512);
    println!("512-bit RSA keypair in {:?}", t.elapsed());
    let t = Instant::now();
    let sig = kp.sign(b"m");
    println!(
        "sign: {:?} verify-ok={}",
        t.elapsed(),
        kp.public.verify(b"m", &sig)
    );
}
