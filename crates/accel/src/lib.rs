//! Hardware accelerators and their side-channel-free virtualization.
//!
//! §4.3 of the paper: commodity accelerators are shared by all cores with
//! unrestricted RAM access; "contention also creates side channels that
//! let a core determine whether other cores are doing cryptography"
//! (§3.2, Agilio). S-NIC statically groups an accelerator's hardware
//! threads into *clusters*, places a TLB bank in front of each cluster,
//! and binds clusters to network functions at `nf_launch` time.
//!
//! - [`engine`]: the accelerator-engine abstraction (real work + a cycle
//!   cost model),
//! - [`dpi`]: the DPI engine (Aho-Corasick graph walker with a graph-cache
//!   model, Figures 3 and 8),
//! - [`zip`]: an LZ77-family compression engine (real round-trip
//!   compression),
//! - [`raid`]: XOR-parity storage acceleration (RAID-5 stripe parity and
//!   reconstruction),
//! - [`crypto_accel`]: the security co-processor (SHA-256 / RSA offload
//!   with the Appendix C rate model),
//! - [`cluster`]: hardware-thread clusters, TLB banks, and the shared
//!   (commodity) vs. virtualized (S-NIC) service disciplines,
//! - [`frontend`]: the frontend scheduler's guaranteed per-vAccel DRAM
//!   bandwidth (§4.3's anti-contention reservation),
//! - [`profile`]: the Table 7 accelerator memory profiles and their TLB
//!   bank sizing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod crypto_accel;
pub mod dpi;
pub mod engine;
pub mod frontend;
pub mod profile;
pub mod raid;
pub mod zip;

pub use cluster::{ClusterPool, SharedAccelerator, VirtualAccelerator};
pub use crypto_accel::CryptoAccel;
pub use dpi::{DpiAccel, DpiAccelConfig};
pub use engine::{AccelEngine, AccelRequest, AccelResponse};
pub use frontend::{Frontend, FrontendMode};
pub use profile::{accel_profile, AccelMemoryProfile};
pub use raid::RaidAccel;
pub use zip::ZipAccel;
