//! Hardware-thread clusters and the two service disciplines.
//!
//! §4.3: "S-NIC statically assigns each thread to a cluster, and places a
//! TLB bank in front of each cluster. ... the hardware marks the clusters
//! as allocated and then configures the associated TLB banks so that
//! hardware threads can only access the physical memory that belongs to
//! the new function."
//!
//! [`SharedAccelerator`] models the commodity discipline: one thread pool
//! serves every tenant first-come-first-served, so a tenant's request
//! latency reveals co-tenant activity (the Agilio §3.2 observation).
//! [`VirtualAccelerator`] models the S-NIC discipline: a tenant's
//! clusters serve only that tenant, behind a locked TLB bank, and its
//! latency is a pure function of its own submissions.

use std::sync::Arc;

use snic_mem::tlb::Tlb;
use snic_telemetry::{metrics, NullSink, TelemetrySink};
use snic_types::{AccelClusterId, AccelKind, IsolationError, NfId, Picos, SnicError};

use crate::engine::{AccelEngine, AccelRequest, AccelResponse};

/// Tracks cluster allocation for one accelerator family.
///
/// Clusters can be *poisoned* by a hardware fault (§4.3: "S-NIC treats
/// any cluster TLB misses as fatal errors"): a faulted cluster stays
/// out of the allocatable pool — even after its owner is torn down —
/// until the device repairs it on the next power cycle.
#[derive(Debug)]
pub struct ClusterPool {
    kind: AccelKind,
    owners: Vec<Option<NfId>>,
    faulted: Vec<bool>,
    threads_per_cluster: u32,
    sink: Arc<dyn TelemetrySink>,
}

impl ClusterPool {
    /// A pool of `clusters` clusters with `threads_per_cluster` threads
    /// each (the paper assumes 64 threads per accelerator, grouped as
    /// 16×4, 8×8, or 4×16).
    pub fn new(kind: AccelKind, clusters: u16, threads_per_cluster: u32) -> ClusterPool {
        ClusterPool {
            kind,
            owners: vec![None; clusters as usize],
            faulted: vec![false; clusters as usize],
            threads_per_cluster,
            sink: Arc::new(NullSink),
        }
    }

    /// Attach a telemetry sink (observational only).
    pub fn set_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = sink;
    }

    /// Allocated, healthy cluster count (occupancy).
    fn occupancy(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    /// Accelerator family.
    pub fn kind(&self) -> AccelKind {
        self.kind
    }

    /// Threads per cluster.
    pub fn threads_per_cluster(&self) -> u32 {
        self.threads_per_cluster
    }

    /// Unallocated, healthy cluster count.
    pub fn available(&self) -> usize {
        self.owners
            .iter()
            .zip(&self.faulted)
            .filter(|(o, &f)| o.is_none() && !f)
            .count()
    }

    /// Mark cluster `index` as faulted; it is withheld from allocation
    /// until [`ClusterPool::repair_all`].
    pub fn fault(&mut self, index: u16) {
        if let Some(f) = self.faulted.get_mut(usize::from(index)) {
            *f = true;
            if self.sink.enabled() {
                self.sink.counter_add(0, metrics::ACCEL_FAULTS, 1);
            }
        }
    }

    /// Whether cluster `index` is faulted.
    pub fn is_faulted(&self, index: u16) -> bool {
        self.faulted
            .get(usize::from(index))
            .copied()
            .unwrap_or(false)
    }

    /// Number of faulted clusters.
    pub fn faulted_count(&self) -> usize {
        self.faulted.iter().filter(|&&f| f).count()
    }

    /// Clear every fault flag (power-cycle repair).
    pub fn repair_all(&mut self) {
        self.faulted.fill(false);
    }

    /// Allocate `count` clusters to `owner` atomically.
    ///
    /// Fails (allocating nothing) if not enough healthy clusters are
    /// free.
    pub fn allocate(
        &mut self,
        owner: NfId,
        count: usize,
    ) -> Result<Vec<AccelClusterId>, SnicError> {
        let free: Vec<usize> = self
            .owners
            .iter()
            .zip(&self.faulted)
            .enumerate()
            .filter(|(_, (o, &f))| o.is_none() && !f)
            .map(|(i, _)| i)
            .take(count)
            .collect();
        if free.len() < count {
            return Err(SnicError::AccelUnavailable(AccelClusterId {
                kind: self.kind,
                index: self.owners.len() as u16,
            }));
        }
        for &i in &free {
            self.owners[i] = Some(owner);
        }
        if self.sink.enabled() {
            self.sink
                .counter_add(owner.0, metrics::ACCEL_CLUSTERS, count as u64);
            self.sink
                .record(0, metrics::ACCEL_OCCUPANCY, self.occupancy() as u64);
        }
        Ok(free
            .into_iter()
            .map(|i| AccelClusterId {
                kind: self.kind,
                index: i as u16,
            })
            .collect())
    }

    /// Release every cluster owned by `owner`; returns how many.
    pub fn release_owner(&mut self, owner: NfId) -> usize {
        let mut n = 0;
        for o in &mut self.owners {
            if *o == Some(owner) {
                *o = None;
                n += 1;
            }
        }
        if self.sink.enabled() && n > 0 {
            self.sink
                .counter_add(owner.0, metrics::ACCEL_RELEASED, n as u64);
            self.sink
                .record(0, metrics::ACCEL_OCCUPANCY, self.occupancy() as u64);
        }
        n
    }

    /// Owner of a cluster.
    pub fn owner_of(&self, index: u16) -> Option<NfId> {
        self.owners.get(usize::from(index)).copied().flatten()
    }
}

/// Convert engine cycles to picoseconds at the accelerator clock.
fn cycles_to_picos(cycles: u64, hz: u64) -> Picos {
    Picos((cycles as u128 * 1_000_000_000_000u128 / hz as u128) as u64)
}

/// Thread-pool scheduling state: earliest-free-thread assignment.
#[derive(Debug, Clone)]
struct ThreadPool {
    free_at: Vec<Picos>,
    hz: u64,
}

impl ThreadPool {
    fn new(threads: u32, hz: u64) -> ThreadPool {
        assert!(threads > 0, "thread pool needs threads");
        ThreadPool {
            free_at: vec![Picos::ZERO; threads as usize],
            hz,
        }
    }

    /// Schedule a request arriving at `now` costing `cycles`; returns the
    /// completion time.
    fn schedule(&mut self, now: Picos, cycles: u64) -> Picos {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("non-empty pool");
        let start = now.max(self.free_at[idx]);
        let done = start + cycles_to_picos(cycles, self.hz);
        self.free_at[idx] = done;
        done
    }
}

/// The commodity discipline: one pool, every tenant, FCFS.
pub struct SharedAccelerator {
    engine: Box<dyn AccelEngine>,
    pool: ThreadPool,
}

impl SharedAccelerator {
    /// Wrap `engine` behind `threads` shared hardware threads.
    pub fn new(engine: Box<dyn AccelEngine>, threads: u32, hz: u64) -> SharedAccelerator {
        SharedAccelerator {
            engine,
            pool: ThreadPool::new(threads, hz),
        }
    }

    /// Submit a request at time `now` on behalf of any tenant; returns the
    /// response and its completion time. No isolation: every tenant's
    /// request lands in the same pool.
    pub fn submit(
        &mut self,
        _tenant: NfId,
        now: Picos,
        req: &AccelRequest,
    ) -> (AccelResponse, Picos) {
        let resp = self.engine.execute(req);
        let done = self.pool.schedule(now, resp.cycles);
        (resp, done)
    }
}

/// The S-NIC discipline: a tenant-private cluster group behind a TLB bank.
pub struct VirtualAccelerator {
    owner: NfId,
    clusters: Vec<AccelClusterId>,
    engine: Box<dyn AccelEngine>,
    pool: ThreadPool,
    tlb_bank: Tlb,
}

impl VirtualAccelerator {
    /// Bind `engine` to `owner` with the given clusters and locked TLB
    /// bank.
    ///
    /// # Panics
    ///
    /// Panics if the TLB bank is not locked — `nf_launch` must lock it
    /// before the accelerator goes live (§4.3).
    pub fn new(
        owner: NfId,
        clusters: Vec<AccelClusterId>,
        engine: Box<dyn AccelEngine>,
        threads: u32,
        hz: u64,
        tlb_bank: Tlb,
    ) -> VirtualAccelerator {
        assert!(
            tlb_bank.is_locked(),
            "cluster TLB bank must be locked before use"
        );
        VirtualAccelerator {
            owner,
            clusters,
            engine,
            pool: ThreadPool::new(threads, hz),
            tlb_bank,
        }
    }

    /// The owning NF.
    pub fn owner(&self) -> NfId {
        self.owner
    }

    /// Bound clusters.
    pub fn clusters(&self) -> &[AccelClusterId] {
        &self.clusters
    }

    /// Validate a DMA target against the cluster's TLB bank. A miss is
    /// fatal for the cluster (§4.3: "S-NIC treats any cluster TLB misses
    /// as fatal errors").
    pub fn validate_access(&self, va: u64, len: u64, write: bool) -> Result<u64, SnicError> {
        let start = self.tlb_bank.translate(va, write)?;
        if len > 1 {
            // The whole range must translate contiguously.
            let end = self.tlb_bank.translate(va + len - 1, write).map_err(|_| {
                IsolationError::AccelFault {
                    cluster: self.clusters[0],
                    addr: va + len - 1,
                }
            })?;
            if end - start != len - 1 {
                return Err(IsolationError::AccelFault {
                    cluster: self.clusters[0],
                    addr: va,
                }
                .into());
            }
        }
        Ok(start)
    }

    /// Submit a request; completion depends only on this tenant's own
    /// prior submissions — the isolation property under test.
    pub fn submit(&mut self, now: Picos, req: &AccelRequest) -> (AccelResponse, Picos) {
        let resp = self.engine.execute(req);
        let done = self.pool.schedule(now, resp.cycles);
        (resp, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid::RaidAccel;
    use snic_mem::pagetable::PageMapping;
    use snic_types::CoreId;

    fn raid_req(len: usize) -> AccelRequest {
        let block = vec![0xabu8; len];
        AccelRequest {
            data: RaidAccel::frame(&[&block, &block]),
            opcode: crate::raid::OP_PARITY,
        }
    }

    #[test]
    fn pool_allocates_and_releases() {
        let mut p = ClusterPool::new(AccelKind::Dpi, 16, 4);
        assert_eq!(p.available(), 16);
        let a = p.allocate(NfId(1), 3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(p.available(), 13);
        assert_eq!(p.owner_of(a[0].index), Some(NfId(1)));
        assert_eq!(p.release_owner(NfId(1)), 3);
        assert_eq!(p.available(), 16);
    }

    #[test]
    fn pool_allocation_is_atomic() {
        let mut p = ClusterPool::new(AccelKind::Zip, 4, 8);
        p.allocate(NfId(1), 3).unwrap();
        // Requesting 2 with only 1 free must fail without taking the 1.
        assert!(p.allocate(NfId(2), 2).is_err());
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn shared_latency_leaks_cotenant_activity() {
        let mk = || SharedAccelerator::new(Box::new(RaidAccel::new()), 2, 1_000_000_000);
        // Victim alone.
        let mut quiet = mk();
        let (_, t_alone) = quiet.submit(NfId(1), Picos(0), &raid_req(4096));
        // Victim after an attacker flood.
        let mut noisy = mk();
        for _ in 0..8 {
            let _ = noisy.submit(NfId(2), Picos(0), &raid_req(65_536));
        }
        let (_, t_contended) = noisy.submit(NfId(1), Picos(0), &raid_req(4096));
        assert!(
            t_contended > t_alone,
            "shared accel must exhibit contention"
        );
    }

    fn locked_bank(core: u16) -> Tlb {
        let mut t = Tlb::new(CoreId(core), 4);
        t.install(PageMapping {
            va: 0,
            pa: 0x4000_0000,
            page_size: 2 << 20,
            writable: true,
        })
        .unwrap();
        t.lock();
        t
    }

    #[test]
    fn virtual_latency_independent_of_other_tenants() {
        let mk = |owner: u64| {
            VirtualAccelerator::new(
                NfId(owner),
                vec![AccelClusterId {
                    kind: AccelKind::Raid,
                    index: owner as u16,
                }],
                Box::new(RaidAccel::new()),
                2,
                1_000_000_000,
                locked_bank(owner as u16),
            )
        };
        let mut victim_a = mk(1);
        let (_, t_alone) = victim_a.submit(Picos(0), &raid_req(4096));

        // A different tenant's virtual accel floods — distinct hardware,
        // distinct pool, no effect on the victim.
        let mut attacker = mk(2);
        for _ in 0..16 {
            let _ = attacker.submit(Picos(0), &raid_req(65_536));
        }
        let mut victim_b = mk(1);
        let (_, t_after) = victim_b.submit(Picos(0), &raid_req(4096));
        assert_eq!(t_alone, t_after);
    }

    #[test]
    fn virtual_validates_dma_against_tlb_bank() {
        let v = VirtualAccelerator::new(
            NfId(1),
            vec![AccelClusterId {
                kind: AccelKind::Dpi,
                index: 0,
            }],
            Box::new(RaidAccel::new()),
            4,
            1_000_000_000,
            locked_bank(0),
        );
        // Inside the 2 MB window: fine.
        assert_eq!(v.validate_access(0x100, 64, false).unwrap(), 0x4000_0100);
        // Outside: fatal fault.
        assert!(v.validate_access(4 << 20, 64, false).is_err());
        // Straddling the end: fault.
        assert!(v.validate_access((2 << 20) - 32, 64, false).is_err());
    }

    #[test]
    #[should_panic(expected = "must be locked")]
    fn unlocked_bank_rejected() {
        let t = Tlb::new(CoreId(0), 4);
        let _ = VirtualAccelerator::new(
            NfId(1),
            vec![],
            Box::new(RaidAccel::new()),
            1,
            1_000_000_000,
            t,
        );
    }

    #[test]
    fn thread_pool_parallelism() {
        // Two threads: two equal requests at t=0 finish together; a third
        // queues behind them.
        let mut pool = ThreadPool::new(2, 1_000_000_000);
        let a = pool.schedule(Picos(0), 1000);
        let b = pool.schedule(Picos(0), 1000);
        let c = pool.schedule(Picos(0), 1000);
        assert_eq!(a, b);
        assert_eq!(c.0, 2 * a.0);
    }
}
