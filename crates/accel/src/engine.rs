//! The accelerator-engine abstraction.
//!
//! An engine does real work (match, compress, XOR, hash) *and* reports a
//! deterministic cycle cost so the device model can account for simulated
//! time. Requests and responses are byte buffers, mirroring the
//! DRAM-resident instruction/output queues of Figure 3.

use snic_types::AccelKind;

/// A request submitted to an accelerator's instruction queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelRequest {
    /// Opcode-specific input (payload to scan, stripe to XOR, ...).
    pub data: Vec<u8>,
    /// Engine-specific opcode (e.g. compress vs. decompress).
    pub opcode: u32,
}

/// The engine's answer, written to the output queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelResponse {
    /// Opcode-specific output.
    pub data: Vec<u8>,
    /// Scalar result (match count, parity ok, ...).
    pub result: u64,
    /// Hardware-thread cycles the request consumed.
    pub cycles: u64,
}

/// An accelerator engine: one hardware thread's worth of function.
pub trait AccelEngine: Send {
    /// Which accelerator family this engine belongs to.
    fn kind(&self) -> AccelKind;

    /// Execute a request. Implementations must be deterministic.
    fn execute(&mut self, req: &AccelRequest) -> AccelResponse;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl AccelEngine for Echo {
        fn kind(&self) -> AccelKind {
            AccelKind::Raid
        }
        fn execute(&mut self, req: &AccelRequest) -> AccelResponse {
            AccelResponse {
                data: req.data.clone(),
                result: req.data.len() as u64,
                cycles: 1,
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut e: Box<dyn AccelEngine> = Box::new(Echo);
        let resp = e.execute(&AccelRequest {
            data: vec![1, 2, 3],
            opcode: 0,
        });
        assert_eq!(resp.result, 3);
        assert_eq!(e.kind(), AccelKind::Raid);
    }
}
