//! The ZIP (compression) accelerator.
//!
//! A real LZ77-family codec: greedy longest-match against a sliding
//! window with a 3-byte hash chain, emitting (literal run, copy) token
//! pairs. Matches the role of the paper's ZIP engine (Table 7: 32 KB
//! dictionary, scatter-gather buffers); compression is lossless and the
//! round trip is property-tested.

use snic_types::{AccelKind, ByteSize};

use crate::engine::{AccelEngine, AccelRequest, AccelResponse};

/// Opcode: compress the request payload.
pub const OP_COMPRESS: u32 = 0;
/// Opcode: decompress the request payload.
pub const OP_DECOMPRESS: u32 = 1;

/// Sliding-window size (the paper's ZIP dictionary is 32 KB).
pub const WINDOW: usize = 32 << 10;
/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Cycles per input byte (hash + chain probe amortized).
const BYTE_CYCLES: u64 = 6;
/// Fixed per-request overhead.
const REQUEST_CYCLES: u64 = 500;

/// Compress `input` into the token format.
///
/// Format: repeated blocks of
/// `lit_len: u16 LE | literals | match_len: u16 LE | match_dist: u16 LE`.
/// A `match_len` of 0 terminates (follows the final literal run).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Hash table: 3-byte prefix → most recent position.
    let mut head = vec![usize::MAX; 1 << 15];
    let hash = |b: &[u8]| -> usize {
        ((u32::from(b[0]) << 10) ^ (u32::from(b[1]) << 5) ^ u32::from(b[2])) as usize & 0x7fff
    };
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= input.len() {
        // Literal runs are length-limited by the u16 header; emit a
        // continuation token (`mlen 0, dist 1`) when a run fills up.
        if i - lit_start == u16::MAX as usize {
            out.extend_from_slice(&u16::MAX.to_le_bytes());
            out.extend_from_slice(&input[lit_start..i]);
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&1u16.to_le_bytes());
            lit_start = i;
        }
        let h = hash(&input[i..]);
        let cand = head[h];
        head[h] = i;
        let (mlen, mdist) = if cand != usize::MAX && i - cand <= WINDOW {
            let dist = i - cand;
            let max = (input.len() - i).min(u16::MAX as usize);
            let mut l = 0usize;
            while l < max && input[cand + l] == input[i + l] {
                l += 1;
            }
            (l, dist)
        } else {
            (0, 0)
        };
        if mlen >= MIN_MATCH {
            // Flush literals, then the copy token.
            let lits = &input[lit_start..i];
            out.extend_from_slice(&(lits.len() as u16).to_le_bytes());
            out.extend_from_slice(lits);
            out.extend_from_slice(&(mlen as u16).to_le_bytes());
            out.extend_from_slice(&(mdist as u16).to_le_bytes());
            // Index the skipped positions sparsely (every 4th) to keep
            // compression fast while preserving correctness.
            let end = i + mlen;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                head[hash(&input[j..])] = j;
                j += 4;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Trailing literals (chunked under the u16 limit) + terminator.
    let mut lits = &input[lit_start..];
    while lits.len() > u16::MAX as usize {
        out.extend_from_slice(&u16::MAX.to_le_bytes());
        out.extend_from_slice(&lits[..u16::MAX as usize]);
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        lits = &lits[u16::MAX as usize..];
    }
    out.extend_from_slice(&(lits.len() as u16).to_le_bytes());
    out.extend_from_slice(lits);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out
}

/// Decompress the token format produced by [`compress`].
///
/// Returns `None` on malformed input.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0usize;
    loop {
        let lit_len = u16::from_le_bytes([*input.get(i)?, *input.get(i + 1)?]) as usize;
        i += 2;
        if i + lit_len > input.len() {
            return None;
        }
        out.extend_from_slice(&input[i..i + lit_len]);
        i += lit_len;
        let mlen = u16::from_le_bytes([*input.get(i)?, *input.get(i + 1)?]) as usize;
        let mdist = u16::from_le_bytes([*input.get(i + 2)?, *input.get(i + 3)?]) as usize;
        i += 4;
        if mlen == 0 {
            if mdist == 0 {
                return Some(out);
            }
            // Continuation token after an over-long literal run.
            continue;
        }
        if mdist == 0 || mdist > out.len() {
            return None;
        }
        // Overlapping copy (the classic LZ77 semantics).
        let start = out.len() - mdist;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
}

/// The ZIP accelerator engine.
#[derive(Debug, Default)]
pub struct ZipAccel {
    bytes_in: u64,
    bytes_out: u64,
}

impl ZipAccel {
    /// A fresh engine.
    pub fn new() -> ZipAccel {
        ZipAccel::default()
    }

    /// The dictionary size (Table 7's "Dict" row).
    pub fn dict_bytes(&self) -> ByteSize {
        ByteSize(WINDOW as u64)
    }

    /// Cumulative compression ratio (input/output); 0 before any traffic.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            0.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

impl AccelEngine for ZipAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Zip
    }

    fn execute(&mut self, req: &AccelRequest) -> AccelResponse {
        let cycles = REQUEST_CYCLES + req.data.len() as u64 * BYTE_CYCLES;
        match req.opcode {
            OP_COMPRESS => {
                let out = compress(&req.data);
                self.bytes_in += req.data.len() as u64;
                self.bytes_out += out.len() as u64;
                let len = out.len() as u64;
                AccelResponse {
                    data: out,
                    result: len,
                    cycles,
                }
            }
            OP_DECOMPRESS => match decompress(&req.data) {
                Some(out) => {
                    let len = out.len() as u64;
                    AccelResponse {
                        data: out,
                        result: len,
                        cycles,
                    }
                }
                None => AccelResponse {
                    data: Vec::new(),
                    result: u64::MAX,
                    cycles,
                },
            },
            _ => AccelResponse {
                data: Vec::new(),
                result: u64::MAX,
                cycles: REQUEST_CYCLES,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_simple() {
        let data = b"hello hello hello hello compression".to_vec();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compresses_repetitive_data() {
        let data: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(8000).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_round_trips() {
        // Pseudo-random bytes: no gain, but must stay lossless.
        let mut s = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [vec![], vec![1u8], vec![1, 2, 3]] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn overlapping_copy_rle() {
        // A run of one byte compresses via overlapping copies.
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "{}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[0xff]).is_none());
        // Valid literal header but bogus back-reference distance.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u16.to_le_bytes());
        bad.push(b'x');
        bad.extend_from_slice(&5u16.to_le_bytes()); // len 5
        bad.extend_from_slice(&9u16.to_le_bytes()); // dist 9 > output so far
        assert!(decompress(&bad).is_none());
    }

    #[test]
    fn engine_round_trip_and_stats() {
        let mut z = ZipAccel::new();
        let data: Vec<u8> = b"net func state "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let c = z.execute(&AccelRequest {
            data: data.clone(),
            opcode: OP_COMPRESS,
        });
        let d = z.execute(&AccelRequest {
            data: c.data,
            opcode: OP_DECOMPRESS,
        });
        assert_eq!(d.data, data);
        assert!(z.ratio() > 2.0);
        assert_eq!(z.kind(), AccelKind::Zip);
    }

    #[test]
    fn unknown_opcode_errors() {
        let mut z = ZipAccel::new();
        let r = z.execute(&AccelRequest {
            data: vec![1],
            opcode: 99,
        });
        assert_eq!(r.result, u64::MAX);
    }

    #[test]
    fn long_incompressible_input_uses_continuation_tokens() {
        // >64 KiB with no 4-byte repeats forces literal-run chunking.
        let mut s = 1u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                s = s.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(0x9e37);
                (s >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn round_trip_structured(
            word in proptest::collection::vec(any::<u8>(), 1..12),
            reps in 1usize..400,
        ) {
            let data: Vec<u8> = word.iter().copied().cycle().take(word.len() * reps).collect();
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }
}
