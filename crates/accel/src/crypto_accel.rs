//! The security co-processor (crypto accelerator).
//!
//! Appendix C: launch microcode "used the NIC's security co-processor to
//! accelerate cryptographic operations"; SHA digesting proceeds at
//! ~0.47 MB/ms and an RSA attestation signature costs ~5.6 ms. This
//! engine does the *real* hashing/signing via `snic-crypto` and reports
//! simulated time from those calibrated rates.

use snic_crypto::rsa::RsaKeyPair;
use snic_crypto::sha256::Sha256;
use snic_types::{AccelKind, ByteSize, Picos};

use crate::engine::{AccelEngine, AccelRequest, AccelResponse};

/// Opcode: SHA-256 digest of the payload.
pub const OP_SHA256: u32 = 0;
/// Opcode: RSA-sign the payload with the engine's resident key.
pub const OP_RSA_SIGN: u32 = 1;

/// Calibrated SHA-256 digest rate (Appendix C: LB's 13.8 MB hashed in
/// 29.62 ms and Monitor's 360.5 MB in 763.52 ms → ≈ 0.47 MB/ms).
pub const SHA_BYTES_PER_MS: f64 = 0.47 * 1024.0 * 1024.0;
/// Calibrated RSA signing latency (Appendix C: 5.596 ms).
pub const RSA_SIGN_MS: f64 = 5.596;
/// Thread clock used to convert time to cycles.
const CLOCK_HZ: u64 = 1_200_000_000;

/// The crypto accelerator engine.
#[derive(Debug)]
pub struct CryptoAccel {
    key: RsaKeyPair,
}

impl CryptoAccel {
    /// Build with a resident signing key.
    pub fn new(key: RsaKeyPair) -> CryptoAccel {
        CryptoAccel { key }
    }

    /// Simulated time to digest `len` bytes.
    pub fn sha_time(len: ByteSize) -> Picos {
        Picos((len.bytes() as f64 / SHA_BYTES_PER_MS * 1e9) as u64)
    }

    /// Simulated time for one RSA signature.
    pub fn rsa_sign_time() -> Picos {
        Picos((RSA_SIGN_MS * 1e9) as u64)
    }

    /// The resident public key (for verification by peers).
    pub fn public(&self) -> &snic_crypto::rsa::RsaPublicKey {
        &self.key.public
    }
}

fn picos_to_cycles(t: Picos) -> u64 {
    (t.0 as u128 * CLOCK_HZ as u128 / 1_000_000_000_000u128) as u64
}

impl AccelEngine for CryptoAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Crypto
    }

    fn execute(&mut self, req: &AccelRequest) -> AccelResponse {
        match req.opcode {
            OP_SHA256 => {
                let mut h = Sha256::new();
                h.update(&req.data);
                let digest = h.finalize();
                let t = Self::sha_time(ByteSize(req.data.len() as u64));
                AccelResponse {
                    data: digest.to_vec(),
                    result: 0,
                    cycles: picos_to_cycles(t),
                }
            }
            OP_RSA_SIGN => {
                let sig = self.key.sign(&req.data);
                let t = Self::rsa_sign_time() + Self::sha_time(ByteSize(req.data.len() as u64));
                AccelResponse {
                    data: sig.0,
                    result: 0,
                    cycles: picos_to_cycles(t),
                }
            }
            _ => AccelResponse {
                data: Vec::new(),
                result: u64::MAX,
                cycles: 100,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use snic_crypto::sha256::sha256;

    fn engine() -> CryptoAccel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        CryptoAccel::new(RsaKeyPair::generate(&mut rng, 512))
    }

    #[test]
    fn sha_matches_library() {
        let mut e = engine();
        let resp = e.execute(&AccelRequest {
            data: b"abc".to_vec(),
            opcode: OP_SHA256,
        });
        assert_eq!(resp.data, sha256(b"abc").to_vec());
    }

    #[test]
    fn signatures_verify() {
        let mut e = engine();
        let resp = e.execute(&AccelRequest {
            data: b"statement".to_vec(),
            opcode: OP_RSA_SIGN,
        });
        let sig = snic_crypto::rsa::RsaSignature(resp.data);
        assert!(e.public().verify(b"statement", &sig));
    }

    #[test]
    fn sha_time_matches_appendix_c_calibration() {
        // LB: 13.8 MB should digest in ≈ 29.4 ms (paper measured 29.62).
        let t = CryptoAccel::sha_time(ByteSize::mib(14)).as_millis_f64();
        assert!((25.0..35.0).contains(&t), "{t} ms");
        // Monitor: 360.5 MB ≈ 763 ms.
        let t2 = CryptoAccel::sha_time(ByteSize::mib(360)).as_millis_f64();
        assert!((700.0..820.0).contains(&t2), "{t2} ms");
    }

    #[test]
    fn rsa_time_matches_paper() {
        let t = CryptoAccel::rsa_sign_time().as_millis_f64();
        assert!((t - 5.596).abs() < 0.001);
    }

    #[test]
    fn cycles_scale_with_input() {
        let mut e = engine();
        let small = e.execute(&AccelRequest {
            data: vec![0; 1 << 10],
            opcode: OP_SHA256,
        });
        let big = e.execute(&AccelRequest {
            data: vec![0; 1 << 20],
            opcode: OP_SHA256,
        });
        assert!(big.cycles > 100 * small.cycles);
    }
}
