//! The DPI accelerator: a hardware Aho-Corasick graph walker.
//!
//! Figure 3 of the paper: the engine's finite-automaton graph lives in
//! DRAM; hardware threads walk it, caching hot nodes in per-engine SRAM.
//! The Figure 8 experiment measures throughput as a function of the
//! number of hardware threads and the frame size.
//!
//! The cost model: each scanned byte costs `BYTE_CYCLES` plus a DRAM
//! penalty when its node misses the graph cache (shallow nodes are hot,
//! deep nodes cold — approximated by node index against the cache's node
//! capacity). Each request pays a fixed scheduling overhead, and the
//! frontend dispatcher sustains a bounded packet rate — which is why tiny
//! frames cannot benefit from more threads (Figure 8's flat 64 B curve).

use snic_nf::dpi::AhoCorasick;
use snic_nf::NullSink;
use snic_types::{AccelKind, ByteSize};

use crate::engine::{AccelEngine, AccelRequest, AccelResponse};

/// Per-byte walk cost in thread cycles.
const BYTE_CYCLES: u64 = 8;
/// Fixed per-request overhead (descriptor fetch, result writeback).
const REQUEST_CYCLES: u64 = 600;
/// Extra cycles when a node fetch misses the SRAM graph cache.
const GRAPH_MISS_CYCLES: u64 = 40;

/// DPI accelerator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DpiAccelConfig {
    /// Thread clock in Hz.
    pub clock_hz: u64,
    /// SRAM graph cache capacity in bytes.
    pub graph_cache: ByteSize,
    /// Frontend dispatch capacity in packets per second.
    pub frontend_pps: u64,
}

impl Default for DpiAccelConfig {
    fn default() -> Self {
        DpiAccelConfig {
            clock_hz: 1_200_000_000,
            graph_cache: ByteSize::mib(2),
            frontend_pps: 1_150_000,
        }
    }
}

/// One DPI engine instance (graph shared by all its threads).
#[derive(Debug)]
pub struct DpiAccel {
    automaton: AhoCorasick,
    config: DpiAccelConfig,
}

impl DpiAccel {
    /// Build from a pattern list.
    pub fn new(patterns: &[Vec<u8>], config: DpiAccelConfig) -> DpiAccel {
        DpiAccel {
            automaton: AhoCorasick::build(patterns),
            config,
        }
    }

    /// The automaton graph size (Table 7's "Graph" row).
    pub fn graph_bytes(&self) -> ByteSize {
        self.automaton.graph_bytes()
    }

    /// Fraction of node fetches expected to hit the SRAM graph cache.
    ///
    /// Hot (shallow) nodes are cached; the model treats the cache as
    /// holding the first `capacity` bytes of the node array, and scan
    /// traffic as concentrated near the root: with Zipf-ish node
    /// popularity, hit rate ≈ cached_fraction^(1/3).
    pub fn graph_cache_hit_rate(&self) -> f64 {
        let cached = self.config.graph_cache.bytes() as f64;
        let total = self.graph_bytes().bytes() as f64;
        if total <= cached {
            1.0
        } else {
            (cached / total).powf(1.0 / 3.0)
        }
    }

    /// Cycles to scan one request of `len` bytes.
    pub fn service_cycles(&self, len: usize) -> u64 {
        let walk = len as u64 * BYTE_CYCLES;
        let miss_rate = 1.0 - self.graph_cache_hit_rate();
        let misses = (len as f64 * miss_rate) as u64;
        REQUEST_CYCLES + walk + misses * GRAPH_MISS_CYCLES
    }

    /// Simulated-time throughput (packets per second) when `threads`
    /// hardware threads scan back-to-back frames of `frame_len` bytes.
    ///
    /// This is the Figure 8 model: thread-level parallelism divided by the
    /// per-packet service time, capped by the frontend dispatch rate.
    pub fn throughput_pps(&self, threads: u32, frame_len: usize) -> f64 {
        let service_s = self.service_cycles(frame_len) as f64 / self.config.clock_hz as f64;
        let parallel = f64::from(threads) / service_s;
        parallel.min(self.config.frontend_pps as f64)
    }

    /// The automaton, for functional assertions.
    pub fn automaton(&self) -> &AhoCorasick {
        &self.automaton
    }
}

impl AccelEngine for DpiAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Dpi
    }

    fn execute(&mut self, req: &AccelRequest) -> AccelResponse {
        let matches = self.automaton.scan(&req.data, &mut NullSink);
        AccelResponse {
            data: Vec::new(),
            result: matches,
            cycles: self.service_cycles(req.data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_nf::dpi::synth_patterns;

    fn small() -> DpiAccel {
        DpiAccel::new(&synth_patterns(500, 3), DpiAccelConfig::default())
    }

    #[test]
    fn execute_counts_matches() {
        let mut acc = DpiAccel::new(
            &[b"exploit".to_vec(), b"shell".to_vec()],
            DpiAccelConfig::default(),
        );
        let resp = acc.execute(&AccelRequest {
            data: b"an exploit dropping a shell and another shell".to_vec(),
            opcode: 0,
        });
        assert_eq!(resp.result, 3);
        assert!(resp.cycles > REQUEST_CYCLES);
    }

    #[test]
    fn service_cycles_scale_with_length() {
        let acc = small();
        assert!(acc.service_cycles(9000) > acc.service_cycles(1500));
        assert!(acc.service_cycles(1500) > acc.service_cycles(64));
    }

    #[test]
    fn small_frames_are_frontend_bound() {
        // Figure 8's 64 B curve: more threads do not help.
        let acc = small();
        let t16 = acc.throughput_pps(16, 64);
        let t48 = acc.throughput_pps(48, 64);
        assert!(
            (t16 - t48).abs() / t16 < 0.01,
            "64B curve should be flat: {t16} vs {t48}"
        );
        assert!((t16 - 1_150_000.0).abs() < 1.0);
    }

    #[test]
    fn jumbo_frames_scale_with_threads() {
        // Figure 8's 9 KB curve: throughput grows with thread count.
        let acc = small();
        let t16 = acc.throughput_pps(16, 9000);
        let t32 = acc.throughput_pps(32, 9000);
        let t48 = acc.throughput_pps(48, 9000);
        assert!(
            t32 > 1.8 * t16 && t32 < 2.2 * t16,
            "expected ~2x: {t16} {t32}"
        );
        assert!(t48 > t32);
        assert!(
            t48 < 1_150_000.0,
            "jumbo frames must not hit the frontend cap"
        );
    }

    #[test]
    fn larger_frames_lower_throughput() {
        let acc = small();
        for threads in [16u32, 32, 48] {
            let tp: Vec<f64> = [64usize, 512, 1500, 9000]
                .iter()
                .map(|&l| acc.throughput_pps(threads, l))
                .collect();
            assert!(
                tp.windows(2).all(|w| w[0] >= w[1]),
                "{threads} threads: {tp:?}"
            );
        }
    }

    #[test]
    fn cache_hit_rate_bounds() {
        let acc = small();
        let r = acc.graph_cache_hit_rate();
        assert!((0.0..=1.0).contains(&r));
        // A tiny graph fits entirely.
        let tiny = DpiAccel::new(&[b"x".to_vec()], DpiAccelConfig::default());
        assert!((tiny.graph_cache_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_graph_near_97mb() {
        // Table 7: 33K-rule graph = 97.28 MB. Our node layout differs from
        // Marvell's; require the same order of magnitude.
        let acc = DpiAccel::new(&synth_patterns(33_471, 1), DpiAccelConfig::default());
        let mb = acc.graph_bytes().as_mib_f64();
        assert!((20.0..200.0).contains(&mb), "graph = {mb} MiB");
    }
}
