//! The accelerator frontend scheduler's DRAM-bandwidth reservations.
//!
//! §4.3: "The frontend hardware scheduler also reserves guaranteed DRAM
//! bandwidth for each vDPI, preventing side channels via DRAM
//! contention." Hardware threads pull graph nodes and packet data from
//! DRAM; on a commodity accelerator that traffic shares one pipe, so a
//! tenant's transfer time reveals co-tenant activity. S-NIC's frontend
//! gives each virtual accelerator a dedicated bandwidth share.
//!
//! Model: fluid-flow bandwidth accounting in simulated time. In shared
//! mode, a transfer's completion depends on the pipe's queue; in
//! reserved mode each tenant drains through its own `rate` slice, so
//! completion is a pure function of the tenant's own history.

use std::collections::HashMap;

use snic_types::{Bandwidth, ByteSize, NfId, Picos};

/// Bandwidth discipline for accelerator DRAM traffic.
#[derive(Debug)]
pub enum FrontendMode {
    /// One shared pipe, FCFS (commodity).
    Shared {
        /// Total DRAM bandwidth.
        total: Bandwidth,
    },
    /// Per-tenant reservations (S-NIC); tenants not in the map get
    /// nothing (their requests are rejected by configuration).
    Reserved {
        /// Guaranteed bandwidth per tenant.
        shares: HashMap<NfId, Bandwidth>,
    },
}

/// The frontend scheduler.
#[derive(Debug)]
pub struct Frontend {
    mode: FrontendMode,
    /// Shared-mode pipe availability.
    pipe_free_at: Picos,
    /// Reserved-mode per-tenant availability.
    tenant_free_at: HashMap<NfId, Picos>,
}

impl Frontend {
    /// Create a frontend in the given mode.
    pub fn new(mode: FrontendMode) -> Frontend {
        Frontend {
            mode,
            pipe_free_at: Picos::ZERO,
            tenant_free_at: HashMap::new(),
        }
    }

    /// Schedule a DRAM transfer of `bytes` for `tenant` arriving at
    /// `now`; returns its completion time, or `None` if the tenant has no
    /// reservation in reserved mode.
    pub fn transfer(&mut self, tenant: NfId, now: Picos, bytes: ByteSize) -> Option<Picos> {
        match &self.mode {
            FrontendMode::Shared { total } => {
                let start = now.max(self.pipe_free_at);
                let done = start + total.transfer_time(bytes);
                self.pipe_free_at = done;
                Some(done)
            }
            FrontendMode::Reserved { shares } => {
                let rate = *shares.get(&tenant)?;
                let free = self.tenant_free_at.entry(tenant).or_insert(Picos::ZERO);
                let start = now.max(*free);
                let done = start + rate.transfer_time(bytes);
                *free = done;
                Some(done)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserved(pairs: &[(u64, u64)]) -> Frontend {
        let shares = pairs
            .iter()
            .map(|&(t, mbps)| (NfId(t), Bandwidth::mbytes_per_sec(mbps)))
            .collect();
        Frontend::new(FrontendMode::Reserved { shares })
    }

    #[test]
    fn shared_pipe_couples_tenants() {
        let mut f = Frontend::new(FrontendMode::Shared {
            total: Bandwidth::mbytes_per_sec(1000),
        });
        // Attacker floods first; the victim's transfer is delayed.
        let quiet_done = {
            let mut q = Frontend::new(FrontendMode::Shared {
                total: Bandwidth::mbytes_per_sec(1000),
            });
            q.transfer(NfId(1), Picos::ZERO, ByteSize::kib(64)).unwrap()
        };
        for _ in 0..10 {
            let _ = f.transfer(NfId(2), Picos::ZERO, ByteSize::mib(1));
        }
        let contended_done = f.transfer(NfId(1), Picos::ZERO, ByteSize::kib(64)).unwrap();
        assert!(
            contended_done > quiet_done,
            "shared pipe must show contention"
        );
    }

    #[test]
    fn reserved_shares_decouple_tenants() {
        let mk = || reserved(&[(1, 250), (2, 250)]);
        let mut quiet = mk();
        let quiet_done = quiet
            .transfer(NfId(1), Picos::ZERO, ByteSize::kib(64))
            .unwrap();
        let mut noisy = mk();
        for _ in 0..10 {
            let _ = noisy.transfer(NfId(2), Picos::ZERO, ByteSize::mib(4));
        }
        let contended_done = noisy
            .transfer(NfId(1), Picos::ZERO, ByteSize::kib(64))
            .unwrap();
        assert_eq!(
            quiet_done, contended_done,
            "reservation must eliminate the channel"
        );
    }

    #[test]
    fn reserved_rate_is_slower_than_whole_pipe() {
        // The isolation price: a lone tenant gets its slice, not the pipe.
        let mut shared = Frontend::new(FrontendMode::Shared {
            total: Bandwidth::mbytes_per_sec(1000),
        });
        let mut slice = reserved(&[(1, 250)]);
        let whole = shared
            .transfer(NfId(1), Picos::ZERO, ByteSize::mib(1))
            .unwrap();
        let quarter = slice
            .transfer(NfId(1), Picos::ZERO, ByteSize::mib(1))
            .unwrap();
        assert!(quarter.0 > 3 * whole.0, "{quarter:?} vs {whole:?}");
    }

    #[test]
    fn unreserved_tenant_rejected() {
        let mut f = reserved(&[(1, 100)]);
        assert!(f.transfer(NfId(9), Picos::ZERO, ByteSize::kib(1)).is_none());
    }

    #[test]
    fn own_queueing_still_applies_in_reserved_mode() {
        let mut f = reserved(&[(1, 100)]);
        let first = f.transfer(NfId(1), Picos::ZERO, ByteSize::mib(1)).unwrap();
        let second = f.transfer(NfId(1), Picos::ZERO, ByteSize::mib(1)).unwrap();
        assert_eq!(second.0, 2 * first.0);
    }
}
