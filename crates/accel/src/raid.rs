//! The RAID (storage) accelerator: XOR stripe parity.
//!
//! Table 7's third engine. Computes RAID-5-style parity over a stripe of
//! equal-length data blocks (scatter-gather from the SGP buffers) and can
//! reconstruct a missing block from the survivors plus parity.

use snic_types::{AccelKind, ByteSize};

use crate::engine::{AccelEngine, AccelRequest, AccelResponse};

/// Opcode: compute parity over the stripe in `data`.
pub const OP_PARITY: u32 = 0;
/// Opcode: reconstruct a block (first block of input is parity, the rest
/// are the surviving blocks).
pub const OP_RECONSTRUCT: u32 = 1;

/// Cycles per byte XORed.
const BYTE_CYCLES: u64 = 1;
/// Fixed per-request overhead (descriptor + SGP walk).
const REQUEST_CYCLES: u64 = 700;

/// XOR-fold `blocks` (all the same length) into a parity block.
///
/// # Panics
///
/// Panics if `blocks` is empty or the lengths differ.
pub fn parity(blocks: &[&[u8]]) -> Vec<u8> {
    assert!(!blocks.is_empty(), "parity over empty stripe");
    let len = blocks[0].len();
    assert!(blocks.iter().all(|b| b.len() == len), "ragged stripe");
    let mut out = vec![0u8; len];
    for b in blocks {
        for (o, &x) in out.iter_mut().zip(b.iter()) {
            *o ^= x;
        }
    }
    out
}

/// Reconstruct the missing block from `parity` and the survivors.
pub fn reconstruct(parity_block: &[u8], survivors: &[&[u8]]) -> Vec<u8> {
    let mut blocks: Vec<&[u8]> = vec![parity_block];
    blocks.extend_from_slice(survivors);
    parity(&blocks)
}

/// The RAID accelerator engine.
///
/// Requests carry a whole stripe: `block_size` is inferred from
/// `opcode`-independent framing — the first 4 bytes of `data` give the
/// block count, and the rest divides evenly.
#[derive(Debug, Default)]
pub struct RaidAccel {
    stripes: u64,
}

impl RaidAccel {
    /// A fresh engine.
    pub fn new() -> RaidAccel {
        RaidAccel::default()
    }

    /// Stripes processed.
    pub fn stripes(&self) -> u64 {
        self.stripes
    }

    /// The scatter-gather buffer capacity (Table 7's "SGP" row).
    pub fn sgp_bytes(&self) -> ByteSize {
        ByteSize::mib(128)
    }

    fn split(data: &[u8]) -> Option<Vec<&[u8]>> {
        if data.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let body = &data[4..];
        if n == 0 || body.is_empty() || !body.len().is_multiple_of(n) {
            return None;
        }
        let bs = body.len() / n;
        Some(body.chunks_exact(bs).collect())
    }

    /// Frame a stripe into the request wire format.
    pub fn frame(blocks: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + blocks.iter().map(|b| b.len()).sum::<usize>());
        out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        for b in blocks {
            out.extend_from_slice(b);
        }
        out
    }
}

impl AccelEngine for RaidAccel {
    fn kind(&self) -> AccelKind {
        AccelKind::Raid
    }

    fn execute(&mut self, req: &AccelRequest) -> AccelResponse {
        let cycles = REQUEST_CYCLES + req.data.len() as u64 * BYTE_CYCLES;
        let Some(blocks) = Self::split(&req.data) else {
            return AccelResponse {
                data: Vec::new(),
                result: u64::MAX,
                cycles: REQUEST_CYCLES,
            };
        };
        self.stripes += 1;
        match req.opcode {
            OP_PARITY => {
                let p = parity(&blocks);
                AccelResponse {
                    data: p,
                    result: 0,
                    cycles,
                }
            }
            OP_RECONSTRUCT => {
                let rec = reconstruct(blocks[0], &blocks[1..]);
                AccelResponse {
                    data: rec,
                    result: 0,
                    cycles,
                }
            }
            _ => AccelResponse {
                data: Vec::new(),
                result: u64::MAX,
                cycles: REQUEST_CYCLES,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parity_recovers_any_block() {
        let b0 = vec![1u8, 2, 3, 4];
        let b1 = vec![9u8, 8, 7, 6];
        let b2 = vec![0xaa, 0xbb, 0xcc, 0xdd];
        let p = parity(&[&b0, &b1, &b2]);
        assert_eq!(reconstruct(&p, &[&b1, &b2]), b0);
        assert_eq!(reconstruct(&p, &[&b0, &b2]), b1);
        assert_eq!(reconstruct(&p, &[&b0, &b1]), b2);
    }

    #[test]
    fn parity_of_identical_pair_is_zero() {
        let b = vec![0x5au8; 64];
        assert!(parity(&[&b, &b]).iter().all(|&x| x == 0));
    }

    #[test]
    fn engine_parity_and_reconstruct() {
        let mut r = RaidAccel::new();
        let b0 = vec![1u8; 512];
        let b1: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        let framed = RaidAccel::frame(&[&b0, &b1]);
        let p = r.execute(&AccelRequest {
            data: framed,
            opcode: OP_PARITY,
        });
        assert_eq!(p.result, 0);
        // Lose b1; reconstruct from parity + b0.
        let framed2 = RaidAccel::frame(&[&p.data, &b0]);
        let rec = r.execute(&AccelRequest {
            data: framed2,
            opcode: OP_RECONSTRUCT,
        });
        assert_eq!(rec.data, b1);
        assert_eq!(r.stripes(), 2);
    }

    #[test]
    fn malformed_requests_rejected() {
        let mut r = RaidAccel::new();
        // Truncating to 9 bytes leaves a 5-byte body that does not divide
        // into the declared 2 blocks.
        for data in [
            vec![],
            vec![1, 0, 0, 0],
            RaidAccel::frame(&[&[1, 2, 3], &[4, 5, 6]])[..9].to_vec(),
        ] {
            let resp = r.execute(&AccelRequest {
                data,
                opcode: OP_PARITY,
            });
            assert_eq!(resp.result, u64::MAX);
        }
        assert_eq!(r.stripes(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged stripe")]
    fn ragged_stripe_panics() {
        let _ = parity(&[&[1u8, 2][..], &[3u8][..]]);
    }

    proptest! {
        #[test]
        fn reconstruction_inverts_parity(
            blocks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 32..64), 2..6),
            missing in 0usize..6,
        ) {
            // Normalize block lengths.
            let len = blocks.iter().map(|b| b.len()).min().unwrap();
            let blocks: Vec<Vec<u8>> = blocks.iter().map(|b| b[..len].to_vec()).collect();
            let missing = missing % blocks.len();
            let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
            let p = parity(&refs);
            let survivors: Vec<&[u8]> = refs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != missing)
                .map(|(_, b)| *b)
                .collect();
            prop_assert_eq!(reconstruct(&p, &survivors), blocks[missing].clone());
        }
    }
}
