//! Accelerator memory profiles (Table 7) and TLB-bank sizing.
//!
//! Table 7 inventories the DRAM-resident buffers each accelerator needs:
//! instruction queue (IQ), packet descriptor buffers (PktDB), packet
//! buffers (PktB), result buffers (ResB), parameter buffers (ParaB),
//! output buffers (OutB), scatter-gather pointers (SGP), the DPI graph,
//! and the ZIP dictionary. The per-cluster TLB bank must map all of them;
//! with 2 MB pages that is 54 entries for DPI, 70 for ZIP, and 5 for
//! RAID.

use snic_mem::planner::{plan_regions, PagePolicy};
use snic_types::{AccelKind, ByteSize};

/// One accelerator's buffer inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelMemoryProfile {
    /// Accelerator family.
    pub kind: AccelKind,
    /// Named buffer regions `(label, size)`.
    pub regions: Vec<(&'static str, ByteSize)>,
}

impl AccelMemoryProfile {
    /// Total bytes across regions.
    pub fn total(&self) -> ByteSize {
        self.regions.iter().map(|&(_, s)| s).sum()
    }

    /// TLB entries a cluster bank needs under `policy`.
    pub fn tlb_entries(&self, policy: &PagePolicy) -> u64 {
        let sizes: Vec<ByteSize> = self.regions.iter().map(|&(_, s)| s).collect();
        plan_regions(&sizes, policy).total_entries()
    }
}

/// The Table 7 profile for `kind`, or `None` for [`AccelKind::Crypto`],
/// which Table 7 does not profile (its state is a handful of key
/// registers).
pub fn accel_profile(kind: AccelKind) -> Option<AccelMemoryProfile> {
    let kb = ByteSize::kib;
    let mb = ByteSize::mib;
    let regions: Vec<(&'static str, ByteSize)> = match kind {
        AccelKind::Dpi => vec![
            ("IQ", kb(256)),
            ("PktDB", kb(128)),
            ("PktB", mb(2)),
            ("ResB", mb(2)),
            ("ParaB", kb(256)),
            ("Graph", ByteSize((97.28f64 * 1024.0 * 1024.0) as u64)),
        ],
        AccelKind::Zip => vec![
            ("IQ", kb(64)),
            ("PktDB", kb(128)),
            ("PktB", mb(2)),
            ("ResB", kb(24)),
            ("OutB", mb(2)),
            ("SGP", mb(128)),
            ("Dict", kb(32)),
        ],
        AccelKind::Raid => vec![
            ("IQ", mb(4)),
            ("PktDB", kb(128)),
            ("PktB", mb(2)),
            ("OutB", mb(2)),
        ],
        AccelKind::Crypto => return None,
    };
    Some(AccelMemoryProfile { kind, regions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table7() {
        let expect = [
            (AccelKind::Dpi, 101.90),
            (AccelKind::Zip, 132.24),
            (AccelKind::Raid, 8.13),
        ];
        for (kind, mb_total) in expect {
            let total = accel_profile(kind).unwrap().total().as_mib_f64();
            assert!(
                (total - mb_total).abs() < 0.05,
                "{kind:?}: {total} vs {mb_total}"
            );
        }
    }

    #[test]
    fn tlb_entries_match_table7_2mb_pages() {
        assert_eq!(
            accel_profile(AccelKind::Dpi)
                .unwrap()
                .tlb_entries(&PagePolicy::Equal),
            54
        );
        assert_eq!(
            accel_profile(AccelKind::Zip)
                .unwrap()
                .tlb_entries(&PagePolicy::Equal),
            70
        );
        assert_eq!(
            accel_profile(AccelKind::Raid)
                .unwrap()
                .tlb_entries(&PagePolicy::Equal),
            5
        );
    }

    #[test]
    fn crypto_unprofiled() {
        assert!(accel_profile(AccelKind::Crypto).is_none());
    }
}
