//! The trusted instructions of Table 1 and their latency model.
//!
//! `nf_launch` is "a complex instruction ... implemented in microcode,
//! similar to how complex SGX instructions are implemented" (§4.8). The
//! Appendix C microbenchmarks decompose its latency into TLB setup +
//! configuration reading, denylisting, and SHA-256 digesting of the
//! function's memory; `nf_destroy` into allowlisting and memory
//! scrubbing. The constants below are the paper's measured values on a
//! 16-core 1.2 GHz Marvell NIC.

use snic_mem::planner::PagePolicy;
use snic_pktio::rules::SwitchRule;
use snic_pktio::vpp::VppBufferSpec;
use snic_types::{AccelKind, ByteSize, CoreId, NfId, Picos};

/// TLB setup and configuration reading cost (Appendix C: 0.0196 ms).
pub const TLB_SETUP: Picos = Picos(19_600_000);
/// Denylist installation cost (Appendix C: 0.0044 ms).
pub const DENYLISTING: Picos = Picos(4_400_000);
/// Allowlist removal cost (Appendix C: 0.0038 ms).
pub const ALLOWLISTING: Picos = Picos(3_800_000);
/// SHA-256 digest rate of the security co-processor (≈ 0.47 MB/ms).
pub const SHA_BYTES_PER_MS: f64 = 0.47 * 1024.0 * 1024.0;
/// Memory scrub rate (Appendix C: ≈ 6.6 GB/s).
pub const SCRUB_BYTES_PER_SEC: f64 = 6.6e9;
/// RSA signing latency for `nf_attest` (Appendix C: 5.596 ms).
pub const ATTEST_RSA: Picos = Picos(5_596_000_000);
/// SHA portion of `nf_attest` (Appendix C: 0.004 ms).
pub const ATTEST_SHA: Picos = Picos(4_000_000);

/// Time to SHA-digest `bytes` of function memory.
pub fn sha_digest_time(bytes: ByteSize) -> Picos {
    Picos((bytes.bytes() as f64 / SHA_BYTES_PER_MS * 1e9) as u64)
}

/// Time to scrub `bytes` of function memory.
pub fn scrub_time(bytes: ByteSize) -> Picos {
    Picos((bytes.bytes() as f64 / SCRUB_BYTES_PER_SEC * 1e12) as u64)
}

/// The initial code/data image a tenant uploads (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NfImage {
    /// Code bytes (hashed into the launch measurement and copied into
    /// the function's memory).
    pub code: Vec<u8>,
    /// Configuration blob (rulesets, keys, parameters — also measured).
    pub config: Vec<u8>,
}

impl NfImage {
    /// Total image bytes.
    pub fn len(&self) -> usize {
        self.code.len() + self.config.len()
    }

    /// True if both sections are empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty() && self.config.is_empty()
    }
}

/// Everything `nf_launch` needs (Table 1's argument list).
#[derive(Debug, Clone)]
pub struct LaunchRequest {
    /// Cores to bind (the `core_mask` argument).
    pub cores: Vec<CoreId>,
    /// Private RAM to reserve (drives the planner / page-table walk).
    pub memory: ByteSize,
    /// Accelerator clusters requested per family (the `accel_mask`).
    pub accel: Vec<(AccelKind, usize)>,
    /// Switching rules for the function's VPP (`pkt_pipeline_config`).
    /// The `target` field is overwritten with the new function's id.
    pub rules: Vec<SwitchRule>,
    /// VPP buffer reservation.
    pub vpp: VppBufferSpec,
    /// Initial code + configuration.
    pub image: NfImage,
    /// Page sizes for the mapping plan (None = device default).
    pub page_policy: Option<PagePolicy>,
    /// Host-sanctioned DMA window `(base, len)` in host physical memory
    /// (§4.2: "the function should only be able to transfer data to a
    /// host-sanctioned region in host RAM"). `None` = no host DMA.
    pub host_window: Option<(u64, u64)>,
    /// Physical placement hint for the private region. `None` lets the
    /// device choose; a hint is handed to the static verifier unmodified,
    /// so demos and tests can construct overlapping manifests that the
    /// verifier — not the ownership bitmap — must refuse.
    pub region_base: Option<u64>,
    /// Pass 0 submission: the NF's dataflow IR plus the resource
    /// envelope it claims confinement to. When present, the static
    /// analyzer must prove the program confined *before* any resource is
    /// reserved; a failing analysis refuses the launch atomically.
    /// `None` launches without a program-analysis certificate (the
    /// attestation digest stays all-zero, which a relying party can
    /// reject).
    pub analysis: Option<snic_analyze::LaunchAnalysis>,
}

impl LaunchRequest {
    /// A minimal single-core request with `memory` bytes of RAM.
    pub fn minimal(core: CoreId, memory: ByteSize, image: NfImage) -> LaunchRequest {
        LaunchRequest {
            cores: vec![core],
            memory,
            accel: Vec::new(),
            rules: Vec::new(),
            vpp: VppBufferSpec::default(),
            image,
            page_policy: None,
            host_window: None,
            region_base: None,
            analysis: None,
        }
    }
}

/// Latency breakdown of one `nf_launch` (Figure 6, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchLatency {
    /// TLB setup and configuration reading.
    pub tlb_setup: Picos,
    /// Denylisting.
    pub denylisting: Picos,
    /// SHA-256 digesting of function memory.
    pub sha_digest: Picos,
}

impl LaunchLatency {
    /// Total instruction latency.
    pub fn total(&self) -> Picos {
        self.tlb_setup + self.denylisting + self.sha_digest
    }
}

/// What `nf_launch` returns.
#[derive(Debug, Clone)]
pub struct LaunchReceipt {
    /// The new function's opaque id.
    pub nf_id: NfId,
    /// Measured launch hash (covers image, rules, and core/memory
    /// configuration — §4.6's cumulative hash).
    pub measurement: [u8; 32],
    /// Latency breakdown.
    pub latency: LaunchLatency,
}

/// Latency breakdown of one `nf_teardown` (Figure 6, right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeardownLatency {
    /// Allowlisting (denylist removal).
    pub allowlisting: Picos,
    /// Memory scrubbing.
    pub scrub: Picos,
}

impl TeardownLatency {
    /// Total instruction latency.
    pub fn total(&self) -> Picos {
        self.allowlisting + self.scrub
    }
}

/// What `nf_teardown` returns.
#[derive(Debug, Clone, Copy)]
pub struct TeardownReceipt {
    /// Latency breakdown.
    pub latency: TeardownLatency,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha_time_matches_appendix_c() {
        // LB (13.80 MB): paper measured 29.62 ms of digesting.
        let t = sha_digest_time(ByteSize((13.80 * 1024.0 * 1024.0) as u64)).as_millis_f64();
        assert!((t - 29.62).abs() < 0.6, "{t} ms");
        // Monitor (360.54 MB): 763.52 ms.
        let t = sha_digest_time(ByteSize((360.54 * 1024.0 * 1024.0) as u64)).as_millis_f64();
        assert!((t - 763.52).abs() < 10.0, "{t} ms");
    }

    #[test]
    fn scrub_time_matches_appendix_c() {
        // Monitor: 54.23 ms dominated by scrubbing.
        let t = scrub_time(ByteSize((360.54 * 1024.0 * 1024.0) as u64)).as_millis_f64();
        assert!((t - 54.23).abs() < 4.0, "{t} ms");
        // LB: 2.11 ms.
        let t = scrub_time(ByteSize((13.80 * 1024.0 * 1024.0) as u64)).as_millis_f64();
        assert!((t - 2.11).abs() < 0.3, "{t} ms");
    }

    #[test]
    fn launch_latency_totals() {
        let l = LaunchLatency {
            tlb_setup: TLB_SETUP,
            denylisting: DENYLISTING,
            sha_digest: sha_digest_time(ByteSize::mib(50)),
        };
        assert_eq!(l.total(), l.tlb_setup + l.denylisting + l.sha_digest);
        // Digesting dominates for a 50 MB function.
        assert!(l.sha_digest.0 > 10 * (l.tlb_setup + l.denylisting).0);
    }

    #[test]
    fn image_len() {
        let img = NfImage {
            code: vec![0; 10],
            config: vec![0; 5],
        };
        assert_eq!(img.len(), 15);
        assert!(!img.is_empty());
        assert!(NfImage::default().is_empty());
    }
}
