//! Device configuration.

use snic_mem::planner::PagePolicy;
use snic_types::ByteSize;

/// Which personality the device runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicMode {
    /// Commodity SoC NIC: no isolation (§3).
    Commodity,
    /// S-NIC: full hardware isolation (§4).
    Snic,
}

/// Static configuration of a [`crate::device::SmartNic`].
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Personality.
    pub mode: NicMode,
    /// Programmable cores (the S-NIC management core is separate).
    pub cores: u16,
    /// On-NIC DRAM size.
    pub dram: ByteSize,
    /// Hardware TLB slots per programmable core.
    pub core_tlb_entries: usize,
    /// Clusters per accelerator family.
    pub accel_clusters: u16,
    /// Hardware threads per cluster.
    pub threads_per_cluster: u32,
    /// Physical RX port buffer space.
    pub rx_buffer: ByteSize,
    /// Physical TX port buffer space.
    pub tx_buffer: ByteSize,
    /// Page sizes available to the launch planner.
    pub page_policy: PagePolicy,
    /// Core clock.
    pub clock_hz: u64,
    /// Bus operations per second one client may issue before a commodity
    /// NIC's bus saturates and the NIC hard-crashes (§3.3's Agilio DoS).
    pub bus_crash_threshold: u64,
    /// RNG seed for the device's key generation.
    pub seed: u64,
}

impl NicConfig {
    /// A LiquidIO-like commodity NIC.
    pub fn commodity() -> NicConfig {
        NicConfig {
            mode: NicMode::Commodity,
            cores: 12,
            dram: ByteSize::gib(2),
            core_tlb_entries: 512,
            accel_clusters: 16,
            threads_per_cluster: 4,
            rx_buffer: ByteSize::mib(32),
            tx_buffer: ByteSize::mib(32),
            page_policy: PagePolicy::Equal,
            clock_hz: 1_200_000_000,
            bus_crash_threshold: 50_000_000,
            seed: 0x51c,
        }
    }

    /// The same hardware with S-NIC's isolation extensions.
    pub fn snic() -> NicConfig {
        NicConfig {
            mode: NicMode::Snic,
            ..NicConfig::commodity()
        }
    }

    /// Smaller device for fast unit tests.
    pub fn small(mode: NicMode) -> NicConfig {
        NicConfig {
            mode,
            cores: 4,
            dram: ByteSize::mib(256),
            accel_clusters: 4,
            rx_buffer: ByteSize::mib(8),
            tx_buffer: ByteSize::mib(8),
            ..NicConfig::commodity()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_mode() {
        let c = NicConfig::commodity();
        let s = NicConfig::snic();
        assert_eq!(c.mode, NicMode::Commodity);
        assert_eq!(s.mode, NicMode::Snic);
        assert_eq!(c.cores, s.cores);
        assert_eq!(c.dram, s.dram);
    }

    #[test]
    fn small_preset_is_smaller() {
        let small = NicConfig::small(NicMode::Snic);
        assert!(small.dram < NicConfig::snic().dram);
        assert!(small.cores < NicConfig::snic().cores);
    }
}
