//! Host-level secure computations (SGX-enclave-like endpoints).
//!
//! §4.7: "If P runs atop trusted hardware as well (e.g., because P
//! resides within an SGX enclave or a TrustZone secure world), F can now
//! ask P to attest to F." The paper treats enclaves as opaque attestable
//! endpoints; this model gives them the same measurement-plus-signature
//! shape as NFs, rooted in a (distinct) host-CPU vendor CA.

use rand::Rng;
use snic_crypto::bigint::BigUint;
use snic_crypto::dh::{DhKeyPair, DhParams};
use snic_crypto::keys::{AttestationKey, Certificate, EndorsementKey, VendorCa};
use snic_crypto::rsa::RsaPublicKey;
use snic_crypto::sha256::sha256;

use crate::attest::AttestationQuote;

/// A host-level enclave with attestable identity.
pub struct HostEnclave {
    /// Measurement of the enclave's initial code/data.
    pub measurement: [u8; 32],
    ak: AttestationKey,
    ek_certificate: Certificate,
}

impl HostEnclave {
    /// "Load" an enclave with the given initial image on a host whose CPU
    /// was manufactured by `cpu_vendor`.
    pub fn load<R: Rng + ?Sized>(rng: &mut R, cpu_vendor: &VendorCa, image: &[u8]) -> HostEnclave {
        let ek = EndorsementKey::manufacture(rng, cpu_vendor);
        let ak = AttestationKey::generate(rng, &ek);
        HostEnclave {
            measurement: sha256(image),
            ak,
            ek_certificate: ek.certificate.clone(),
        }
    }

    /// The AK public key (for tests that verify directly).
    pub fn ak_public(&self) -> &RsaPublicKey {
        self.ak.public()
    }

    /// Produce an attestation quote for a verifier nonce, performing the
    /// function side of the Appendix A exchange. Returns the quote plus
    /// the DH state needed to finish key agreement.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &DhParams,
        nonce: [u8; 32],
    ) -> (AttestationQuote, DhKeyPair) {
        let keypair = DhKeyPair::generate(rng, params);
        let context = transcript(&params.g, &params.p, &nonce, &keypair.public);
        let mut statement = Vec::with_capacity(65 + context.len());
        statement.extend_from_slice(&self.measurement);
        // Enclaves have no vNIC manifest set to verify and no dataflow
        // IR to analyze; the verdict slot is trivially clean and the
        // analysis-digest slot all-zero (kept so NF and enclave quotes
        // share one wire format and one `verify_quote`).
        statement.push(1);
        statement.extend_from_slice(&[0u8; 32]);
        statement.extend_from_slice(&context);
        let signature = self.ak.sign(&statement);
        (
            AttestationQuote {
                g: params.g.clone(),
                p: params.p.clone(),
                nonce,
                dh_public: keypair.public.clone(),
                measurement: self.measurement,
                verdict: true,
                analysis_digest: [0u8; 32],
                signature,
                ak_endorsement: self.ak.endorsement.clone(),
                ek_certificate: self.ek_certificate.clone(),
            },
            keypair,
        )
    }
}

/// Same transcript encoding as [`crate::attest`] (kept in sync so NF and
/// enclave quotes verify identically).
fn transcript(g: &BigUint, p: &BigUint, nonce: &[u8; 32], dh_public: &BigUint) -> Vec<u8> {
    let mut out = Vec::new();
    for part in [
        g.to_be_bytes(),
        p.to_be_bytes(),
        nonce.to_vec(),
        dh_public.to_be_bytes(),
    ] {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(&part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::verify_quote;
    use rand::SeedableRng;

    #[test]
    fn enclave_quote_verifies_against_cpu_vendor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let intel = VendorCa::new(&mut rng);
        let enclave = HostEnclave::load(&mut rng, &intel, b"key manager enclave v2");
        let params = DhParams::tiny_test_group();
        let nonce = [7u8; 32];
        let (quote, _) = enclave.respond(&mut rng, &params, nonce);
        assert!(verify_quote(
            intel.public(),
            &enclave.measurement,
            &nonce,
            &quote
        ));
        // The NIC vendor's key does not verify a host enclave.
        let nic_vendor = VendorCa::new(&mut rng);
        assert!(!verify_quote(
            nic_vendor.public(),
            &enclave.measurement,
            &nonce,
            &quote
        ));
    }

    #[test]
    fn different_images_different_measurements() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let intel = VendorCa::new(&mut rng);
        let a = HostEnclave::load(&mut rng, &intel, b"image-a");
        let b = HostEnclave::load(&mut rng, &intel, b"image-b");
        assert_ne!(a.measurement, b.measurement);
    }
}
