//! Authenticated-encrypted channels over attested session keys.
//!
//! §2: "Encryption is necessary because datacenter operators may snoop on
//! or tamper with the bus that connects a NIC to its host." After the
//! Appendix A handshake, both endpoints hold a 256-bit key; the channel
//! is ChaCha20 encryption with an HMAC-SHA256 tag over
//! `seq ‖ ciphertext` and strictly increasing sequence numbers (replay
//! protection).

use snic_crypto::chacha20::ChaCha20;
use snic_crypto::hmac::{hmac_sha256, verify_mac};
use snic_types::SnicError;

/// A sealed message on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    /// Sequence number.
    pub seq: u64,
    /// Ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC tag over `seq ‖ ciphertext`.
    pub tag: [u8; 32],
}

/// One endpoint of a secure channel.
#[derive(Debug)]
pub struct SecureChannel {
    send_enc: [u8; 32],
    send_mac: [u8; 32],
    recv_enc: [u8; 32],
    recv_mac: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Derive a channel endpoint from the attested session key. The two
    /// endpoints construct with opposite `initiator` flags; direction
    /// keys are derived with role labels so the A→B and B→A keystreams
    /// differ (no nonce reuse across directions), and each endpoint
    /// seals with its own direction and opens with the peer's.
    pub fn new(session_key: &[u8; 32], initiator: bool) -> SecureChannel {
        let label = |tag: &[u8]| {
            let mut input = session_key.to_vec();
            input.extend_from_slice(tag);
            snic_crypto::sha256::sha256(&input)
        };
        let i2r = (label(b"enc-i2r"), label(b"mac-i2r"));
        let r2i = (label(b"enc-r2i"), label(b"mac-r2i"));
        let ((send_enc, send_mac), (recv_enc, recv_mac)) =
            if initiator { (i2r, r2i) } else { (r2i, i2r) };
        SecureChannel {
            send_enc,
            send_mac,
            recv_enc,
            recv_mac,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&seq.to_le_bytes());
        n
    }

    /// Encrypt and authenticate `plaintext`.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedMessage {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut ct = plaintext.to_vec();
        ChaCha20::new(&self.send_enc, &Self::nonce(seq)).apply(1, &mut ct);
        let mut mac_input = seq.to_le_bytes().to_vec();
        mac_input.extend_from_slice(&ct);
        SealedMessage {
            seq,
            ciphertext: ct,
            tag: hmac_sha256(&self.send_mac, &mac_input),
        }
    }

    /// Verify and decrypt a message. Rejects bad tags and replayed or
    /// reordered sequence numbers.
    pub fn open(&mut self, msg: &SealedMessage) -> Result<Vec<u8>, SnicError> {
        if msg.seq < self.recv_seq {
            return Err(SnicError::InvalidConfig("replayed message".into()));
        }
        let mut mac_input = msg.seq.to_le_bytes().to_vec();
        mac_input.extend_from_slice(&msg.ciphertext);
        let expect = hmac_sha256(&self.recv_mac, &mac_input);
        if !verify_mac(&expect, &msg.tag) {
            return Err(SnicError::InvalidConfig("bad message tag".into()));
        }
        self.recv_seq = msg.seq + 1;
        let mut pt = msg.ciphertext.clone();
        ChaCha20::new(&self.recv_enc, &Self::nonce(msg.seq)).apply(1, &mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let key = [0x42u8; 32];
        // Complementary roles: A's send keys are B's receive keys.
        (
            SecureChannel::new(&key, true),
            SecureChannel::new(&key, false),
        )
    }

    #[test]
    fn seal_open_round_trip() {
        let (mut a, mut b) = pair();
        let msg = a.seal(b"inner frame bytes");
        assert_ne!(msg.ciphertext, b"inner frame bytes".to_vec());
        assert_eq!(b.open(&msg).unwrap(), b"inner frame bytes");
    }

    #[test]
    fn sequence_numbers_advance() {
        let (mut a, mut b) = pair();
        for i in 0..5u64 {
            let m = a.seal(format!("m{i}").as_bytes());
            assert_eq!(m.seq, i);
            assert_eq!(b.open(&m).unwrap(), format!("m{i}").as_bytes());
        }
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let m = a.seal(b"once");
        assert!(b.open(&m).is_ok());
        assert!(b.open(&m).is_err(), "replay must be rejected");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (mut a, mut b) = pair();
        let mut m = a.seal(b"important");
        m.ciphertext[0] ^= 1;
        assert!(b.open(&m).is_err());
    }

    #[test]
    fn tampered_seq_rejected() {
        let (mut a, mut b) = pair();
        let mut m = a.seal(b"important");
        m.seq += 1;
        assert!(b.open(&m).is_err(), "seq is covered by the MAC");
    }

    #[test]
    fn wrong_key_cannot_open() {
        let mut a = SecureChannel::new(&[1u8; 32], true);
        let mut eve = SecureChannel::new(&[2u8; 32], true);
        let m = a.seal(b"secret");
        assert!(eve.open(&m).is_err());
    }

    #[test]
    fn directions_use_distinct_keys() {
        let key = [9u8; 32];
        let mut i = SecureChannel::new(&key, true);
        let mut r = SecureChannel::new(&key, false);
        // Same plaintext, same seq, different ciphertexts.
        assert_ne!(i.seal(b"x").ciphertext, r.seal(b"x").ciphertext);
    }
}
