//! The NIC OS management API (Table 1, first column).
//!
//! The NIC OS is *untrusted*: it orchestrates launches and teardowns by
//! invoking the trusted instructions, but after `nf_launch` completes it
//! "is no longer involved in the management of the hardware resources
//! that are bound to a function" (§4.6). `NF_create` maps onto
//! `nf_launch`, `NF_destroy` onto `nf_teardown`.

use snic_faults::{FaultEventKind, FaultKind, FaultSite};
use snic_types::{NfId, Picos, SnicError};

use crate::device::SmartNic;
use crate::instr::{LaunchReceipt, LaunchRequest, TeardownReceipt};

/// Retry schedule for transient admission failures (the orchestrator's
/// answer to [`SnicError::is_retryable`] errors): capped exponential
/// backoff in *simulated* time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Picos,
    /// Backoff ceiling.
    pub max_backoff: Picos,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Picos::micros(50),
            max_backoff: Picos::micros(400),
        }
    }
}

/// The management-plane wrapper around a device.
pub struct NicOs<'a> {
    nic: &'a mut SmartNic,
    created: Vec<NfId>,
}

impl<'a> NicOs<'a> {
    /// Run the NIC OS on `nic`'s management core.
    pub fn new(nic: &'a mut SmartNic) -> NicOs<'a> {
        NicOs {
            nic,
            created: Vec::new(),
        }
    }

    /// Boot a NIC OS instance on a device whose previous OS instance
    /// crashed. The OS is untrusted and restartable by design (§4.6):
    /// it rebuilds its view from the device's live-function set; the
    /// functions themselves — their cores, regions, TLBs, traffic —
    /// are untouched by the restart.
    pub fn recover(nic: &'a mut SmartNic) -> NicOs<'a> {
        let created = nic.live_nf_ids();
        nic.fault_note(None, FaultEventKind::NicOsRestarted);
        NicOs { nic, created }
    }

    /// An injected NIC-OS crash surfaces at the next management call.
    /// The OS process restarts in place (rebuilding its managed list
    /// from the device — the only durable truth) and the interrupted
    /// call fails with a retryable error for the host to re-issue.
    fn crash_gate(&mut self) -> Result<(), SnicError> {
        if let Some(FaultKind::NicOsCrash) = self.nic.fault_check(FaultSite::NicOs, None) {
            self.created = self.nic.live_nf_ids();
            self.nic.fault_note(None, FaultEventKind::NicOsRestarted);
            return Err(SnicError::Transient(snic_types::TransientResource::NicOs));
        }
        Ok(())
    }

    /// `NF_create(net_config, core_config, dpi_config, ...) → nf_id or
    /// failure`: DMA the image to NIC RAM and invoke `nf_launch`.
    pub fn nf_create(&mut self, request: LaunchRequest) -> Result<LaunchReceipt, SnicError> {
        self.crash_gate()?;
        let receipt = self.nic.nf_launch(request)?;
        self.created.push(receipt.nf_id);
        Ok(receipt)
    }

    /// `NF_create` with retry: transient failures (injected or organic
    /// resource exhaustion, a NIC-OS restart) back off in simulated
    /// time — doubling up to `policy.max_backoff` — and re-issue; fatal
    /// errors surface immediately.
    pub fn nf_create_with_retry(
        &mut self,
        request: LaunchRequest,
        policy: RetryPolicy,
    ) -> Result<LaunchReceipt, SnicError> {
        let mut backoff = policy.initial_backoff;
        let mut attempt = 1u32;
        loop {
            match self.nf_create(request.clone()) {
                Ok(receipt) => return Ok(receipt),
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    self.nic
                        .fault_note(None, FaultEventKind::RetryBackoff { attempt, backoff });
                    let telemetry = self.nic.telemetry();
                    if telemetry.enabled() {
                        telemetry.counter_add(0, snic_telemetry::metrics::NICOS_RETRIES, 1);
                        telemetry.instant(0, "nicos.retry_backoff", self.nic.now().0);
                    }
                    self.nic.advance(backoff);
                    backoff = Picos((backoff.0 * 2).min(policy.max_backoff.0));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `NF_destroy(nf_id) → success or failure`.
    pub fn nf_destroy(&mut self, nf: NfId) -> Result<TeardownReceipt, SnicError> {
        self.crash_gate()?;
        let receipt = self.nic.nf_teardown(nf)?;
        self.created.retain(|&id| id != nf);
        Ok(receipt)
    }

    /// NFs this OS instance created and has not destroyed.
    pub fn managed(&self) -> &[NfId] {
        &self.created
    }

    /// The device (the OS also forwards host requests to it).
    pub fn device(&mut self) -> &mut SmartNic {
        self.nic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NicConfig, NicMode};
    use crate::instr::NfImage;
    use rand::SeedableRng;
    use snic_crypto::keys::VendorCa;
    use snic_mem::guard::Principal;
    use snic_types::{ByteSize, CoreId};

    fn nic() -> SmartNic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        SmartNic::new(NicConfig::small(NicMode::Snic), &VendorCa::new(&mut rng))
    }

    #[test]
    fn create_destroy_lifecycle() {
        let mut device = nic();
        let mut os = NicOs::new(&mut device);
        let r = os
            .nf_create(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage::default(),
            ))
            .unwrap();
        assert_eq!(os.managed(), &[r.nf_id]);
        os.nf_destroy(r.nf_id).unwrap();
        assert!(os.managed().is_empty());
        assert!(os.nf_destroy(r.nf_id).is_err(), "double destroy fails");
    }

    #[test]
    fn os_cannot_touch_function_memory_after_create() {
        // The key §4.2 property: even the OS that created the function is
        // locked out of its pages.
        let mut device = nic();
        let mut os = NicOs::new(&mut device);
        let r = os
            .nf_create(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"private".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        let (base, _) = os.device().record_of(r.nf_id).unwrap().region;
        let mut buf = [0u8; 7];
        let err = os
            .device()
            .mem_read(Principal::Management, base, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
        // After destroy, the pages are scrubbed and accessible again.
        os.nf_destroy(r.nf_id).unwrap();
        os.device()
            .mem_read(Principal::Management, base, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 7]);
    }
}
