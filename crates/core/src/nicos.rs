//! The NIC OS management API (Table 1, first column).
//!
//! The NIC OS is *untrusted*: it orchestrates launches and teardowns by
//! invoking the trusted instructions, but after `nf_launch` completes it
//! "is no longer involved in the management of the hardware resources
//! that are bound to a function" (§4.6). `NF_create` maps onto
//! `nf_launch`, `NF_destroy` onto `nf_teardown`.

use snic_faults::{FaultEventKind, FaultKind, FaultSite};
use snic_types::{NfId, Picos, SnicError};

use crate::device::SmartNic;
use crate::instr::{LaunchReceipt, LaunchRequest, TeardownReceipt};

/// Retry schedule for transient admission failures (the orchestrator's
/// answer to [`SnicError::is_retryable`] errors): capped exponential
/// backoff in *simulated* time, optionally with deterministic seeded
/// jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Picos,
    /// Backoff ceiling.
    pub max_backoff: Picos,
    /// Jitter seed. `Some(seed)` adds a pseudo-random component in
    /// `[0, backoff/4)` to each applied backoff, derived *only* from
    /// `(seed, attempt)` via a fixed mixer — no wall clock, no OS
    /// entropy — so retried schedules stay bit-reproducible while
    /// decorrelating concurrent tenants' retry storms. `None` keeps the
    /// exact legacy doubling schedule.
    pub jitter: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Picos::micros(50),
            max_backoff: Picos::micros(400),
            jitter: None,
        }
    }
}

impl RetryPolicy {
    /// The default schedule with deterministic jitter derived from
    /// `seed`.
    pub fn jittered(seed: u64) -> RetryPolicy {
        RetryPolicy {
            jitter: Some(seed),
            ..RetryPolicy::default()
        }
    }

    /// The backoff actually applied before retry `attempt` (1-based),
    /// given the un-jittered `base` for that attempt. Pure function of
    /// the policy: the daemon's snapshot/replay machinery depends on
    /// this never consulting ambient state.
    pub fn applied_backoff(&self, attempt: u32, base: Picos) -> Picos {
        match self.jitter {
            None => base,
            Some(seed) => {
                // splitmix64 over (seed, attempt): cheap, fixed, and
                // platform-independent.
                let mut z = seed ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let span = (base.0 / 4).max(1);
                Picos(base.0 + z % span)
            }
        }
    }
}

/// Why a retry loop stopped without a receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError {
    /// The first non-retryable error; retrying would never help.
    Fatal(SnicError),
    /// Every attempt in the budget failed with a retryable error.
    Exhausted {
        /// Attempts consumed (== `RetryPolicy::max_attempts`).
        attempts: u32,
        /// The last transient error observed.
        last: SnicError,
    },
    /// The next backoff would cross the request's deadline; the loop
    /// cancelled instead of sleeping past it. Failed attempts have
    /// already rolled back, so cancellation leaves no partial effects
    /// (the `ResourceSnapshot` equality guarantee).
    DeadlineExceeded {
        /// Attempts consumed before cancelling.
        attempts: u32,
        /// The deadline that would have been crossed.
        deadline: Picos,
    },
}

impl core::fmt::Display for RetryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RetryError::Fatal(e) => write!(f, "fatal: {e}"),
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::DeadlineExceeded { attempts, deadline } => {
                write!(
                    f,
                    "cancelled after {attempts} attempts: next backoff crosses deadline {}ps",
                    deadline.0
                )
            }
        }
    }
}

impl std::error::Error for RetryError {}

/// The management-plane wrapper around a device.
pub struct NicOs<'a> {
    nic: &'a mut SmartNic,
    created: Vec<NfId>,
}

impl<'a> NicOs<'a> {
    /// Run the NIC OS on `nic`'s management core.
    pub fn new(nic: &'a mut SmartNic) -> NicOs<'a> {
        NicOs {
            nic,
            created: Vec::new(),
        }
    }

    /// Boot a NIC OS instance on a device whose previous OS instance
    /// crashed. The OS is untrusted and restartable by design (§4.6):
    /// it rebuilds its view from the device's live-function set; the
    /// functions themselves — their cores, regions, TLBs, traffic —
    /// are untouched by the restart.
    pub fn recover(nic: &'a mut SmartNic) -> NicOs<'a> {
        let created = nic.live_nf_ids();
        nic.fault_note(None, FaultEventKind::NicOsRestarted);
        NicOs { nic, created }
    }

    /// An injected NIC-OS crash surfaces at the next management call.
    /// The OS process restarts in place (rebuilding its managed list
    /// from the device — the only durable truth) and the interrupted
    /// call fails with a retryable error for the host to re-issue.
    fn crash_gate(&mut self) -> Result<(), SnicError> {
        if let Some(FaultKind::NicOsCrash) = self.nic.fault_check(FaultSite::NicOs, None) {
            self.created = self.nic.live_nf_ids();
            self.nic.fault_note(None, FaultEventKind::NicOsRestarted);
            return Err(SnicError::Transient(snic_types::TransientResource::NicOs));
        }
        Ok(())
    }

    /// `NF_create(net_config, core_config, dpi_config, ...) → nf_id or
    /// failure`: DMA the image to NIC RAM and invoke `nf_launch`.
    pub fn nf_create(&mut self, request: LaunchRequest) -> Result<LaunchReceipt, SnicError> {
        self.crash_gate()?;
        let receipt = self.nic.nf_launch(request)?;
        self.created.push(receipt.nf_id);
        Ok(receipt)
    }

    /// `NF_create` with retry: transient failures (injected or organic
    /// resource exhaustion, a NIC-OS restart) back off in simulated
    /// time — doubling up to `policy.max_backoff`, plus seeded jitter
    /// when the policy asks for it — and re-issue; fatal errors surface
    /// immediately.
    pub fn nf_create_with_retry(
        &mut self,
        request: LaunchRequest,
        policy: RetryPolicy,
    ) -> Result<LaunchReceipt, SnicError> {
        self.nf_create_with_deadline(request, policy, None)
            .map_err(|e| match e {
                RetryError::Fatal(err) | RetryError::Exhausted { last: err, .. } => err,
                // Unreachable with `deadline: None`, but total anyway.
                RetryError::DeadlineExceeded { .. } => {
                    SnicError::Transient(snic_types::TransientResource::NicOs)
                }
            })
    }

    /// `NF_create` with retry *and* a cancellation deadline in
    /// simulated time: the daemon's standard launch path.
    ///
    /// Attempt counts and give-up reasons are surfaced as
    /// `snic-telemetry` counters (`nicos.retry_attempts`,
    /// `nicos.giveup_*`) and every applied backoff lands in the
    /// `nicos.backoff_ps` histogram, so an operator watching the live
    /// summary sees retry storms instead of silence. The loop never
    /// advances simulated time past `deadline`: if the next backoff
    /// would cross it, the loop cancels with
    /// [`RetryError::DeadlineExceeded`]. Each failed attempt has
    /// already rolled back (launch failure atomicity), so cancellation
    /// leaves the device's [`crate::device::ResourceSnapshot`] exactly
    /// as it was before the call.
    pub fn nf_create_with_deadline(
        &mut self,
        request: LaunchRequest,
        policy: RetryPolicy,
        deadline: Option<Picos>,
    ) -> Result<LaunchReceipt, RetryError> {
        use snic_telemetry::metrics;
        let mut backoff = policy.initial_backoff;
        let mut attempt = 1u32;
        let note_outcome = |nic: &mut SmartNic, attempts: u32, reason: &'static str| {
            let telemetry = nic.telemetry();
            if telemetry.enabled() {
                telemetry.counter_add(0, metrics::NICOS_RETRY_ATTEMPTS, u64::from(attempts));
                if !reason.is_empty() {
                    telemetry.counter_add(0, reason, 1);
                    telemetry.instant(0, reason, nic.now().0);
                }
            }
        };
        loop {
            match self.nf_create(request.clone()) {
                Ok(receipt) => {
                    note_outcome(self.nic, attempt, "");
                    return Ok(receipt);
                }
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    let applied = policy.applied_backoff(attempt, backoff);
                    if let Some(d) = deadline {
                        if self.nic.now() + applied > d {
                            note_outcome(self.nic, attempt, metrics::NICOS_GIVEUP_DEADLINE);
                            return Err(RetryError::DeadlineExceeded {
                                attempts: attempt,
                                deadline: d,
                            });
                        }
                    }
                    self.nic.fault_note(
                        None,
                        FaultEventKind::RetryBackoff {
                            attempt,
                            backoff: applied,
                        },
                    );
                    let telemetry = self.nic.telemetry();
                    if telemetry.enabled() {
                        telemetry.counter_add(0, metrics::NICOS_RETRIES, 1);
                        telemetry.record(0, metrics::NICOS_BACKOFF_PS, applied.0);
                        telemetry.instant(0, "nicos.retry_backoff", self.nic.now().0);
                    }
                    self.nic.advance(applied);
                    backoff = Picos((backoff.0 * 2).min(policy.max_backoff.0));
                    attempt += 1;
                }
                Err(e) if e.is_retryable() => {
                    note_outcome(self.nic, attempt, metrics::NICOS_GIVEUP_BUDGET);
                    return Err(RetryError::Exhausted {
                        attempts: attempt,
                        last: e,
                    });
                }
                Err(e) => {
                    note_outcome(self.nic, attempt, metrics::NICOS_GIVEUP_FATAL);
                    return Err(RetryError::Fatal(e));
                }
            }
        }
    }

    /// `NF_destroy(nf_id) → success or failure`.
    pub fn nf_destroy(&mut self, nf: NfId) -> Result<TeardownReceipt, SnicError> {
        self.crash_gate()?;
        let receipt = self.nic.nf_teardown(nf)?;
        self.created.retain(|&id| id != nf);
        Ok(receipt)
    }

    /// NFs this OS instance created and has not destroyed.
    pub fn managed(&self) -> &[NfId] {
        &self.created
    }

    /// The device (the OS also forwards host requests to it).
    pub fn device(&mut self) -> &mut SmartNic {
        self.nic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NicConfig, NicMode};
    use crate::instr::NfImage;
    use rand::SeedableRng;
    use snic_crypto::keys::VendorCa;
    use snic_mem::guard::Principal;
    use snic_types::{ByteSize, CoreId};

    fn nic() -> SmartNic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        SmartNic::new(NicConfig::small(NicMode::Snic), &VendorCa::new(&mut rng))
    }

    #[test]
    fn create_destroy_lifecycle() {
        let mut device = nic();
        let mut os = NicOs::new(&mut device);
        let r = os
            .nf_create(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage::default(),
            ))
            .unwrap();
        assert_eq!(os.managed(), &[r.nf_id]);
        os.nf_destroy(r.nf_id).unwrap();
        assert!(os.managed().is_empty());
        assert!(os.nf_destroy(r.nf_id).is_err(), "double destroy fails");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::jittered(42);
        let base = Picos::micros(100);
        for attempt in 1..8 {
            let a = p.applied_backoff(attempt, base);
            let b = p.applied_backoff(attempt, base);
            assert_eq!(a, b, "same (seed, attempt) => same jitter");
            assert!(a >= base);
            assert!(a.0 < base.0 + base.0 / 4 + 1, "jitter bounded to base/4");
        }
        // Different seeds decorrelate; no jitter means the exact base.
        let q = RetryPolicy::jittered(43);
        assert_ne!(p.applied_backoff(1, base), q.applied_backoff(1, base));
        assert_eq!(RetryPolicy::default().applied_backoff(1, base), base);
    }

    #[test]
    fn deadline_cancels_before_crossing_and_rolls_back() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut device = nic();
        // Every launch attempt hits transient DRAM exhaustion.
        device.inject_faults(
            FaultPlan::none()
                .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
                .on_nth(FaultSite::Launch, 2, FaultKind::DramExhaustion)
                .on_nth(FaultSite::Launch, 3, FaultKind::DramExhaustion)
                .on_nth(FaultSite::Launch, 4, FaultKind::DramExhaustion),
        );
        let before = device.resource_snapshot();
        let t0 = device.now();
        let mut os = NicOs::new(&mut device);
        // Deadline tighter than the first backoff: the loop must cancel
        // rather than sleep past it.
        let deadline = t0 + Picos::micros(10);
        let err = os
            .nf_create_with_deadline(
                LaunchRequest::minimal(CoreId(0), ByteSize::mib(4), NfImage::default()),
                RetryPolicy::jittered(7),
                Some(deadline),
            )
            .unwrap_err();
        assert!(
            matches!(err, RetryError::DeadlineExceeded { attempts: 1, .. }),
            "{err:?}"
        );
        assert!(device.now() <= deadline, "never advanced past the deadline");
        assert_eq!(
            device.resource_snapshot(),
            before,
            "cancellation left partial effects"
        );
    }

    #[test]
    fn exhausted_and_fatal_are_distinguished() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut device = nic();
        let plan = (1..=4).fold(FaultPlan::none(), |p, n| {
            p.on_nth(FaultSite::Launch, n, FaultKind::DramExhaustion)
        });
        device.inject_faults(plan);
        let mut os = NicOs::new(&mut device);
        let err = os
            .nf_create_with_deadline(
                LaunchRequest::minimal(CoreId(0), ByteSize::mib(4), NfImage::default()),
                RetryPolicy::default(),
                None,
            )
            .unwrap_err();
        assert!(
            matches!(err, RetryError::Exhausted { attempts: 4, .. }),
            "{err:?}"
        );
        // A fatal error (invalid config) surfaces immediately.
        let mut device = nic();
        let mut os = NicOs::new(&mut device);
        let err = os
            .nf_create_with_deadline(
                LaunchRequest::minimal(CoreId(0), ByteSize::mib(0), NfImage::default()),
                RetryPolicy::default(),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, RetryError::Fatal(_)), "{err:?}");
    }

    #[test]
    fn retry_outcomes_surface_as_telemetry_counters() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        use snic_telemetry::{metrics, Recorder};
        use std::sync::Arc;
        let mut device = nic();
        let recorder = Arc::new(Recorder::new());
        device.set_telemetry(recorder.clone());
        device.inject_faults(FaultPlan::none().on_nth(
            FaultSite::Launch,
            1,
            FaultKind::DramExhaustion,
        ));
        let mut os = NicOs::new(&mut device);
        os.nf_create_with_retry(
            LaunchRequest::minimal(CoreId(0), ByteSize::mib(4), NfImage::default()),
            RetryPolicy::jittered(3),
        )
        .unwrap();
        let summary = recorder.summary();
        let text = summary.to_text();
        assert!(text.contains(metrics::NICOS_RETRIES), "{text}");
        assert!(text.contains(metrics::NICOS_RETRY_ATTEMPTS), "{text}");
        assert!(text.contains(metrics::NICOS_BACKOFF_PS), "{text}");
    }

    #[test]
    fn os_cannot_touch_function_memory_after_create() {
        // The key §4.2 property: even the OS that created the function is
        // locked out of its pages.
        let mut device = nic();
        let mut os = NicOs::new(&mut device);
        let r = os
            .nf_create(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"private".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        let (base, _) = os.device().record_of(r.nf_id).unwrap().region;
        let mut buf = [0u8; 7];
        let err = os
            .device()
            .mem_read(Principal::Management, base, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
        // After destroy, the pages are scrubbed and accessible again.
        os.nf_destroy(r.nf_id).unwrap();
        os.device()
            .mem_read(Principal::Management, base, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 7]);
    }
}
