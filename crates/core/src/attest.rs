//! The Appendix A attestation protocol.
//!
//! A function `F` proves to a verifier `P` that it (1) runs atop an
//! authentic S-NIC and (2) had a specific initial state, while the two
//! bootstrap a shared symmetric key via Diffie–Hellman:
//!
//! 1. `P → F`: hello with nonce `n`,
//! 2. `F`: picks `x`, computes `g^x mod p`, and invokes `nf_attest` over
//!    `(g, p, n, g^x mod p)`; the hardware signs
//!    `Hash(F's initial state) ‖ g ‖ p ‖ n ‖ g^x` with `AK_priv`,
//! 3. `F → P`: the quote (parameters, hash, signature, AK endorsement,
//!    EK certificate),
//! 4. `P`: checks hash, chain, and nonce; replies with `g^y mod p`,
//! 5. both compute `g^xy mod p` and derive the session key.

use rand::Rng;
use snic_crypto::bigint::BigUint;
use snic_crypto::dh::{DhKeyPair, DhParams};
use snic_crypto::keys::Certificate;
use snic_crypto::rsa::{RsaPublicKey, RsaSignature};
use snic_crypto::sha256::sha256;
use snic_types::{NfId, SnicError};

use crate::device::SmartNic;

/// What the `nf_attest` instruction returns (device-side).
#[derive(Debug, Clone)]
pub struct SignedStatement {
    /// The function's launch measurement.
    pub measurement: [u8; 32],
    /// Static-verifier verdict at quote time: `true` iff Pass 1 of
    /// `snic-verify` found the device's live manifest set violation-free.
    /// The byte is covered by the signature, so a verifier learns not
    /// just *what* launched but that the device's isolation invariants
    /// held when the quote was cut.
    pub verdict: bool,
    /// Digest of the function's Pass 0 analysis certificate (all-zero
    /// when it launched without a dataflow-IR submission). Covered by
    /// the signature, so a relying party can require proof that the
    /// program itself was statically confined, not just the allocation.
    pub analysis_digest: [u8; 32],
    /// AK signature over `measurement ‖ verdict ‖ analysis_digest ‖
    /// context`.
    pub signature: RsaSignature,
    /// EK endorsement of the AK.
    pub ak_endorsement: Certificate,
    /// Vendor certificate of the EK.
    pub ek_certificate: Certificate,
}

/// The four-part message of step 3.
#[derive(Debug, Clone)]
pub struct AttestationQuote {
    /// DH generator.
    pub g: BigUint,
    /// DH modulus.
    pub p: BigUint,
    /// Verifier nonce (echoed).
    pub nonce: [u8; 32],
    /// The function's DH public value `g^x mod p`.
    pub dh_public: BigUint,
    /// Hash of the function's initial state.
    pub measurement: [u8; 32],
    /// Static-verifier verdict embedded (and signed) by the hardware.
    pub verdict: bool,
    /// Pass 0 analysis-certificate digest, signed alongside the verdict.
    pub analysis_digest: [u8; 32],
    /// Hardware signature over the transcript.
    pub signature: RsaSignature,
    /// AK endorsement by the EK.
    pub ak_endorsement: Certificate,
    /// Vendor certificate for the EK.
    pub ek_certificate: Certificate,
}

/// Serialize the signed context: `g ‖ p ‖ n ‖ g^x` (the measurement is
/// prepended by the hardware itself).
fn transcript(g: &BigUint, p: &BigUint, nonce: &[u8; 32], dh_public: &BigUint) -> Vec<u8> {
    let mut out = Vec::new();
    for part in [
        g.to_be_bytes(),
        p.to_be_bytes(),
        nonce.to_vec(),
        dh_public.to_be_bytes(),
    ] {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(&part);
    }
    out
}

/// Function-side attestation state (holds the DH secret between steps).
pub struct FunctionAttestation {
    keypair: DhKeyPair,
    /// The quote to send to the verifier.
    pub quote: AttestationQuote,
}

impl FunctionAttestation {
    /// Steps 2–3: respond to a verifier hello.
    pub fn respond<R: Rng + ?Sized>(
        rng: &mut R,
        nic: &mut SmartNic,
        nf: NfId,
        params: &DhParams,
        nonce: [u8; 32],
    ) -> Result<FunctionAttestation, SnicError> {
        let keypair = DhKeyPair::generate(rng, params);
        let context = transcript(&params.g, &params.p, &nonce, &keypair.public);
        let stmt = nic.nf_attest(nf, &context)?;
        Ok(FunctionAttestation {
            quote: AttestationQuote {
                g: params.g.clone(),
                p: params.p.clone(),
                nonce,
                dh_public: keypair.public.clone(),
                measurement: stmt.measurement,
                verdict: stmt.verdict,
                analysis_digest: stmt.analysis_digest,
                signature: stmt.signature,
                ak_endorsement: stmt.ak_endorsement,
                ek_certificate: stmt.ek_certificate,
            },
            keypair,
        })
    }

    /// Step 5 (function side): derive the session key from the verifier's
    /// `g^y mod p`.
    pub fn session_key(&self, verifier_public: &BigUint) -> [u8; 32] {
        self.keypair.session_key(verifier_public, &self.quote.nonce)
    }
}

/// Step 4: verify a quote.
///
/// Checks (a) the signature chain up to the vendor, (b) that the signed
/// transcript matches the quote's parameters and nonce, (c) that the
/// measurement equals `expected_measurement`, and (d) that the device's
/// static verifier vouched for the manifest set (`verdict` is true —
/// a signed-but-failing verdict is an honest device reporting that its
/// isolation invariants no longer hold, which the verifier must reject).
pub fn verify_quote(
    vendor_public: &RsaPublicKey,
    expected_measurement: &[u8; 32],
    expected_nonce: &[u8; 32],
    quote: &AttestationQuote,
) -> bool {
    if &quote.measurement != expected_measurement || &quote.nonce != expected_nonce {
        return false;
    }
    if !quote.verdict {
        return false;
    }
    let context = transcript(&quote.g, &quote.p, &quote.nonce, &quote.dh_public);
    let mut statement = Vec::with_capacity(65 + context.len());
    statement.extend_from_slice(&quote.measurement);
    statement.push(u8::from(quote.verdict));
    statement.extend_from_slice(&quote.analysis_digest);
    statement.extend_from_slice(&context);
    snic_crypto::keys::verify_chain(
        vendor_public,
        &quote.ek_certificate,
        &quote.ak_endorsement,
        &statement,
        &quote.signature,
    )
}

/// Verifier-side state.
pub struct Verifier {
    /// The nonce sent in the hello.
    pub nonce: [u8; 32],
    keypair: Option<DhKeyPair>,
}

impl Verifier {
    /// Step 1: create a hello with a fresh nonce.
    pub fn hello<R: Rng + ?Sized>(rng: &mut R) -> Verifier {
        let mut nonce = [0u8; 32];
        rng.fill(&mut nonce);
        Verifier {
            nonce,
            keypair: None,
        }
    }

    /// Step 4: verify the quote and produce `g^y mod p`.
    pub fn accept<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        vendor_public: &RsaPublicKey,
        expected_measurement: &[u8; 32],
        quote: &AttestationQuote,
    ) -> Result<BigUint, SnicError> {
        if !verify_quote(vendor_public, expected_measurement, &self.nonce, quote) {
            return Err(SnicError::InvalidConfig(
                "attestation quote rejected".into(),
            ));
        }
        let params = DhParams {
            g: quote.g.clone(),
            p: quote.p.clone(),
        };
        let kp = DhKeyPair::generate(rng, &params);
        let public = kp.public.clone();
        self.keypair = Some(kp);
        Ok(public)
    }

    /// Step 5 (verifier side): derive the session key.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Verifier::accept`] succeeded.
    pub fn session_key(&self, function_public: &BigUint) -> [u8; 32] {
        self.keypair
            .as_ref()
            .expect("accept() must succeed before deriving a key")
            .session_key(function_public, &self.nonce)
    }
}

/// Convenience: hash an expected initial state the same way `nf_launch`
/// does not — verifiers normally learn the expected measurement from the
/// launch receipt; this helper is for tests that reconstruct it.
pub fn measurement_of_blob(blob: &[u8]) -> [u8; 32] {
    sha256(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NicConfig, NicMode};
    use crate::instr::{LaunchRequest, NfImage};
    use rand::SeedableRng;
    use snic_crypto::keys::VendorCa;
    use snic_types::{ByteSize, CoreId};

    fn setup() -> (VendorCa, SmartNic, NfId, [u8; 32]) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vendor = VendorCa::new(&mut rng);
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &vendor);
        let receipt = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"tls middlebox v1".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        (vendor, nic, receipt.nf_id, receipt.measurement)
    }

    #[test]
    fn full_protocol_agrees_on_key() {
        let (vendor, mut nic, nf, measurement) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let params = DhParams::tiny_test_group();

        let mut verifier = Verifier::hello(&mut rng);
        let f =
            FunctionAttestation::respond(&mut rng, &mut nic, nf, &params, verifier.nonce).unwrap();
        let verifier_pub = verifier
            .accept(&mut rng, vendor.public(), &measurement, &f.quote)
            .unwrap();
        let k_f = f.session_key(&verifier_pub);
        let k_v = verifier.session_key(&f.quote.dh_public);
        assert_eq!(k_f, k_v);
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (vendor, mut nic, nf, _) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let params = DhParams::tiny_test_group();
        let mut verifier = Verifier::hello(&mut rng);
        let f =
            FunctionAttestation::respond(&mut rng, &mut nic, nf, &params, verifier.nonce).unwrap();
        let wrong = [0u8; 32];
        assert!(verifier
            .accept(&mut rng, vendor.public(), &wrong, &f.quote)
            .is_err());
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (vendor, mut nic, nf, measurement) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let params = DhParams::tiny_test_group();
        let mut v1 = Verifier::hello(&mut rng);
        let f = FunctionAttestation::respond(&mut rng, &mut nic, nf, &params, v1.nonce).unwrap();
        // A different verifier session must not accept the old quote.
        let mut v2 = Verifier::hello(&mut rng);
        assert_ne!(v1.nonce, v2.nonce);
        assert!(v2
            .accept(&mut rng, vendor.public(), &measurement, &f.quote)
            .is_err());
        // The original session still accepts.
        assert!(v1
            .accept(&mut rng, vendor.public(), &measurement, &f.quote)
            .is_ok());
    }

    #[test]
    fn tampered_dh_public_rejected() {
        let (vendor, mut nic, nf, measurement) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let params = DhParams::tiny_test_group();
        let mut verifier = Verifier::hello(&mut rng);
        let mut f =
            FunctionAttestation::respond(&mut rng, &mut nic, nf, &params, verifier.nonce).unwrap();
        // A MitM swapping the DH public breaks the signature.
        f.quote.dh_public = f.quote.dh_public.add(&BigUint::one());
        assert!(verifier
            .accept(&mut rng, vendor.public(), &measurement, &f.quote)
            .is_err());
    }

    #[test]
    fn cleared_verdict_rejected() {
        let (vendor, mut nic, nf, measurement) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let params = DhParams::tiny_test_group();
        let mut verifier = Verifier::hello(&mut rng);
        let mut f =
            FunctionAttestation::respond(&mut rng, &mut nic, nf, &params, verifier.nonce).unwrap();
        assert!(
            f.quote.verdict,
            "healthy device attests with a clean verdict"
        );
        // Flipping the verdict is rejected outright — and even if the flag
        // check were skipped, the signature covers the verdict byte.
        f.quote.verdict = false;
        assert!(verifier
            .accept(&mut rng, vendor.public(), &measurement, &f.quote)
            .is_err());
    }

    #[test]
    fn rogue_nic_rejected() {
        let (vendor, _, _, _) = setup();
        // Rogue NIC with its own (uncertified) vendor.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let rogue_vendor = VendorCa::new(&mut rng);
        let mut rogue = SmartNic::new(NicConfig::small(NicMode::Snic), &rogue_vendor);
        let receipt = rogue
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"tls middlebox v1".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        let params = DhParams::tiny_test_group();
        let mut verifier = Verifier::hello(&mut rng);
        let f = FunctionAttestation::respond(
            &mut rng,
            &mut rogue,
            receipt.nf_id,
            &params,
            verifier.nonce,
        )
        .unwrap();
        // The genuine vendor's public key rejects the rogue chain.
        assert!(verifier
            .accept(&mut rng, vendor.public(), &receipt.measurement, &f.quote)
            .is_err());
    }
}
