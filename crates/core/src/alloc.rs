//! The commodity NIC's shared buffer allocator.
//!
//! §3.3: "The malicious function leveraged xkphys to scan the metadata
//! structures belonging to the buffer allocator used by all functions.
//! The metadata allowed the malicious function to discover the buffers
//! allocated to MazuNAT's packets."
//!
//! On a commodity NIC the allocator's metadata lives in ordinary DRAM at
//! a well-known base, and every function can read it. Each metadata slot
//! is written *into simulated memory*, so an attacker finds victim
//! buffers the same way the paper's attack did: by walking bytes.
//!
//! Metadata slot layout (32 bytes, little-endian):
//! `owner_nf: u64 | base: u64 | len: u64 | flags: u64` — flags bit 0 =
//! in-use, bit 1 = packet buffer (vs. function image).

use snic_mem::guard::{MemoryGuard, Principal};
use snic_types::{ByteSize, NfId, SnicError};

/// Base physical address of the allocator metadata table.
pub const META_BASE: u64 = 0x0010_0000;
/// Bytes per metadata slot.
pub const META_SLOT: u64 = 32;
/// Maximum slots.
pub const META_SLOTS: u64 = 4096;
/// Base physical address of the buffer pool.
pub const POOL_BASE: u64 = 0x0200_0000;

/// Flag bit: slot in use.
pub const FLAG_IN_USE: u64 = 1;
/// Flag bit: slot holds a packet buffer.
pub const FLAG_PACKET: u64 = 2;

/// One decoded metadata slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferMeta {
    /// Owning NF.
    pub owner: NfId,
    /// Buffer base physical address.
    pub base: u64,
    /// Buffer length.
    pub len: u64,
    /// Flag bits.
    pub flags: u64,
}

impl BufferMeta {
    /// True if the slot is live.
    pub fn in_use(&self) -> bool {
        self.flags & FLAG_IN_USE != 0
    }

    /// True if the slot holds packet data.
    pub fn is_packet(&self) -> bool {
        self.flags & FLAG_PACKET != 0
    }
}

/// The shared buffer allocator (bump allocation with slot reuse).
#[derive(Debug)]
pub struct BufferAllocator {
    next_free: u64,
    pool_end: u64,
    slots: u64,
}

impl BufferAllocator {
    /// Create an allocator over `pool` bytes starting at [`POOL_BASE`].
    pub fn new(pool: ByteSize) -> BufferAllocator {
        BufferAllocator {
            next_free: POOL_BASE,
            pool_end: POOL_BASE + pool.bytes(),
            slots: 0,
        }
    }

    /// Allocate `len` bytes for `owner`, writing the metadata slot into
    /// `guard`'s memory (as trusted hardware — the allocator itself runs
    /// in the NIC firmware). Returns `(slot_index, base_addr)`.
    pub fn alloc(
        &mut self,
        guard: &mut MemoryGuard,
        owner: NfId,
        len: u64,
        packet: bool,
    ) -> Result<(u64, u64), SnicError> {
        let aligned = len.div_ceil(64) * 64;
        if self.next_free + aligned > self.pool_end || self.slots >= META_SLOTS {
            return Err(SnicError::InvalidConfig("buffer pool exhausted".into()));
        }
        let base = self.next_free;
        self.next_free += aligned;
        let slot = self.slots;
        self.slots += 1;
        let flags = FLAG_IN_USE | if packet { FLAG_PACKET } else { 0 };
        let slot_addr = META_BASE + slot * META_SLOT;
        let hw = Principal::TrustedHardware;
        guard.write_phys_u64(hw, slot_addr, owner.0)?;
        guard.write_phys_u64(hw, slot_addr + 8, base)?;
        guard.write_phys_u64(hw, slot_addr + 16, len)?;
        guard.write_phys_u64(hw, slot_addr + 24, flags)?;
        Ok((slot, base))
    }

    /// Mark a slot free (metadata stays readable — commodity NICs do not
    /// scrub).
    pub fn free(&self, guard: &mut MemoryGuard, slot: u64) -> Result<(), SnicError> {
        let slot_addr = META_BASE + slot * META_SLOT;
        let flags = guard.read_phys_u64(Principal::TrustedHardware, slot_addr + 24)?;
        guard.write_phys_u64(
            Principal::TrustedHardware,
            slot_addr + 24,
            flags & !FLAG_IN_USE,
        )
    }

    /// Decode slot `index` *as an arbitrary principal* — this is the
    /// attack path: on a commodity NIC any NF may call this with its own
    /// principal and succeed.
    pub fn read_slot(
        guard: &MemoryGuard,
        who: Principal,
        index: u64,
    ) -> Result<BufferMeta, SnicError> {
        let slot_addr = META_BASE + index * META_SLOT;
        Ok(BufferMeta {
            owner: NfId(guard.read_phys_u64(who, slot_addr)?),
            base: guard.read_phys_u64(who, slot_addr + 8)?,
            len: guard.read_phys_u64(who, slot_addr + 16)?,
            flags: guard.read_phys_u64(who, slot_addr + 24)?,
        })
    }

    /// Slots written so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::CoreId;

    fn guard() -> MemoryGuard {
        MemoryGuard::new(ByteSize::mib(128), false)
    }

    #[test]
    fn alloc_writes_discoverable_metadata() {
        let mut g = guard();
        let mut a = BufferAllocator::new(ByteSize::mib(64));
        let (slot, base) = a.alloc(&mut g, NfId(7), 1500, true).unwrap();
        // Another NF reads the slot through flat physical addressing.
        let attacker = Principal::Nf(NfId(9), CoreId(1));
        let meta = BufferAllocator::read_slot(&g, attacker, slot).unwrap();
        assert_eq!(meta.owner, NfId(7));
        assert_eq!(meta.base, base);
        assert_eq!(meta.len, 1500);
        assert!(meta.in_use());
        assert!(meta.is_packet());
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut g = guard();
        let mut a = BufferAllocator::new(ByteSize::mib(64));
        let (_, b1) = a.alloc(&mut g, NfId(1), 100, false).unwrap();
        let (_, b2) = a.alloc(&mut g, NfId(2), 100, false).unwrap();
        assert!(b2 >= b1 + 100);
        assert_eq!(a.slots(), 2);
    }

    #[test]
    fn pool_exhaustion_fails() {
        let mut g = guard();
        let mut a = BufferAllocator::new(ByteSize::kib(1));
        assert!(a.alloc(&mut g, NfId(1), 2048, false).is_err());
    }

    #[test]
    fn free_clears_in_use_but_not_contents() {
        let mut g = guard();
        let mut a = BufferAllocator::new(ByteSize::mib(1));
        let (slot, base) = a.alloc(&mut g, NfId(1), 64, true).unwrap();
        g.write_phys(Principal::TrustedHardware, base, b"stale secret")
            .unwrap();
        a.free(&mut g, slot).unwrap();
        let meta = BufferAllocator::read_slot(&g, Principal::Nf(NfId(2), CoreId(0)), slot).unwrap();
        assert!(!meta.in_use());
        // The data is still there — commodity NICs do not scrub (§4.6
        // motivates nf_teardown's zeroization).
        let mut buf = [0u8; 12];
        g.read_phys(Principal::Nf(NfId(2), CoreId(0)), base, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"stale secret");
    }
}
