//! Cross-VPP function chaining (the §4.8 extension).
//!
//! "An extended version of S-NIC could have NFs exchange data via
//! localhost networking, such that S-NIC hardware would transfer messages
//! directly between the side-channel-isolated VPPs owned by different
//! NFs. ... this approach would restrict the information leakage between
//! two communicating VPPs to just the information that is revealed via
//! overt traffic timings and packet content."
//!
//! [`ChainLink`] is that management hardware: a unidirectional, fixed-
//! capacity message conduit between two NFs. It copies whole packets
//! (overt content), imposes a constant per-message transfer latency
//! (no data-dependent timing), and enforces its capacity against the
//! *sender* so a slow receiver cannot modulate sender-visible state
//! beyond the overt backpressure bit.

use std::collections::VecDeque;

use snic_types::{NfId, Packet, Picos, SnicError};

/// Constant per-message transfer latency (content-independent by
/// construction).
pub const LINK_LATENCY: Picos = Picos::micros(2);

/// A unidirectional chain link `from → to`.
#[derive(Debug)]
pub struct ChainLink {
    from: NfId,
    to: NfId,
    capacity: usize,
    queue: VecDeque<(Picos, Packet)>,
    transferred: u64,
    rejected: u64,
}

impl ChainLink {
    /// Create a link with space for `capacity` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the endpoints are the same NF.
    pub fn new(from: NfId, to: NfId, capacity: usize) -> ChainLink {
        assert!(capacity > 0, "zero-capacity chain link");
        assert_ne!(from, to, "chain link endpoints must differ");
        ChainLink {
            from,
            to,
            capacity,
            queue: VecDeque::new(),
            transferred: 0,
            rejected: 0,
        }
    }

    /// Sender side: submit a packet at time `now`.
    ///
    /// Returns the time the message becomes visible to the receiver, or
    /// an error if the link is full (overt backpressure) or the caller is
    /// not the configured sender.
    pub fn send(&mut self, who: NfId, now: Picos, pkt: Packet) -> Result<Picos, SnicError> {
        if who != self.from {
            return Err(SnicError::InvalidConfig(format!(
                "{who} is not this link's sender"
            )));
        }
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            return Err(SnicError::PortBufferExhausted);
        }
        let ready = now + LINK_LATENCY;
        self.queue.push_back((ready, pkt));
        self.transferred += 1;
        Ok(ready)
    }

    /// Receiver side: take the next message that is ready by `now`.
    pub fn recv(&mut self, who: NfId, now: Picos) -> Result<Option<Packet>, SnicError> {
        if who != self.to {
            return Err(SnicError::InvalidConfig(format!(
                "{who} is not this link's receiver"
            )));
        }
        match self.queue.front() {
            Some(&(ready, _)) if ready <= now => Ok(self.queue.pop_front().map(|(_, p)| p)),
            _ => Ok(None),
        }
    }

    /// Messages accepted so far.
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    /// Sends rejected for backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn pkt(n: u16) -> Packet {
        PacketBuilder::new(1, 2, Protocol::Udp, n, 80).build()
    }

    #[test]
    fn send_recv_with_latency() {
        let mut link = ChainLink::new(NfId(1), NfId(2), 4);
        let ready = link.send(NfId(1), Picos::ZERO, pkt(5)).unwrap();
        assert_eq!(ready, LINK_LATENCY);
        // Not visible before the transfer completes.
        assert!(link.recv(NfId(2), Picos::ZERO).unwrap().is_none());
        let got = link.recv(NfId(2), ready).unwrap().unwrap();
        assert_eq!(got.udp().unwrap().src_port, 5);
    }

    #[test]
    fn latency_is_content_independent() {
        let mut link = ChainLink::new(NfId(1), NfId(2), 8);
        let small = PacketBuilder::new(1, 2, Protocol::Udp, 1, 2).build();
        let big = PacketBuilder::new(1, 2, Protocol::Udp, 1, 2)
            .payload(vec![0xee; 4000])
            .build();
        let t1 = link.send(NfId(1), Picos(1000), small).unwrap();
        let t2 = link.send(NfId(1), Picos(1000), big).unwrap();
        assert_eq!(
            t1 - Picos(1000),
            t2 - Picos(1000),
            "no data-dependent timing"
        );
    }

    #[test]
    fn only_configured_endpoints_may_use_it() {
        let mut link = ChainLink::new(NfId(1), NfId(2), 4);
        assert!(link.send(NfId(3), Picos::ZERO, pkt(1)).is_err());
        assert!(link.recv(NfId(3), Picos::ZERO).is_err());
        // The receiver cannot inject either.
        assert!(link.send(NfId(2), Picos::ZERO, pkt(1)).is_err());
    }

    #[test]
    fn backpressure_is_overt() {
        let mut link = ChainLink::new(NfId(1), NfId(2), 2);
        link.send(NfId(1), Picos::ZERO, pkt(1)).unwrap();
        link.send(NfId(1), Picos::ZERO, pkt(2)).unwrap();
        assert_eq!(
            link.send(NfId(1), Picos::ZERO, pkt(3)).unwrap_err(),
            SnicError::PortBufferExhausted
        );
        assert_eq!(link.rejected(), 1);
        // Draining frees a slot.
        let _ = link.recv(NfId(2), LINK_LATENCY).unwrap();
        assert!(link.send(NfId(1), LINK_LATENCY, pkt(3)).is_ok());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = ChainLink::new(NfId(1), NfId(2), 8);
        for i in 0..4 {
            link.send(NfId(1), Picos::ZERO, pkt(i)).unwrap();
        }
        for i in 0..4 {
            let got = link.recv(NfId(2), Picos::millis(1)).unwrap().unwrap();
            assert_eq!(got.udp().unwrap().src_port, i);
        }
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_link_panics() {
        let _ = ChainLink::new(NfId(1), NfId(1), 2);
    }
}
