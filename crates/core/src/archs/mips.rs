//! The MIPS64 segment model behind Marvell LiquidIO's execution modes.
//!
//! §3.2: "In the MIPS64 architecture, a virtual address space is
//! partitioned into regions called segments" — `xuseg` (TLB-mapped user
//! space), `xkseg` (TLB-mapped kernel space), and `xkphys`
//! (direct-mapped physical memory). LiquidIO runs functions in SE-S mode
//! (no kernel, everything privileged, full `xkphys`) or SE-UM mode
//! (Linux processes, with `xkphys` optionally exposed to functions).
//! In SE-S — and SE-UM with `xkphys` enabled — "an NF can read and write
//! arbitrary physical addresses", which is the enabling condition for
//! the §3.3 attacks.

use snic_mem::tlb::Tlb;
use snic_types::{CoreId, IsolationError, SnicError};

/// The MIPS64 virtual-address segments the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// TLB-mapped user segment.
    Xuseg,
    /// Direct-mapped physical window.
    Xkphys,
    /// TLB-mapped kernel segment.
    Xkseg,
}

/// Base of the `xkphys` window in our simplified layout.
pub const XKPHYS_BASE: u64 = 0x8000_0000_0000_0000;
/// Base of the `xkseg` window.
pub const XKSEG_BASE: u64 = 0xc000_0000_0000_0000;
/// Exclusive top of `xuseg`.
pub const XUSEG_TOP: u64 = 0x0000_0100_0000_0000;

/// Classify a virtual address.
pub fn segment_of(va: u64) -> Option<Segment> {
    if va < XUSEG_TOP {
        Some(Segment::Xuseg)
    } else if (XKPHYS_BASE..XKPHYS_BASE + XUSEG_TOP).contains(&va) {
        Some(Segment::Xkphys)
    } else if va >= XKSEG_BASE {
        Some(Segment::Xkseg)
    } else {
        None
    }
}

/// LiquidIO execution modes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiquidIoMode {
    /// SE-S: bootloader installs functions, no kernel, everything runs
    /// privileged with full `xkphys` access.
    SeS,
    /// SE-UM: functions are Linux processes; the kernel may or may not
    /// expose `xkphys` to them.
    SeUm {
        /// Whether functions get direct physical addressing.
        xkphys_enabled: bool,
    },
}

/// A MIPS core executing a network function under some LiquidIO mode.
#[derive(Debug)]
pub struct MipsCore {
    /// Core identity (for fault reports).
    pub id: CoreId,
    mode: LiquidIoMode,
    /// TLB backing `xuseg` (configured by the bootloader or kernel).
    tlb: Tlb,
}

impl MipsCore {
    /// Create a core in `mode` with the given `xuseg` TLB.
    pub fn new(id: CoreId, mode: LiquidIoMode, tlb: Tlb) -> MipsCore {
        MipsCore { id, mode, tlb }
    }

    /// The execution mode.
    pub fn mode(&self) -> LiquidIoMode {
        self.mode
    }

    /// Translate a function-issued virtual address to physical.
    ///
    /// `xuseg` goes through the TLB; `xkphys` is direct-mapped and
    /// gated only by the mode; `xkseg` is never available to functions
    /// (in SE-S there is no kernel, in SE-UM functions are user-mode).
    pub fn translate(&self, va: u64, write: bool) -> Result<u64, SnicError> {
        match segment_of(va) {
            Some(Segment::Xuseg) => Ok(self.tlb.translate(va, write)?),
            Some(Segment::Xkphys) => {
                let allowed = match self.mode {
                    LiquidIoMode::SeS => true,
                    LiquidIoMode::SeUm { xkphys_enabled } => xkphys_enabled,
                };
                if allowed {
                    Ok(va - XKPHYS_BASE)
                } else {
                    Err(IsolationError::TlbMiss {
                        core: self.id,
                        addr: va,
                    }
                    .into())
                }
            }
            Some(Segment::Xkseg) | None => Err(IsolationError::TlbMiss {
                core: self.id,
                addr: va,
            }
            .into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_mem::pagetable::PageMapping;

    fn user_tlb() -> Tlb {
        let mut t = Tlb::new(CoreId(0), 4);
        t.install(PageMapping {
            va: 0,
            pa: 0x100_0000,
            page_size: 2 << 20,
            writable: true,
        })
        .unwrap();
        t.lock();
        t
    }

    #[test]
    fn segment_classification() {
        assert_eq!(segment_of(0x1000), Some(Segment::Xuseg));
        assert_eq!(segment_of(XKPHYS_BASE + 5), Some(Segment::Xkphys));
        assert_eq!(segment_of(XKSEG_BASE + 5), Some(Segment::Xkseg));
        assert_eq!(segment_of(0x4000_0000_0000_0000), None);
    }

    #[test]
    fn ses_mode_reaches_arbitrary_physical_memory() {
        // The §3.3 enabling condition: any function in SE-S mode can name
        // any physical address through xkphys.
        let core = MipsCore::new(CoreId(0), LiquidIoMode::SeS, user_tlb());
        assert_eq!(
            core.translate(XKPHYS_BASE + 0x0dea_d000, true).unwrap(),
            0x0dea_d000
        );
    }

    #[test]
    fn seum_with_xkphys_is_equally_exposed() {
        let core = MipsCore::new(
            CoreId(0),
            LiquidIoMode::SeUm {
                xkphys_enabled: true,
            },
            user_tlb(),
        );
        assert!(core.translate(XKPHYS_BASE + 0x0123_4000, false).is_ok());
    }

    #[test]
    fn seum_without_xkphys_blocks_physical_addressing() {
        let core = MipsCore::new(
            CoreId(0),
            LiquidIoMode::SeUm {
                xkphys_enabled: false,
            },
            user_tlb(),
        );
        assert!(core.translate(XKPHYS_BASE + 0x0123_4000, false).is_err());
        // But the function still cannot protect itself from the OS —
        // user-space translation is whatever the kernel installed.
        assert_eq!(core.translate(0x10, false).unwrap(), 0x100_0010);
    }

    #[test]
    fn xuseg_respects_tlb_permissions() {
        let core = MipsCore::new(CoreId(0), LiquidIoMode::SeS, user_tlb());
        assert!(core.translate(0x10, true).is_ok());
        assert!(
            core.translate(4 << 20, false).is_err(),
            "unmapped xuseg faults"
        );
    }

    #[test]
    fn xkseg_never_available_to_functions() {
        for mode in [
            LiquidIoMode::SeS,
            LiquidIoMode::SeUm {
                xkphys_enabled: true,
            },
            LiquidIoMode::SeUm {
                xkphys_enabled: false,
            },
        ] {
            let core = MipsCore::new(CoreId(0), mode, user_tlb());
            assert!(
                core.translate(XKSEG_BASE + 0x100, false).is_err(),
                "{mode:?}"
            );
        }
    }
}
