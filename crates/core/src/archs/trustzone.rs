//! The ARM TrustZone model behind Mellanox BlueField (§3.2).
//!
//! TrustZone splits execution into a "normal world" and a "secure
//! world": normal code cannot touch secure memory, secure code can touch
//! everything, and the worlds switch via the `smc` instruction.
//! BlueField uses this to privilege-separate a network function — the
//! untrusted normal-world driver pulls packets, the trusted part runs as
//! a trustlet in the secure world.
//!
//! The model exists to demonstrate the paper's two criticisms
//! executably: "BlueField does not isolate a network function from the
//! secure-world management OS" (the secure OS can read every trustlet's
//! state), and TrustZone offers no microarchitectural isolation (not
//! modeled here; see `snic-uarch` for the cache/bus side).

use std::collections::HashMap;

use snic_mem::phys::PhysMem;
use snic_types::{ByteSize, IsolationError, NfId, SnicError};

/// Which world a processor is executing in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    /// The untrusted, Linux-class world.
    Normal,
    /// The trusted world (OP-TEE-class kernel + trustlets).
    Secure,
}

/// A TrustZone-partitioned machine.
#[derive(Debug)]
pub struct TrustZoneMachine {
    mem: PhysMem,
    /// Sorted, disjoint `(base, len)` ranges marked secure.
    secure_ranges: Vec<(u64, u64)>,
    world: World,
    /// Trustlet registry: owner → its state region (inside secure RAM).
    trustlets: HashMap<NfId, (u64, u64)>,
    smc_count: u64,
}

impl TrustZoneMachine {
    /// A machine with `size` bytes of RAM, booted into the secure world
    /// (as real TrustZone firmware does).
    pub fn new(size: ByteSize) -> TrustZoneMachine {
        TrustZoneMachine {
            mem: PhysMem::new(size),
            secure_ranges: Vec::new(),
            world: World::Secure,
            trustlets: HashMap::new(),
            smc_count: 0,
        }
    }

    /// Current world.
    pub fn world(&self) -> World {
        self.world
    }

    /// `smc`: switch worlds (both directions use the same instruction).
    pub fn smc(&mut self) {
        self.smc_count += 1;
        self.world = match self.world {
            World::Normal => World::Secure,
            World::Secure => World::Normal,
        };
    }

    /// World switches so far.
    pub fn smc_count(&self) -> u64 {
        self.smc_count
    }

    /// Mark a range secure. Only secure code may change the split ("the
    /// memory split is managed by secure code, and can change
    /// dynamically").
    pub fn mark_secure(&mut self, base: u64, len: u64) -> Result<(), SnicError> {
        if self.world != World::Secure {
            return Err(SnicError::InvalidConfig(
                "normal world cannot change the split".into(),
            ));
        }
        self.secure_ranges.push((base, len));
        self.secure_ranges.sort_unstable();
        Ok(())
    }

    fn is_secure(&self, addr: u64, len: u64) -> bool {
        self.secure_ranges
            .iter()
            .any(|&(b, l)| addr < b + l && b < addr.saturating_add(len))
    }

    /// Load a trustlet: its state lives in a secure range.
    pub fn load_trustlet(&mut self, owner: NfId, base: u64, state: &[u8]) -> Result<(), SnicError> {
        self.mark_secure(base, state.len() as u64)?;
        self.mem.write(base, state);
        self.trustlets.insert(owner, (base, state.len() as u64));
        Ok(())
    }

    /// Memory read in the current world.
    pub fn read(&self, addr: u64, out: &mut [u8]) -> Result<(), SnicError> {
        if self.world == World::Normal && self.is_secure(addr, out.len() as u64) {
            return Err(IsolationError::Denylisted {
                addr,
                owner: NfId(0),
            }
            .into());
        }
        if !self.mem.in_bounds(addr, out.len()) {
            return Err(SnicError::InvalidConfig("oob".into()));
        }
        self.mem.read(addr, out);
        Ok(())
    }

    /// Memory write in the current world.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), SnicError> {
        if self.world == World::Normal && self.is_secure(addr, data.len() as u64) {
            return Err(IsolationError::Denylisted {
                addr,
                owner: NfId(0),
            }
            .into());
        }
        if !self.mem.in_bounds(addr, data.len()) {
            return Err(SnicError::InvalidConfig("oob".into()));
        }
        self.mem.write(addr, data);
        Ok(())
    }

    /// The state region of a trustlet (what the secure OS can see).
    pub fn trustlet_region(&self, owner: NfId) -> Option<(u64, u64)> {
        self.trustlets.get(&owner).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with_trustlet() -> TrustZoneMachine {
        let mut m = TrustZoneMachine::new(ByteSize::mib(16));
        m.load_trustlet(NfId(1), 0x10_000, b"tls-keys:SECRET0xA1")
            .unwrap();
        m
    }

    #[test]
    fn normal_world_cannot_read_secure_memory() {
        let mut m = machine_with_trustlet();
        m.smc(); // Secure → normal.
        assert_eq!(m.world(), World::Normal);
        let mut buf = [0u8; 8];
        let err = m.read(0x10_000, &mut buf).unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
        assert!(m.write(0x10_000, b"overwrite").is_err());
    }

    #[test]
    fn normal_world_cannot_move_the_split() {
        let mut m = machine_with_trustlet();
        m.smc();
        assert!(m.mark_secure(0x20_000, 0x1000).is_err());
    }

    #[test]
    fn worlds_communicate_via_shared_normal_memory() {
        let mut m = machine_with_trustlet();
        m.smc(); // Normal.
        m.write(0x80_000, b"packet from driver").unwrap();
        m.smc(); // Secure.
        let mut buf = [0u8; 18];
        m.read(0x80_000, &mut buf).unwrap();
        assert_eq!(&buf, b"packet from driver");
        assert_eq!(m.smc_count(), 2);
    }

    #[test]
    fn secure_os_reads_any_trustlet_state() {
        // The paper's criticism: "BlueField does not isolate a network
        // function from the secure-world management OS". The secure OS
        // (running in the secure world) reads the trustlet's keys.
        let m = machine_with_trustlet();
        assert_eq!(m.world(), World::Secure);
        let (base, len) = m.trustlet_region(NfId(1)).unwrap();
        let mut buf = vec![0u8; len as usize];
        m.read(base, &mut buf)
            .expect("secure world sees everything");
        assert_eq!(&buf, b"tls-keys:SECRET0xA1");
    }

    #[test]
    fn straddling_access_from_normal_world_blocked() {
        let mut m = machine_with_trustlet();
        m.smc();
        let mut buf = [0u8; 64];
        // Starts before the secure range but overlaps it.
        assert!(m.read(0x10_000 - 16, &mut buf).is_err());
    }
}
