//! Models of the commodity SmartNIC architectures surveyed in §3.2.
//!
//! These exist to make the paper's background claims *executable*: the
//! MIPS segment model shows exactly why LiquidIO's SE-S and SE-UM modes
//! leave every function able to touch all physical memory, and the
//! TrustZone model shows why even BlueField — "the best isolation of any
//! commodity smart NIC" — cannot protect a function from the
//! secure-world management OS.

pub mod mips;
pub mod trustzone;
