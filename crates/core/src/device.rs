//! The SoC smart-NIC device model.
//!
//! One [`SmartNic`] struct implements both personalities (§3 commodity
//! vs. §4 S-NIC); every difference is driven by [`NicMode`] so the
//! attacks crate can run identical attack code against both and assert
//! opposite outcomes.

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::SeedableRng;
use snic_crypto::keys::{AttestationKey, EndorsementKey, VendorCa};
use snic_crypto::sha256::Sha256;
use snic_mem::guard::{AccessRecord, MemoryGuard, Principal};
use snic_mem::ownership::PageOwnership;
use snic_mem::pagetable::PageMapping;
use snic_mem::phys::PhysMem;
use snic_mem::planner::plan_region;
use snic_mem::tlb::Tlb;
use snic_pktio::dma::{DmaBank, DmaDirection, DmaWindow};
use snic_pktio::port::PortBuffers;
use snic_pktio::rules::RuleTable;
use snic_pktio::vpp::VppBufferSpec;
use snic_types::{AccelClusterId, AccelKind, ByteSize, CoreId, NfId, Packet, Picos, SnicError};
use snic_verify::{
    verify_denylist_coverage, verify_manifests, verify_tlb_state, BusSpec, DeviceSpec,
    EnforcementMode, VerificationReport, VnicManifest,
};

use crate::alloc::{BufferAllocator, META_BASE, META_SLOT, POOL_BASE};
use crate::config::{NicConfig, NicMode};
use crate::instr::{
    scrub_time, sha_digest_time, LaunchLatency, LaunchReceipt, LaunchRequest, TeardownLatency,
    TeardownReceipt, ALLOWLISTING, DENYLISTING, TLB_SETUP,
};
use snic_accel::cluster::ClusterPool;

/// Physical base of the region pool used for S-NIC private regions.
const REGION_BASE: u64 = 0x0800_0000;

/// Epoch length (bus cycles) of the S-NIC temporal arbiter — the §4.5
/// convention used across the attacks and uarch crates.
const BUS_EPOCH: u64 = 96;

/// Bookkeeping for one launched function.
#[derive(Debug)]
pub struct NfRecord {
    /// Bound cores.
    pub cores: Vec<CoreId>,
    /// Private physical region `(base, len)`.
    pub region: (u64, u64),
    /// Where the initial image landed (inside the region under S-NIC; in
    /// the shared pool on a commodity NIC).
    pub image_base: u64,
    /// Launch measurement (§4.6 cumulative hash).
    pub measurement: [u8; 32],
    /// Bound accelerator clusters.
    pub accel: Vec<AccelClusterId>,
    /// Requested memory.
    pub memory: ByteSize,
    /// Host-sanctioned DMA window, if any.
    pub host_window: Option<(u64, u64)>,
    /// The function's VPP buffer reservation.
    pub vpp: VppBufferSpec,
    /// TLB entries installed per core.
    pub tlb_entries: u64,
    /// RX descriptor queue: `(base, len)` of packets in DRAM.
    rx_queue: VecDeque<(u64, u32)>,
    rx_bytes: u64,
    /// Buffer-space caps from the VPP spec.
    pb_cap: u64,
    pdb_slots: u64,
    /// Next packet-slot offset within the region's packet ring (S-NIC).
    ring_next: u64,
    /// Statistics.
    pub rx_delivered: u64,
    /// Packets dropped at the VPP.
    pub rx_dropped: u64,
    /// Packets sent.
    pub tx_sent: u64,
}

/// The device.
pub struct SmartNic {
    config: NicConfig,
    guard: MemoryGuard,
    ownership: PageOwnership,
    core_owner: Vec<Option<NfId>>,
    core_tlbs: HashMap<CoreId, Tlb>,
    pools: Vec<ClusterPool>,
    rx_port: PortBuffers,
    tx_port: PortBuffers,
    rules: RuleTable,
    launched: BTreeMap<NfId, NfRecord>,
    allocator: BufferAllocator,
    next_region: u64,
    /// Regions returned by `nf_teardown`, available for reuse: sorted,
    /// coalesced `(base, len)` pairs.
    free_regions: Vec<(u64, u64)>,
    next_nf: u64,
    bus_ops: HashMap<NfId, u64>,
    crashed: bool,
    now: Picos,
    ek: EndorsementKey,
    ak: AttestationKey,
    tx_wire: VecDeque<Packet>,
    /// Host RAM model, target of the multi-bank DMA controller (§4.2).
    host_mem: PhysMem,
    dma_banks: HashMap<CoreId, DmaBank>,
}

impl SmartNic {
    /// Build a device; the vendor CA certifies its endorsement key at
    /// "manufacture" time (Appendix A).
    pub fn new(config: NicConfig, vendor: &VendorCa) -> SmartNic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let ek = EndorsementKey::manufacture(&mut rng, vendor);
        let ak = AttestationKey::generate(&mut rng, &ek);
        let enforcing = config.mode == NicMode::Snic;
        let pools = AccelKind::ALL
            .iter()
            .map(|&k| ClusterPool::new(k, config.accel_clusters, config.threads_per_cluster))
            .collect();
        SmartNic {
            guard: MemoryGuard::new(config.dram, enforcing),
            ownership: PageOwnership::new(),
            core_owner: vec![None; usize::from(config.cores)],
            core_tlbs: HashMap::new(),
            pools,
            rx_port: PortBuffers::new(config.rx_buffer),
            tx_port: PortBuffers::new(config.tx_buffer),
            rules: RuleTable::new(),
            launched: BTreeMap::new(),
            allocator: BufferAllocator::new(ByteSize::mib(64).min(config.dram)),
            next_region: REGION_BASE,
            free_regions: Vec::new(),
            next_nf: 1,
            bus_ops: HashMap::new(),
            crashed: false,
            now: Picos::ZERO,
            ek,
            ak,
            config,
            tx_wire: VecDeque::new(),
            host_mem: PhysMem::new(ByteSize::gib(1)),
            dma_banks: HashMap::new(),
        }
    }

    /// The device mode.
    pub fn mode(&self) -> NicMode {
        self.config.mode
    }

    /// Device configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Advance simulated time.
    pub fn advance(&mut self, dt: Picos) {
        self.now += dt;
    }

    /// True after a bus-DoS hard crash (§3.3's Agilio attack).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Power-cycle the NIC: clears the crash flag and all NF state
    /// (everything is lost, as the paper's attack required).
    pub fn power_cycle(&mut self) {
        let ids: Vec<NfId> = self.launched.keys().copied().collect();
        self.crashed = false;
        for id in ids {
            let _ = self.nf_teardown(id);
        }
        self.bus_ops.clear();
    }

    /// The EK certificate chain root material, for verifiers.
    pub fn ek_certificate(&self) -> &snic_crypto::keys::Certificate {
        &self.ek.certificate
    }

    /// The per-boot AK endorsement.
    pub fn ak_endorsement(&self) -> &snic_crypto::keys::Certificate {
        &self.ak.endorsement
    }

    /// Read-only view of the mediated memory (for attack code that scans
    /// structures via a principal's access rights).
    pub fn guard_ref(&self) -> &MemoryGuard {
        &self.guard
    }

    // ------------------------------------------------------------------
    // Static verification (snic-verify)
    // ------------------------------------------------------------------

    /// The device inventory as the static verifier sees it.
    pub fn device_spec(&self) -> DeviceSpec {
        let (mode, bus) = match self.config.mode {
            NicMode::Commodity => (EnforcementMode::Commodity, BusSpec::Fcfs),
            NicMode::Snic => (
                EnforcementMode::Snic,
                BusSpec::Temporal { epoch: BUS_EPOCH },
            ),
        };
        DeviceSpec {
            mode,
            dram: self.config.dram.bytes(),
            nf_region_base: REGION_BASE,
            nic_os: vec![
                (META_BASE, crate::alloc::META_SLOTS * META_SLOT),
                (POOL_BASE, ByteSize::mib(64).min(self.config.dram).bytes()),
            ],
            cores: self.config.cores,
            core_tlb_entries: self.config.core_tlb_entries,
            accel: AccelKind::ALL
                .iter()
                .map(|&k| (k, self.config.accel_clusters))
                .collect(),
            rx_capacity: self.config.rx_buffer.bytes(),
            tx_capacity: self.config.tx_buffer.bytes(),
            bus,
        }
    }

    /// The manifests of every live function.
    pub fn live_manifests(&self) -> Vec<VnicManifest> {
        self.launched
            .iter()
            .map(|(&id, r)| manifest_of(id, r))
            .collect()
    }

    /// Pass 1 over a candidate launch: the live manifests plus the one
    /// the request would create.
    fn verify_launch(
        &self,
        nf: NfId,
        req: &LaunchRequest,
        base: u64,
        region_len: u64,
        tlb_entries: usize,
    ) -> VerificationReport {
        let mut manifests = self.live_manifests();
        manifests.push(VnicManifest {
            nf,
            cores: req.cores.clone(),
            region: (base, region_len),
            host_window: req.host_window,
            tlb_entries,
            accel: req.accel.clone(),
            vpp: req.vpp,
            bus_slice: None,
        });
        verify_manifests(&self.device_spec(), &manifests)
    }

    /// Re-verify the *live* device: Pass 1 over the current manifests,
    /// plus the §4.2 state checks (denylist covers the ownership map,
    /// per-core TLBs locked and confined). `nf_attest` embeds this
    /// report's verdict in its signed statement.
    pub fn verify_state(&self) -> VerificationReport {
        let spec = self.device_spec();
        let manifests = self.live_manifests();
        let mut report = verify_manifests(&spec, &manifests);
        report.violations.extend(verify_denylist_coverage(
            spec.mode,
            &self.ownership.owned_ranges(),
            self.guard.denylist(),
        ));
        for m in &manifests {
            let tlbs: Vec<&Tlb> = m
                .cores
                .iter()
                .filter_map(|c| self.core_tlbs.get(c))
                .collect();
            report
                .violations
                .extend(verify_tlb_state(spec.mode, m, &tlbs));
        }
        report
    }

    /// Begin recording every mediated physical access (Pass 2 input).
    pub fn start_audit(&mut self) {
        self.guard.start_audit();
    }

    /// Drain the recorded access trace; recording stays enabled.
    pub fn take_audit(&mut self) -> Vec<AccessRecord> {
        self.guard.take_audit()
    }

    /// The current security domains as `(base, len, owner)` ranges: every
    /// NF-owned region plus every live shared-pool buffer (commodity
    /// packet and image buffers are owned too, even though they sit
    /// outside the ownership bitmap). This is the domain map the trace
    /// linter checks memory references against.
    pub fn security_domains(&self) -> Vec<(u64, u64, NfId)> {
        let mut out = self.ownership.owned_ranges();
        let mem = self.guard.raw_mem_ref();
        let word = |addr: u64| {
            let mut w = [0u8; 8];
            mem.read(addr, &mut w);
            u64::from_le_bytes(w)
        };
        for slot in 0..self.allocator.slots() {
            let a = META_BASE + slot * META_SLOT;
            let (owner, base, len, flags) = (word(a), word(a + 8), word(a + 16), word(a + 24));
            if flags & crate::alloc::FLAG_IN_USE != 0 && len > 0 {
                out.push((base, len, NfId(owner)));
            }
        }
        out
    }

    fn fail_if_crashed(&self) -> Result<(), SnicError> {
        if self.crashed {
            Err(SnicError::NicCrashed)
        } else {
            Ok(())
        }
    }

    /// The launch measurement of a live NF.
    pub fn measurement_of(&self, nf: NfId) -> Result<[u8; 32], SnicError> {
        Ok(self
            .launched
            .get(&nf)
            .ok_or(SnicError::NoSuchNf(nf))?
            .measurement)
    }

    /// Record of a live NF.
    pub fn record_of(&self, nf: NfId) -> Result<&NfRecord, SnicError> {
        self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))
    }

    /// Live NF count.
    pub fn live_nfs(&self) -> usize {
        self.launched.len()
    }

    // ------------------------------------------------------------------
    // nf_launch (§4.1–§4.5)
    // ------------------------------------------------------------------

    /// The `nf_launch` trusted instruction.
    pub fn nf_launch(&mut self, mut req: LaunchRequest) -> Result<LaunchReceipt, SnicError> {
        self.fail_if_crashed()?;
        if req.cores.is_empty() {
            return Err(SnicError::InvalidConfig("nf_launch with zero cores".into()));
        }
        if req.memory.bytes() == 0 {
            return Err(SnicError::InvalidConfig(
                "nf_launch with zero memory".into(),
            ));
        }
        // Check the core bitmap (§4.1): all requested cores must exist
        // and be unassigned.
        for &c in &req.cores {
            let idx = usize::from(c.0);
            match self.core_owner.get(idx) {
                None => {
                    return Err(SnicError::InvalidConfig(format!("no such core {c}")));
                }
                Some(Some(_)) => return Err(SnicError::CoreBusy(c)),
                Some(None) => {}
            }
        }
        // Plan the mapping and check TLB capacity.
        let policy = req
            .page_policy
            .clone()
            .unwrap_or(self.config.page_policy.clone());
        let plan = plan_region(req.memory, &policy);
        if plan.entries() as usize > self.config.core_tlb_entries {
            return Err(SnicError::InvalidConfig(format!(
                "mapping needs {} TLB entries; core has {}",
                plan.entries(),
                self.config.core_tlb_entries
            )));
        }
        // Reserve the physical region: the caller's placement hint if
        // given, else first-fit from freed regions, falling back to the
        // bump pointer.
        let region_len = plan.allocated().bytes();
        let base = match req.region_base {
            Some(hint) => hint,
            None => match self
                .free_regions
                .iter()
                .position(|&(_, len)| len >= region_len)
            {
                Some(idx) => {
                    let (b, len) = self.free_regions.remove(idx);
                    if len > region_len {
                        self.free_regions.push((b + region_len, len - region_len));
                        self.free_regions.sort_unstable();
                    }
                    b
                }
                None => {
                    let b = self.next_region.div_ceil(4096) * 4096;
                    if b + region_len > self.config.dram.bytes() {
                        return Err(SnicError::InvalidConfig("DRAM exhausted".into()));
                    }
                    self.next_region = b + region_len;
                    b
                }
            },
        };
        if base.saturating_add(region_len) > self.config.dram.bytes() {
            return Err(SnicError::InvalidConfig("DRAM exhausted".into()));
        }
        if req.image.len() as u64 > region_len {
            return Err(SnicError::InvalidConfig("image larger than region".into()));
        }

        // Static verification (Pass 1 of `snic-verify`): prove the
        // augmented manifest set is still an isolation-respecting
        // partition of the device *before* any hardware state mutates.
        // The report, not just a boolean, travels in the error so the
        // operator sees every broken invariant with its paper citation.
        let nf = NfId(self.next_nf);
        let report = self.verify_launch(nf, &req, base, region_len, plan.entries() as usize);
        if report.concerning(nf).next().is_some() {
            if req.region_base.is_none() {
                // Return the speculatively reserved region.
                self.free_region(base, region_len);
            }
            return Err(SnicError::Verification(report.to_string()));
        }

        // Page-table walk: claim ownership (fails atomically on overlap).
        self.ownership.claim(base, region_len, nf)?;
        // Accelerator clusters (§4.3) — atomic per pool; roll back on
        // failure.
        let mut accel = Vec::new();
        for &(kind, count) in &req.accel {
            let Some(pool) = self.pools.iter_mut().find(|p| p.kind() == kind) else {
                self.rollback(nf);
                return Err(SnicError::InvalidConfig(format!(
                    "device has no {kind:?} accelerator pool"
                )));
            };
            match pool.allocate(nf, count) {
                Ok(mut ids) => accel.append(&mut ids),
                Err(e) => {
                    self.rollback(nf);
                    return Err(e);
                }
            }
        }
        // VPP buffer reservations (§4.4).
        if let Err(e) = self.rx_port.reserve(nf, req.vpp.pb) {
            self.rollback(nf);
            return Err(e);
        }
        if let Err(e) = self.tx_port.reserve(nf, req.vpp.odb) {
            self.rollback(nf);
            return Err(e);
        }
        // Build the locked per-core TLBs before committing anything, so a
        // (planner-bug) capacity overflow still rolls back cleanly.
        let mut new_tlbs: Vec<(CoreId, Tlb)> = Vec::new();
        if self.config.mode == NicMode::Snic {
            for &c in &req.cores {
                let mut tlb = Tlb::new(c, self.config.core_tlb_entries);
                let mut va = 0u64;
                let mut pa = base;
                for &(page_size, count) in &plan.pages {
                    for _ in 0..count {
                        let install = tlb.install(PageMapping {
                            va,
                            pa,
                            page_size,
                            writable: true,
                        });
                        if let Err(e) = install {
                            self.rollback(nf);
                            return Err(e.into());
                        }
                        va += page_size;
                        pa += page_size;
                    }
                }
                tlb.lock();
                new_tlbs.push((c, tlb));
            }
        }

        // Commit point: everything below cannot fail.
        self.next_nf += 1;
        for &c in &req.cores {
            self.core_owner[usize::from(c.0)] = Some(nf);
        }

        let mut denylist_time = Picos::ZERO;
        if self.config.mode == NicMode::Snic {
            // Denylist the region against the management core (§4.2).
            // Ownership exclusivity makes an overlap impossible here.
            self.guard.denylist_mut().deny(base, region_len, nf)?;
            denylist_time = DENYLISTING;
            // Install the locked per-core TLBs built above.
            for (c, tlb) in new_tlbs {
                self.core_tlbs.insert(c, tlb);
            }
        } else {
            // Commodity: the image lands in the shared pool with
            // discoverable allocator metadata (§3.3's attack surface).
        }

        // Copy the initial image into the function's memory.
        let image_base = if self.config.mode == NicMode::Commodity && !req.image.is_empty() {
            let (_, buf) = self
                .allocator
                .alloc(&mut self.guard, nf, req.image.len() as u64, false)
                .unwrap_or((0, base));
            buf
        } else {
            base
        };
        let hw = Principal::TrustedHardware;
        self.guard.write_phys(hw, image_base, &req.image.code)?;
        self.guard.write_phys(
            hw,
            image_base + req.image.code.len() as u64,
            &req.image.config,
        )?;

        // Cumulative measurement (§4.6): code, config, rules, topology.
        let mut h = Sha256::new();
        h.update(&req.image.code);
        h.update(&req.image.config);
        for r in &req.rules {
            h.update(format!("{r:?}").as_bytes());
        }
        for c in &req.cores {
            h.update(&c.0.to_le_bytes());
        }
        h.update(&req.memory.bytes().to_le_bytes());
        let measurement = h.finalize();

        // Install switching rules pointing at the new function.
        for rule in &mut req.rules {
            rule.target = nf;
            self.rules.install(rule.clone());
        }

        // Per-core DMA banks (§4.2): one bank per programmable core, TLB
        // windows locked to the function's region and the
        // host-sanctioned window.
        if let Some((hbase, hlen)) = req.host_window {
            for &c in &req.cores {
                let mut bank = DmaBank::new(
                    c,
                    nf,
                    DmaWindow {
                        base,
                        len: region_len,
                    },
                    DmaWindow {
                        base: hbase,
                        len: hlen,
                    },
                );
                bank.lock();
                self.dma_banks.insert(c, bank);
            }
        }

        let record = NfRecord {
            cores: req.cores.clone(),
            region: (base, region_len),
            image_base,
            measurement,
            accel,
            memory: req.memory,
            host_window: req.host_window,
            vpp: req.vpp,
            tlb_entries: plan.entries(),
            rx_queue: VecDeque::new(),
            rx_bytes: 0,
            pb_cap: req.vpp.pb.bytes(),
            pdb_slots: req.vpp.pdb.bytes() / 32,
            ring_next: 0,
            rx_delivered: 0,
            rx_dropped: 0,
            tx_sent: 0,
        };
        self.launched.insert(nf, record);

        let latency = LaunchLatency {
            tlb_setup: TLB_SETUP,
            denylisting: denylist_time,
            sha_digest: sha_digest_time(req.memory),
        };
        self.now += latency.total();
        Ok(LaunchReceipt {
            nf_id: nf,
            measurement,
            latency,
        })
    }

    fn rollback(&mut self, nf: NfId) {
        self.ownership.release_owner(nf);
        for pool in &mut self.pools {
            pool.release_owner(nf);
        }
        let _ = self.rx_port.release_owner(nf);
        let _ = self.tx_port.release_owner(nf);
    }

    // ------------------------------------------------------------------
    // nf_teardown (§4.6)
    // ------------------------------------------------------------------

    /// Return a region to the free list, coalescing with neighbors.
    fn free_region(&mut self, base: u64, len: u64) {
        self.free_regions.push((base, len));
        self.free_regions.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free_regions.len());
        for &(b, l) in &self.free_regions {
            match merged.last_mut() {
                Some(&mut (pb, ref mut pl)) if pb + *pl == b => *pl += l,
                _ => merged.push((b, l)),
            }
        }
        self.free_regions = merged;
    }

    /// The `nf_teardown` trusted instruction.
    pub fn nf_teardown(&mut self, nf: NfId) -> Result<TeardownReceipt, SnicError> {
        let record = self.launched.remove(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let mut scrub = Picos::ZERO;
        let mut allowlist = Picos::ZERO;
        if self.config.mode == NicMode::Snic {
            // Zero the function's pages before releasing them.
            let (base, len) = record.region;
            self.guard.raw_mem().scrub(base, len);
            scrub = scrub_time(ByteSize(len));
            self.guard.denylist_mut().allow_owner(nf);
            allowlist = ALLOWLISTING;
            for &c in &record.cores {
                if let Some(tlb) = self.core_tlbs.get_mut(&c) {
                    tlb.reset();
                }
            }
        }
        for &c in &record.cores {
            self.core_owner[usize::from(c.0)] = None;
            self.dma_banks.remove(&c);
        }
        self.ownership.release_owner(nf);
        for pool in &mut self.pools {
            pool.release_owner(nf);
        }
        let _ = self.rx_port.release_owner(nf);
        let _ = self.tx_port.release_owner(nf);
        self.rules.remove_target(nf);
        self.free_region(record.region.0, record.region.1);
        let latency = TeardownLatency {
            allowlisting: allowlist,
            scrub,
        };
        self.now += latency.total();
        Ok(TeardownReceipt { latency })
    }

    // ------------------------------------------------------------------
    // Packet path (§4.4)
    // ------------------------------------------------------------------

    /// The packet input module: classify and deliver one packet.
    ///
    /// Returns the receiving NF, or `None` if no rule matched (packet
    /// dropped at the switch).
    pub fn rx_packet(&mut self, pkt: &Packet) -> Result<Option<NfId>, SnicError> {
        self.fail_if_crashed()?;
        let Some(nf) = self.rules.classify(pkt) else {
            return Ok(None);
        };
        let Some(record) = self.launched.get_mut(&nf) else {
            return Ok(None);
        };
        let len = pkt.len() as u64;
        if record.rx_bytes + len > record.pb_cap
            || record.rx_queue.len() as u64 + 1 > record.pdb_slots
        {
            record.rx_dropped += 1;
            return Ok(Some(nf));
        }
        // Copy the packet into DRAM: commodity → shared pool with
        // metadata; S-NIC → the NF's private region (a ring at its top).
        let base = match self.config.mode {
            NicMode::Commodity => {
                let (_, base) = self.allocator.alloc(&mut self.guard, nf, len, true)?;
                base
            }
            NicMode::Snic => {
                let (rbase, rlen) = record.region;
                let ring_span = record.pb_cap.min(rlen / 2);
                let ring_base = rbase + rlen - ring_span;
                let aligned = len.div_ceil(64) * 64;
                if record.ring_next + aligned > ring_span {
                    record.ring_next = 0;
                }
                let b = ring_base + record.ring_next;
                record.ring_next += aligned;
                b
            }
        };
        self.guard
            .write_phys(Principal::TrustedHardware, base, &pkt.data)?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        record.rx_bytes += len;
        record.rx_queue.push_back((base, pkt.len() as u32));
        Ok(Some(nf))
    }

    /// The NF polls its next packet; bytes are read back from DRAM, so
    /// any tampering that happened while the packet sat in the buffer is
    /// visible to the function (this is how the §3.3 corruption attack
    /// bites).
    pub fn poll_packet(&mut self, nf: NfId) -> Result<Option<Packet>, SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let Some((base, len)) = record.rx_queue.pop_front() else {
            return Ok(None);
        };
        record.rx_bytes -= u64::from(len);
        record.rx_delivered += 1;
        let mut buf = vec![0u8; len as usize];
        self.guard
            .read_phys(Principal::TrustedHardware, base, &mut buf)?;
        Ok(Some(Packet::from_bytes(bytes::Bytes::from(buf))))
    }

    /// The NF hands a packet to the output module.
    pub fn tx_packet(&mut self, nf: NfId, pkt: Packet) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        record.tx_sent += 1;
        self.tx_wire.push_back(pkt);
        Ok(())
    }

    /// Drain one packet from the wire side.
    pub fn wire_pop(&mut self) -> Option<Packet> {
        self.tx_wire.pop_front()
    }

    // ------------------------------------------------------------------
    // Memory access paths
    // ------------------------------------------------------------------

    /// Physical read as `who` (the commodity `xkphys` path; under S-NIC
    /// this fails for NFs and is denylist-checked for management).
    pub fn mem_read(&self, who: Principal, addr: u64, out: &mut [u8]) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.guard.read_phys(who, addr, out)
    }

    /// Physical write as `who`.
    pub fn mem_write(&mut self, who: Principal, addr: u64, data: &[u8]) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.guard.write_phys(who, addr, data)
    }

    /// Virtual read through an NF core's locked TLB (the S-NIC path).
    pub fn nf_read(
        &self,
        nf: NfId,
        core: CoreId,
        va: u64,
        out: &mut [u8],
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        let tlb = self
            .core_tlbs
            .get(&core)
            .ok_or_else(|| SnicError::InvalidConfig("core has no TLB (commodity mode)".into()))?;
        self.guard.read_virt(tlb, va, out)
    }

    /// Virtual write through an NF core's locked TLB.
    pub fn nf_write(
        &mut self,
        nf: NfId,
        core: CoreId,
        va: u64,
        data: &[u8],
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        let tlb =
            self.core_tlbs.get(&core).cloned().ok_or_else(|| {
                SnicError::InvalidConfig("core has no TLB (commodity mode)".into())
            })?;
        self.guard.write_virt(&tlb, va, data)
    }

    // ------------------------------------------------------------------
    // Bus behaviour (§3.3 DoS / §4.5 arbitration)
    // ------------------------------------------------------------------

    /// Issue `ops` back-to-back bus operations from `nf` (the Agilio
    /// `test_subsat` flood). On a commodity NIC, saturating the bus
    /// hard-crashes the device; under S-NIC the temporal arbiter bounds
    /// the NF to its own slots, so the flood only slows the attacker.
    ///
    /// Returns the simulated time the flood took.
    pub fn bus_flood(&mut self, nf: NfId, ops: u64) -> Result<Picos, SnicError> {
        self.fail_if_crashed()?;
        if !self.launched.contains_key(&nf) {
            return Err(SnicError::NoSuchNf(nf));
        }
        *self.bus_ops.entry(nf).or_default() += ops;
        match self.config.mode {
            NicMode::Commodity => {
                if self.bus_ops[&nf] > self.config.bus_crash_threshold {
                    self.crashed = true;
                    return Err(SnicError::NicCrashed);
                }
                // Unarbitrated: each op takes one bus cycle.
                Ok(Picos(ops * 1_000_000 / (self.config.clock_hz / 1_000_000)))
            }
            NicMode::Snic => {
                // Temporal partitioning: the NF only owns 1/N of bus
                // time, so the flood stretches by the domain count but
                // can never saturate the shared bus.
                let domains = self.launched.len().max(1) as u64;
                Ok(Picos(
                    ops * domains * 1_000_000 / (self.config.clock_hz / 1_000_000),
                ))
            }
        }
    }

    /// Clusters bound to `nf` for `kind`.
    pub fn clusters_of(&self, nf: NfId, kind: AccelKind) -> Vec<AccelClusterId> {
        self.launched
            .get(&nf)
            .map(|r| r.accel.iter().filter(|c| c.kind == kind).copied().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Host DMA (§4.2)
    // ------------------------------------------------------------------

    /// Host-side direct access to host RAM (the host OS writing its own
    /// memory; no NIC involvement).
    pub fn host_mem(&mut self) -> &mut PhysMem {
        &mut self.host_mem
    }

    fn dma_bank(&mut self, nf: NfId, core: CoreId) -> Result<&mut DmaBank, SnicError> {
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        self.dma_banks
            .get_mut(&core)
            .ok_or_else(|| SnicError::InvalidConfig("no DMA bank configured".into()))
    }

    /// DMA from the function's region (at `nic_off`) to host RAM.
    pub fn dma_to_host(
        &mut self,
        nf: NfId,
        core: CoreId,
        nic_off: u64,
        host_addr: u64,
        len: u64,
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let (base, _) = self
            .launched
            .get(&nf)
            .ok_or(SnicError::NoSuchNf(nf))?
            .region;
        let nic_addr = base + nic_off;
        self.dma_bank(nf, core)?
            .validate(DmaDirection::NicToHost, nic_addr, host_addr, len)?;
        let mut buf = vec![0u8; len as usize];
        self.guard.raw_mem().read(nic_addr, &mut buf);
        self.host_mem.write(host_addr, &buf);
        Ok(())
    }

    /// DMA from host RAM into the function's region (at `nic_off`).
    pub fn dma_from_host(
        &mut self,
        nf: NfId,
        core: CoreId,
        nic_off: u64,
        host_addr: u64,
        len: u64,
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let (base, _) = self
            .launched
            .get(&nf)
            .ok_or(SnicError::NoSuchNf(nf))?
            .region;
        let nic_addr = base + nic_off;
        self.dma_bank(nf, core)?
            .validate(DmaDirection::HostToNic, nic_addr, host_addr, len)?;
        let mut buf = vec![0u8; len as usize];
        self.host_mem.read(host_addr, &mut buf);
        self.guard.raw_mem().write(nic_addr, &buf);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attestation support (Appendix A)
    // ------------------------------------------------------------------

    /// The `nf_attest` instruction: sign `Hash(initial state) || context`
    /// with the AK. The context carries the verifier nonce and DH
    /// transcript; protocol logic lives in [`crate::attest`].
    pub fn nf_attest(
        &mut self,
        nf: NfId,
        context: &[u8],
    ) -> Result<crate::attest::SignedStatement, SnicError> {
        self.fail_if_crashed()?;
        // The quote embeds the live verifier verdict: a relying party
        // learns not just *what* launched but that the device's current
        // allocation still verifies as an isolation-respecting partition.
        let verdict = self.verify_state().is_ok();
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let mut statement = Vec::with_capacity(33 + context.len());
        statement.extend_from_slice(&record.measurement);
        statement.push(u8::from(verdict));
        statement.extend_from_slice(context);
        let signature = self.ak.sign(&statement);
        self.now += crate::instr::ATTEST_RSA + crate::instr::ATTEST_SHA;
        Ok(crate::attest::SignedStatement {
            measurement: record.measurement,
            verdict,
            signature,
            ak_endorsement: self.ak.endorsement.clone(),
            ek_certificate: self.ek.certificate.clone(),
        })
    }
}

/// A live function's record, rendered as the manifest the verifier
/// checks.
fn manifest_of(nf: NfId, r: &NfRecord) -> VnicManifest {
    let mut accel: Vec<(AccelKind, usize)> = Vec::new();
    for c in &r.accel {
        match accel.iter_mut().find(|(k, _)| *k == c.kind) {
            Some((_, n)) => *n += 1,
            None => accel.push((c.kind, 1)),
        }
    }
    VnicManifest {
        nf,
        cores: r.cores.clone(),
        region: r.region,
        host_window: r.host_window,
        tlb_entries: r.tlb_entries as usize,
        accel,
        vpp: r.vpp,
        bus_slice: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::NfImage;
    use snic_pktio::rules::SwitchRule;
    use snic_pktio::vpp::VppBufferSpec;
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn vendor() -> VendorCa {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        VendorCa::new(&mut rng)
    }

    fn snic() -> SmartNic {
        SmartNic::new(NicConfig::small(NicMode::Snic), &vendor())
    }

    fn commodity() -> SmartNic {
        SmartNic::new(NicConfig::small(NicMode::Commodity), &vendor())
    }

    fn req(core: u16, mem_mib: u64) -> LaunchRequest {
        LaunchRequest::minimal(
            CoreId(core),
            ByteSize::mib(mem_mib),
            NfImage {
                code: vec![0xAA; 128],
                config: vec![0xBB; 64],
            },
        )
    }

    fn req_with_rule(core: u16, mem_mib: u64, dst_port: u16) -> LaunchRequest {
        let mut r = req(core, mem_mib);
        r.rules.push(SwitchRule {
            dst_port: snic_pktio::rules::RuleMatch::Exact(dst_port),
            priority: 5,
            ..SwitchRule::any(NfId(0))
        });
        r
    }

    fn pkt(dst_port: u16) -> Packet {
        PacketBuilder::new(1, 2, Protocol::Udp, 1000, dst_port)
            .payload(b"payload".to_vec())
            .build()
    }

    #[test]
    fn launch_assigns_unique_ids_and_cores() {
        let mut nic = snic();
        let a = nic.nf_launch(req(0, 4)).unwrap();
        let b = nic.nf_launch(req(1, 4)).unwrap();
        assert_ne!(a.nf_id, b.nf_id);
        assert_eq!(nic.live_nfs(), 2);
        // Core reuse rejected.
        assert_eq!(
            nic.nf_launch(req(0, 4)).unwrap_err(),
            SnicError::CoreBusy(CoreId(0))
        );
    }

    #[test]
    fn launch_measurement_depends_on_image() {
        let mut nic = snic();
        let a = nic.nf_launch(req(0, 4)).unwrap();
        let mut other = req(1, 4);
        other.image.code[0] ^= 1;
        let b = nic.nf_launch(other).unwrap();
        assert_ne!(a.measurement, b.measurement);
    }

    #[test]
    fn launch_latency_scales_with_memory() {
        let mut nic = snic();
        let small = nic.nf_launch(req(0, 4)).unwrap();
        let big = nic.nf_launch(req(1, 64)).unwrap();
        assert!(big.latency.sha_digest.0 > 10 * small.latency.sha_digest.0);
        assert!(big.latency.total() > small.latency.total());
        assert_eq!(small.latency.tlb_setup, TLB_SETUP);
    }

    #[test]
    fn commodity_launch_skips_denylisting() {
        let mut nic = commodity();
        let r = nic.nf_launch(req(0, 4)).unwrap();
        assert_eq!(r.latency.denylisting, Picos::ZERO);
        let mut nic2 = snic();
        let r2 = nic2.nf_launch(req(0, 4)).unwrap();
        assert_eq!(r2.latency.denylisting, DENYLISTING);
    }

    #[test]
    fn snic_nf_private_memory_via_tlb() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        nic.nf_write(id, CoreId(0), 0x1000, b"flow state").unwrap();
        let mut buf = [0u8; 10];
        nic.nf_read(id, CoreId(0), 0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"flow state");
        // Out-of-range virtual access is fatal (TLB miss).
        assert!(nic.nf_read(id, CoreId(0), 64 << 20, &mut buf).is_err());
        // A core not bound to the NF cannot use its mapping.
        assert!(nic.nf_read(id, CoreId(1), 0x1000, &mut buf).is_err());
    }

    #[test]
    fn snic_blocks_cross_nf_physical_access() {
        let mut nic = snic();
        let victim = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let attacker = nic.nf_launch(req(1, 4)).unwrap().nf_id;
        nic.nf_write(victim, CoreId(0), 0, b"secret").unwrap();
        let (vbase, _) = nic.record_of(victim).unwrap().region;
        let mut buf = [0u8; 6];
        // Attacker NF: no physical addressing at all under S-NIC.
        let err = nic
            .mem_read(Principal::Nf(attacker, CoreId(1)), vbase, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
        // Management core: denylisted.
        let err = nic
            .mem_read(Principal::Management, vbase, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
    }

    #[test]
    fn commodity_allows_cross_nf_physical_access() {
        let mut nic = commodity();
        let victim = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let attacker = nic.nf_launch(req(1, 4)).unwrap().nf_id;
        let vbase = nic.record_of(victim).unwrap().image_base;
        let mut buf = [0u8; 128];
        nic.mem_read(Principal::Nf(attacker, CoreId(1)), vbase, &mut buf)
            .unwrap();
        assert_eq!(buf[0], 0xAA, "attacker read the victim's code image");
    }

    #[test]
    fn teardown_scrubs_and_releases() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        nic.nf_write(id, CoreId(0), 0x100, b"sensitive").unwrap();
        let (base, _) = nic.record_of(id).unwrap().region;
        let receipt = nic.nf_teardown(id).unwrap();
        assert!(receipt.latency.scrub > Picos::ZERO);
        // The region is zero and no longer denylisted.
        let mut buf = [0xffu8; 9];
        nic.mem_read(Principal::Management, base + 0x100, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 9]);
        // Core is reusable.
        assert!(nic.nf_launch(req(0, 4)).is_ok());
    }

    #[test]
    fn teardown_unknown_nf_fails() {
        let mut nic = snic();
        assert_eq!(
            nic.nf_teardown(NfId(99)).unwrap_err(),
            SnicError::NoSuchNf(NfId(99))
        );
    }

    #[test]
    fn packet_path_end_to_end() {
        let mut nic = snic();
        let id = nic.nf_launch(req_with_rule(0, 4, 8080)).unwrap().nf_id;
        assert_eq!(nic.rx_packet(&pkt(8080)).unwrap(), Some(id));
        assert_eq!(
            nic.rx_packet(&pkt(9999)).unwrap(),
            None,
            "unmatched packet dropped"
        );
        let got = nic.poll_packet(id).unwrap().unwrap();
        assert_eq!(got.udp().unwrap().dst_port, 8080);
        assert_eq!(got.payload(), b"payload");
        assert!(nic.poll_packet(id).unwrap().is_none());
        nic.tx_packet(id, got).unwrap();
        assert!(nic.wire_pop().is_some());
    }

    #[test]
    fn vpp_capacity_enforced() {
        let mut nic = snic();
        let mut r = req_with_rule(0, 4, 80);
        r.vpp = VppBufferSpec {
            pb: ByteSize(256),
            pdb: ByteSize(64),
            odb: ByteSize::kib(1),
        };
        let id = nic.nf_launch(r).unwrap().nf_id;
        // pdb 64 bytes = 2 descriptors.
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.record_of(id).unwrap().rx_dropped, 1);
    }

    #[test]
    fn bus_flood_crashes_commodity_only() {
        let mut commodity_nic = commodity();
        let a = commodity_nic.nf_launch(req(0, 4)).unwrap().nf_id;
        assert_eq!(
            commodity_nic.bus_flood(a, 100_000_000).unwrap_err(),
            SnicError::NicCrashed
        );
        assert!(commodity_nic.is_crashed());
        // Everything now fails until a power cycle.
        assert_eq!(
            commodity_nic.rx_packet(&pkt(80)).unwrap_err(),
            SnicError::NicCrashed
        );
        commodity_nic.power_cycle();
        assert!(!commodity_nic.is_crashed());
        assert_eq!(commodity_nic.live_nfs(), 0, "power cycle loses all NFs");

        let mut snic_nic = snic();
        let b = snic_nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let t = snic_nic.bus_flood(b, 100_000_000).unwrap();
        assert!(!snic_nic.is_crashed());
        assert!(t > Picos::ZERO);
    }

    #[test]
    fn accel_clusters_allocated_and_released() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.accel = vec![(AccelKind::Dpi, 2), (AccelKind::Zip, 1)];
        let id = nic.nf_launch(r).unwrap().nf_id;
        assert_eq!(nic.clusters_of(id, AccelKind::Dpi).len(), 2);
        assert_eq!(nic.clusters_of(id, AccelKind::Zip).len(), 1);
        // Exhaustion fails atomically.
        let mut r2 = req(1, 4);
        r2.accel = vec![(AccelKind::Dpi, 100)];
        assert!(nic.nf_launch(r2).is_err());
        // The failed launch did not leak cores or clusters.
        assert!(nic.nf_launch(req(1, 4)).is_ok());
        nic.nf_teardown(id).unwrap();
        assert_eq!(nic.clusters_of(id, AccelKind::Dpi).len(), 0);
    }

    #[test]
    fn attest_signs_measurement_with_chain() {
        let v = vendor();
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let stmt = nic.nf_attest(id, b"nonce+dh").unwrap();
        assert!(stmt.verdict, "a healthy device verifies cleanly");
        let mut expected = Vec::new();
        expected.extend_from_slice(&stmt.measurement);
        expected.push(1); // verifier verdict byte
        expected.extend_from_slice(b"nonce+dh");
        assert!(snic_crypto::keys::verify_chain(
            v.public(),
            &stmt.ek_certificate,
            &stmt.ak_endorsement,
            &expected,
            &stmt.signature,
        ));
    }

    #[test]
    fn launch_refuses_overlapping_manifest() {
        for mut nic in [snic(), commodity()] {
            let a = nic.nf_launch(req(0, 4)).unwrap().nf_id;
            let (base, _) = nic.record_of(a).unwrap().region;
            // A manifest whose region overlaps the live function's.
            let mut overlapping = req(1, 4);
            overlapping.region_base = Some(base + 0x1000);
            match nic.nf_launch(overlapping).unwrap_err() {
                SnicError::Verification(report) => {
                    assert!(report.contains("RegionOverlap"), "{report}");
                    assert!(report.contains("§4.1"), "{report}");
                }
                other => panic!("expected Verification refusal, got {other:?}"),
            }
            // The refusal leaked nothing: the same core launches cleanly.
            assert!(nic.nf_launch(req(1, 4)).is_ok());
        }
    }

    #[test]
    fn launch_refuses_nic_os_collision() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.region_base = Some(0x0200_0000); // inside the shared buffer pool
        match nic.nf_launch(r).unwrap_err() {
            SnicError::Verification(report) => {
                assert!(report.contains("NicOsCollision"), "{report}");
            }
            other => panic!("expected Verification refusal, got {other:?}"),
        }
    }

    #[test]
    fn launch_refuses_duplicate_core_in_request() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.cores = vec![CoreId(0), CoreId(0)];
        match nic.nf_launch(r).unwrap_err() {
            SnicError::Verification(report) => {
                assert!(report.contains("CoreConflict"), "{report}");
            }
            other => panic!("expected Verification refusal, got {other:?}"),
        }
    }

    #[test]
    fn live_device_verifies_cleanly_in_both_modes() {
        for mut nic in [snic(), commodity()] {
            nic.nf_launch(req(0, 4)).unwrap();
            nic.nf_launch(req(1, 16)).unwrap();
            let report = nic.verify_state();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.manifests_checked, 2);
        }
    }

    #[test]
    fn security_domains_cover_regions_and_pool_buffers() {
        let mut nic = commodity();
        let id = nic.nf_launch(req_with_rule(0, 4, 80)).unwrap().nf_id;
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        let domains = nic.security_domains();
        let (rbase, rlen) = nic.record_of(id).unwrap().region;
        assert!(domains.contains(&(rbase, rlen, id)), "region domain");
        // The image and the queued packet live in the shared pool below
        // REGION_BASE, still attributed to the owner.
        assert!(
            domains
                .iter()
                .any(|&(b, _, o)| o == id && b < rbase && b >= 0x0200_0000),
            "{domains:?}"
        );
    }

    #[test]
    fn zero_core_and_zero_memory_rejected() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.cores.clear();
        assert!(matches!(
            nic.nf_launch(r).unwrap_err(),
            SnicError::InvalidConfig(_)
        ));
        let r2 = LaunchRequest::minimal(CoreId(0), ByteSize::ZERO, NfImage::default());
        assert!(matches!(
            nic.nf_launch(r2).unwrap_err(),
            SnicError::InvalidConfig(_)
        ));
    }

    #[test]
    fn dma_round_trip_within_windows() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.host_window = Some((0x1000_0000, 0x10_000));
        let id = nic.nf_launch(r).unwrap().nf_id;
        // Host stages data; the NF pulls it in, transforms, pushes back.
        nic.host_mem().write(0x1000_0000, b"host payload");
        nic.dma_from_host(id, CoreId(0), 0x100, 0x1000_0000, 12)
            .unwrap();
        let mut buf = [0u8; 12];
        nic.nf_read(id, CoreId(0), 0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"host payload");
        nic.nf_write(id, CoreId(0), 0x200, b"nic answer!!").unwrap();
        nic.dma_to_host(id, CoreId(0), 0x200, 0x1000_0100, 12)
            .unwrap();
        let mut hbuf = [0u8; 12];
        nic.host_mem().read(0x1000_0100, &mut hbuf);
        assert_eq!(&hbuf, b"nic answer!!");
    }

    #[test]
    fn dma_outside_host_window_rejected() {
        use snic_types::IsolationError;
        let mut nic = snic();
        let mut r = req(0, 4);
        r.host_window = Some((0x1000_0000, 0x1000));
        let id = nic.nf_launch(r).unwrap().nf_id;
        // Target beyond the sanctioned host window: the §4.2 property
        // that a function cannot aim DMA at arbitrary host memory.
        let err = nic
            .dma_to_host(id, CoreId(0), 0, 0x2000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { .. })
        ));
        // And beyond its own region on the NIC side.
        let err = nic
            .dma_to_host(id, CoreId(0), 64 << 20, 0x1000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { .. })
        ));
    }

    #[test]
    fn dma_requires_a_configured_bank_and_owned_core() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id; // No host window.
        assert!(nic.dma_to_host(id, CoreId(0), 0, 0x1000_0000, 8).is_err());
        let mut r = req(1, 4);
        r.host_window = Some((0x1000_0000, 0x1000));
        let other = nic.nf_launch(r).unwrap().nf_id;
        // NF `id` cannot use `other`'s bank on core 1.
        assert!(nic.dma_to_host(id, CoreId(1), 0, 0x1000_0000, 8).is_err());
        let _ = other;
    }
}
