//! The SoC smart-NIC device model.
//!
//! One [`SmartNic`] struct implements both personalities (§3 commodity
//! vs. §4 S-NIC); every difference is driven by [`NicMode`] so the
//! attacks crate can run identical attack code against both and assert
//! opposite outcomes.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use rand::SeedableRng;
use snic_crypto::keys::{AttestationKey, EndorsementKey, VendorCa};
use snic_crypto::sha256::Sha256;
use snic_faults::{FaultEventKind, FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultSite};
use snic_mem::guard::{AccessRecord, MemoryGuard, Principal};
use snic_mem::ownership::PageOwnership;
use snic_mem::pagetable::PageMapping;
use snic_mem::phys::PhysMem;
use snic_mem::planner::plan_region;
use snic_mem::tlb::Tlb;
use snic_pktio::dma::{DmaBank, DmaDirection, DmaWindow};
use snic_pktio::port::PortBuffers;
use snic_pktio::rules::RuleTable;
use snic_pktio::vpp::VppBufferSpec;
use snic_telemetry::{metrics, NullSink, TelemetrySink};
use snic_types::{
    AccelClusterId, AccelKind, ByteSize, CoreId, NfId, NfState, Packet, Picos, SnicError,
    TransientResource,
};
use snic_verify::{
    analyze_launch, verify_denylist_coverage, verify_manifests, verify_tlb_state, BusSpec,
    DeviceSpec, EnforcementMode, VerificationReport, VnicManifest,
};

use crate::alloc::{BufferAllocator, META_BASE, META_SLOT, POOL_BASE};
use crate::config::{NicConfig, NicMode};
use crate::instr::{
    scrub_time, sha_digest_time, LaunchLatency, LaunchReceipt, LaunchRequest, TeardownLatency,
    TeardownReceipt, ALLOWLISTING, DENYLISTING, TLB_SETUP,
};
use snic_accel::cluster::ClusterPool;

/// Physical base of the region pool used for S-NIC private regions.
const REGION_BASE: u64 = 0x0800_0000;

/// Epoch length (bus cycles) of the S-NIC temporal arbiter — the §4.5
/// convention used across the attacks and uarch crates.
const BUS_EPOCH: u64 = 96;

/// Teardown zeroization proceeds in chunks of this size; the scrub
/// watermark (and any injected power loss) has chunk granularity.
const SCRUB_CHUNK: u64 = 256 * 1024;

/// Crash-consistent record of an interrupted teardown scrub (§4.6).
///
/// When power is lost mid-scrub the ticket — not the region — survives:
/// the region stays denylisted and off the free list until
/// [`SmartNic::resume_scrubs`] finishes zeroizing from `watermark`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubTicket {
    /// The torn-down function the region belonged to.
    pub nf: NfId,
    /// Region base.
    pub base: u64,
    /// Region length.
    pub len: u64,
    /// Bytes already zeroized (scrub resumes here).
    pub watermark: u64,
}

/// A comparable snapshot of every allocatable resource the device
/// tracks. Launch-rollback and power-cycle regression tests snapshot
/// before an operation and assert equality after a failed one: any
/// field drift is a leak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSnapshot {
    /// Free-region list (sorted, coalesced).
    pub free_regions: Vec<(u64, u64)>,
    /// Bump pointer for fresh regions.
    pub next_region: u64,
    /// Per-core owner map.
    pub core_owner: Vec<Option<NfId>>,
    /// Healthy, unallocated clusters per accelerator family.
    pub accel_available: Vec<(AccelKind, usize)>,
    /// RX buffer bytes reserved.
    pub rx_reserved: u64,
    /// TX buffer bytes reserved.
    pub tx_reserved: u64,
    /// Denylist intervals `(base, len, owner)`.
    pub denylist: Vec<(u64, u64, NfId)>,
    /// Page-ownership ranges `(base, len, owner)`.
    pub owned: Vec<(u64, u64, NfId)>,
    /// Pending interrupted scrubs.
    pub pending_scrubs: Vec<ScrubTicket>,
    /// Live function count.
    pub live_nfs: usize,
    /// Cores with an installed DMA bank.
    pub dma_banks: usize,
}

/// Bookkeeping for one launched function.
#[derive(Debug)]
pub struct NfRecord {
    /// Bound cores.
    pub cores: Vec<CoreId>,
    /// Private physical region `(base, len)`.
    pub region: (u64, u64),
    /// Where the initial image landed (inside the region under S-NIC; in
    /// the shared pool on a commodity NIC).
    pub image_base: u64,
    /// Launch measurement (§4.6 cumulative hash).
    pub measurement: [u8; 32],
    /// Digest of the Pass 0 analysis certificate; all-zero when the
    /// function launched without a dataflow-IR submission. Bound into
    /// `nf_attest` quotes so a relying party can demand the proof.
    pub analysis_digest: [u8; 32],
    /// Bound accelerator clusters.
    pub accel: Vec<AccelClusterId>,
    /// Requested memory.
    pub memory: ByteSize,
    /// Host-sanctioned DMA window, if any.
    pub host_window: Option<(u64, u64)>,
    /// The function's VPP buffer reservation.
    pub vpp: VppBufferSpec,
    /// TLB entries installed per core.
    pub tlb_entries: u64,
    /// Lifecycle state (`Launched → Running → Faulted → Scrubbing →
    /// Reclaimed`; data-path calls refuse non-operational states).
    pub state: NfState,
    /// RX descriptor queue: `(base, len)` of packets in DRAM.
    rx_queue: VecDeque<(u64, u32)>,
    rx_bytes: u64,
    /// Buffer-space caps from the VPP spec.
    pb_cap: u64,
    pdb_slots: u64,
    /// Next packet-slot offset within the region's packet ring (S-NIC).
    ring_next: u64,
    /// Statistics.
    pub rx_delivered: u64,
    /// Packets dropped at the VPP.
    pub rx_dropped: u64,
    /// Packets sent.
    pub tx_sent: u64,
}

/// The device.
pub struct SmartNic {
    config: NicConfig,
    guard: MemoryGuard,
    ownership: PageOwnership,
    core_owner: Vec<Option<NfId>>,
    core_tlbs: HashMap<CoreId, Tlb>,
    pools: Vec<ClusterPool>,
    rx_port: PortBuffers,
    tx_port: PortBuffers,
    rules: RuleTable,
    launched: BTreeMap<NfId, NfRecord>,
    allocator: BufferAllocator,
    next_region: u64,
    /// Regions returned by `nf_teardown`, available for reuse: sorted,
    /// coalesced `(base, len)` pairs.
    free_regions: Vec<(u64, u64)>,
    next_nf: u64,
    bus_ops: HashMap<NfId, u64>,
    crashed: bool,
    now: Picos,
    ek: EndorsementKey,
    ak: AttestationKey,
    tx_wire: VecDeque<Packet>,
    /// Host RAM model, target of the multi-bank DMA controller (§4.2).
    host_mem: PhysMem,
    dma_banks: HashMap<CoreId, DmaBank>,
    /// Deterministic fault injector + lifecycle transcript recorder.
    injector: FaultInjector,
    /// Interrupted teardown scrubs awaiting resumption (sorted by base).
    pending_scrubs: Vec<ScrubTicket>,
    /// Observability sink shared with ports, pools and DMA banks.
    /// Defaults to [`NullSink`]; every use is behind `enabled()`.
    telemetry: Arc<dyn TelemetrySink>,
}

impl SmartNic {
    /// Build a device; the vendor CA certifies its endorsement key at
    /// "manufacture" time (Appendix A).
    pub fn new(config: NicConfig, vendor: &VendorCa) -> SmartNic {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let ek = EndorsementKey::manufacture(&mut rng, vendor);
        let ak = AttestationKey::generate(&mut rng, &ek);
        let enforcing = config.mode == NicMode::Snic;
        let pools = AccelKind::ALL
            .iter()
            .map(|&k| ClusterPool::new(k, config.accel_clusters, config.threads_per_cluster))
            .collect();
        SmartNic {
            guard: MemoryGuard::new(config.dram, enforcing),
            ownership: PageOwnership::new(),
            core_owner: vec![None; usize::from(config.cores)],
            core_tlbs: HashMap::new(),
            pools,
            rx_port: PortBuffers::new(config.rx_buffer),
            tx_port: PortBuffers::new(config.tx_buffer),
            rules: RuleTable::new(),
            launched: BTreeMap::new(),
            allocator: BufferAllocator::new(ByteSize::mib(64).min(config.dram)),
            next_region: REGION_BASE,
            free_regions: Vec::new(),
            next_nf: 1,
            bus_ops: HashMap::new(),
            crashed: false,
            now: Picos::ZERO,
            ek,
            ak,
            config,
            tx_wire: VecDeque::new(),
            host_mem: PhysMem::new(ByteSize::gib(1)),
            dma_banks: HashMap::new(),
            injector: FaultInjector::disarmed(),
            pending_scrubs: Vec::new(),
            telemetry: Arc::new(NullSink),
        }
    }

    /// Attach a telemetry sink to the device and to every component it
    /// owns (ports, accelerator pools, DMA banks). Telemetry is purely
    /// observational: with or without a sink the device's behaviour,
    /// receipts and transcripts are byte-identical.
    pub fn set_telemetry(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.telemetry = Arc::clone(&sink);
        self.rx_port.set_sink(Arc::clone(&sink));
        self.tx_port.set_sink(Arc::clone(&sink));
        for pool in &mut self.pools {
            pool.set_sink(Arc::clone(&sink));
        }
        for bank in self.dma_banks.values_mut() {
            bank.set_sink(Arc::clone(&sink));
        }
    }

    /// The attached telemetry sink ([`NullSink`] by default).
    pub fn telemetry(&self) -> Arc<dyn TelemetrySink> {
        Arc::clone(&self.telemetry)
    }

    // ------------------------------------------------------------------
    // Fault injection & lifecycle observation
    // ------------------------------------------------------------------

    /// Arm the device with a deterministic fault plan. Replaces any
    /// previous injector but preserves nothing: counters and transcript
    /// start fresh.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.injector = FaultInjector::new(plan);
    }

    /// Arm additional fault rules *mid-stream*, preserving the
    /// transcript and per-site counters accumulated so far. The
    /// resident daemon's `inject-fault` verb uses this: replacing the
    /// injector with [`SmartNic::inject_faults`] would erase lifecycle
    /// history that Pass 3/Pass 4 lint and the restart differential
    /// replays.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.injector.arm(plan);
    }

    /// How many events the injector has observed at `site` — the base
    /// for arming "k-th event from now" triggers mid-stream.
    pub fn fault_site_count(&self, site: FaultSite) -> u64 {
        self.injector.count(site)
    }

    /// The fault/lifecycle transcript so far.
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.injector.log()
    }

    /// Drain the transcript (the armed plan and counters stay).
    pub fn take_fault_log(&mut self) -> Vec<FaultRecord> {
        self.injector.take_log()
    }

    /// Consult the injector at `site` on behalf of a management caller
    /// (the NIC OS and harnesses use this for sites the device itself
    /// does not instrument).
    pub fn fault_check(&mut self, site: FaultSite, nf: Option<NfId>) -> Option<FaultKind> {
        self.injector.check(site, self.now, nf)
    }

    /// Append an externally observed event to the transcript so device
    /// and harness events share one total order.
    pub fn fault_note(&mut self, nf: Option<NfId>, kind: FaultEventKind) {
        self.injector.note(self.now, nf, kind);
    }

    /// Lifecycle state of a live NF.
    pub fn state_of(&self, nf: NfId) -> Result<NfState, SnicError> {
        Ok(self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?.state)
    }

    /// Interrupted teardown scrubs awaiting [`SmartNic::resume_scrubs`].
    pub fn pending_scrubs(&self) -> &[ScrubTicket] {
        &self.pending_scrubs
    }

    /// The free-region list (sorted, coalesced) — exposed for the
    /// allocator-invariant property tests.
    pub fn free_regions(&self) -> &[(u64, u64)] {
        &self.free_regions
    }

    /// Record a lifecycle transition for a *live* NF and log it.
    fn transition(&mut self, nf: NfId, to: NfState) {
        if let Some(record) = self.launched.get_mut(&nf) {
            let from = record.state;
            debug_assert!(from.can_transition(to), "illegal {from} -> {to}");
            record.state = to;
            self.injector
                .note(self.now, Some(nf), FaultEventKind::Transition { from, to });
        }
    }

    /// Comparable snapshot of every allocatable resource (leak tests).
    pub fn resource_snapshot(&self) -> ResourceSnapshot {
        ResourceSnapshot {
            free_regions: self.free_regions.clone(),
            next_region: self.next_region,
            core_owner: self.core_owner.clone(),
            accel_available: self
                .pools
                .iter()
                .map(|p| (p.kind(), p.available()))
                .collect(),
            rx_reserved: self.rx_port.reserved().bytes(),
            tx_reserved: self.tx_port.reserved().bytes(),
            denylist: self.guard.denylist().intervals().to_vec(),
            owned: self.ownership.owned_ranges(),
            pending_scrubs: self.pending_scrubs.clone(),
            live_nfs: self.launched.len(),
            dma_banks: self.dma_banks.len(),
        }
    }

    /// The device mode.
    pub fn mode(&self) -> NicMode {
        self.config.mode
    }

    /// Device configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Advance simulated time.
    pub fn advance(&mut self, dt: Picos) {
        self.now += dt;
    }

    /// True after a bus-DoS hard crash (§3.3's Agilio attack).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Power-cycle the NIC: clears the crash flag and all NF state
    /// (everything is lost, as the paper's attack required).
    ///
    /// Reclamation is *forced*: if an NF's orderly teardown fails
    /// partway (e.g. power is lost again mid-scrub), its cores, ports,
    /// clusters and ownership are reclaimed anyway — but its region is
    /// routed through the pending-scrub queue, never handed out dirty.
    /// The cycle also repairs faulted accelerator clusters and resumes
    /// any interrupted scrubs. If a scrub is interrupted *again* during
    /// the cycle, the device comes back crashed with the remaining
    /// tickets still pending; another cycle finishes the job.
    pub fn power_cycle(&mut self) {
        if self.telemetry.enabled() {
            self.telemetry.instant(0, "device.power_cycle", self.now.0);
        }
        let ids: Vec<NfId> = self.launched.keys().copied().collect();
        self.restore_power();
        for id in ids {
            if self.nf_teardown(id).is_err() {
                self.force_reclaim(id);
            }
        }
        self.bus_ops.clear();
        for pool in &mut self.pools {
            pool.repair_all();
        }
        self.resume_scrubs();
    }

    /// Restore power after a loss WITHOUT resuming interrupted scrubs —
    /// a boot where the background scrub janitor has not run yet.
    /// Admission control refuses pending regions in the meantime
    /// ([`SnicError::ScrubPending`]); [`SmartNic::resume_scrubs`] or a
    /// full [`SmartNic::power_cycle`] drains them.
    pub fn restore_power(&mut self) {
        self.crashed = false;
        self.injector
            .note(self.now, None, FaultEventKind::PowerRestored);
    }

    /// Reclaim every resource bound to `nf` without running (or after a
    /// failed) orderly teardown. Volatile bindings are simply dropped;
    /// the DRAM region is queued for scrubbing under S-NIC so it cannot
    /// be reused before zeroization.
    fn force_reclaim(&mut self, nf: NfId) {
        if let Some(record) = self.launched.remove(&nf) {
            for &c in &record.cores {
                self.core_owner[usize::from(c.0)] = None;
                self.dma_banks.remove(&c);
                if let Some(tlb) = self.core_tlbs.get_mut(&c) {
                    tlb.reset();
                }
            }
            self.ownership.release_owner(nf);
            for pool in &mut self.pools {
                pool.release_owner(nf);
            }
            let _ = self.rx_port.release_owner(nf);
            let _ = self.tx_port.release_owner(nf);
            self.rules.remove_target(nf);
            let (base, len) = record.region;
            if self.config.mode == NicMode::Snic {
                self.pending_scrubs.push(ScrubTicket {
                    nf,
                    base,
                    len,
                    watermark: 0,
                });
                self.pending_scrubs.sort_unstable_by_key(|t| t.base);
            } else {
                self.free_region(base, len);
            }
        }
        self.bus_ops.remove(&nf);
    }

    /// Resume every interrupted teardown scrub from its watermark;
    /// completed regions are allowlisted and returned to the free list.
    /// Returns how many tickets completed. Stops early (leaving the
    /// rest pending) if power is lost again mid-scrub.
    pub fn resume_scrubs(&mut self) -> usize {
        let mut done = 0;
        while let Some(ticket) = self.pending_scrubs.first().copied() {
            self.pending_scrubs.remove(0);
            self.injector.note(
                self.now,
                Some(ticket.nf),
                FaultEventKind::Transition {
                    from: NfState::Scrubbing,
                    to: NfState::Scrubbing,
                },
            );
            match self.scrub_region(ticket.nf, ticket.base, ticket.len, ticket.watermark) {
                Ok(t) => {
                    self.now += t;
                    self.guard.denylist_mut().allow_owner(ticket.nf);
                    self.free_region(ticket.base, ticket.len);
                    self.injector.note(
                        self.now,
                        Some(ticket.nf),
                        FaultEventKind::Transition {
                            from: NfState::Scrubbing,
                            to: NfState::Reclaimed,
                        },
                    );
                    done += 1;
                }
                Err(_) => break,
            }
        }
        done
    }

    /// The EK certificate chain root material, for verifiers.
    pub fn ek_certificate(&self) -> &snic_crypto::keys::Certificate {
        &self.ek.certificate
    }

    /// The per-boot AK endorsement.
    pub fn ak_endorsement(&self) -> &snic_crypto::keys::Certificate {
        &self.ak.endorsement
    }

    /// Read-only view of the mediated memory (for attack code that scans
    /// structures via a principal's access rights).
    pub fn guard_ref(&self) -> &MemoryGuard {
        &self.guard
    }

    // ------------------------------------------------------------------
    // Static verification (snic-verify)
    // ------------------------------------------------------------------

    /// The device inventory as the static verifier sees it.
    pub fn device_spec(&self) -> DeviceSpec {
        let (mode, bus) = match self.config.mode {
            NicMode::Commodity => (EnforcementMode::Commodity, BusSpec::Fcfs),
            NicMode::Snic => (
                EnforcementMode::Snic,
                BusSpec::Temporal { epoch: BUS_EPOCH },
            ),
        };
        DeviceSpec {
            mode,
            dram: self.config.dram.bytes(),
            nf_region_base: REGION_BASE,
            nic_os: vec![
                (META_BASE, crate::alloc::META_SLOTS * META_SLOT),
                (POOL_BASE, ByteSize::mib(64).min(self.config.dram).bytes()),
            ],
            cores: self.config.cores,
            core_tlb_entries: self.config.core_tlb_entries,
            accel: AccelKind::ALL
                .iter()
                .map(|&k| (k, self.config.accel_clusters))
                .collect(),
            rx_capacity: self.config.rx_buffer.bytes(),
            tx_capacity: self.config.tx_buffer.bytes(),
            bus,
        }
    }

    /// The manifests of every live function.
    pub fn live_manifests(&self) -> Vec<VnicManifest> {
        self.launched
            .iter()
            .map(|(&id, r)| manifest_of(id, r))
            .collect()
    }

    /// Pass 1 over a candidate launch: the live manifests plus the one
    /// the request would create.
    fn verify_launch(
        &self,
        nf: NfId,
        req: &LaunchRequest,
        base: u64,
        region_len: u64,
        tlb_entries: usize,
    ) -> VerificationReport {
        let mut manifests = self.live_manifests();
        manifests.push(VnicManifest {
            nf,
            cores: req.cores.clone(),
            region: (base, region_len),
            host_window: req.host_window,
            tlb_entries,
            accel: req.accel.clone(),
            vpp: req.vpp,
            bus_slice: None,
        });
        verify_manifests(&self.device_spec(), &manifests)
    }

    /// Re-verify the *live* device: Pass 1 over the current manifests,
    /// plus the §4.2 state checks (denylist covers the ownership map,
    /// per-core TLBs locked and confined). `nf_attest` embeds this
    /// report's verdict in its signed statement.
    pub fn verify_state(&self) -> VerificationReport {
        let spec = self.device_spec();
        let manifests = self.live_manifests();
        let mut report = verify_manifests(&spec, &manifests);
        report.violations.extend(verify_denylist_coverage(
            spec.mode,
            &self.ownership.owned_ranges(),
            self.guard.denylist(),
        ));
        for m in &manifests {
            let tlbs: Vec<&Tlb> = m
                .cores
                .iter()
                .filter_map(|c| self.core_tlbs.get(c))
                .collect();
            report
                .violations
                .extend(verify_tlb_state(spec.mode, m, &tlbs));
        }
        report
    }

    /// Begin recording every mediated physical access (Pass 2 input).
    pub fn start_audit(&mut self) {
        self.guard.start_audit();
    }

    /// Drain the recorded access trace; recording stays enabled.
    pub fn take_audit(&mut self) -> Vec<AccessRecord> {
        self.guard.take_audit()
    }

    /// The current security domains as `(base, len, owner)` ranges: every
    /// NF-owned region plus every live shared-pool buffer (commodity
    /// packet and image buffers are owned too, even though they sit
    /// outside the ownership bitmap). This is the domain map the trace
    /// linter checks memory references against.
    pub fn security_domains(&self) -> Vec<(u64, u64, NfId)> {
        let mut out = self.ownership.owned_ranges();
        let mem = self.guard.raw_mem_ref();
        let word = |addr: u64| {
            let mut w = [0u8; 8];
            mem.read(addr, &mut w);
            u64::from_le_bytes(w)
        };
        for slot in 0..self.allocator.slots() {
            let a = META_BASE + slot * META_SLOT;
            let (owner, base, len, flags) = (word(a), word(a + 8), word(a + 16), word(a + 24));
            if flags & crate::alloc::FLAG_IN_USE != 0 && len > 0 {
                out.push((base, len, NfId(owner)));
            }
        }
        out
    }

    fn fail_if_crashed(&self) -> Result<(), SnicError> {
        if self.crashed {
            Err(SnicError::NicCrashed)
        } else {
            Ok(())
        }
    }

    /// The launch measurement of a live NF.
    pub fn measurement_of(&self, nf: NfId) -> Result<[u8; 32], SnicError> {
        Ok(self
            .launched
            .get(&nf)
            .ok_or(SnicError::NoSuchNf(nf))?
            .measurement)
    }

    /// Record of a live NF.
    pub fn record_of(&self, nf: NfId) -> Result<&NfRecord, SnicError> {
        self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))
    }

    /// Live NF count.
    pub fn live_nfs(&self) -> usize {
        self.launched.len()
    }

    /// Ids of every live NF, in ascending order (the durable truth a
    /// restarted NIC OS rebuilds its managed list from).
    pub fn live_nf_ids(&self) -> Vec<NfId> {
        self.launched.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // nf_launch (§4.1–§4.5)
    // ------------------------------------------------------------------

    /// The `nf_launch` trusted instruction.
    pub fn nf_launch(&mut self, req: LaunchRequest) -> Result<LaunchReceipt, SnicError> {
        let t0 = self.now.0;
        let result = self.nf_launch_inner(req);
        if self.telemetry.enabled() {
            match &result {
                Ok(receipt) => {
                    let nf = receipt.nf_id.0;
                    self.telemetry.counter_add(0, metrics::LAUNCHES, 1);
                    self.telemetry.span_begin(nf, "nf.launch", t0);
                    self.telemetry.span_end(nf, "nf.launch", self.now.0);
                    // Launch materialized fresh DMA banks; share the
                    // sink with them.
                    for bank in self.dma_banks.values_mut() {
                        bank.set_sink(Arc::clone(&self.telemetry));
                    }
                }
                Err(_) => self.telemetry.instant(0, "nf.launch_rejected", t0),
            }
        }
        result
    }

    fn nf_launch_inner(&mut self, mut req: LaunchRequest) -> Result<LaunchReceipt, SnicError> {
        self.fail_if_crashed()?;
        // Injected admission faults (all transient except power loss):
        // the orchestrator is expected to retry these with backoff.
        match self.injector.check(FaultSite::Launch, self.now, None) {
            Some(FaultKind::DramExhaustion) => {
                return Err(SnicError::Transient(TransientResource::Dram));
            }
            Some(FaultKind::AccelPoolExhaustion) => {
                return Err(SnicError::Transient(TransientResource::AccelPool));
            }
            Some(FaultKind::PowerLoss) => {
                self.injector
                    .note(self.now, None, FaultEventKind::PowerLost);
                self.crashed = true;
                return Err(SnicError::PowerLoss);
            }
            _ => {}
        }
        if req.cores.is_empty() {
            return Err(SnicError::InvalidConfig("nf_launch with zero cores".into()));
        }
        if req.memory.bytes() == 0 {
            return Err(SnicError::InvalidConfig(
                "nf_launch with zero memory".into(),
            ));
        }
        // Pass 0 (static program analysis): when the tenant submits a
        // dataflow IR, prove it confined to its claimed envelope before
        // *any* resource is reserved. A rejection here is trivially
        // atomic — no allocator, core, pool, or port state has been
        // touched yet — and the resulting certificate digest is bound
        // into the record so `nf_attest` can vouch for the proof.
        let analysis_digest = match &req.analysis {
            Some(submission) => {
                let outcome = analyze_launch(NfId(self.next_nf), submission);
                if !outcome.is_clean() {
                    let report = VerificationReport {
                        violations: outcome.violations,
                        manifests_checked: 1,
                    };
                    return Err(SnicError::Verification(report.to_string()));
                }
                outcome.certificate_digest()
            }
            None => [0u8; 32],
        };
        // Check the core bitmap (§4.1): all requested cores must exist
        // and be unassigned.
        for &c in &req.cores {
            let idx = usize::from(c.0);
            match self.core_owner.get(idx) {
                None => {
                    return Err(SnicError::InvalidConfig(format!("no such core {c}")));
                }
                Some(Some(_)) => return Err(SnicError::CoreBusy(c)),
                Some(None) => {}
            }
        }
        // Plan the mapping and check TLB capacity.
        let policy = req
            .page_policy
            .clone()
            .unwrap_or(self.config.page_policy.clone());
        let plan = plan_region(req.memory, &policy);
        if plan.entries() as usize > self.config.core_tlb_entries {
            return Err(SnicError::InvalidConfig(format!(
                "mapping needs {} TLB entries; core has {}",
                plan.entries(),
                self.config.core_tlb_entries
            )));
        }
        // Reserve the physical region: the caller's placement hint if
        // given, else first-fit from freed regions, falling back to the
        // bump pointer. The pre-reservation allocator state is saved so
        // every error path below can restore it exactly — a failed
        // launch must not leak (or even fragment) region space.
        let region_len = plan.allocated().bytes();
        let saved_free_regions = self.free_regions.clone();
        let saved_next_region = self.next_region;
        let base = match req.region_base {
            Some(hint) => hint,
            None => match self
                .free_regions
                .iter()
                .position(|&(_, len)| len >= region_len)
            {
                Some(idx) => {
                    let (b, len) = self.free_regions.remove(idx);
                    if len > region_len {
                        self.free_regions.push((b + region_len, len - region_len));
                        self.free_regions.sort_unstable();
                    }
                    b
                }
                None => {
                    let b = self.next_region.div_ceil(4096) * 4096;
                    if b + region_len > self.config.dram.bytes() {
                        // DRAM held hostage by interrupted scrubs is
                        // coming back; report that as retryable.
                        if self.pending_scrubs.is_empty() {
                            return Err(SnicError::InvalidConfig("DRAM exhausted".into()));
                        }
                        return Err(SnicError::Transient(TransientResource::Dram));
                    }
                    self.next_region = b + region_len;
                    b
                }
            },
        };
        // A region still awaiting zeroization is not reusable (§4.6),
        // no matter what placement hint the caller supplied.
        if let Some(t) = self
            .pending_scrubs
            .iter()
            .find(|t| base < t.base + t.len && t.base < base + region_len)
        {
            let pending = t.base;
            self.free_regions = saved_free_regions;
            self.next_region = saved_next_region;
            return Err(SnicError::ScrubPending { base: pending });
        }
        if base.saturating_add(region_len) > self.config.dram.bytes() {
            self.free_regions = saved_free_regions;
            self.next_region = saved_next_region;
            return Err(SnicError::InvalidConfig("DRAM exhausted".into()));
        }
        if req.image.len() as u64 > region_len {
            self.free_regions = saved_free_regions;
            self.next_region = saved_next_region;
            return Err(SnicError::InvalidConfig("image larger than region".into()));
        }

        // Static verification (Pass 1 of `snic-verify`): prove the
        // augmented manifest set is still an isolation-respecting
        // partition of the device *before* any hardware state mutates.
        // The report, not just a boolean, travels in the error so the
        // operator sees every broken invariant with its paper citation.
        let nf = NfId(self.next_nf);
        let report = self.verify_launch(nf, &req, base, region_len, plan.entries() as usize);
        if report.concerning(nf).next().is_some() {
            // Restore the pre-reservation allocator state exactly
            // (free_region() here would leak on hinted launches and
            // fragment the bump pointer on fresh ones).
            self.free_regions = saved_free_regions;
            self.next_region = saved_next_region;
            return Err(SnicError::Verification(report.to_string()));
        }

        // Page-table walk: claim ownership (fails atomically on overlap).
        if let Err(e) = self.ownership.claim(base, region_len, nf) {
            self.free_regions = saved_free_regions;
            self.next_region = saved_next_region;
            return Err(e);
        }
        // Accelerator clusters (§4.3) — atomic per pool; roll back on
        // failure.
        let mut accel = Vec::new();
        for &(kind, count) in &req.accel {
            let Some(pool) = self.pools.iter_mut().find(|p| p.kind() == kind) else {
                self.rollback(nf, saved_free_regions, saved_next_region);
                return Err(SnicError::InvalidConfig(format!(
                    "device has no {kind:?} accelerator pool"
                )));
            };
            match pool.allocate(nf, count) {
                Ok(mut ids) => accel.append(&mut ids),
                Err(e) => {
                    self.rollback(nf, saved_free_regions, saved_next_region);
                    return Err(e);
                }
            }
        }
        // VPP buffer reservations (§4.4).
        if let Err(e) = self.rx_port.reserve(nf, req.vpp.pb) {
            self.rollback(nf, saved_free_regions, saved_next_region);
            return Err(e);
        }
        if let Err(e) = self.tx_port.reserve(nf, req.vpp.odb) {
            self.rollback(nf, saved_free_regions, saved_next_region);
            return Err(e);
        }
        // Build the locked per-core TLBs before committing anything, so a
        // (planner-bug) capacity overflow still rolls back cleanly.
        let mut new_tlbs: Vec<(CoreId, Tlb)> = Vec::new();
        if self.config.mode == NicMode::Snic {
            for &c in &req.cores {
                let mut tlb = Tlb::new(c, self.config.core_tlb_entries);
                let mut va = 0u64;
                let mut pa = base;
                for &(page_size, count) in &plan.pages {
                    for _ in 0..count {
                        let install = tlb.install(PageMapping {
                            va,
                            pa,
                            page_size,
                            writable: true,
                        });
                        if let Err(e) = install {
                            self.rollback(nf, saved_free_regions, saved_next_region);
                            return Err(e.into());
                        }
                        va += page_size;
                        pa += page_size;
                    }
                }
                tlb.lock();
                new_tlbs.push((c, tlb));
            }
        }

        // Commit point: everything below cannot fail.
        self.next_nf += 1;
        self.injector.note(
            self.now,
            Some(nf),
            FaultEventKind::RegionReused {
                base,
                len: region_len,
            },
        );
        for &c in &req.cores {
            self.core_owner[usize::from(c.0)] = Some(nf);
        }

        let mut denylist_time = Picos::ZERO;
        if self.config.mode == NicMode::Snic {
            // Denylist the region against the management core (§4.2).
            // Ownership exclusivity makes an overlap impossible here.
            self.guard.denylist_mut().deny(base, region_len, nf)?;
            denylist_time = DENYLISTING;
            // Install the locked per-core TLBs built above.
            for (c, tlb) in new_tlbs {
                self.core_tlbs.insert(c, tlb);
            }
        } else {
            // Commodity: the image lands in the shared pool with
            // discoverable allocator metadata (§3.3's attack surface).
        }

        // Copy the initial image into the function's memory.
        let image_base = if self.config.mode == NicMode::Commodity && !req.image.is_empty() {
            let (_, buf) = self
                .allocator
                .alloc(&mut self.guard, nf, req.image.len() as u64, false)
                .unwrap_or((0, base));
            buf
        } else {
            base
        };
        let hw = Principal::TrustedHardware;
        self.guard.write_phys(hw, image_base, &req.image.code)?;
        self.guard.write_phys(
            hw,
            image_base + req.image.code.len() as u64,
            &req.image.config,
        )?;

        // Cumulative measurement (§4.6): code, config, rules, topology.
        let mut h = Sha256::new();
        h.update(&req.image.code);
        h.update(&req.image.config);
        for r in &req.rules {
            h.update(format!("{r:?}").as_bytes());
        }
        for c in &req.cores {
            h.update(&c.0.to_le_bytes());
        }
        h.update(&req.memory.bytes().to_le_bytes());
        let measurement = h.finalize();

        // Install switching rules pointing at the new function.
        for rule in &mut req.rules {
            rule.target = nf;
            self.rules.install(rule.clone());
        }

        // Per-core DMA banks (§4.2): one bank per programmable core, TLB
        // windows locked to the function's region and the
        // host-sanctioned window.
        if let Some((hbase, hlen)) = req.host_window {
            for &c in &req.cores {
                let mut bank = DmaBank::new(
                    c,
                    nf,
                    DmaWindow {
                        base,
                        len: region_len,
                    },
                    DmaWindow {
                        base: hbase,
                        len: hlen,
                    },
                );
                bank.lock();
                self.dma_banks.insert(c, bank);
            }
        }

        let record = NfRecord {
            cores: req.cores.clone(),
            region: (base, region_len),
            image_base,
            measurement,
            analysis_digest,
            accel,
            memory: req.memory,
            host_window: req.host_window,
            vpp: req.vpp,
            tlb_entries: plan.entries(),
            state: NfState::Launched,
            rx_queue: VecDeque::new(),
            rx_bytes: 0,
            pb_cap: req.vpp.pb.bytes(),
            pdb_slots: req.vpp.pdb.bytes() / 32,
            ring_next: 0,
            rx_delivered: 0,
            rx_dropped: 0,
            tx_sent: 0,
        };
        self.launched.insert(nf, record);

        let latency = LaunchLatency {
            tlb_setup: TLB_SETUP,
            denylisting: denylist_time,
            sha_digest: sha_digest_time(req.memory),
        };
        self.now += latency.total();
        Ok(LaunchReceipt {
            nf_id: nf,
            measurement,
            latency,
        })
    }

    /// Undo a partially admitted launch: release every binding claimed
    /// so far and restore the region allocator to its pre-launch state
    /// (both the free list and the bump pointer — merely re-freeing the
    /// region would leave fragmentation and, on hinted launches, leaks).
    fn rollback(&mut self, nf: NfId, saved_free_regions: Vec<(u64, u64)>, saved_next_region: u64) {
        self.free_regions = saved_free_regions;
        self.next_region = saved_next_region;
        self.ownership.release_owner(nf);
        for pool in &mut self.pools {
            pool.release_owner(nf);
        }
        let _ = self.rx_port.release_owner(nf);
        let _ = self.tx_port.release_owner(nf);
    }

    // ------------------------------------------------------------------
    // nf_teardown (§4.6)
    // ------------------------------------------------------------------

    /// Return a region to the free list, coalescing with neighbors.
    fn free_region(&mut self, base: u64, len: u64) {
        self.free_regions.push((base, len));
        self.free_regions.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free_regions.len());
        for &(b, l) in &self.free_regions {
            match merged.last_mut() {
                Some(&mut (pb, ref mut pl)) if pb + *pl == b => *pl += l,
                _ => merged.push((b, l)),
            }
        }
        self.free_regions = merged;
    }

    /// Zeroize `[base+start, base+len)` in [`SCRUB_CHUNK`] steps,
    /// consulting the injector before each chunk. On an injected power
    /// loss the progress watermark is pushed as a [`ScrubTicket`] (the
    /// crash-consistent §4.6 metadata), the device is marked crashed,
    /// and the region stays denylisted and off the free list.
    fn scrub_region(
        &mut self,
        nf: NfId,
        base: u64,
        len: u64,
        start: u64,
    ) -> Result<Picos, SnicError> {
        let mut watermark = start;
        while watermark < len {
            if let Some(FaultKind::PowerLoss) =
                self.injector.check(FaultSite::Scrub, self.now, Some(nf))
            {
                self.injector.note(
                    self.now,
                    Some(nf),
                    FaultEventKind::ScrubProgress {
                        base,
                        watermark,
                        len,
                    },
                );
                self.injector
                    .note(self.now, None, FaultEventKind::PowerLost);
                self.pending_scrubs.push(ScrubTicket {
                    nf,
                    base,
                    len,
                    watermark,
                });
                self.pending_scrubs.sort_unstable_by_key(|t| t.base);
                self.crashed = true;
                if self.telemetry.enabled() {
                    self.telemetry
                        .instant(nf.0, "fault.power_loss_mid_scrub", self.now.0);
                }
                return Err(SnicError::PowerLoss);
            }
            let chunk = SCRUB_CHUNK.min(len - watermark);
            self.guard.raw_mem().scrub(base + watermark, chunk);
            watermark += chunk;
        }
        self.injector.note(
            self.now,
            Some(nf),
            FaultEventKind::ScrubCompleted { base, len },
        );
        let elapsed = scrub_time(ByteSize(len - start));
        if self.telemetry.enabled() {
            self.telemetry.record(nf.0, metrics::SCRUB_PS, elapsed.0);
        }
        Ok(elapsed)
    }

    /// The `nf_teardown` trusted instruction.
    ///
    /// Volatile bindings (cores, TLBs, DMA banks, clusters, VPP buffers,
    /// switch rules) are released first; DRAM zeroization then runs
    /// chunk by chunk. If power is lost mid-scrub the call returns
    /// [`SnicError::PowerLoss`] with the region still denylisted and
    /// unavailable — [`SmartNic::resume_scrubs`] (or the next power
    /// cycle) finishes the job from the saved watermark.
    pub fn nf_teardown(&mut self, nf: NfId) -> Result<TeardownReceipt, SnicError> {
        let t0 = self.now.0;
        let result = self.nf_teardown_inner(nf);
        if self.telemetry.enabled() {
            match &result {
                Ok(_) => {
                    self.telemetry.counter_add(0, metrics::TEARDOWNS, 1);
                    self.telemetry.span_begin(nf.0, "nf.teardown", t0);
                    self.telemetry.span_end(nf.0, "nf.teardown", self.now.0);
                }
                Err(_) => self.telemetry.instant(nf.0, "nf.teardown_failed", t0),
            }
        }
        result
    }

    fn nf_teardown_inner(&mut self, nf: NfId) -> Result<TeardownReceipt, SnicError> {
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let (base, len) = record.region;
        let from = record.state;
        self.injector.note(
            self.now,
            Some(nf),
            FaultEventKind::TeardownStarted { base, len },
        );
        self.injector.note(
            self.now,
            Some(nf),
            FaultEventKind::Transition {
                from,
                to: NfState::Scrubbing,
            },
        );
        let record = self.launched.remove(&nf).expect("checked above");
        for &c in &record.cores {
            self.core_owner[usize::from(c.0)] = None;
            self.dma_banks.remove(&c);
            if let Some(tlb) = self.core_tlbs.get_mut(&c) {
                tlb.reset();
            }
        }
        self.ownership.release_owner(nf);
        for pool in &mut self.pools {
            pool.release_owner(nf);
        }
        let _ = self.rx_port.release_owner(nf);
        let _ = self.tx_port.release_owner(nf);
        self.rules.remove_target(nf);
        self.bus_ops.remove(&nf);
        let mut scrub = Picos::ZERO;
        let mut allowlist = Picos::ZERO;
        if self.config.mode == NicMode::Snic {
            // Zero the function's pages before releasing them (§4.6).
            scrub = self.scrub_region(nf, base, len, 0)?;
            self.guard.denylist_mut().allow_owner(nf);
            allowlist = ALLOWLISTING;
        }
        self.free_region(base, len);
        self.injector.note(
            self.now,
            Some(nf),
            FaultEventKind::Transition {
                from: NfState::Scrubbing,
                to: NfState::Reclaimed,
            },
        );
        let latency = TeardownLatency {
            allowlisting: allowlist,
            scrub,
        };
        self.now += latency.total();
        Ok(TeardownReceipt { latency })
    }

    // ------------------------------------------------------------------
    // Packet path (§4.4)
    // ------------------------------------------------------------------

    /// The packet input module: classify and deliver one packet.
    ///
    /// Returns the receiving NF, or `None` if no rule matched (packet
    /// dropped at the switch).
    pub fn rx_packet(&mut self, pkt: &Packet) -> Result<Option<NfId>, SnicError> {
        self.fail_if_crashed()?;
        if self.telemetry.enabled() {
            self.telemetry.counter_add(0, metrics::RX_PACKETS, 1);
        }
        let Some(nf) = self.rules.classify(pkt) else {
            return Ok(None);
        };
        if !self.launched.contains_key(&nf) {
            return Ok(None);
        }
        if self.telemetry.enabled() {
            self.telemetry.counter_add(nf.0, metrics::RX_MATCHED, 1);
        }
        // Delivery can crash the receiving core (a poisoned packet).
        if let Some(FaultKind::NfCrash) = self.injector.check(FaultSite::Rx, self.now, Some(nf)) {
            self.fault_nf(nf)?;
            return Ok(Some(nf));
        }
        let record = self.launched.get_mut(&nf).expect("checked above");
        if !record.state.is_operational() {
            // A faulted NF's core is halted: the VPP drops its traffic.
            record.rx_dropped += 1;
            return Ok(Some(nf));
        }
        if record.state == NfState::Launched {
            record.state = NfState::Running;
            self.injector.note(
                self.now,
                Some(nf),
                FaultEventKind::Transition {
                    from: NfState::Launched,
                    to: NfState::Running,
                },
            );
        }
        let record = self.launched.get_mut(&nf).expect("checked above");
        let len = pkt.len() as u64;
        if record.rx_bytes + len > record.pb_cap
            || record.rx_queue.len() as u64 + 1 > record.pdb_slots
        {
            record.rx_dropped += 1;
            return Ok(Some(nf));
        }
        // Copy the packet into DRAM: commodity → shared pool with
        // metadata; S-NIC → the NF's private region (a ring at its top).
        let base = match self.config.mode {
            NicMode::Commodity => {
                let (_, base) = self.allocator.alloc(&mut self.guard, nf, len, true)?;
                base
            }
            NicMode::Snic => {
                let (rbase, rlen) = record.region;
                let ring_span = record.pb_cap.min(rlen / 2);
                let ring_base = rbase + rlen - ring_span;
                let aligned = len.div_ceil(64) * 64;
                if record.ring_next + aligned > ring_span {
                    record.ring_next = 0;
                }
                let b = ring_base + record.ring_next;
                record.ring_next += aligned;
                b
            }
        };
        self.guard
            .write_phys(Principal::TrustedHardware, base, &pkt.data)?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        record.rx_bytes += len;
        record.rx_queue.push_back((base, pkt.len() as u32));
        Ok(Some(nf))
    }

    /// The NF polls its next packet; bytes are read back from DRAM, so
    /// any tampering that happened while the packet sat in the buffer is
    /// visible to the function (this is how the §3.3 corruption attack
    /// bites).
    pub fn poll_packet(&mut self, nf: NfId) -> Result<Option<Packet>, SnicError> {
        self.fail_if_crashed()?;
        self.datapath_gate(nf)?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let Some((base, len)) = record.rx_queue.pop_front() else {
            return Ok(None);
        };
        record.rx_bytes -= u64::from(len);
        record.rx_delivered += 1;
        if self.telemetry.enabled() {
            self.telemetry.counter_add(nf.0, metrics::RX_POLLED, 1);
        }
        let mut buf = vec![0u8; len as usize];
        self.guard
            .read_phys(Principal::TrustedHardware, base, &mut buf)?;
        Ok(Some(Packet::from_bytes(bytes::Bytes::from(buf))))
    }

    /// The NF hands a packet to the output module.
    pub fn tx_packet(&mut self, nf: NfId, pkt: Packet) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.datapath_gate(nf)?;
        let record = self.launched.get_mut(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        record.tx_sent += 1;
        if self.telemetry.enabled() {
            self.telemetry.counter_add(nf.0, metrics::TX_SENT, 1);
        }
        self.tx_wire.push_back(pkt);
        Ok(())
    }

    /// Drain one packet from the wire side.
    pub fn wire_pop(&mut self) -> Option<Packet> {
        self.tx_wire.pop_front()
    }

    // ------------------------------------------------------------------
    // Memory access paths
    // ------------------------------------------------------------------

    /// Physical read as `who` (the commodity `xkphys` path; under S-NIC
    /// this fails for NFs and is denylist-checked for management).
    pub fn mem_read(&self, who: Principal, addr: u64, out: &mut [u8]) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.guard.read_phys(who, addr, out)
    }

    /// Physical write as `who`.
    pub fn mem_write(&mut self, who: Principal, addr: u64, data: &[u8]) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.guard.write_phys(who, addr, data)
    }

    /// Virtual read through an NF core's locked TLB (the S-NIC path).
    pub fn nf_read(
        &self,
        nf: NfId,
        core: CoreId,
        va: u64,
        out: &mut [u8],
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Err(SnicError::NfFaulted(nf));
        }
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        let tlb = self
            .core_tlbs
            .get(&core)
            .ok_or_else(|| SnicError::InvalidConfig("core has no TLB (commodity mode)".into()))?;
        self.guard.read_virt(tlb, va, out)
    }

    /// Virtual write through an NF core's locked TLB.
    pub fn nf_write(
        &mut self,
        nf: NfId,
        core: CoreId,
        va: u64,
        data: &[u8],
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        self.datapath_gate(nf)?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        let tlb =
            self.core_tlbs.get(&core).cloned().ok_or_else(|| {
                SnicError::InvalidConfig("core has no TLB (commodity mode)".into())
            })?;
        self.guard.write_virt(&tlb, va, data)
    }

    /// Common data-path admission: the NF must exist and be operational;
    /// an injected [`FaultKind::NfCrash`] at the `DataPath` site fells
    /// it here. First use promotes `Launched → Running`.
    fn datapath_gate(&mut self, nf: NfId) -> Result<(), SnicError> {
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Err(SnicError::NfFaulted(nf));
        }
        if let Some(FaultKind::NfCrash) =
            self.injector.check(FaultSite::DataPath, self.now, Some(nf))
        {
            self.fault_nf(nf)?;
            return Err(SnicError::NfFaulted(nf));
        }
        if self.launched[&nf].state == NfState::Launched {
            self.transition(nf, NfState::Running);
        }
        Ok(())
    }

    /// An NF core crashes: wild stores spray from the dying core, then
    /// it halts (`state → Faulted`; its region is not reclaimed until
    /// `nf_teardown`). Under S-NIC the stores bounce off the locked
    /// TLBs/denylist, so the blast radius is the NF itself. On a
    /// commodity NIC the same store lands physically (`xkphys`) in a
    /// co-located tenant's queued packet buffer — §3.3's corruption,
    /// now arising from an accident instead of an attack.
    pub fn fault_nf(&mut self, nf: NfId) -> Result<(), SnicError> {
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Ok(());
        }
        let core = record.cores[0];
        // The wild store aims at another live tenant's freshest queued
        // packet (or its image when no packet is in flight).
        let target = self
            .launched
            .iter()
            .filter(|(&id, r)| id != nf && r.state.is_operational())
            .map(|(_, r)| r.rx_queue.front().map(|&(b, _)| b).unwrap_or(r.image_base))
            .next();
        if let Some(addr) = target {
            // Enforcement decides containment: commodity lets this
            // through, S-NIC returns an isolation error we swallow —
            // the dying core cannot corrupt anyone.
            let _ = self
                .guard
                .write_phys(Principal::Nf(nf, core), addr, &[0xDE; 32]);
        }
        self.transition(nf, NfState::Faulted);
        Ok(())
    }

    /// Submit one accelerator request on behalf of `nf` — the §4.3
    /// fault-domain model. Returns the (nominal, deterministic) service
    /// latency. An injected [`FaultKind::AccelClusterFault`] is
    /// cluster-fatal: under S-NIC the owner's clusters are poisoned
    /// (withheld from reallocation until a power cycle) and the owner
    /// faults; on a commodity NIC the *shared* engine wedges and the
    /// whole device hard-crashes.
    pub fn accel_submit(&mut self, nf: NfId) -> Result<Picos, SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Err(SnicError::NfFaulted(nf));
        }
        if let Some(FaultKind::AccelClusterFault) =
            self.injector.check(FaultSite::Accel, self.now, Some(nf))
        {
            match self.config.mode {
                NicMode::Snic => {
                    let clusters = self.launched[&nf].accel.clone();
                    for c in clusters {
                        if let Some(pool) = self.pools.iter_mut().find(|p| p.kind() == c.kind) {
                            pool.fault(c.index);
                        }
                    }
                    self.transition(nf, NfState::Faulted);
                    return Err(SnicError::NfFaulted(nf));
                }
                NicMode::Commodity => {
                    self.injector
                        .note(self.now, None, FaultEventKind::DeviceCrashed);
                    self.crashed = true;
                    return Err(SnicError::NicCrashed);
                }
            }
        }
        if self.telemetry.enabled() {
            self.telemetry.counter_add(nf.0, metrics::ACCEL_SUBMITS, 1);
        }
        Ok(Picos::nanos(1))
    }

    // ------------------------------------------------------------------
    // Bus behaviour (§3.3 DoS / §4.5 arbitration)
    // ------------------------------------------------------------------

    /// Issue `ops` back-to-back bus operations from `nf` (the Agilio
    /// `test_subsat` flood). On a commodity NIC, saturating the bus
    /// hard-crashes the device; under S-NIC the temporal arbiter bounds
    /// the NF to its own slots, so the flood only slows the attacker.
    ///
    /// Returns the simulated time the flood took.
    pub fn bus_flood(&mut self, nf: NfId, ops: u64) -> Result<Picos, SnicError> {
        self.fail_if_crashed()?;
        if !self.launched.contains_key(&nf) {
            return Err(SnicError::NoSuchNf(nf));
        }
        *self.bus_ops.entry(nf).or_default() += ops;
        if self.telemetry.enabled() {
            self.telemetry
                .counter_add(nf.0, metrics::BUS_FLOOD_OPS, ops);
        }
        match self.config.mode {
            NicMode::Commodity => {
                if self.bus_ops[&nf] > self.config.bus_crash_threshold {
                    self.crashed = true;
                    return Err(SnicError::NicCrashed);
                }
                // Unarbitrated: each op takes one bus cycle.
                Ok(Picos(ops * 1_000_000 / (self.config.clock_hz / 1_000_000)))
            }
            NicMode::Snic => {
                // Temporal partitioning: the NF only owns 1/N of bus
                // time, so the flood stretches by the domain count but
                // can never saturate the shared bus.
                let domains = self.launched.len().max(1) as u64;
                Ok(Picos(
                    ops * domains * 1_000_000 / (self.config.clock_hz / 1_000_000),
                ))
            }
        }
    }

    /// Clusters bound to `nf` for `kind`.
    pub fn clusters_of(&self, nf: NfId, kind: AccelKind) -> Vec<AccelClusterId> {
        self.launched
            .get(&nf)
            .map(|r| r.accel.iter().filter(|c| c.kind == kind).copied().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Host DMA (§4.2)
    // ------------------------------------------------------------------

    /// Host-side direct access to host RAM (the host OS writing its own
    /// memory; no NIC involvement).
    pub fn host_mem(&mut self) -> &mut PhysMem {
        &mut self.host_mem
    }

    fn dma_bank(&mut self, nf: NfId, core: CoreId) -> Result<&mut DmaBank, SnicError> {
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.cores.contains(&core) {
            return Err(SnicError::InvalidConfig(format!(
                "{core} not bound to {nf}"
            )));
        }
        self.dma_banks
            .get_mut(&core)
            .ok_or_else(|| SnicError::InvalidConfig("no DMA bank configured".into()))
    }

    /// DMA from the function's region (at `nic_off`) to host RAM.
    pub fn dma_to_host(
        &mut self,
        nf: NfId,
        core: CoreId,
        nic_off: u64,
        host_addr: u64,
        len: u64,
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Err(SnicError::NfFaulted(nf));
        }
        let (base, _) = record.region;
        let nic_addr = base + nic_off;
        self.dma_fault_gate(nf, nic_addr)?;
        self.dma_bank(nf, core)?
            .validate(DmaDirection::NicToHost, nic_addr, host_addr, len)?;
        let mut buf = vec![0u8; len as usize];
        self.guard.raw_mem().read(nic_addr, &mut buf);
        self.host_mem.write(host_addr, &buf);
        Ok(())
    }

    /// Injected bus errors on the DMA path. Under S-NIC the per-bank
    /// transaction simply aborts ([`SnicError::BusError`], contained to
    /// the one transfer); on a commodity NIC a wedged shared bus takes
    /// the whole device down (§3.3's DoS, by accident).
    fn dma_fault_gate(&mut self, nf: NfId, nic_addr: u64) -> Result<(), SnicError> {
        if let Some(FaultKind::DmaBusError) =
            self.injector.check(FaultSite::Dma, self.now, Some(nf))
        {
            match self.config.mode {
                NicMode::Snic => return Err(SnicError::BusError { addr: nic_addr }),
                NicMode::Commodity => {
                    self.injector
                        .note(self.now, None, FaultEventKind::DeviceCrashed);
                    self.crashed = true;
                    return Err(SnicError::NicCrashed);
                }
            }
        }
        Ok(())
    }

    /// DMA from host RAM into the function's region (at `nic_off`).
    pub fn dma_from_host(
        &mut self,
        nf: NfId,
        core: CoreId,
        nic_off: u64,
        host_addr: u64,
        len: u64,
    ) -> Result<(), SnicError> {
        self.fail_if_crashed()?;
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        if !record.state.is_operational() {
            return Err(SnicError::NfFaulted(nf));
        }
        let (base, _) = record.region;
        let nic_addr = base + nic_off;
        self.dma_fault_gate(nf, nic_addr)?;
        self.dma_bank(nf, core)?
            .validate(DmaDirection::HostToNic, nic_addr, host_addr, len)?;
        let mut buf = vec![0u8; len as usize];
        self.host_mem.read(host_addr, &mut buf);
        self.guard.raw_mem().write(nic_addr, &buf);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attestation support (Appendix A)
    // ------------------------------------------------------------------

    /// The `nf_attest` instruction: sign `Hash(initial state) ‖ verdict
    /// ‖ analysis_digest ‖ context` with the AK. The context carries the
    /// verifier nonce and DH transcript; the analysis digest is the
    /// Pass 0 certificate (all-zero when the function launched without
    /// one). Protocol logic lives in [`crate::attest`].
    pub fn nf_attest(
        &mut self,
        nf: NfId,
        context: &[u8],
    ) -> Result<crate::attest::SignedStatement, SnicError> {
        self.fail_if_crashed()?;
        // The quote embeds the live verifier verdict: a relying party
        // learns not just *what* launched but that the device's current
        // allocation still verifies as an isolation-respecting partition.
        let verdict = self.verify_state().is_ok();
        let record = self.launched.get(&nf).ok_or(SnicError::NoSuchNf(nf))?;
        let mut statement = Vec::with_capacity(65 + context.len());
        statement.extend_from_slice(&record.measurement);
        statement.push(u8::from(verdict));
        statement.extend_from_slice(&record.analysis_digest);
        statement.extend_from_slice(context);
        let signature = self.ak.sign(&statement);
        self.now += crate::instr::ATTEST_RSA + crate::instr::ATTEST_SHA;
        if self.telemetry.enabled() {
            self.telemetry.counter_add(nf.0, metrics::ATTESTS, 1);
        }
        Ok(crate::attest::SignedStatement {
            measurement: record.measurement,
            verdict,
            analysis_digest: record.analysis_digest,
            signature,
            ak_endorsement: self.ak.endorsement.clone(),
            ek_certificate: self.ek.certificate.clone(),
        })
    }
}

/// A live function's record, rendered as the manifest the verifier
/// checks.
fn manifest_of(nf: NfId, r: &NfRecord) -> VnicManifest {
    let mut accel: Vec<(AccelKind, usize)> = Vec::new();
    for c in &r.accel {
        match accel.iter_mut().find(|(k, _)| *k == c.kind) {
            Some((_, n)) => *n += 1,
            None => accel.push((c.kind, 1)),
        }
    }
    VnicManifest {
        nf,
        cores: r.cores.clone(),
        region: r.region,
        host_window: r.host_window,
        tlb_entries: r.tlb_entries as usize,
        accel,
        vpp: r.vpp,
        bus_slice: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::NfImage;
    use snic_pktio::rules::SwitchRule;
    use snic_pktio::vpp::VppBufferSpec;
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn vendor() -> VendorCa {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        VendorCa::new(&mut rng)
    }

    fn snic() -> SmartNic {
        SmartNic::new(NicConfig::small(NicMode::Snic), &vendor())
    }

    fn commodity() -> SmartNic {
        SmartNic::new(NicConfig::small(NicMode::Commodity), &vendor())
    }

    fn req(core: u16, mem_mib: u64) -> LaunchRequest {
        LaunchRequest::minimal(
            CoreId(core),
            ByteSize::mib(mem_mib),
            NfImage {
                code: vec![0xAA; 128],
                config: vec![0xBB; 64],
            },
        )
    }

    fn req_with_rule(core: u16, mem_mib: u64, dst_port: u16) -> LaunchRequest {
        let mut r = req(core, mem_mib);
        r.rules.push(SwitchRule {
            dst_port: snic_pktio::rules::RuleMatch::Exact(dst_port),
            priority: 5,
            ..SwitchRule::any(NfId(0))
        });
        r
    }

    fn pkt(dst_port: u16) -> Packet {
        PacketBuilder::new(1, 2, Protocol::Udp, 1000, dst_port)
            .payload(b"payload".to_vec())
            .build()
    }

    #[test]
    fn telemetry_sink_does_not_perturb_device_behaviour() {
        use snic_telemetry::Recorder;
        // The same scripted episode on two identical devices — one
        // observed, one not — must produce byte-identical receipts,
        // packets and fault transcripts.
        let run = |observed: bool| {
            let mut nic = snic();
            let recorder = Arc::new(Recorder::new());
            if observed {
                nic.set_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
            }
            let r = nic.nf_launch(req_with_rule(0, 4, 443)).unwrap();
            let nf = r.nf_id;
            assert!(nic.rx_packet(&pkt(443)).unwrap().is_some());
            let p = nic.poll_packet(nf).unwrap().expect("queued packet");
            nic.tx_packet(nf, p.clone()).unwrap();
            let _ = nic.accel_submit(nf).unwrap();
            let _ = nic.bus_flood(nf, 100).unwrap();
            let t = nic.nf_teardown(nf).unwrap();
            (r, p, t, nic.take_fault_log(), recorder)
        };
        let (r_on, p_on, t_on, log_on, recorder) = run(true);
        let (r_off, p_off, t_off, log_off, _) = run(false);
        assert_eq!(r_on.measurement, r_off.measurement);
        assert_eq!(r_on.latency, r_off.latency);
        assert_eq!(p_on.data, p_off.data);
        assert_eq!(t_on.latency, t_off.latency);
        assert_eq!(log_on, log_off, "transcripts must be sink-independent");

        // And the observed run actually recorded the episode.
        let summary = recorder.summary();
        let nf = r_on.nf_id.0;
        assert_eq!(summary.counters[&(0, metrics::LAUNCHES.to_string())], 1);
        assert_eq!(summary.counters[&(0, metrics::TEARDOWNS.to_string())], 1);
        assert_eq!(summary.counters[&(0, metrics::RX_PACKETS.to_string())], 1);
        assert_eq!(summary.counters[&(nf, metrics::RX_POLLED.to_string())], 1);
        assert_eq!(summary.counters[&(nf, metrics::TX_SENT.to_string())], 1);
        assert_eq!(
            summary.counters[&(nf, metrics::ACCEL_SUBMITS.to_string())],
            1
        );
        assert_eq!(
            summary.counters[&(nf, metrics::BUS_FLOOD_OPS.to_string())],
            100
        );
        assert_eq!(
            summary.hists[&(nf, metrics::SCRUB_PS.to_string())].count(),
            1
        );
        assert!(
            summary.counters[&(nf, metrics::PORT_RESERVED_BYTES.to_string())] > 0,
            "port reservations flow through the shared sink"
        );
        // Span events: launch + teardown begin/end pairs at least.
        let events = recorder.events();
        assert!(events.iter().any(|e| e.name == "nf.launch"));
        assert!(events.iter().any(|e| e.name == "nf.teardown"));
    }

    #[test]
    fn launch_assigns_unique_ids_and_cores() {
        let mut nic = snic();
        let a = nic.nf_launch(req(0, 4)).unwrap();
        let b = nic.nf_launch(req(1, 4)).unwrap();
        assert_ne!(a.nf_id, b.nf_id);
        assert_eq!(nic.live_nfs(), 2);
        // Core reuse rejected.
        assert_eq!(
            nic.nf_launch(req(0, 4)).unwrap_err(),
            SnicError::CoreBusy(CoreId(0))
        );
    }

    #[test]
    fn launch_measurement_depends_on_image() {
        let mut nic = snic();
        let a = nic.nf_launch(req(0, 4)).unwrap();
        let mut other = req(1, 4);
        other.image.code[0] ^= 1;
        let b = nic.nf_launch(other).unwrap();
        assert_ne!(a.measurement, b.measurement);
    }

    #[test]
    fn launch_latency_scales_with_memory() {
        let mut nic = snic();
        let small = nic.nf_launch(req(0, 4)).unwrap();
        let big = nic.nf_launch(req(1, 64)).unwrap();
        assert!(big.latency.sha_digest.0 > 10 * small.latency.sha_digest.0);
        assert!(big.latency.total() > small.latency.total());
        assert_eq!(small.latency.tlb_setup, TLB_SETUP);
    }

    #[test]
    fn commodity_launch_skips_denylisting() {
        let mut nic = commodity();
        let r = nic.nf_launch(req(0, 4)).unwrap();
        assert_eq!(r.latency.denylisting, Picos::ZERO);
        let mut nic2 = snic();
        let r2 = nic2.nf_launch(req(0, 4)).unwrap();
        assert_eq!(r2.latency.denylisting, DENYLISTING);
    }

    #[test]
    fn snic_nf_private_memory_via_tlb() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        nic.nf_write(id, CoreId(0), 0x1000, b"flow state").unwrap();
        let mut buf = [0u8; 10];
        nic.nf_read(id, CoreId(0), 0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"flow state");
        // Out-of-range virtual access is fatal (TLB miss).
        assert!(nic.nf_read(id, CoreId(0), 64 << 20, &mut buf).is_err());
        // A core not bound to the NF cannot use its mapping.
        assert!(nic.nf_read(id, CoreId(1), 0x1000, &mut buf).is_err());
    }

    #[test]
    fn snic_blocks_cross_nf_physical_access() {
        let mut nic = snic();
        let victim = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let attacker = nic.nf_launch(req(1, 4)).unwrap().nf_id;
        nic.nf_write(victim, CoreId(0), 0, b"secret").unwrap();
        let (vbase, _) = nic.record_of(victim).unwrap().region;
        let mut buf = [0u8; 6];
        // Attacker NF: no physical addressing at all under S-NIC.
        let err = nic
            .mem_read(Principal::Nf(attacker, CoreId(1)), vbase, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
        // Management core: denylisted.
        let err = nic
            .mem_read(Principal::Management, vbase, &mut buf)
            .unwrap_err();
        assert!(matches!(err, SnicError::Isolation(_)));
    }

    #[test]
    fn commodity_allows_cross_nf_physical_access() {
        let mut nic = commodity();
        let victim = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let attacker = nic.nf_launch(req(1, 4)).unwrap().nf_id;
        let vbase = nic.record_of(victim).unwrap().image_base;
        let mut buf = [0u8; 128];
        nic.mem_read(Principal::Nf(attacker, CoreId(1)), vbase, &mut buf)
            .unwrap();
        assert_eq!(buf[0], 0xAA, "attacker read the victim's code image");
    }

    #[test]
    fn teardown_scrubs_and_releases() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        nic.nf_write(id, CoreId(0), 0x100, b"sensitive").unwrap();
        let (base, _) = nic.record_of(id).unwrap().region;
        let receipt = nic.nf_teardown(id).unwrap();
        assert!(receipt.latency.scrub > Picos::ZERO);
        // The region is zero and no longer denylisted.
        let mut buf = [0xffu8; 9];
        nic.mem_read(Principal::Management, base + 0x100, &mut buf)
            .unwrap();
        assert_eq!(buf, [0u8; 9]);
        // Core is reusable.
        assert!(nic.nf_launch(req(0, 4)).is_ok());
    }

    #[test]
    fn teardown_unknown_nf_fails() {
        let mut nic = snic();
        assert_eq!(
            nic.nf_teardown(NfId(99)).unwrap_err(),
            SnicError::NoSuchNf(NfId(99))
        );
    }

    #[test]
    fn packet_path_end_to_end() {
        let mut nic = snic();
        let id = nic.nf_launch(req_with_rule(0, 4, 8080)).unwrap().nf_id;
        assert_eq!(nic.rx_packet(&pkt(8080)).unwrap(), Some(id));
        assert_eq!(
            nic.rx_packet(&pkt(9999)).unwrap(),
            None,
            "unmatched packet dropped"
        );
        let got = nic.poll_packet(id).unwrap().unwrap();
        assert_eq!(got.udp().unwrap().dst_port, 8080);
        assert_eq!(got.payload(), b"payload");
        assert!(nic.poll_packet(id).unwrap().is_none());
        nic.tx_packet(id, got).unwrap();
        assert!(nic.wire_pop().is_some());
    }

    #[test]
    fn vpp_capacity_enforced() {
        let mut nic = snic();
        let mut r = req_with_rule(0, 4, 80);
        r.vpp = VppBufferSpec {
            pb: ByteSize(256),
            pdb: ByteSize(64),
            odb: ByteSize::kib(1),
        };
        let id = nic.nf_launch(r).unwrap().nf_id;
        // pdb 64 bytes = 2 descriptors.
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        assert_eq!(nic.record_of(id).unwrap().rx_dropped, 1);
    }

    #[test]
    fn bus_flood_crashes_commodity_only() {
        let mut commodity_nic = commodity();
        let a = commodity_nic.nf_launch(req(0, 4)).unwrap().nf_id;
        assert_eq!(
            commodity_nic.bus_flood(a, 100_000_000).unwrap_err(),
            SnicError::NicCrashed
        );
        assert!(commodity_nic.is_crashed());
        // Everything now fails until a power cycle.
        assert_eq!(
            commodity_nic.rx_packet(&pkt(80)).unwrap_err(),
            SnicError::NicCrashed
        );
        commodity_nic.power_cycle();
        assert!(!commodity_nic.is_crashed());
        assert_eq!(commodity_nic.live_nfs(), 0, "power cycle loses all NFs");

        let mut snic_nic = snic();
        let b = snic_nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let t = snic_nic.bus_flood(b, 100_000_000).unwrap();
        assert!(!snic_nic.is_crashed());
        assert!(t > Picos::ZERO);
    }

    #[test]
    fn accel_clusters_allocated_and_released() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.accel = vec![(AccelKind::Dpi, 2), (AccelKind::Zip, 1)];
        let id = nic.nf_launch(r).unwrap().nf_id;
        assert_eq!(nic.clusters_of(id, AccelKind::Dpi).len(), 2);
        assert_eq!(nic.clusters_of(id, AccelKind::Zip).len(), 1);
        // Exhaustion fails atomically.
        let mut r2 = req(1, 4);
        r2.accel = vec![(AccelKind::Dpi, 100)];
        assert!(nic.nf_launch(r2).is_err());
        // The failed launch did not leak cores or clusters.
        assert!(nic.nf_launch(req(1, 4)).is_ok());
        nic.nf_teardown(id).unwrap();
        assert_eq!(nic.clusters_of(id, AccelKind::Dpi).len(), 0);
    }

    #[test]
    fn attest_signs_measurement_with_chain() {
        let v = vendor();
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let stmt = nic.nf_attest(id, b"nonce+dh").unwrap();
        assert!(stmt.verdict, "a healthy device verifies cleanly");
        let mut expected = Vec::new();
        expected.extend_from_slice(&stmt.measurement);
        expected.push(1); // verifier verdict byte
        expected.extend_from_slice(&[0u8; 32]); // no Pass 0 submission
        expected.extend_from_slice(b"nonce+dh");
        assert!(snic_crypto::keys::verify_chain(
            v.public(),
            &stmt.ek_certificate,
            &stmt.ak_endorsement,
            &expected,
            &stmt.signature,
        ));
    }

    fn clean_analysis() -> snic_analyze::LaunchAnalysis {
        use snic_analyze::{AnalysisManifest, Operand, ProgramBuilder, RegionClass};
        let mut b = ProgramBuilder::new("attested-nf");
        let pkt = b.region("pktbuf", 0x1000, 0x200, RegionClass::PacketBuf);
        let v = b.load(pkt, Operand::Imm(0), 8, 10);
        b.emit(Operand::Reg(v), 5);
        snic_analyze::LaunchAnalysis {
            program: b.finish(),
            manifest: AnalysisManifest {
                regions: vec![(0x1000, 0x200)],
                accel: vec![],
                dma_window: None,
                max_insns_per_packet: 100,
            },
        }
    }

    fn failing_analysis() -> snic_analyze::LaunchAnalysis {
        use snic_analyze::{Operand, ProgramBuilder, RegionClass};
        let mut sub = clean_analysis();
        let mut b = ProgramBuilder::new("escaping-nf");
        let pkt = b.region("pktbuf", 0x1000, 0x200, RegionClass::PacketBuf);
        // The 8-byte load at offset 0x200 ends past the window.
        let v = b.load(pkt, Operand::Imm(0x200), 8, 10);
        b.emit(Operand::Reg(v), 5);
        sub.program = b.finish();
        sub
    }

    #[test]
    fn launch_refuses_failing_analysis_atomically() {
        for mut nic in [snic(), commodity()] {
            // A live neighbor so the snapshot is non-trivial.
            nic.nf_launch(req(0, 4)).unwrap();
            let before = nic.resource_snapshot();
            let mut bad = req(1, 4);
            bad.analysis = Some(failing_analysis());
            match nic.nf_launch(bad).unwrap_err() {
                SnicError::Verification(report) => {
                    assert!(report.contains("OobLoad"), "{report}");
                    assert!(report.contains("Pass 0"), "{report}");
                    assert!(report.contains("REFUSED"), "{report}");
                }
                other => panic!("expected Pass 0 refusal, got {other:?}"),
            }
            // The refusal happened before any reservation: every
            // allocatable resource is byte-identical.
            assert_eq!(before, nic.resource_snapshot());
            // And the same core still launches cleanly afterwards.
            assert!(nic.nf_launch(req(1, 4)).is_ok());
        }
    }

    #[test]
    fn attest_binds_analysis_certificate_digest() {
        let v = vendor();
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
        let mut analyzed = req(0, 4);
        analyzed.analysis = Some(clean_analysis());
        let id = nic.nf_launch(analyzed).unwrap().nf_id;
        let digest = nic.record_of(id).unwrap().analysis_digest;
        assert_ne!(digest, [0u8; 32], "clean analysis must yield a certificate");
        let expected_cert = {
            let sub = clean_analysis();
            snic_verify::analyze_launch(id, &sub).certificate_digest()
        };
        assert_eq!(digest, expected_cert, "record binds the exact certificate");

        let stmt = nic.nf_attest(id, b"nonce+dh").unwrap();
        assert_eq!(stmt.analysis_digest, digest);
        // The digest sits inside the signed statement: tampering with it
        // breaks the chain.
        let mut statement = Vec::new();
        statement.extend_from_slice(&stmt.measurement);
        statement.push(1);
        statement.extend_from_slice(&digest);
        statement.extend_from_slice(b"nonce+dh");
        assert!(snic_crypto::keys::verify_chain(
            v.public(),
            &stmt.ek_certificate,
            &stmt.ak_endorsement,
            &statement,
            &stmt.signature,
        ));
        let mut tampered = statement.clone();
        tampered[33] ^= 0xff; // first analysis-digest byte
        assert!(!snic_crypto::keys::verify_chain(
            v.public(),
            &stmt.ek_certificate,
            &stmt.ak_endorsement,
            &tampered,
            &stmt.signature,
        ));
    }

    #[test]
    fn launch_refuses_overlapping_manifest() {
        for mut nic in [snic(), commodity()] {
            let a = nic.nf_launch(req(0, 4)).unwrap().nf_id;
            let (base, _) = nic.record_of(a).unwrap().region;
            // A manifest whose region overlaps the live function's.
            let mut overlapping = req(1, 4);
            overlapping.region_base = Some(base + 0x1000);
            match nic.nf_launch(overlapping).unwrap_err() {
                SnicError::Verification(report) => {
                    assert!(report.contains("RegionOverlap"), "{report}");
                    assert!(report.contains("§4.1"), "{report}");
                }
                other => panic!("expected Verification refusal, got {other:?}"),
            }
            // The refusal leaked nothing: the same core launches cleanly.
            assert!(nic.nf_launch(req(1, 4)).is_ok());
        }
    }

    #[test]
    fn launch_refuses_nic_os_collision() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.region_base = Some(0x0200_0000); // inside the shared buffer pool
        match nic.nf_launch(r).unwrap_err() {
            SnicError::Verification(report) => {
                assert!(report.contains("NicOsCollision"), "{report}");
            }
            other => panic!("expected Verification refusal, got {other:?}"),
        }
    }

    #[test]
    fn launch_refuses_duplicate_core_in_request() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.cores = vec![CoreId(0), CoreId(0)];
        match nic.nf_launch(r).unwrap_err() {
            SnicError::Verification(report) => {
                assert!(report.contains("CoreConflict"), "{report}");
            }
            other => panic!("expected Verification refusal, got {other:?}"),
        }
    }

    #[test]
    fn live_device_verifies_cleanly_in_both_modes() {
        for mut nic in [snic(), commodity()] {
            nic.nf_launch(req(0, 4)).unwrap();
            nic.nf_launch(req(1, 16)).unwrap();
            let report = nic.verify_state();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.manifests_checked, 2);
        }
    }

    #[test]
    fn security_domains_cover_regions_and_pool_buffers() {
        let mut nic = commodity();
        let id = nic.nf_launch(req_with_rule(0, 4, 80)).unwrap().nf_id;
        assert_eq!(nic.rx_packet(&pkt(80)).unwrap(), Some(id));
        let domains = nic.security_domains();
        let (rbase, rlen) = nic.record_of(id).unwrap().region;
        assert!(domains.contains(&(rbase, rlen, id)), "region domain");
        // The image and the queued packet live in the shared pool below
        // REGION_BASE, still attributed to the owner.
        assert!(
            domains
                .iter()
                .any(|&(b, _, o)| o == id && b < rbase && b >= 0x0200_0000),
            "{domains:?}"
        );
    }

    #[test]
    fn zero_core_and_zero_memory_rejected() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.cores.clear();
        assert!(matches!(
            nic.nf_launch(r).unwrap_err(),
            SnicError::InvalidConfig(_)
        ));
        let r2 = LaunchRequest::minimal(CoreId(0), ByteSize::ZERO, NfImage::default());
        assert!(matches!(
            nic.nf_launch(r2).unwrap_err(),
            SnicError::InvalidConfig(_)
        ));
    }

    #[test]
    fn dma_round_trip_within_windows() {
        let mut nic = snic();
        let mut r = req(0, 4);
        r.host_window = Some((0x1000_0000, 0x10_000));
        let id = nic.nf_launch(r).unwrap().nf_id;
        // Host stages data; the NF pulls it in, transforms, pushes back.
        nic.host_mem().write(0x1000_0000, b"host payload");
        nic.dma_from_host(id, CoreId(0), 0x100, 0x1000_0000, 12)
            .unwrap();
        let mut buf = [0u8; 12];
        nic.nf_read(id, CoreId(0), 0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"host payload");
        nic.nf_write(id, CoreId(0), 0x200, b"nic answer!!").unwrap();
        nic.dma_to_host(id, CoreId(0), 0x200, 0x1000_0100, 12)
            .unwrap();
        let mut hbuf = [0u8; 12];
        nic.host_mem().read(0x1000_0100, &mut hbuf);
        assert_eq!(&hbuf, b"nic answer!!");
    }

    #[test]
    fn dma_outside_host_window_rejected() {
        use snic_types::IsolationError;
        let mut nic = snic();
        let mut r = req(0, 4);
        r.host_window = Some((0x1000_0000, 0x1000));
        let id = nic.nf_launch(r).unwrap().nf_id;
        // Target beyond the sanctioned host window: the §4.2 property
        // that a function cannot aim DMA at arbitrary host memory.
        let err = nic
            .dma_to_host(id, CoreId(0), 0, 0x2000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { .. })
        ));
        // And beyond its own region on the NIC side.
        let err = nic
            .dma_to_host(id, CoreId(0), 64 << 20, 0x1000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { .. })
        ));
    }

    #[test]
    fn dma_requires_a_configured_bank_and_owned_core() {
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id; // No host window.
        assert!(nic.dma_to_host(id, CoreId(0), 0, 0x1000_0000, 8).is_err());
        let mut r = req(1, 4);
        r.host_window = Some((0x1000_0000, 0x1000));
        let other = nic.nf_launch(r).unwrap().nf_id;
        // NF `id` cannot use `other`'s bank on core 1.
        assert!(nic.dma_to_host(id, CoreId(1), 0, 0x1000_0000, 8).is_err());
        let _ = other;
    }

    #[test]
    fn lifecycle_promotes_on_first_traffic() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut nic = snic();
        let id = nic.nf_launch(req_with_rule(0, 4, 80)).unwrap().nf_id;
        assert_eq!(nic.state_of(id).unwrap(), NfState::Launched);
        nic.rx_packet(&pkt(80)).unwrap();
        assert_eq!(nic.state_of(id).unwrap(), NfState::Running);
        // An injected data-path crash freezes the NF.
        nic.inject_faults(FaultPlan::none().on_nth(FaultSite::DataPath, 1, FaultKind::NfCrash));
        assert_eq!(
            nic.poll_packet(id).unwrap_err(),
            SnicError::NfFaulted(id),
            "crash injected on the poll"
        );
        assert_eq!(nic.state_of(id).unwrap(), NfState::Faulted);
        // Faulted NFs refuse further data-path work but tear down fine.
        assert!(matches!(
            nic.tx_packet(id, pkt(80)).unwrap_err(),
            SnicError::NfFaulted(_)
        ));
        nic.nf_teardown(id).unwrap();
    }

    #[test]
    fn power_loss_mid_scrub_keeps_region_unavailable() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        nic.nf_write(id, CoreId(0), 0x100, b"secret state").unwrap();
        let (base, len) = nic.record_of(id).unwrap().region;
        // Power dies on the 3rd scrub chunk.
        nic.inject_faults(FaultPlan::none().on_nth(FaultSite::Scrub, 3, FaultKind::PowerLoss));
        assert_eq!(nic.nf_teardown(id).unwrap_err(), SnicError::PowerLoss);
        assert!(nic.is_crashed());
        let tickets = nic.pending_scrubs().to_vec();
        assert_eq!(tickets.len(), 1);
        assert_eq!(tickets[0].base, base);
        assert_eq!(tickets[0].watermark, 2 * SCRUB_CHUNK);
        // The region is still denylisted: management cannot read it...
        let mut buf = [0u8; 4];
        assert!(nic
            .mem_read(Principal::Management, base + tickets[0].watermark, &mut buf)
            .is_err());
        // ...and a hinted relaunch onto it is refused.
        nic.power_cycle(); // restores power AND resumes the scrub
        assert!(nic.pending_scrubs().is_empty(), "cycle finished the scrub");
        assert!(!nic.is_crashed());
        // Now fully scrubbed: the whole region reads back as zeros.
        let mut tail = vec![0u8; 64];
        nic.mem_read(Principal::Management, base + len - 64, &mut tail)
            .unwrap();
        assert_eq!(tail, vec![0u8; 64]);
    }

    #[test]
    fn hinted_launch_cannot_reuse_pending_scrub_region() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut nic = snic();
        let id = nic.nf_launch(req(0, 4)).unwrap().nf_id;
        let (base, _) = nic.record_of(id).unwrap().region;
        nic.inject_faults(FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss));
        assert_eq!(nic.nf_teardown(id).unwrap_err(), SnicError::PowerLoss);
        // Boot WITHOUT the scrub janitor: admission must hold the line
        // against a buggy/malicious NIC OS placing a tenant onto the
        // half-scrubbed region.
        nic.restore_power();
        let mut r = req(1, 4);
        r.region_base = Some(base);
        assert_eq!(
            nic.nf_launch(r.clone()).unwrap_err(),
            SnicError::ScrubPending { base }
        );
        // Unhinted placement steers around the pending region.
        let other = nic.nf_launch(req(2, 4)).unwrap().nf_id;
        assert_ne!(nic.record_of(other).unwrap().region.0, base);
        // Once the janitor drains the ticket the hint is honored.
        assert_eq!(nic.resume_scrubs(), 1);
        nic.nf_launch(r).unwrap();
    }

    #[test]
    fn accel_fault_poisons_clusters_under_snic_only() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let build = |mut nic: SmartNic| {
            let mut r = req(0, 4);
            r.accel = vec![(AccelKind::Crypto, 2)];
            let mut v = req(1, 4);
            v.accel = vec![(AccelKind::Crypto, 1)];
            let id = nic.nf_launch(r).unwrap().nf_id;
            let victim = nic.nf_launch(v).unwrap().nf_id;
            nic.inject_faults(FaultPlan::none().on_nth(
                FaultSite::Accel,
                1,
                FaultKind::AccelClusterFault,
            ));
            (nic, id, victim)
        };
        // S-NIC: the owner faults, its clusters are poisoned, the
        // victim's accelerator work continues unperturbed.
        let (mut nic, id, victim) = build(snic());
        assert_eq!(nic.accel_submit(id).unwrap_err(), SnicError::NfFaulted(id));
        assert_eq!(nic.state_of(id).unwrap(), NfState::Faulted);
        assert_eq!(nic.state_of(victim).unwrap(), NfState::Launched);
        nic.accel_submit(victim).unwrap();
        // Poisoned clusters stay out of the pool even after teardown...
        nic.nf_teardown(id).unwrap();
        let mut r2 = req(0, 4);
        r2.accel = vec![(AccelKind::Crypto, 3)];
        assert!(
            nic.nf_launch(r2.clone()).is_err(),
            "2 of 4 clusters poisoned, 1 held by victim: 3 unavailable"
        );
        // ...until a power cycle repairs them.
        nic.power_cycle();
        nic.nf_launch(r2).unwrap();
        // Commodity: the shared engine wedges the whole device.
        let (mut nic, id, victim) = build(commodity());
        assert_eq!(nic.accel_submit(id).unwrap_err(), SnicError::NicCrashed);
        assert!(nic.is_crashed());
        assert_eq!(
            nic.accel_submit(victim).unwrap_err(),
            SnicError::NicCrashed,
            "victim is collateral damage on commodity hardware"
        );
    }

    #[test]
    fn transient_launch_faults_and_bus_errors() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        let mut nic = snic();
        nic.inject_faults(
            FaultPlan::none()
                .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
                .on_nth(FaultSite::Launch, 2, FaultKind::AccelPoolExhaustion),
        );
        let snapshot = nic.resource_snapshot();
        let e1 = nic.nf_launch(req(0, 4)).unwrap_err();
        assert!(e1.is_retryable());
        let e2 = nic.nf_launch(req(0, 4)).unwrap_err();
        assert!(e2.is_retryable());
        assert_eq!(nic.resource_snapshot(), snapshot, "failed launches leak");
        // Third attempt (plan exhausted) succeeds.
        let mut r = req(0, 4);
        r.host_window = Some((0x1000_0000, 0x10000));
        let id = nic.nf_launch(r).unwrap().nf_id;
        // DMA bus error: contained to the one transfer under S-NIC.
        nic.inject_faults(FaultPlan::none().on_nth(FaultSite::Dma, 1, FaultKind::DmaBusError));
        let err = nic
            .dma_to_host(id, CoreId(0), 0, 0x1000_0000, 64)
            .unwrap_err();
        assert!(matches!(err, SnicError::BusError { .. }));
        assert!(!nic.is_crashed());
        nic.dma_to_host(id, CoreId(0), 0, 0x1000_0000, 64).unwrap();
    }

    #[test]
    fn power_cycle_after_mid_teardown_fault_leaks_nothing() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        // Satellite regression: a power cycle issued while an NF's
        // teardown keeps failing must still reclaim every resource.
        let mut nic = snic();
        let baseline = nic.resource_snapshot();
        let mut r = req(0, 4);
        r.accel = vec![(AccelKind::Crypto, 1)];
        r.host_window = Some((0x1000_0000, 0x1000));
        let _ = nic.nf_launch(r).unwrap().nf_id;
        let _ = nic.nf_launch(req(1, 8)).unwrap().nf_id;
        // Both teardown scrubs die instantly, and so does the first
        // resume attempt of the cycle's janitor pass.
        nic.inject_faults(
            FaultPlan::none()
                .on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss)
                .on_nth(FaultSite::Scrub, 2, FaultKind::PowerLoss)
                .on_nth(FaultSite::Scrub, 3, FaultKind::PowerLoss),
        );
        nic.power_cycle(); // both teardowns fail; scrubs pend; resume also dies
        assert!(!nic.pending_scrubs().is_empty());
        assert!(nic.is_crashed(), "power died again during the cycle");
        nic.power_cycle(); // injector exhausted: resume completes
        let after = nic.resource_snapshot();
        assert!(after.pending_scrubs.is_empty());
        assert_eq!(after.core_owner, baseline.core_owner);
        assert_eq!(after.accel_available, baseline.accel_available);
        assert_eq!(after.rx_reserved, baseline.rx_reserved);
        assert_eq!(after.tx_reserved, baseline.tx_reserved);
        assert_eq!(after.denylist, baseline.denylist);
        assert_eq!(after.owned, baseline.owned);
        assert_eq!(after.dma_banks, baseline.dma_banks);
        assert_eq!(after.live_nfs, 0);
        // Region space is fully recyclable (free list covers both
        // regions, coalesced against the bump pointer history).
        let total_free: u64 = after.free_regions.iter().map(|&(_, l)| l).sum();
        assert_eq!(total_free, after.next_region - baseline.next_region);
    }

    #[test]
    fn nf_crash_corrupts_neighbor_on_commodity_not_snic() {
        use snic_faults::{FaultKind, FaultPlan, FaultSite};
        for (mode, expect_corruption) in [(NicMode::Commodity, true), (NicMode::Snic, false)] {
            let mut nic = SmartNic::new(NicConfig::small(mode), &vendor());
            let victim = nic.nf_launch(req_with_rule(0, 4, 80)).unwrap().nf_id;
            let crasher = nic.nf_launch(req_with_rule(1, 4, 81)).unwrap().nf_id;
            // The victim has a packet in flight when the neighbor dies.
            nic.rx_packet(&pkt(80)).unwrap();
            nic.inject_faults(FaultPlan::none().on_nth(FaultSite::DataPath, 1, FaultKind::NfCrash));
            assert_eq!(
                nic.tx_packet(crasher, pkt(81)).unwrap_err(),
                SnicError::NfFaulted(crasher)
            );
            let delivered = nic.poll_packet(victim).unwrap().unwrap();
            let corrupted = delivered.data.contains(&0xDE);
            assert_eq!(
                corrupted, expect_corruption,
                "{mode:?}: wild-store containment mismatch"
            );
            // Either way the victim's lifecycle is its own.
            assert_eq!(nic.state_of(victim).unwrap(), NfState::Running);
        }
    }
}
