//! S-NIC: the paper's primary contribution.
//!
//! A [`device::SmartNic`] is a SoC smart-NIC device model with two
//! personalities:
//!
//! - **commodity** ([`config::NicMode::Commodity`]): the LiquidIO/Agilio
//!   behaviour of §3 — flat physical addressing for every NF
//!   (`xkphys`), a shared buffer allocator whose metadata any NF can
//!   walk, shared accelerators, and an unarbitrated bus that a tenant
//!   can saturate until the NIC hard-crashes;
//! - **S-NIC** ([`config::NicMode::Snic`]): the §4 design — virtual
//!   smart NICs assembled by the trusted `nf_launch` instruction from
//!   cores, single-owner RAM behind locked TLBs and management-core
//!   denylists, virtualized accelerator clusters, virtual packet
//!   pipelines with reserved buffers, temporal bus partitioning, and
//!   hardware-rooted remote attestation.
//!
//! Modules:
//!
//! - [`config`]: device configuration,
//! - [`alloc`]: the commodity shared buffer allocator (attack surface),
//! - [`archs`]: executable models of the §3.2 commodity architectures
//!   (LiquidIO MIPS segments, BlueField TrustZone),
//! - [`instr`]: the trusted instructions of Table 1
//!   (`nf_launch` / `nf_attest` / `nf_teardown`) with the Figure 6
//!   latency model,
//! - [`device`]: the SoC device model and packet path,
//! - [`attest`]: the Appendix A attestation protocol,
//! - [`channel`]: authenticated-encrypted channels over attested keys,
//! - [`enclave`]: host-level enclave endpoints (SGX-like),
//! - [`constellation`]: constellations of trusted computations (§4.7),
//! - [`nicos`]: the NIC OS management API (Table 1's first column),
//! - [`chain`]: cross-VPP NF chaining (the §4.8 extension).
//!
//! The device is instrumented for deterministic fault injection
//! (`snic-faults`): arm it with [`SmartNic::inject_faults`], and every
//! function carries a recoverable lifecycle
//! (`Launched → Running → Faulted → Scrubbing → Reclaimed`) whose
//! transitions — along with scrub watermarks, power events and retries
//! — land in a byte-reproducible transcript ([`SmartNic::fault_log`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod archs;
pub mod attest;
pub mod chain;
pub mod channel;
pub mod config;
pub mod constellation;
pub mod device;
pub mod enclave;
pub mod instr;
pub mod nicos;

pub use attest::{verify_quote, AttestationQuote};
pub use channel::SecureChannel;
pub use config::{NicConfig, NicMode};
pub use constellation::Constellation;
pub use device::{ResourceSnapshot, ScrubTicket, SmartNic};
pub use enclave::HostEnclave;
pub use instr::{LaunchReceipt, LaunchRequest, NfImage, TeardownReceipt};
pub use nicos::{NicOs, RetryError, RetryPolicy};
