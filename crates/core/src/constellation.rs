//! Constellations of trusted computations (§4.7, Figure 4b).
//!
//! "Pairwise attestations allow a developer to build a constellation of
//! trusted computations spanning multiple S-NIC functions and host-level
//! hardware enclaves." A [`Constellation`] registers endpoints (NFs on
//! S-NICs and host enclaves), runs the mutual-attestation handshake
//! between pairs, and hands back per-pair [`SecureChannel`]s.

use std::collections::HashMap;

use rand::Rng;
use snic_crypto::dh::DhParams;
use snic_crypto::rsa::RsaPublicKey;
use snic_types::{NfId, SnicError};

use crate::attest::{FunctionAttestation, Verifier};
use crate::channel::SecureChannel;
use crate::device::SmartNic;
use crate::enclave::HostEnclave;

/// Name of an endpoint within the constellation.
pub type EndpointName = String;

/// A constellation under construction/operation.
///
/// Devices are borrowed per-call (a constellation spans NICs owned by
/// different hosts); the constellation itself holds only identities and
/// the established channel keys.
pub struct Constellation {
    params: DhParams,
    /// Endpoint → expected measurement and trust root.
    endpoints: HashMap<EndpointName, (RsaPublicKey, [u8; 32])>,
    /// Established pairwise session keys.
    keys: HashMap<(EndpointName, EndpointName), [u8; 32]>,
}

impl Constellation {
    /// A constellation using the given DH group.
    pub fn new(params: DhParams) -> Constellation {
        Constellation {
            params,
            endpoints: HashMap::new(),
            keys: HashMap::new(),
        }
    }

    /// Register an endpoint with its trust root (the relevant vendor CA
    /// public key) and expected measurement.
    pub fn register(
        &mut self,
        name: impl Into<EndpointName>,
        trust_root: RsaPublicKey,
        measurement: [u8; 32],
    ) {
        self.endpoints
            .insert(name.into(), (trust_root, measurement));
    }

    /// Registered endpoint count.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True if no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Run the handshake between a verifier-side endpoint `a` and an NF
    /// `(nic, nf)` registered as endpoint `b`. On success both sides of
    /// the pair share a key and [`Constellation::channel`] works.
    pub fn attest_nf<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        a: &str,
        b: &str,
        nic: &mut SmartNic,
        nf: NfId,
    ) -> Result<(), SnicError> {
        let (root, measurement) = self
            .endpoints
            .get(b)
            .cloned()
            .ok_or_else(|| SnicError::InvalidConfig(format!("unknown endpoint {b}")))?;
        if !self.endpoints.contains_key(a) {
            return Err(SnicError::InvalidConfig(format!("unknown endpoint {a}")));
        }
        let mut verifier = Verifier::hello(rng);
        let f = FunctionAttestation::respond(rng, nic, nf, &self.params, verifier.nonce)?;
        let v_pub = verifier.accept(rng, &root, &measurement, &f.quote)?;
        let key_f = f.session_key(&v_pub);
        let key_v = verifier.session_key(&f.quote.dh_public);
        debug_assert_eq!(key_f, key_v);
        self.keys.insert(pair_key(a, b), key_v);
        Ok(())
    }

    /// Run the handshake between endpoint `a` (verifier) and a host
    /// enclave registered as endpoint `b`.
    pub fn attest_enclave<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        a: &str,
        b: &str,
        enclave: &HostEnclave,
    ) -> Result<(), SnicError> {
        let (root, measurement) = self
            .endpoints
            .get(b)
            .cloned()
            .ok_or_else(|| SnicError::InvalidConfig(format!("unknown endpoint {b}")))?;
        let mut verifier = Verifier::hello(rng);
        let (quote, kp) = enclave.respond(rng, &self.params, verifier.nonce);
        let v_pub = verifier.accept(rng, &root, &measurement, &quote)?;
        let key = kp.session_key(&v_pub, &verifier.nonce);
        debug_assert_eq!(key, verifier.session_key(&quote.dh_public));
        self.keys.insert(pair_key(a, b), key);
        Ok(())
    }

    /// True if `a` and `b` completed their handshake.
    pub fn attested(&self, a: &str, b: &str) -> bool {
        self.keys.contains_key(&pair_key(a, b))
    }

    /// Open the channel between `a` and `b` from `a`'s perspective.
    pub fn channel(&self, a: &str, b: &str) -> Result<SecureChannel, SnicError> {
        let key = self
            .keys
            .get(&pair_key(a, b))
            .ok_or_else(|| SnicError::InvalidConfig(format!("{a} and {b} not attested")))?;
        // The lexically smaller name is the initiator, so both sides
        // derive consistent direction keys.
        Ok(SecureChannel::new(key, a <= b))
    }
}

fn pair_key(a: &str, b: &str) -> (EndpointName, EndpointName) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NicConfig, NicMode};
    use crate::instr::{LaunchRequest, NfImage};
    use rand::SeedableRng;
    use snic_crypto::keys::VendorCa;
    use snic_types::{ByteSize, CoreId};

    #[test]
    fn nf_and_enclave_constellation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let nic_vendor = VendorCa::new(&mut rng);
        let cpu_vendor = VendorCa::new(&mut rng);
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &nic_vendor);
        let receipt = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"ids function".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        let enclave = HostEnclave::load(&mut rng, &cpu_vendor, b"storage enclave");

        let mut c = Constellation::new(DhParams::tiny_test_group());
        c.register("gateway", cpu_vendor.public().clone(), enclave.measurement);
        c.register("ids", nic_vendor.public().clone(), receipt.measurement);
        c.register("enclave", cpu_vendor.public().clone(), enclave.measurement);
        assert_eq!(c.len(), 3);

        c.attest_nf(&mut rng, "gateway", "ids", &mut nic, receipt.nf_id)
            .unwrap();
        c.attest_enclave(&mut rng, "gateway", "enclave", &enclave)
            .unwrap();
        assert!(c.attested("gateway", "ids"));
        assert!(
            c.attested("ids", "gateway"),
            "attestation is symmetric in lookup"
        );
        assert!(!c.attested("ids", "enclave"));

        // Encrypted traffic flows between attested pairs.
        let mut tx = c.channel("gateway", "ids").unwrap();
        let mut rx = c.channel("ids", "gateway").unwrap();
        let sealed = tx.seal(b"flow table update");
        assert_eq!(rx.open(&sealed).unwrap(), b"flow table update");
    }

    #[test]
    fn unattested_pairs_have_no_channel() {
        let c = Constellation::new(DhParams::tiny_test_group());
        assert!(c.channel("a", "b").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn wrong_measurement_blocks_attestation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let nic_vendor = VendorCa::new(&mut rng);
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &nic_vendor);
        let receipt = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage {
                    code: b"subverted function".to_vec(),
                    config: vec![],
                },
            ))
            .unwrap();
        let mut c = Constellation::new(DhParams::tiny_test_group());
        c.register("v", nic_vendor.public().clone(), [0u8; 32]);
        // Expected measurement (registered) differs from the launched one.
        c.register("f", nic_vendor.public().clone(), [9u8; 32]);
        assert!(c
            .attest_nf(&mut rng, "v", "f", &mut nic, receipt.nf_id)
            .is_err());
        assert!(!c.attested("v", "f"));
    }
}
