//! Pass 2 evidence: every attack scenario, re-run under the recorder.
//!
//! The `run_*` functions in this crate decide attack success by looking
//! at their *payload* (did the NAT translation break? did the ruleset
//! match?). The traced variants here decide nothing themselves: they
//! record what the scenario did — memory references from the guard's
//! audit log, bus grants from the arbiter, cache accesses — and hand the
//! recording to `snic-verify`'s offline [`TraceLinter`]. The linter's
//! findings are the evidence:
//!
//! - on a **commodity** device every scenario produces at least one
//!   finding (the enabling pattern of the §3.3 attack is visible in the
//!   trace even before the payload lands),
//! - on an **S-NIC** device the *identical* scenario code produces zero
//!   findings: the granted accesses never cross a domain, the temporal
//!   bus grants match a solo replay, and partitioned cache outcomes are
//!   a pure function of each tenant's own stream.

use rand::SeedableRng;
use snic_core::alloc::{BufferAllocator, META_SLOTS};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_mem::guard::Principal;
use snic_pktio::rules::{RuleMatch, SwitchRule};
use snic_types::packet::PacketBuilder;
use snic_types::{AccelKind, ByteSize, CoreId, NfId, Protocol};
use snic_uarch::bus::{Arbiter, FcfsArbiter, TemporalArbiter};
use snic_uarch::cache::{Cache, CacheConfig, Partition};
use snic_verify::{
    BusGrantEvent, BusSpec, CacheAccessEvent, DeviceSpec, EnforcementMode, Finding, TraceBundle,
    TraceLinter,
};

use crate::watermark::{test_pattern, ATTACKER_BEAT, VICTIM_BEAT, VICTIM_PERIOD, WINDOW_CYCLES};

/// Bus epoch used by the S-NIC temporal arbiter (must match the device).
const BUS_EPOCH: u64 = 96;

/// One scenario's recording, linted.
#[derive(Debug, Clone)]
pub struct TracedScenario {
    /// Scenario name (matches the `run_*` attack it shadows).
    pub name: &'static str,
    /// What the offline linter flagged.
    pub findings: Vec<Finding>,
}

/// A traced attack replay: device mode in, linter findings out.
type Scenario = fn(NicMode) -> Vec<Finding>;

/// Every traced scenario, by name, in reporting order.
const SCENARIOS: [(&str, Scenario); 6] = [
    ("packet_corruption", traced_packet_corruption),
    ("ruleset_theft", traced_ruleset_theft),
    ("nicos_tamper", traced_nicos_tamper),
    ("bus_dos", traced_bus_dos),
    ("watermark", traced_watermark),
    ("cache_probe", traced_cache_probe),
];

/// Run every traced scenario against `mode` and lint the recordings.
///
/// Each scenario builds its own device and records in isolation, so the
/// six runs fan across the `snic-sim` worker pool; the reporting order
/// stays fixed.
pub fn lint_all(mode: NicMode) -> Vec<TracedScenario> {
    snic_sim::par_map(SCENARIOS.to_vec(), |(name, scenario)| TracedScenario {
        name,
        findings: scenario(mode),
    })
}

fn fresh_nic(mode: NicMode, seed: u64) -> SmartNic {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vendor = VendorCa::new(&mut rng);
    SmartNic::new(NicConfig::small(mode), &vendor)
}

fn launch(nic: &mut SmartNic, core: u16, mem_mib: u64, code: &[u8], config: Vec<u8>) -> NfId {
    nic.nf_launch(LaunchRequest::minimal(
        CoreId(core),
        ByteSize::mib(mem_mib),
        NfImage {
            code: code.to_vec(),
            config,
        },
    ))
    .expect("scenario launch")
    .nf_id
}

/// Lint whatever the audit log captured since `start_audit`, against the
/// device's own spec and current domain map.
fn lint_memory_of(nic: &mut SmartNic) -> Vec<Finding> {
    let spec = nic.device_spec();
    let domains = nic.security_domains();
    let bundle = TraceBundle {
        memory: nic.take_audit(),
        ..TraceBundle::default()
    };
    TraceLinter::new(&spec, domains).lint(&bundle)
}

/// The §3.3 packet-corruption scenario under the recorder: scan the
/// shared allocator's metadata for the victim's packet buffers, then
/// flip header bytes in place.
pub fn traced_packet_corruption(mode: NicMode) -> Vec<Finding> {
    let mut nic = fresh_nic(mode, 0x77ac1);
    let mut victim_req = LaunchRequest::minimal(
        CoreId(0),
        ByteSize::mib(8),
        NfImage {
            code: b"mazu-nat".to_vec(),
            config: vec![],
        },
    );
    victim_req.rules.push(SwitchRule {
        dst_port: RuleMatch::Exact(80),
        priority: 10,
        ..SwitchRule::any(NfId(0))
    });
    let victim = nic.nf_launch(victim_req).expect("victim launch").nf_id;
    let attacker = launch(&mut nic, 1, 4, b"malicious", vec![]);
    let pkt = PacketBuilder::new(0x0a00_0001, 0xc633_0001, Protocol::Tcp, 4321, 80)
        .payload(b"client data".to_vec())
        .build();
    nic.rx_packet(&pkt).expect("rx");

    nic.start_audit();
    let me = Principal::Nf(attacker, CoreId(1));
    for slot in 0..META_SLOTS {
        let Ok(meta) = BufferAllocator::read_slot(nic.guard_ref(), me, slot) else {
            break;
        };
        if meta.owner == victim && meta.in_use() && meta.is_packet() && meta.len > 0 {
            let mut bad = [0u8; 4];
            if nic.mem_read(me, meta.base + 30, &mut bad).is_ok() {
                for b in &mut bad {
                    *b ^= 0xff;
                }
                let _ = nic.mem_write(me, meta.base + 30, &bad);
            }
        }
    }
    lint_memory_of(&mut nic)
}

/// The §3.3 ruleset-theft scenario under the recorder: walk the metadata
/// table for the victim's image buffer and read the ruleset out of DRAM.
pub fn traced_ruleset_theft(mode: NicMode) -> Vec<Finding> {
    let mut nic = fresh_nic(mode, 0xd91);
    let ruleset = crate::ruleset_theft::serialize_ruleset(&snic_nf::dpi::synth_patterns(50, 7));
    let victim = launch(&mut nic, 0, 8, b"dpi-engine", ruleset);
    let attacker = launch(&mut nic, 1, 4, b"thief", vec![]);

    nic.start_audit();
    let me = Principal::Nf(attacker, CoreId(1));
    for slot in 0..META_SLOTS {
        let Ok(meta) = BufferAllocator::read_slot(nic.guard_ref(), me, slot) else {
            break;
        };
        if meta.owner == victim && meta.in_use() && !meta.is_packet() && meta.len > 0 {
            let code_len = b"dpi-engine".len() as u64;
            let mut buf = vec![0u8; (meta.len - code_len) as usize];
            let _ = nic.mem_read(me, meta.base + code_len, &mut buf);
        }
    }
    lint_memory_of(&mut nic)
}

/// The NIC-OS tampering scenario under the recorder: the management
/// plane reads a tenant secret and patches tenant code. The recording is
/// drained *before* teardown — post-teardown management access to the
/// scrubbed region is legitimately granted and must not pollute the
/// trace.
pub fn traced_nicos_tamper(mode: NicMode) -> Vec<Finding> {
    let mut nic = fresh_nic(mode, 0x517);
    let nf = launch(&mut nic, 0, 4, b"tls-terminator", vec![]);
    nic.nf_write(nf, CoreId(0), 0x1000, b"TLS-PRIVATE-KEY-0xA1B2")
        .ok();
    let (base, _) = nic.record_of(nf).expect("live").region;
    if mode == NicMode::Commodity {
        nic.mem_write(
            Principal::TrustedHardware,
            base + 0x1000,
            b"TLS-PRIVATE-KEY-0xA1B2",
        )
        .expect("plant secret");
    }

    nic.start_audit();
    let mut stolen = [0u8; 22];
    let _ = nic.mem_read(Principal::Management, base + 0x1000, &mut stolen);
    let _ = nic.mem_write(Principal::Management, base, b"evil-jump");
    lint_memory_of(&mut nic)
}

/// A hardware inventory for the bus/cache scenarios, which never build a
/// full device (no memory is involved, only arbiter/cache models).
fn synthetic_spec(mode: NicMode) -> DeviceSpec {
    let (mode, bus) = match mode {
        NicMode::Commodity => (EnforcementMode::Commodity, BusSpec::Fcfs),
        NicMode::Snic => (
            EnforcementMode::Snic,
            BusSpec::Temporal { epoch: BUS_EPOCH },
        ),
    };
    DeviceSpec {
        mode,
        dram: 256 << 20,
        nf_region_base: 0x0800_0000,
        nic_os: Vec::new(),
        cores: 4,
        core_tlb_entries: 512,
        accel: vec![(AccelKind::Crypto, 4)],
        rx_capacity: 8 << 20,
        tx_capacity: 8 << 20,
        bus,
    }
}

fn arbiter_for(mode: NicMode) -> Box<dyn Arbiter> {
    match mode {
        NicMode::Commodity => Box::new(FcfsArbiter::new()),
        NicMode::Snic => Box::new(TemporalArbiter::new(2, BUS_EPOCH)),
    }
}

/// The §3.3 bus-DoS scenario under the recorder: the attacker (domain 1)
/// floods the bus while the victim (domain 0) issues a sparse request
/// stream; every grant is recorded as seen at the arbiter.
pub fn traced_bus_dos(mode: NicMode) -> Vec<Finding> {
    let mut arb = arbiter_for(mode);
    let mut bus = Vec::new();
    let grant = |arb: &mut dyn Arbiter, domain: u32, ready: u64, duration: u64| {
        let granted = arb.grant(domain, ready, duration);
        BusGrantEvent {
            domain,
            ready,
            duration,
            granted,
        }
    };
    let mut victim_ready = 5u64;
    for i in 0..200u64 {
        bus.push(grant(arb.as_mut(), 1, i * 10, ATTACKER_BEAT));
        if i.is_multiple_of(8) {
            bus.push(grant(arb.as_mut(), 0, victim_ready, VICTIM_BEAT));
            victim_ready += 150;
        }
    }
    let bundle = TraceBundle {
        bus,
        ..TraceBundle::default()
    };
    TraceLinter::new(&synthetic_spec(mode), Vec::new()).lint(&bundle)
}

/// The §4.5 watermark scenario under the recorder: the attacker imprints
/// a bit pattern by flooding in '1' windows; the victim's steady cadence
/// is recorded alongside.
pub fn traced_watermark(mode: NicMode) -> Vec<Finding> {
    let mut arb = arbiter_for(mode);
    let mut bus = Vec::new();
    for (w, &bit) in test_pattern().iter().enumerate() {
        let start = w as u64 * WINDOW_CYCLES;
        if bit {
            let mut t = start;
            while t < start + WINDOW_CYCLES {
                let granted = arb.grant(1, t, ATTACKER_BEAT);
                bus.push(BusGrantEvent {
                    domain: 1,
                    ready: t,
                    duration: ATTACKER_BEAT,
                    granted,
                });
                t += ATTACKER_BEAT;
            }
        }
        let mut t = start;
        while t < start + WINDOW_CYCLES {
            let granted = arb.grant(0, t, VICTIM_BEAT);
            bus.push(BusGrantEvent {
                domain: 0,
                ready: t,
                duration: VICTIM_BEAT,
                granted,
            });
            t += VICTIM_PERIOD;
        }
    }
    let bundle = TraceBundle {
        bus,
        ..TraceBundle::default()
    };
    TraceLinter::new(&synthetic_spec(mode), Vec::new()).lint(&bundle)
}

/// Prime+Probe under the recorder: the attacker (tenant 1) parks lines
/// in a cache set, the victim (tenant 0) thrashes the same set, the
/// attacker probes for evictions. Commodity shares the cache; S-NIC
/// way-partitions it (§4.5).
pub fn traced_cache_probe(mode: NicMode) -> Vec<Finding> {
    let cfg = CacheConfig {
        size: 1024,
        ways: 4,
        line: 64,
    };
    let partition = match mode {
        NicMode::Commodity => Partition::Shared,
        NicMode::Snic => Partition::StaticWays { tenants: 2 },
    };
    let mut cache = Cache::new(cfg, partition.clone());
    let mut events = Vec::new();
    let stride = cfg.sets() * u64::from(cfg.line);
    let touch = |cache: &mut Cache, tenant: u32, addr: u64, out: &mut Vec<CacheAccessEvent>| {
        let hit = cache.access(tenant, addr);
        out.push(CacheAccessEvent { tenant, addr, hit });
    };
    let prime = u64::from(cfg.ways) / 2;
    for _round in 0..6u64 {
        for w in 0..prime {
            touch(&mut cache, 1, (w + 100) * stride, &mut events);
        }
        for v in 0..prime + 1 {
            touch(&mut cache, 0, (v + 1) * stride, &mut events);
        }
        for w in 0..prime {
            touch(&mut cache, 1, (w + 100) * stride, &mut events);
        }
    }
    let bundle = TraceBundle {
        cache: events,
        ..TraceBundle::default()
    };
    TraceLinter::new(&synthetic_spec(mode), Vec::new())
        .with_cache(cfg, partition)
        .lint(&bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_verify::FindingKind;

    #[test]
    fn commodity_bus_dos_interferes_and_snic_does_not() {
        let fs = traced_bus_dos(NicMode::Commodity);
        assert!(
            fs.iter().any(|f| f.kind == FindingKind::BusInterference),
            "{fs:?}"
        );
        assert!(traced_bus_dos(NicMode::Snic).is_empty());
    }

    #[test]
    fn commodity_watermark_interferes_and_snic_does_not() {
        let fs = traced_watermark(NicMode::Commodity);
        assert!(
            fs.iter().any(|f| f.kind == FindingKind::BusInterference),
            "{fs:?}"
        );
        assert!(traced_watermark(NicMode::Snic).is_empty());
    }

    #[test]
    fn commodity_cache_probe_flagged_and_snic_clean() {
        let fs = traced_cache_probe(NicMode::Commodity);
        assert!(
            fs.iter()
                .any(|f| f.kind == FindingKind::CacheSetCoResidency),
            "{fs:?}"
        );
        assert!(traced_cache_probe(NicMode::Snic).is_empty());
    }
}
