//! Attack 3: IO-bus denial of service (§3.3).
//!
//! "On the Agilio, we ran a function which sat in a tight loop,
//! repeatedly issuing a test_subsat instruction to decrement a semaphore
//! in DRAM. The function saturated the bus and caused the NIC to
//! hard-crash, requiring a power cycle to recover."
//!
//! Under S-NIC, the temporal bus arbiter (§4.5) confines the flood to
//! the attacker's own epochs: the NIC stays alive, the victim keeps
//! receiving packets, and — quantified with the uarch arbiters — the
//! victim's bus grants are bit-for-bit identical with and without the
//! flood.

use rand::SeedableRng;
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_pktio::rules::{RuleMatch, SwitchRule};
use snic_types::packet::PacketBuilder;
use snic_types::{ByteSize, CoreId, NfId, Protocol, SnicError};
use snic_uarch::bus::{Arbiter, FcfsArbiter, TemporalArbiter};

use crate::AttackOutcome;

/// Execute the attack against a freshly built device in `mode`.
pub fn run_bus_dos(mode: NicMode) -> AttackOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd05);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);

    // Victim NF receiving port-443 traffic.
    let mut victim_req = LaunchRequest::minimal(
        CoreId(0),
        ByteSize::mib(4),
        NfImage {
            code: b"victim".to_vec(),
            config: vec![],
        },
    );
    victim_req.rules.push(SwitchRule {
        dst_port: RuleMatch::Exact(443),
        priority: 5,
        ..SwitchRule::any(NfId(0))
    });
    let victim = nic.nf_launch(victim_req).expect("victim launch").nf_id;
    let attacker = nic
        .nf_launch(LaunchRequest::minimal(
            CoreId(1),
            ByteSize::mib(4),
            NfImage {
                code: b"test_subsat loop".to_vec(),
                config: vec![],
            },
        ))
        .expect("attacker launch")
        .nf_id;

    // The tight loop: issue bus operations until crash or give-up.
    let mut crashed = false;
    for _ in 0..40 {
        if let Err(SnicError::NicCrashed) = nic.bus_flood(attacker, 10_000_000) {
            crashed = true;
            break;
        }
    }

    // Can the victim still receive traffic?
    let pkt = PacketBuilder::new(1, 2, Protocol::Tcp, 1000, 443).build();
    let victim_alive = matches!(nic.rx_packet(&pkt), Ok(Some(nf)) if nf == victim)
        && matches!(nic.poll_packet(victim), Ok(Some(_)));

    let succeeded = crashed && !victim_alive;
    AttackOutcome::new(
        mode,
        succeeded,
        format!("crashed={crashed} victim_alive={victim_alive}"),
    )
}

/// Quantify the victim's bus-grant times with and without the flood, for
/// both arbiters (the §4.5 non-interference experiment).
///
/// Returns `(fcfs_delta, temporal_delta)`: the added grant latency (in
/// cycles) the flood inflicts on the victim's first request.
pub fn flood_latency_impact() -> (u64, u64) {
    let victim_request = (100u64, 16u64); // Ready at cycle 100, 16 cycles.

    let fcfs_delta = {
        let mut quiet = FcfsArbiter::new();
        let base = quiet.grant(0, victim_request.0, victim_request.1);
        let mut noisy = FcfsArbiter::new();
        for i in 0..1000 {
            let _ = noisy.grant(1, i, 90);
        }
        let contended = noisy.grant(0, victim_request.0, victim_request.1);
        contended - base
    };

    let temporal_delta = {
        let mut quiet = TemporalArbiter::new(2, 96);
        let base = quiet.grant(0, victim_request.0, victim_request.1);
        let mut noisy = TemporalArbiter::new(2, 96);
        for i in 0..1000 {
            let _ = noisy.grant(1, i, 90);
        }
        let contended = noisy.grant(0, victim_request.0, victim_request.1);
        contended - base
    };

    (fcfs_delta, temporal_delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_nic_hard_crashes() {
        let o = run_bus_dos(NicMode::Commodity);
        assert!(o.succeeded, "{o:?}");
        assert!(o.evidence.contains("crashed=true"));
        assert!(o.evidence.contains("victim_alive=false"));
    }

    #[test]
    fn snic_survives_and_victim_keeps_receiving() {
        let o = run_bus_dos(NicMode::Snic);
        assert!(!o.succeeded, "{o:?}");
        assert!(o.evidence.contains("crashed=false"));
        assert!(o.evidence.contains("victim_alive=true"));
    }

    #[test]
    fn temporal_arbiter_removes_flood_latency() {
        let (fcfs, temporal) = flood_latency_impact();
        assert!(fcfs > 0, "FCFS victim must suffer under flood ({fcfs})");
        assert_eq!(temporal, 0, "temporal victim must be unaffected");
    }

    #[test]
    fn power_cycle_recovers_commodity_nic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let vendor = VendorCa::new(&mut rng);
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Commodity), &vendor);
        let nf = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(4),
                NfImage::default(),
            ))
            .unwrap()
            .nf_id;
        while nic.bus_flood(nf, 30_000_000).is_ok() {}
        assert!(nic.is_crashed());
        nic.power_cycle();
        assert!(!nic.is_crashed());
        // The NIC works again (but lost all functions).
        assert_eq!(nic.live_nfs(), 0);
    }
}
