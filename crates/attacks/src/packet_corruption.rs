//! Attack 1: packet corruption against a MazuNAT victim (§3.3).
//!
//! "The malicious function leveraged xkphys to scan the metadata
//! structures belonging to the buffer allocator used by all functions.
//! The metadata allowed the malicious function to discover the buffers
//! allocated to MazuNAT's packets; the malicious function then corrupted
//! the packet headers in those buffers, disrupting the intended NAT
//! translations."

use rand::SeedableRng;
use snic_core::alloc::{BufferAllocator, META_SLOTS};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_mem::guard::Principal;
use snic_nf::{NatNf, NetworkFunction, NullSink};
use snic_pktio::rules::{RuleMatch, SwitchRule};
use snic_types::packet::PacketBuilder;
use snic_types::{ByteSize, CoreId, NfId, Protocol};

use crate::AttackOutcome;

/// Execute the attack against a freshly built device in `mode`.
pub fn run_packet_corruption(mode: NicMode) -> AttackOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xa77ac1);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);

    // Launch the MazuNAT victim with a rule steering port-80 traffic.
    let mut victim_req = LaunchRequest::minimal(
        CoreId(0),
        ByteSize::mib(8),
        NfImage {
            code: b"mazu-nat".to_vec(),
            config: vec![],
        },
    );
    victim_req.rules.push(SwitchRule {
        dst_port: RuleMatch::Exact(80),
        priority: 10,
        ..SwitchRule::any(NfId(0))
    });
    let victim = nic.nf_launch(victim_req).expect("victim launch").nf_id;

    // Launch the malicious co-tenant.
    let attacker_req = LaunchRequest::minimal(
        CoreId(1),
        ByteSize::mib(4),
        NfImage {
            code: b"malicious".to_vec(),
            config: vec![],
        },
    );
    let attacker = nic.nf_launch(attacker_req).expect("attacker launch").nf_id;

    // A client packet arrives for the NAT.
    let original = PacketBuilder::new(0x0a00_0001, 0xc633_0001, Protocol::Tcp, 4321, 80)
        .payload(b"client data".to_vec())
        .build();
    assert_eq!(nic.rx_packet(&original).expect("rx"), Some(victim));

    // --- The attack: scan allocator metadata for the victim's packet
    // buffers and flip destination-IP bytes in place. ---
    let me = Principal::Nf(attacker, CoreId(1));
    let mut corrupted_any = false;
    for slot in 0..META_SLOTS {
        let Ok(meta) = BufferAllocator::read_slot(nic_guard(&nic), me, slot) else {
            break; // Denied: S-NIC stopped the scan at the first read.
        };
        if meta.owner == victim && meta.in_use() && meta.is_packet() && meta.len > 0 {
            // Corrupt the IPv4 destination address (offset 14 + 16).
            let mut bad = [0xffu8; 4];
            if nic.mem_read(me, meta.base + 30, &mut bad).is_ok() {
                for b in &mut bad {
                    *b ^= 0xff;
                }
                if nic.mem_write(me, meta.base + 30, &bad).is_ok() {
                    corrupted_any = true;
                }
            }
        }
    }

    // The victim now polls and runs its NAT over whatever is in DRAM.
    let mut nat = NatNf::with_defaults(0);
    let delivered = nic
        .poll_packet(victim)
        .expect("poll")
        .expect("packet queued");
    let verdict = nat.process(&delivered, &mut NullSink);

    // Evidence of disruption: the delivered bytes differ from what was
    // sent, and the header checksum no longer validates.
    let tampered = delivered.data != original.data;
    let checksum_broken = delivered.ipv4().map(|ip| !ip.checksum_ok()).unwrap_or(true);
    let succeeded = corrupted_any && tampered && checksum_broken;
    AttackOutcome::new(
        mode,
        succeeded,
        format!(
            "corrupted_any={corrupted_any} tampered={tampered} \
             checksum_broken={checksum_broken} nat_verdict={verdict:?}"
        ),
    )
}

/// Borrow helper: read-only guard access for metadata scans.
fn nic_guard(nic: &SmartNic) -> &snic_mem::guard::MemoryGuard {
    nic.guard_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_nat_translations_disrupted() {
        let o = run_packet_corruption(NicMode::Commodity);
        assert!(o.succeeded, "{o:?}");
        assert!(o.evidence.contains("tampered=true"));
    }

    #[test]
    fn snic_packet_arrives_intact() {
        let o = run_packet_corruption(NicMode::Snic);
        assert!(!o.succeeded, "{o:?}");
        assert!(o.evidence.contains("corrupted_any=false"));
        assert!(o.evidence.contains("tampered=false"));
    }
}
