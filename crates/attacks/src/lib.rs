//! The concrete attacks of §3.3, runnable against both device modes.
//!
//! Each attack is written once and executed against a commodity NIC
//! (where it must *succeed*, reproducing the paper's proof-of-concept)
//! and against an S-NIC (where the identical code must be stopped by the
//! hardware isolation). The three attacks:
//!
//! - [`packet_corruption`]: a malicious NF walks the shared buffer
//!   allocator's metadata, finds a MazuNAT victim's packet buffers, and
//!   corrupts headers in place (LiquidIO, SE-S mode),
//! - [`ruleset_theft`]: a malicious NF locates and exfiltrates another
//!   function's DPI ruleset from DRAM (LiquidIO),
//! - [`bus_dos`]: a tight-loop bus flood saturates the internal IO bus
//!   and hard-crashes the NIC (Agilio `test_subsat`),
//! - [`watermark`]: the §4.5 flow-watermarking channel — an attacker
//!   imprints a bit pattern onto a victim's timing through bus
//!   contention; temporal partitioning destroys it,
//! - [`nicos_tamper`]: the datacenter-provided NIC OS itself reads and
//!   patches a tenant function's memory (what §4.2's denylist stops).
//!
//! [`corpus`] restates the same taxonomy one layer earlier: each attack's
//! essential behaviour as a dataflow-IR submission that the Pass 0 static
//! analyzer must reject — with a pinned stable violation code — before
//! `nf_launch` touches any hardware state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus_dos;
pub mod corpus;
pub mod nicos_tamper;
pub mod packet_corruption;
pub mod ruleset_theft;
pub mod traced;
pub mod watermark;

pub use bus_dos::run_bus_dos;
pub use corpus::{adversarial_corpus, CorpusEntry};
pub use nicos_tamper::run_nicos_tamper;
pub use packet_corruption::run_packet_corruption;
pub use ruleset_theft::run_ruleset_theft;
pub use traced::{lint_all, TracedScenario};
pub use watermark::run_watermark;

use snic_core::config::NicMode;

/// Result of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Mode the attack ran against.
    pub mode: NicMode,
    /// Whether the attack achieved its goal.
    pub succeeded: bool,
    /// Human-readable evidence.
    pub evidence: String,
}

impl AttackOutcome {
    fn new(mode: NicMode, succeeded: bool, evidence: impl Into<String>) -> AttackOutcome {
        AttackOutcome {
            mode,
            succeeded,
            evidence: evidence.into(),
        }
    }
}

/// Run the attack suite against `mode`: the paper's three §3.3 attacks
/// plus the NIC-OS tampering attack its §4.2 denylist exists to stop.
pub fn run_all(mode: NicMode) -> Vec<AttackOutcome> {
    vec![
        run_packet_corruption(mode),
        run_ruleset_theft(mode),
        run_bus_dos(mode),
        run_nicos_tamper(mode),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_attacks_succeed_on_commodity() {
        for outcome in run_all(NicMode::Commodity) {
            assert!(
                outcome.succeeded,
                "commodity should be vulnerable: {outcome:?}"
            );
        }
    }

    #[test]
    fn all_attacks_fail_on_snic() {
        for outcome in run_all(NicMode::Snic) {
            assert!(
                !outcome.succeeded,
                "S-NIC should block the attack: {outcome:?}"
            );
        }
    }
}
