//! NIC-OS tampering: the attack §4.2's denylist exists to stop.
//!
//! The paper's threat model trusts nobody on the management plane: "a
//! function's code and data are still accessible to the hypervisor
//! itself" in the traditional model, and even BlueField "does not
//! isolate a network function from the secure-world management OS"
//! (§3.2). Here the *datacenter-provided NIC OS itself* is the
//! adversary: after launching a tenant's function it tries to (a) read
//! the function's in-memory state (e.g. TLS keys) and (b) patch the
//! function's code.
//!
//! On a commodity NIC the management core has full physical access and
//! both succeed. Under S-NIC, `nf_launch` installed a denylist entry for
//! every page of the function, so both are refused — and teardown's
//! scrub means even the *freed* pages reveal nothing.

use rand::SeedableRng;
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_mem::guard::Principal;
use snic_types::{ByteSize, CoreId};

use crate::AttackOutcome;

/// Execute the attack against a freshly built device in `mode`.
pub fn run_nicos_tamper(mode: NicMode) -> AttackOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0517);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);

    // The tenant's function holds a secret in its private memory.
    let nf = nic
        .nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(4),
            NfImage {
                code: b"tls-terminator".to_vec(),
                config: vec![],
            },
        ))
        .expect("launch")
        .nf_id;
    nic.nf_write(nf, CoreId(0), 0x1000, b"TLS-PRIVATE-KEY-0xA1B2")
        .ok();
    // Commodity mode has no NF-virtual addressing; plant the secret the
    // way a commodity NF would: directly in its physical region.
    let (base, _) = nic.record_of(nf).unwrap().region;
    if mode == NicMode::Commodity {
        nic.mem_write(
            Principal::TrustedHardware,
            base + 0x1000,
            b"TLS-PRIVATE-KEY-0xA1B2",
        )
        .expect("plant secret");
    }

    // (a) The NIC OS reads the function's memory.
    let mut stolen = [0u8; 22];
    let read_ok = nic
        .mem_read(Principal::Management, base + 0x1000, &mut stolen)
        .is_ok()
        && &stolen == b"TLS-PRIVATE-KEY-0xA1B2";

    // (b) The NIC OS patches the function's code page.
    let patch_ok = nic
        .mem_write(Principal::Management, base, b"evil-jump")
        .is_ok();

    // (c) After teardown, the OS scavenges the freed pages for residue.
    nic.nf_teardown(nf).expect("teardown");
    let mut residue = [0u8; 22];
    nic.mem_read(Principal::Management, base + 0x1000, &mut residue)
        .expect("freed pages readable");
    let residue_found = &residue == b"TLS-PRIVATE-KEY-0xA1B2";

    let succeeded = read_ok || patch_ok || residue_found;
    AttackOutcome::new(
        mode,
        succeeded,
        format!(
            "state_read={read_ok} code_patched={patch_ok} residue_after_teardown={residue_found}"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_nicos_owns_everything() {
        let o = run_nicos_tamper(NicMode::Commodity);
        assert!(o.succeeded, "{o:?}");
        assert!(o.evidence.contains("state_read=true"));
        assert!(o.evidence.contains("code_patched=true"));
        assert!(o.evidence.contains("residue_after_teardown=true"), "{o:?}");
    }

    #[test]
    fn snic_locks_out_its_own_os() {
        let o = run_nicos_tamper(NicMode::Snic);
        assert!(!o.succeeded, "{o:?}");
        assert!(o.evidence.contains("state_read=false"));
        assert!(o.evidence.contains("code_patched=false"));
        assert!(o.evidence.contains("residue_after_teardown=false"));
    }
}
