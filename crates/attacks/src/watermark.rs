//! Watermark attack via packet-flow interference (§4.5).
//!
//! "In concert with VPP hardware reservations, temporal partitioning
//! eliminates watermark attacks that leverage packet flow interference
//! [Bates et al.]." In a watermarking attack, an adversary imprints a
//! timing pattern onto a victim's flow by modulating contention on a
//! shared resource; a colluding observer recovers the pattern downstream
//! and uses it to link flows across the network.
//!
//! Model: the attacker encodes a bit string by alternately flooding and
//! idling the IO bus in fixed windows; the victim issues a steady stream
//! of bus requests; the observer thresholds the victim's per-window mean
//! grant delay to decode bits. Under FCFS arbitration the watermark
//! transfers with perfect fidelity; under temporal partitioning the
//! victim's delays are independent of the attacker, so decoding collapses
//! to chance.

use snic_uarch::bus::{Arbiter, FcfsArbiter, TemporalArbiter};

/// Cycles per watermark bit window.
pub(crate) const WINDOW_CYCLES: u64 = 4_000;
/// Victim request cadence within a window.
pub(crate) const VICTIM_PERIOD: u64 = 200;
/// Victim transfer size in cycles.
pub(crate) const VICTIM_BEAT: u64 = 16;
/// Attacker transfer size (keeps the bus busy when flooding).
pub(crate) const ATTACKER_BEAT: u64 = 90;

/// Imprint `watermark` through `arbiter` and decode it from the victim's
/// delays; returns the decoded bits.
pub fn transmit_watermark(arbiter: &mut dyn Arbiter, watermark: &[bool]) -> Vec<bool> {
    let mut window_delays: Vec<f64> = Vec::with_capacity(watermark.len());
    for (w, &bit) in watermark.iter().enumerate() {
        let window_start = w as u64 * WINDOW_CYCLES;
        // Attacker: saturate the bus during '1' windows. Issue the flood
        // slightly ahead of the victim's requests so FCFS queues behind it.
        if bit {
            let mut t = window_start;
            while t < window_start + WINDOW_CYCLES {
                let _ = arbiter.grant(1, t, ATTACKER_BEAT);
                t += ATTACKER_BEAT;
            }
        }
        // Victim: steady cadence; record mean grant delay.
        let mut total_delay = 0u64;
        let mut requests = 0u64;
        let mut t = window_start;
        while t < window_start + WINDOW_CYCLES {
            let granted = arbiter.grant(0, t, VICTIM_BEAT);
            total_delay += granted - t;
            requests += 1;
            t += VICTIM_PERIOD;
        }
        window_delays.push(total_delay as f64 / requests as f64);
    }
    // Observer: threshold at the midpoint of the observed delay range.
    let min = window_delays.iter().copied().fold(f64::MAX, f64::min);
    let max = window_delays.iter().copied().fold(f64::MIN, f64::max);
    let threshold = (min + max) / 2.0;
    if (max - min).abs() < 1.0 {
        // No signal at all: decode everything as zero.
        return vec![false; watermark.len()];
    }
    window_delays.iter().map(|&d| d > threshold).collect()
}

/// Fraction of watermark bits recovered correctly.
pub fn fidelity(watermark: &[bool], decoded: &[bool]) -> f64 {
    let correct = watermark
        .iter()
        .zip(decoded)
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / watermark.len() as f64
}

/// The test pattern used by the demo (an alternating-ish 24-bit string).
pub fn test_pattern() -> Vec<bool> {
    (0..24).map(|i| (i * 7 + 3) % 5 < 2).collect()
}

/// Run the watermark attack against both arbiters; returns
/// `(fcfs_fidelity, temporal_fidelity)`.
pub fn run_watermark() -> (f64, f64) {
    let pattern = test_pattern();
    let mut fcfs = FcfsArbiter::new();
    let fcfs_decoded = transmit_watermark(&mut fcfs, &pattern);
    let mut temporal = TemporalArbiter::new(2, 96);
    let temporal_decoded = transmit_watermark(&mut temporal, &pattern);
    (
        fidelity(&pattern, &fcfs_decoded),
        fidelity(&pattern, &temporal_decoded),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_transfers_the_watermark_perfectly() {
        let (fcfs, _) = run_watermark();
        assert!(fcfs > 0.95, "FCFS watermark fidelity {fcfs}");
    }

    #[test]
    fn temporal_partitioning_destroys_the_watermark() {
        // Fidelity collapses to chance: the victim's residual delay
        // variation comes from its own epoch phase, not the attacker.
        let (fcfs, temporal) = run_watermark();
        assert!(
            temporal < 0.7,
            "temporal fidelity {temporal} should be ~chance"
        );
        assert!(
            fcfs - temporal > 0.25,
            "partitioning must destroy the channel"
        );
    }

    #[test]
    fn temporal_victim_delays_are_attacker_independent() {
        // The stronger property: the victim's delay sequence is
        // bit-for-bit identical whether the attacker sends the watermark
        // or stays silent.
        use snic_uarch::bus::TemporalArbiter;
        let observe = |pattern: &[bool]| -> Vec<u64> {
            let mut arb = TemporalArbiter::new(2, 96);
            let mut delays = Vec::new();
            for (w, &bit) in pattern.iter().enumerate() {
                let start = w as u64 * WINDOW_CYCLES;
                if bit {
                    let mut t = start;
                    while t < start + WINDOW_CYCLES {
                        let _ = arb.grant(1, t, ATTACKER_BEAT);
                        t += ATTACKER_BEAT;
                    }
                }
                let mut t = start;
                while t < start + WINDOW_CYCLES {
                    delays.push(arb.grant(0, t, VICTIM_BEAT) - t);
                    t += VICTIM_PERIOD;
                }
            }
            delays
        };
        let with_mark = observe(&test_pattern());
        let silent = observe(&vec![false; test_pattern().len()]);
        assert_eq!(with_mark, silent);
    }

    #[test]
    fn fidelity_metric_sane() {
        let a = vec![true, false, true];
        assert!((fidelity(&a, &a) - 1.0).abs() < 1e-12);
        assert!((fidelity(&a, &[false, true, false]) - 0.0).abs() < 1e-12);
    }
}
