//! Adversarial NF programs for Pass 0 (§3.3 as dataflow IR).
//!
//! The §3.3 attacks in this crate run *dynamically* against the device
//! model and are stopped (or not) by hardware mechanisms. This module
//! restates each attack's essential memory behaviour as a dataflow IR
//! submission, so the static analyzer must reject it **before launch** —
//! the same taxonomy, one layer earlier. Every entry pins the exact
//! stable violation code the analyzer must produce; `scripts/lint.sh
//! analyze` fails CI on any drift.

use snic_analyze::{
    AnalysisManifest, LaunchAnalysis, Operand, ProgramBuilder, RegionClass, Taint, Terminator,
};
use snic_nf::common::layout;
use snic_nf::NfKind;
use snic_types::AccelKind;

/// One adversarial submission and the verdict Pass 0 must reach.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Short stable name (used by the lint gate and reports).
    pub name: &'static str,
    /// The §3.3 behaviour this program distills.
    pub description: &'static str,
    /// The exact stable code the analyzer must emit. Part of the
    /// external interface: tests compare verbatim.
    pub expected_code: &'static str,
    /// The program + claimed envelope, as `nf_launch` would receive it.
    pub submission: LaunchAnalysis,
}

/// The granted envelope every corpus program claims: the firewall's
/// paper manifest (three VA windows, no accelerators, no DMA window).
fn envelope() -> AnalysisManifest {
    snic_nf::analysis_manifest(NfKind::Firewall)
}

/// Packet-buffer window length as granted by [`envelope`].
fn pktbuf_len() -> u64 {
    let m = envelope();
    m.regions
        .iter()
        .find(|&&(b, _)| b == layout::PKTBUF_BASE)
        .map(|&(_, l)| l)
        .expect("envelope grants the packet-buffer window")
}

/// §3.3 ruleset theft, step 1: probe reads indexed past the packet
/// buffer to scan adjacent DRAM for a victim's data structures.
fn oob_probe() -> LaunchAnalysis {
    let len = pktbuf_len();
    let mut b = ProgramBuilder::new("atk-oob-probe");
    let pkt = b.region("pktbuf", layout::PKTBUF_BASE, len, RegionClass::PacketBuf);
    // Attacker-controlled scan index: can reach one byte past the
    // window, so the 8-byte load provably escapes.
    let idx = b.havoc(0, len, Taint::PACKET, 2);
    let v = b.load(pkt, Operand::Reg(idx), 8, 10);
    b.emit(Operand::Reg(v), 5);
    LaunchAnalysis {
        program: b.finish(),
        manifest: envelope(),
    }
}

/// §3.3 packet corruption: write packet-derived bytes into another
/// tenant's buffer (a region the manifest does not grant).
fn taint_leak() -> LaunchAnalysis {
    let mut b = ProgramBuilder::new("atk-taint-leak");
    let pkt = b.region(
        "pktbuf",
        layout::PKTBUF_BASE,
        pktbuf_len(),
        RegionClass::PacketBuf,
    );
    // The victim's packet buffers, located via the allocator walk.
    let victim = b.region("victim-pktbuf", 0x8000_0000, 0x1_0000, RegionClass::Foreign);
    let payload = b.load(pkt, Operand::Imm(0), 8, 10);
    b.store(victim, Operand::Imm(0x40), Operand::Reg(payload), 8, 10);
    b.emit(Operand::Imm(0), 5);
    LaunchAnalysis {
        program: b.finish(),
        manifest: envelope(),
    }
}

/// Agilio `test_subsat` distilled: a packet-processing loop with no
/// provable trip bound (the bus-flood loop never exits).
fn unbounded_loop() -> LaunchAnalysis {
    let mut b = ProgramBuilder::new("atk-unbounded-loop");
    let pkt = b.region(
        "pktbuf",
        layout::PKTBUF_BASE,
        pktbuf_len(),
        RegionClass::PacketBuf,
    );
    let body = b.add_block();
    let done = b.add_block();
    b.terminate(Terminator::Jump(body));
    b.select(body);
    let v = b.load(pkt, Operand::Imm(0), 8, 10);
    b.emit(Operand::Reg(v), 5);
    // Back edge with no loop_bound: the flood spins forever.
    b.terminate(Terminator::Branch(vec![body, done]));
    b.select(done);
    b.terminate(Terminator::Return);
    LaunchAnalysis {
        program: b.finish(),
        manifest: envelope(),
    }
}

/// A DMA descriptor whose transfer length is packet-controlled, so the
/// host write can provably exceed the sanctioned window (§4.2).
fn dma_overflow() -> LaunchAnalysis {
    let mut b = ProgramBuilder::new("atk-dma-overflow");
    let pkt = b.region(
        "pktbuf",
        layout::PKTBUF_BASE,
        pktbuf_len(),
        RegionClass::PacketBuf,
    );
    // Attacker-controlled DMA length straight from the wire.
    let len = b.havoc(0, 0x1_0000, Taint::PACKET, 2);
    b.dma(pkt, Operand::Imm(0), Operand::Reg(len), 20);
    b.emit(Operand::Imm(0), 5);
    let mut manifest = envelope();
    // The host sanctions a 4 KiB window over the packet buffer; the
    // 64 KiB-capable transfer provably escapes it.
    manifest.dma_window = Some((layout::PKTBUF_BASE, 0x1000));
    LaunchAnalysis {
        program: b.finish(),
        manifest,
    }
}

/// A submission to an accelerator family the manifest never granted
/// (§4.3 exclusive assignment, checked statically).
fn ungranted_accel() -> LaunchAnalysis {
    let mut b = ProgramBuilder::new("atk-ungranted-accel");
    b.accel(AccelKind::Crypto, Operand::Imm(0), 15);
    b.emit(Operand::Imm(0), 5);
    LaunchAnalysis {
        program: b.finish(),
        manifest: envelope(),
    }
}

/// A bounded but enormous per-packet loop: the proven instruction
/// ceiling exceeds the admission limit (compute-DoS, §3.3 bus DoS in
/// instruction-budget form).
fn insn_ceiling() -> LaunchAnalysis {
    let mut b = ProgramBuilder::new("atk-insn-ceiling");
    let pkt = b.region(
        "pktbuf",
        layout::PKTBUF_BASE,
        pktbuf_len(),
        RegionClass::PacketBuf,
    );
    let body = b.add_block();
    let done = b.add_block();
    b.terminate(Terminator::Jump(body));
    b.select(body);
    let v = b.load(pkt, Operand::Imm(0), 8, 100);
    b.emit(Operand::Reg(v), 5);
    b.terminate(Terminator::Branch(vec![body, done]));
    // Bounded, but 10^6 iterations of 105 insns dwarfs any admission
    // limit the paper NFs run under.
    b.loop_bound(body, 1_000_000);
    b.select(done);
    b.terminate(Terminator::Return);
    LaunchAnalysis {
        program: b.finish(),
        manifest: envelope(),
    }
}

/// The seeded adversarial corpus: every §3.3 behaviour as an IR
/// submission, with the exact code Pass 0 must reject it under.
pub fn adversarial_corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "oob-probe",
            description: "ruleset theft step 1: indexed reads past the packet buffer",
            expected_code: "P0-OOB-LOAD",
            submission: oob_probe(),
        },
        CorpusEntry {
            name: "cross-tenant-taint-leak",
            description: "packet corruption: packet-derived store into a victim's buffer",
            expected_code: "P0-TAINT-LEAK",
            submission: taint_leak(),
        },
        CorpusEntry {
            name: "unbounded-loop",
            description: "bus flood: packet loop with no provable trip bound",
            expected_code: "P0-UNBOUNDED-LOOP",
            submission: unbounded_loop(),
        },
        CorpusEntry {
            name: "dma-overflow",
            description: "host smash: packet-controlled DMA length past the sanctioned window",
            expected_code: "P0-DMA-OVERFLOW",
            submission: dma_overflow(),
        },
        CorpusEntry {
            name: "ungranted-accel",
            description: "accelerator squat: submission to a family never granted",
            expected_code: "P0-ACCEL-UNGRANTED",
            submission: ungranted_accel(),
        },
        CorpusEntry {
            name: "insn-ceiling",
            description: "compute DoS: bounded loop whose proven ceiling exceeds admission",
            expected_code: "P0-INSN-CEILING",
            submission: insn_ceiling(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_analyze::analyze;

    #[test]
    fn every_corpus_entry_rejected_with_its_exact_code() {
        for entry in adversarial_corpus() {
            let report = analyze(&entry.submission.program, &entry.submission.manifest);
            assert!(
                !report.is_clean(),
                "{} must be rejected, got: {report}",
                entry.name
            );
            let codes: Vec<&str> = report.violations.iter().map(|v| v.kind.code()).collect();
            assert!(
                codes.contains(&entry.expected_code),
                "{}: expected {} among {codes:?}",
                entry.name,
                entry.expected_code
            );
            assert!(
                report.certificate.is_none(),
                "{}: no certificate",
                entry.name
            );
        }
    }

    #[test]
    fn corpus_names_and_codes_are_distinct() {
        let corpus = adversarial_corpus();
        let names: std::collections::HashSet<&str> = corpus.iter().map(|e| e.name).collect();
        let codes: std::collections::HashSet<&str> =
            corpus.iter().map(|e| e.expected_code).collect();
        assert_eq!(names.len(), corpus.len());
        assert_eq!(codes.len(), corpus.len());
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = adversarial_corpus();
        let b = adversarial_corpus();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.submission.program.digest(), y.submission.program.digest());
            assert_eq!(
                x.submission.manifest.digest(),
                y.submission.manifest.digest()
            );
        }
    }

    #[test]
    fn paper_nfs_stay_clean_under_the_same_analyzer() {
        // The corpus proves the analyzer rejects; this proves it still
        // admits — both directions of the §3.3 boundary.
        for kind in [
            NfKind::Firewall,
            NfKind::Nat,
            NfKind::LoadBalancer,
            NfKind::Monitor,
        ] {
            let nf = snic_nf::build(kind, 7);
            let sub = snic_nf::launch_analysis(nf.as_ref()).expect("paper NFs lower to IR");
            let report = analyze(&sub.program, &sub.manifest);
            assert!(report.is_clean(), "{kind:?}: {report}");
        }
    }
}
