//! Attack 2: DPI ruleset stealing (§3.3).
//!
//! "We wrote a malicious function which uses xkphys to steal the ruleset
//! belonging to another function; to locate the ruleset, the malicious
//! function iterated through the metadata of the buffer allocator. This
//! kind of information leak is damaging because it allows a malicious
//! function to learn which threat signatures a target application is
//! using."

use rand::SeedableRng;
use snic_core::alloc::{BufferAllocator, META_SLOTS};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_mem::guard::Principal;
use snic_nf::dpi::synth_patterns;
use snic_types::{ByteSize, CoreId};

use crate::AttackOutcome;

/// Serialize a pattern list the way the victim's config blob stores it:
/// `count: u32 | (len: u16 | bytes)*`.
pub fn serialize_ruleset(patterns: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for p in patterns {
        out.extend_from_slice(&(p.len() as u16).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Parse a serialized ruleset (what the thief does with stolen bytes).
pub fn parse_ruleset(data: &[u8]) -> Option<Vec<Vec<u8>>> {
    let count = u32::from_le_bytes(data.get(0..4)?.try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(count);
    let mut i = 4usize;
    for _ in 0..count {
        let len = u16::from_le_bytes(data.get(i..i + 2)?.try_into().ok()?) as usize;
        i += 2;
        out.push(data.get(i..i + len)?.to_vec());
        i += len;
    }
    Some(out)
}

/// Execute the attack against a freshly built device in `mode`.
pub fn run_ruleset_theft(mode: NicMode) -> AttackOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd91);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);

    // The victim DPI function's threat signatures live in its config blob.
    let secret_patterns = synth_patterns(200, 0x5ec2e7);
    let ruleset_blob = serialize_ruleset(&secret_patterns);
    let victim_req = LaunchRequest::minimal(
        CoreId(0),
        ByteSize::mib(8),
        NfImage {
            code: b"dpi-engine".to_vec(),
            config: ruleset_blob.clone(),
        },
    );
    let victim = nic.nf_launch(victim_req).expect("victim launch").nf_id;

    let attacker_req = LaunchRequest::minimal(
        CoreId(1),
        ByteSize::mib(4),
        NfImage {
            code: b"thief".to_vec(),
            config: vec![],
        },
    );
    let attacker = nic.nf_launch(attacker_req).expect("attacker launch").nf_id;

    // --- The attack: walk allocator metadata for the victim's image
    // buffer and read the ruleset out of DRAM. ---
    let me = Principal::Nf(attacker, CoreId(1));
    let mut stolen: Option<Vec<Vec<u8>>> = None;
    for slot in 0..META_SLOTS {
        let Ok(meta) = BufferAllocator::read_slot(nic.guard_ref(), me, slot) else {
            break;
        };
        if meta.owner == victim && meta.in_use() && !meta.is_packet() && meta.len > 0 {
            // The image is code || config; skip the code prefix.
            let code_len = b"dpi-engine".len() as u64;
            let mut buf = vec![0u8; (meta.len - code_len) as usize];
            if nic.mem_read(me, meta.base + code_len, &mut buf).is_ok() {
                stolen = parse_ruleset(&buf);
            }
        }
    }

    let succeeded = stolen.as_deref() == Some(&secret_patterns[..]);
    AttackOutcome::new(
        mode,
        succeeded,
        match &stolen {
            Some(p) => format!("exfiltrated {} signatures; match={}", p.len(), succeeded),
            None => "no ruleset recovered".to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializer_round_trips() {
        let pats = synth_patterns(50, 1);
        assert_eq!(parse_ruleset(&serialize_ruleset(&pats)).unwrap(), pats);
    }

    #[test]
    fn parser_rejects_truncation() {
        let pats = synth_patterns(10, 2);
        let blob = serialize_ruleset(&pats);
        assert!(parse_ruleset(&blob[..blob.len() - 3]).is_none());
        assert!(parse_ruleset(&[1]).is_none());
    }

    #[test]
    fn commodity_ruleset_stolen_exactly() {
        let o = run_ruleset_theft(NicMode::Commodity);
        assert!(o.succeeded, "{o:?}");
        assert!(o.evidence.contains("exfiltrated 200 signatures"));
    }

    #[test]
    fn snic_ruleset_unreachable() {
        let o = run_ruleset_theft(NicMode::Snic);
        assert!(!o.succeeded, "{o:?}");
        assert_eq!(o.evidence, "no ruleset recovered");
    }
}
