//! The tentpole acceptance test for `snic-verify`'s Pass 2: run every
//! attack scenario under the trace recorder and lint the recordings.
//!
//! Commodity mode must light up at least one finding per scenario — the
//! enabling pattern of each §3.3 attack is visible in the trace. S-NIC
//! mode must lint completely clean for the *identical* scenario code:
//! every access the linter would flag is either refused by the hardware
//! (and refusals are not findings) or decoupled from co-tenants by
//! temporal/spatial partitioning.

use snic_attacks::traced::lint_all;
use snic_core::config::NicMode;
use snic_verify::FindingKind;

#[test]
fn every_scenario_flagged_on_commodity() {
    for scenario in lint_all(NicMode::Commodity) {
        assert!(
            !scenario.findings.is_empty(),
            "commodity trace of `{}` must produce findings",
            scenario.name
        );
    }
}

#[test]
fn no_scenario_flagged_on_snic() {
    for scenario in lint_all(NicMode::Snic) {
        assert!(
            scenario.findings.is_empty(),
            "S-NIC trace of `{}` must lint clean, got {:?}",
            scenario.name,
            scenario.findings
        );
    }
}

#[test]
fn commodity_findings_name_the_expected_patterns() {
    let scenarios = lint_all(NicMode::Commodity);
    let kinds_of = |name: &str| -> Vec<FindingKind> {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scenario {name} missing"))
            .findings
            .iter()
            .map(|f| f.kind)
            .collect()
    };
    // The two memory attacks walk the allocator metadata *and* reach
    // into the victim's buffers.
    for name in ["packet_corruption", "ruleset_theft"] {
        let kinds = kinds_of(name);
        assert!(
            kinds.contains(&FindingKind::AllocatorMetadataWalk),
            "{name}: {kinds:?}"
        );
        assert!(
            kinds.contains(&FindingKind::CrossDomainReference),
            "{name}: {kinds:?}"
        );
    }
    // The NIC OS reaches into tenant memory.
    assert!(kinds_of("nicos_tamper").contains(&FindingKind::CrossDomainReference));
    // Both bus scenarios couple the victim's grant times to the attacker.
    assert!(kinds_of("bus_dos").contains(&FindingKind::BusInterference));
    assert!(kinds_of("watermark").contains(&FindingKind::BusInterference));
    // Prime+Probe observes co-tenant evictions.
    assert!(kinds_of("cache_probe").contains(&FindingKind::CacheSetCoResidency));
}
