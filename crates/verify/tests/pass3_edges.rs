//! Pass 3 edge cases: transcripts that exercise the lint's boundary
//! behaviour rather than its happy/blast paths — empty input, runs
//! that end mid-scrub, and reuse landing exactly at a power-loss scrub
//! watermark.

use snic_faults::{FaultEventKind, FaultRecord};
use snic_types::{NfId, Picos};
use snic_verify::{lint_fault_transcript, FindingKind};

fn rec(seq: u64, nf: Option<NfId>, kind: FaultEventKind) -> FaultRecord {
    FaultRecord {
        seq,
        at: Picos(seq * 10),
        nf,
        kind,
    }
}

fn teardown(seq: u64, nf: u64, base: u64, len: u64) -> FaultRecord {
    rec(
        seq,
        Some(NfId(nf)),
        FaultEventKind::TeardownStarted { base, len },
    )
}

fn progress(seq: u64, nf: u64, base: u64, watermark: u64, len: u64) -> FaultRecord {
    rec(
        seq,
        Some(NfId(nf)),
        FaultEventKind::ScrubProgress {
            base,
            watermark,
            len,
        },
    )
}

fn completed(seq: u64, nf: u64, base: u64, len: u64) -> FaultRecord {
    rec(
        seq,
        Some(NfId(nf)),
        FaultEventKind::ScrubCompleted { base, len },
    )
}

fn reused(seq: u64, nf: u64, base: u64, len: u64) -> FaultRecord {
    rec(
        seq,
        Some(NfId(nf)),
        FaultEventKind::RegionReused { base, len },
    )
}

#[test]
fn empty_transcript_lints_clean() {
    assert!(lint_fault_transcript(&[]).is_empty());
}

#[test]
fn transcript_ending_mid_scrub_is_clean_without_reuse() {
    // A run can legitimately stop while a scrub is in flight (power
    // still out, harness done). With no reuse of the dirty region there
    // is nothing to flag — the invariant constrains reuse, not the
    // scrub's completion within the observed window.
    let records = vec![
        teardown(0, 1, 0x4000, 0x2000),
        progress(1, 1, 0x4000, 0x800, 0x2000),
        rec(2, None, FaultEventKind::PowerLost),
    ];
    assert!(lint_fault_transcript(&records).is_empty());
}

#[test]
fn reuse_of_other_memory_while_scrub_pending_is_clean() {
    // The dirty-region bookkeeping must not over-approximate: handing
    // out *disjoint* memory while a scrub is pending is legal.
    let records = vec![
        teardown(0, 1, 0x4000, 0x2000),
        progress(1, 1, 0x4000, 0x800, 0x2000),
        reused(2, 2, 0x8000, 0x1000),
    ];
    assert!(lint_fault_transcript(&records).is_empty());
}

#[test]
fn reuse_exactly_at_watermark_boundary_is_still_flagged() {
    // Power loss interrupts the scrub at watermark 0x800: bytes below
    // the watermark are already zero, bytes above are not. The region
    // is tracked as dirty until ScrubCompleted, so reuse starting
    // exactly at base+watermark — the first *unscrubbed* byte — must be
    // flagged, and Pass 3 is deliberately conservative about reuse of
    // the scrubbed prefix too (completion, not progress, clears it).
    let base = 0x4000u64;
    let watermark = 0x800u64;
    let records = vec![
        teardown(0, 1, base, 0x2000),
        progress(1, 1, base, watermark, 0x2000),
        rec(2, None, FaultEventKind::PowerLost),
        rec(3, None, FaultEventKind::PowerRestored),
        reused(4, 2, base + watermark, 0x100),
    ];
    let findings = lint_fault_transcript(&records);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, FindingKind::UnscrubbedReuse);

    // The conservative half: the zeroed prefix is also refused until
    // the scrub completes.
    let prefix = vec![
        teardown(0, 1, base, 0x2000),
        progress(1, 1, base, watermark, 0x2000),
        reused(2, 2, base, watermark),
    ];
    let findings = lint_fault_transcript(&prefix);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].kind, FindingKind::UnscrubbedReuse);

    // Reuse starting one byte past the region's end is disjoint: clean.
    let past_end = vec![
        teardown(0, 1, base, 0x2000),
        reused(1, 2, base + 0x2000, 0x100),
    ];
    assert!(lint_fault_transcript(&past_end).is_empty());
}

#[test]
fn interleaved_tenants_track_dirty_regions_independently() {
    // Two teardowns in flight; only one completes. Reuse of the
    // completed region is clean, reuse of the still-dirty one is
    // flagged — the per-region retain must not clear both.
    let records = vec![
        teardown(0, 1, 0x4000, 0x1000),
        teardown(1, 2, 0x8000, 0x1000),
        progress(2, 1, 0x4000, 0x400, 0x1000),
        progress(3, 2, 0x8000, 0x1000, 0x1000),
        completed(4, 2, 0x8000, 0x1000),
        reused(5, 3, 0x8000, 0x1000), // NF 2's region: scrubbed, clean
        reused(6, 4, 0x4800, 0x100),  // NF 1's region: still dirty
    ];
    let findings = lint_fault_transcript(&records);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, FindingKind::UnscrubbedReuse);
    assert!(
        findings[0].detail.contains("0x4800"),
        "finding should name the dirty reuse: {}",
        findings[0].detail
    );
}
