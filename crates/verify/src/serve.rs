//! Pass 4 — admission-transcript linting for the resident daemon.
//!
//! `snicd` freezes a faulted tenant's queue, bounds every queue to a
//! configured depth, and cancels deadline-expired work before it
//! reaches the device. Those are *claims*; this pass checks them
//! against the daemon's own [`ServeRecord`] transcript the same way
//! Pass 3 checks the device's recovery claims against its fault
//! transcript:
//!
//! - **No frozen service** ([`FindingKind::FrozenTenantServed`]): a
//!   `Served` record for a tenant inside a `Frozen`..`Thawed` window
//!   means blast-radius containment failed at the serving layer.
//! - **No quota bypass** ([`FindingKind::AdmissionQuotaBypass`]):
//!   `Admitted` records carry the queue depth after enqueueing and the
//!   configured bound; the lint also reconstructs each queue's depth
//!   from admissions minus services/expiries/reclaims and flags any
//!   point where either exceeds the bound.
//! - **No zombie service** ([`FindingKind::ExpiredRequestServed`]): a
//!   request the transcript already expired must never show up served.
//!
//! Tenants are attributed as [`FindingActor::ServeTenant`] with the
//! index of their first appearance in the transcript (stable for a
//! deterministic transcript); the finding detail carries the name.

use std::collections::HashMap;

use snic_faults::{ServeEventKind, ServeRecord};

use crate::report::{Finding, FindingActor, FindingKind};

#[derive(Default)]
struct TenantLint {
    index: u32,
    frozen: bool,
    /// Reconstructed queue depth (admissions not yet served/expired).
    depth: i64,
    /// Request ids the transcript expired (value: seq of the expiry).
    expired: HashMap<u64, u64>,
}

/// Lint one daemon admission transcript; an empty vector means every
/// serving-layer claim held.
pub fn lint_serve_transcript(records: &[ServeRecord]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut tenants: HashMap<&str, TenantLint> = HashMap::new();
    let mut next_index = 0u32;
    for r in records {
        if r.tenant.is_empty() {
            continue; // daemon-wide events carry no per-tenant claims
        }
        let t = tenants.entry(r.tenant.as_str()).or_insert_with(|| {
            let index = next_index;
            next_index += 1;
            TenantLint {
                index,
                ..TenantLint::default()
            }
        });
        let actor = FindingActor::ServeTenant(t.index);
        match &r.kind {
            ServeEventKind::Admitted { depth, bound, .. } => {
                t.depth += 1;
                let reconstructed = t.depth;
                if *depth > *bound {
                    findings.push(Finding {
                        kind: FindingKind::AdmissionQuotaBypass,
                        actor,
                        count: 1,
                        range: Some((u64::from(*depth), u64::from(*bound))),
                        detail: format!(
                            "tenant '{}' admitted to depth {depth} past bound {bound} (seq {})",
                            r.tenant, r.seq
                        ),
                    });
                }
                if reconstructed > i64::from(*bound) {
                    findings.push(Finding {
                        kind: FindingKind::AdmissionQuotaBypass,
                        actor,
                        count: 1,
                        range: Some((reconstructed as u64, u64::from(*bound))),
                        detail: format!(
                            "tenant '{}' reconstructed depth {reconstructed} exceeds bound \
                             {bound} (seq {})",
                            r.tenant, r.seq
                        ),
                    });
                }
            }
            ServeEventKind::Served { .. } => {
                t.depth -= 1;
                if t.frozen {
                    findings.push(Finding {
                        kind: FindingKind::FrozenTenantServed,
                        actor,
                        count: 1,
                        range: None,
                        detail: format!(
                            "tenant '{}' served request id {} while frozen (seq {})",
                            r.tenant, r.id, r.seq
                        ),
                    });
                }
                if let Some(expired_at) = t.expired.get(&r.id) {
                    findings.push(Finding {
                        kind: FindingKind::ExpiredRequestServed,
                        actor,
                        count: 1,
                        range: Some((*expired_at, r.seq)),
                        detail: format!(
                            "tenant '{}' request id {} expired at seq {expired_at} but was \
                             served at seq {}",
                            r.tenant, r.id, r.seq
                        ),
                    });
                }
            }
            ServeEventKind::Expired => {
                t.depth -= 1;
                t.expired.insert(r.id, r.seq);
            }
            ServeEventKind::Frozen { .. } => t.frozen = true,
            ServeEventKind::Thawed => t.frozen = false,
            ServeEventKind::Reclaimed { shed } => {
                t.depth -= i64::from(*shed);
            }
            ServeEventKind::Shed { .. }
            | ServeEventKind::DrainStarted
            | ServeEventKind::DrainCompleted { .. }
            | ServeEventKind::SnapshotTaken { .. } => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::Picos;

    fn rec(seq: u64, tenant: &str, id: u64, kind: ServeEventKind) -> ServeRecord {
        ServeRecord {
            seq,
            at: Picos(seq),
            tenant: tenant.into(),
            id,
            kind,
        }
    }

    fn admit(seq: u64, tenant: &str, id: u64, depth: u32, bound: u32) -> ServeRecord {
        rec(
            seq,
            tenant,
            id,
            ServeEventKind::Admitted {
                op: "launch",
                depth,
                bound,
            },
        )
    }

    fn served(seq: u64, tenant: &str, id: u64) -> ServeRecord {
        rec(
            seq,
            tenant,
            id,
            ServeEventKind::Served {
                ok: true,
                code: None,
            },
        )
    }

    #[test]
    fn clean_transcript_has_no_findings() {
        let records = vec![
            admit(0, "a", 1, 1, 2),
            admit(1, "a", 2, 2, 2),
            served(2, "a", 1),
            admit(3, "b", 3, 1, 2),
            served(4, "a", 2),
            served(5, "b", 3),
            rec(6, "", 0, ServeEventKind::DrainCompleted { served: 3 }),
        ];
        assert!(lint_serve_transcript(&records).is_empty());
    }

    #[test]
    fn frozen_service_is_flagged() {
        let records = vec![
            admit(0, "a", 1, 1, 4),
            rec(
                1,
                "a",
                0,
                ServeEventKind::Frozen {
                    reason: "nf-crash".into(),
                },
            ),
            served(2, "a", 1),
        ];
        let findings = lint_serve_transcript(&records);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::FrozenTenantServed);
        assert_eq!(findings[0].actor, FindingActor::ServeTenant(0));
        assert!(findings[0].detail.contains("'a'"));
    }

    #[test]
    fn thaw_clears_the_freeze() {
        let records = vec![
            admit(0, "a", 1, 1, 4),
            rec(
                1,
                "a",
                0,
                ServeEventKind::Frozen {
                    reason: "nf-crash".into(),
                },
            ),
            rec(2, "a", 0, ServeEventKind::Reclaimed { shed: 1 }),
            rec(3, "a", 0, ServeEventKind::Thawed),
            admit(4, "a", 2, 1, 4),
            served(5, "a", 2),
        ];
        assert!(lint_serve_transcript(&records).is_empty());
    }

    #[test]
    fn recorded_and_reconstructed_quota_bypass_are_flagged() {
        // Recorded depth over bound.
        let records = vec![admit(0, "a", 1, 3, 2)];
        let findings = lint_serve_transcript(&records);
        assert!(
            findings
                .iter()
                .any(|f| f.kind == FindingKind::AdmissionQuotaBypass),
            "{findings:?}"
        );
        // Reconstructed depth over bound even when the recorded depth lies.
        let records = vec![
            admit(0, "a", 1, 1, 2),
            admit(1, "a", 2, 2, 2),
            admit(2, "a", 3, 1, 2), // forged depth field
        ];
        let findings = lint_serve_transcript(&records);
        assert!(
            findings.iter().any(|f| f.detail.contains("reconstructed")),
            "{findings:?}"
        );
    }

    #[test]
    fn expired_then_served_is_flagged() {
        let records = vec![
            admit(0, "a", 1, 1, 4),
            rec(1, "a", 1, ServeEventKind::Expired),
            served(2, "a", 1),
        ];
        let findings = lint_serve_transcript(&records);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::ExpiredRequestServed);
    }

    #[test]
    fn tenant_indices_follow_first_appearance() {
        let records = vec![
            admit(0, "zeta", 1, 1, 1),
            admit(1, "alpha", 2, 2, 1), // bypass on second tenant
        ];
        let findings = lint_serve_transcript(&records);
        assert_eq!(findings[0].actor, FindingActor::ServeTenant(1));
        assert!(findings[0].detail.contains("'alpha'"));
    }
}
