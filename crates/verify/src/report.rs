//! Typed verifier output: violations (Pass 1) and findings (Pass 2).
//!
//! The paper's isolation argument is per-mechanism, so the verifier's
//! output is too: every violation and finding names the guarantee it
//! breaks and cites the section of the paper that establishes it.

use std::fmt;

use snic_types::NfId;

/// Which isolation invariant a manifest set breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two manifests claim overlapping physical ranges (or one manifest
    /// overlaps itself).
    RegionOverlap,
    /// A function region intrudes into NIC-OS / firmware memory.
    NicOsCollision,
    /// A region lies outside allocatable DRAM (or is empty).
    OutOfDram,
    /// An NF-owned range is reachable by the management core: the
    /// denylist does not cover the ownership map.
    DenylistGap,
    /// Required TLB entries exceed per-core hardware capacity.
    TlbOverflow,
    /// A live function's TLB is not locked, or maps memory outside the
    /// function's manifest.
    TlbEscape,
    /// A core is claimed twice, or does not exist on the device.
    CoreConflict,
    /// Accelerator-cluster requests exceed (or name nonexistent)
    /// capacity, breaking exclusive assignment.
    AccelOvercommit,
    /// Summed VPP buffer reservations exceed port capacity.
    VppOvercommit,
    /// The temporal bus schedule overcommits the epoch.
    BusOvercommit,
    /// Pass 0: a load's address range can leave its granted region.
    OobLoad,
    /// Pass 0: a store's address range can leave its granted region.
    OobStore,
    /// Pass 0: a DMA transfer can leave the host-sanctioned window.
    DmaOverflow,
    /// Pass 0: a packet/state-derived value flows outside the grant
    /// envelope.
    TaintLeak,
    /// Pass 0: an access to a region the manifest does not grant.
    UngrantedRegion,
    /// Pass 0: a submission to an ungranted accelerator family.
    UngrantedAccel,
    /// Pass 0: a CFG back edge with no per-packet trip bound.
    UnboundedLoop,
    /// Pass 0: the proven instruction ceiling exceeds the admission
    /// limit.
    InsnCeiling,
    /// Pass 0: structurally invalid IR.
    MalformedIr,
    /// Pass 0: the analysis fixpoint exceeded its step budget.
    FixpointBudget,
}

impl ViolationKind {
    /// The paper section whose guarantee this violation would break.
    pub fn citation(self) -> &'static str {
        match self {
            ViolationKind::RegionOverlap => "§4.1 (single-owner RAM)",
            ViolationKind::NicOsCollision => "§4.2 (NIC-OS memory protection)",
            ViolationKind::OutOfDram => "§4.1 (physical memory inventory)",
            ViolationKind::DenylistGap => "§4.2 (management-core denylist)",
            ViolationKind::TlbOverflow => "§4.2/§5.2 (TLB sizing, Tables 4-6)",
            ViolationKind::TlbEscape => "§4.2 (locked per-core TLBs)",
            ViolationKind::CoreConflict => "§4.1 (exclusive core binding)",
            ViolationKind::AccelOvercommit => "§4.3 (exclusive accelerator clusters)",
            ViolationKind::VppOvercommit => "§4.4 (reserved VPP buffers)",
            ViolationKind::BusOvercommit => "§4.5 (temporal bus partitioning)",
            ViolationKind::OobLoad | ViolationKind::OobStore | ViolationKind::UngrantedRegion => {
                "§4.1-§4.2 (single-owner memory, Pass 0)"
            }
            ViolationKind::DmaOverflow => "§4.2 (host-sanctioned DMA windows, Pass 0)",
            ViolationKind::TaintLeak => "§3.3/§4 (cross-tenant information flow, Pass 0)",
            ViolationKind::UngrantedAccel => "§4.3 (exclusive accelerators, Pass 0)",
            ViolationKind::UnboundedLoop | ViolationKind::InsnCeiling => {
                "§4 (per-NF compute admission, Pass 0)"
            }
            ViolationKind::MalformedIr | ViolationKind::FixpointBudget => "Pass 0 well-formedness",
        }
    }

    /// Stable machine-readable code for CI and the fleet control plane.
    /// Codes are part of the external interface: never reworded once
    /// shipped.
    pub fn code(self) -> &'static str {
        match self {
            ViolationKind::RegionOverlap => "P1-REGION-OVERLAP",
            ViolationKind::NicOsCollision => "P1-NICOS-COLLISION",
            ViolationKind::OutOfDram => "P1-OUT-OF-DRAM",
            ViolationKind::DenylistGap => "P1-DENYLIST-GAP",
            ViolationKind::TlbOverflow => "P1-TLB-OVERFLOW",
            ViolationKind::TlbEscape => "P1-TLB-ESCAPE",
            ViolationKind::CoreConflict => "P1-CORE-CONFLICT",
            ViolationKind::AccelOvercommit => "P1-ACCEL-OVERCOMMIT",
            ViolationKind::VppOvercommit => "P1-VPP-OVERCOMMIT",
            ViolationKind::BusOvercommit => "P1-BUS-OVERCOMMIT",
            ViolationKind::OobLoad => "P0-OOB-LOAD",
            ViolationKind::OobStore => "P0-OOB-STORE",
            ViolationKind::DmaOverflow => "P0-DMA-OVERFLOW",
            ViolationKind::TaintLeak => "P0-TAINT-LEAK",
            ViolationKind::UngrantedRegion => "P0-REGION-UNGRANTED",
            ViolationKind::UngrantedAccel => "P0-ACCEL-UNGRANTED",
            ViolationKind::UnboundedLoop => "P0-UNBOUNDED-LOOP",
            ViolationKind::InsnCeiling => "P0-INSN-CEILING",
            ViolationKind::MalformedIr => "P0-MALFORMED-IR",
            ViolationKind::FixpointBudget => "P0-FIXPOINT-BUDGET",
        }
    }
}

/// One broken invariant, attributed to a function and a resource range.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant broken.
    pub kind: ViolationKind,
    /// The offending function, when attributable to one.
    pub nf: Option<NfId>,
    /// The offending resource range `(base, len)` — physical addresses
    /// for memory violations, counts/cycles for capacity violations.
    pub range: Option<(u64, u64)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// Paper citation for this violation's invariant.
    pub fn citation(&self) -> &'static str {
        self.kind.citation()
    }

    /// Stable machine-readable code (`P0-*`/`P1-*`) for this violation.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// JSON object for `snicctl verify --json` and CI gating. The human
    /// `Display` form stays the canonical text output.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"code\":\"{}\",\"kind\":\"{:?}\"",
            self.code(),
            self.kind
        );
        match self.nf {
            Some(nf) => s.push_str(&format!(",\"nf\":{}", nf.0)),
            None => s.push_str(",\"nf\":null"),
        }
        match self.range {
            Some((base, len)) => s.push_str(&format!(",\"base\":{base},\"len\":{len}")),
            None => s.push_str(",\"base\":null,\"len\":null"),
        }
        s.push_str(&format!(
            ",\"detail\":\"{}\",\"citation\":\"{}\"}}",
            json_escape(&self.detail),
            json_escape(self.citation())
        ));
        s
    }
}

/// Minimal JSON string escaping (the verifier emits no exotic text, but
/// details may quote region names).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.kind)?;
        if let Some(nf) = self.nf {
            write!(f, " nf={}", nf.0)?;
        }
        if let Some((base, len)) = self.range {
            write!(f, " range={base:#x}+{len:#x}")?;
        }
        write!(f, ": {} [{}]", self.detail, self.citation())
    }
}

/// The result of Pass 1 over a manifest set.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Every invariant violation found (empty = verified).
    pub violations: Vec<Violation>,
    /// How many manifests were checked.
    pub manifests_checked: usize,
}

impl VerificationReport {
    /// True if the manifest set verified cleanly.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations attributed to `nf` (plus unattributed ones).
    pub fn concerning(&self, nf: NfId) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(move |v| v.nf.is_none() || v.nf == Some(nf))
    }

    /// JSON report for `snicctl verify --json` and CI gating.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self.violations.iter().map(Violation::to_json).collect();
        format!(
            "{{\"ok\":{},\"manifests_checked\":{},\"violations\":[{}]}}",
            self.is_ok(),
            self.manifests_checked,
            violations.join(",")
        )
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(
                f,
                "verified: {} manifest(s), no violations",
                self.manifests_checked
            );
        }
        writeln!(
            f,
            "REFUSED: {} violation(s) across {} manifest(s)",
            self.violations.len(),
            self.manifests_checked
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Who a trace finding is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingActor {
    /// A network function (memory-trace findings).
    Nf(NfId),
    /// The NIC-OS management core.
    Management,
    /// A bus security domain (bus-trace findings).
    BusDomain(u32),
    /// A cache tenant slot (cache-trace findings).
    CacheTenant(u32),
    /// A serving-daemon tenant, by its index in the transcript's
    /// first-appearance order (the finding's `detail` names it; Pass 4
    /// admission-transcript lints).
    ServeTenant(u32),
}

impl fmt::Display for FindingActor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingActor::Nf(nf) => write!(f, "nf {}", nf.0),
            FindingActor::Management => write!(f, "management core"),
            FindingActor::BusDomain(d) => write!(f, "bus domain {d}"),
            FindingActor::CacheTenant(t) => write!(f, "cache tenant {t}"),
            FindingActor::ServeTenant(t) => write!(f, "serve tenant {t}"),
        }
    }
}

/// Which §3.3 attack pattern a trace exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A granted memory reference crossed a domain boundary (an NF read
    /// another NF's RAM, or the management core read NF RAM).
    CrossDomainReference,
    /// An NF walked the shared buffer allocator's metadata table — the
    /// discovery step of the packet-corruption and ruleset-theft
    /// attacks.
    AllocatorMetadataWalk,
    /// A domain's bus grants were delayed by another domain's traffic
    /// (FCFS coupling: DoS and covert-channel substrate).
    BusInterference,
    /// A tenant repeatedly observed its cache lines evicted by
    /// co-resident tenants (prime-and-probe substrate).
    CacheSetCoResidency,
    /// A cache trace contains accesses from a tenant id outside the
    /// claimed partition's domain count — the trace cannot have come
    /// from the discipline it claims (a strict partition rejects such
    /// tenants at construction; a clamping one would silently alias
    /// them into another tenant's slice).
    ForeignCacheTenant,
    /// A memory region was handed to a function before the zeroization
    /// of its previous owner's data completed (fault-transcript lint).
    UnscrubbedReuse,
    /// A fault injected into one function was followed by an observed
    /// perturbation (or device crash) hitting a *different* tenant —
    /// the blast radius escaped its isolation domain.
    FaultPropagation,
    /// A lifecycle transition violated the
    /// `Launched → Running → Faulted → Scrubbing → Reclaimed` relation.
    IllegalLifecycleTransition,
    /// The daemon served a request for a tenant whose queue was frozen
    /// — blast-radius containment at the serving layer failed
    /// (admission-transcript lint).
    FrozenTenantServed,
    /// A tenant's queue depth exceeded its configured admission bound,
    /// or accounting shows more requests admitted than the bound allows
    /// — backpressure was bypassed (admission-transcript lint).
    AdmissionQuotaBypass,
    /// A request recorded as deadline-expired was nonetheless served —
    /// cancelled work reached the device (admission-transcript lint).
    ExpiredRequestServed,
}

impl FindingKind {
    /// The paper section describing the attack this pattern enables.
    pub fn citation(self) -> &'static str {
        match self {
            FindingKind::CrossDomainReference => "§3.3 (xkphys cross-domain access)",
            FindingKind::AllocatorMetadataWalk => "§3.3 (allocator-metadata scan)",
            FindingKind::BusInterference => "§3.3 (bus DoS) / §4.5",
            FindingKind::CacheSetCoResidency => "§3.3 (cache contention) / §4.2",
            FindingKind::ForeignCacheTenant => "§4.2 (way-partition domain binding)",
            FindingKind::UnscrubbedReuse => "§4.6 (teardown scrubbing)",
            FindingKind::FaultPropagation => "§4.3/§4.6 (fault containment)",
            FindingKind::IllegalLifecycleTransition => "§4.6 (launch/teardown lifecycle)",
            FindingKind::FrozenTenantServed => "§4.3/§4.6 (fault containment, serving layer)",
            FindingKind::AdmissionQuotaBypass => "§2.2 (multi-tenant resource quotas)",
            FindingKind::ExpiredRequestServed => "§4.6 (teardown/cancel atomicity)",
        }
    }

    /// Stable machine-readable code. Trace findings are `P2-*`; the
    /// fault-transcript lints are `P3-*`; the admission-transcript
    /// (daemon) lints are `P4-*`.
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::CrossDomainReference => "P2-CROSS-DOMAIN-REF",
            FindingKind::AllocatorMetadataWalk => "P2-ALLOCATOR-WALK",
            FindingKind::BusInterference => "P2-BUS-INTERFERENCE",
            FindingKind::CacheSetCoResidency => "P2-CACHE-CORESIDENCY",
            FindingKind::ForeignCacheTenant => "P2-FOREIGN-TENANT",
            FindingKind::UnscrubbedReuse => "P3-UNSCRUBBED-REUSE",
            FindingKind::FaultPropagation => "P3-FAULT-PROPAGATION",
            FindingKind::IllegalLifecycleTransition => "P3-LIFECYCLE",
            FindingKind::FrozenTenantServed => "P4-FROZEN-SERVE",
            FindingKind::AdmissionQuotaBypass => "P4-QUOTA-BYPASS",
            FindingKind::ExpiredRequestServed => "P4-EXPIRED-SERVE",
        }
    }
}

/// One attack pattern recognized in a trace by Pass 2.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pattern recognized.
    pub kind: FindingKind,
    /// Who performed the suspect accesses.
    pub actor: FindingActor,
    /// How many trace events matched.
    pub count: usize,
    /// A representative offending location `(base, len)` — an address
    /// range, or cycle offsets for bus findings.
    pub range: Option<(u64, u64)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Finding {
    /// Paper citation for this finding's attack pattern.
    pub fn citation(&self) -> &'static str {
        self.kind.citation()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} by {} x{}", self.kind, self.actor, self.count)?;
        if let Some((base, len)) = self.range {
            write!(f, " at {base:#x}+{len:#x}")?;
        }
        write!(f, ": {} [{}]", self.detail, self.citation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_includes_citation() {
        let v = Violation {
            kind: ViolationKind::RegionOverlap,
            nf: Some(NfId(3)),
            range: Some((0x0800_0000, 0x1000)),
            detail: "overlaps nf 2".into(),
        };
        let s = v.to_string();
        assert!(s.contains("nf=3"));
        assert!(s.contains("0x8000000"));
        assert!(s.contains("§4.1"));
    }

    #[test]
    fn report_display_and_filtering() {
        let mut r = VerificationReport {
            manifests_checked: 2,
            ..Default::default()
        };
        assert!(r.is_ok());
        assert!(r.to_string().contains("verified"));
        r.violations.push(Violation {
            kind: ViolationKind::CoreConflict,
            nf: Some(NfId(1)),
            range: None,
            detail: "core 0 claimed twice".into(),
        });
        r.violations.push(Violation {
            kind: ViolationKind::VppOvercommit,
            nf: None,
            range: None,
            detail: "pb sum".into(),
        });
        assert!(!r.is_ok());
        assert!(r.to_string().contains("REFUSED"));
        assert_eq!(r.concerning(NfId(1)).count(), 2);
        assert_eq!(r.concerning(NfId(9)).count(), 1);
    }

    #[test]
    fn violation_codes_are_stable_and_unique() {
        let kinds = [
            ViolationKind::RegionOverlap,
            ViolationKind::NicOsCollision,
            ViolationKind::OutOfDram,
            ViolationKind::DenylistGap,
            ViolationKind::TlbOverflow,
            ViolationKind::TlbEscape,
            ViolationKind::CoreConflict,
            ViolationKind::AccelOvercommit,
            ViolationKind::VppOvercommit,
            ViolationKind::BusOvercommit,
            ViolationKind::OobLoad,
            ViolationKind::OobStore,
            ViolationKind::DmaOverflow,
            ViolationKind::TaintLeak,
            ViolationKind::UngrantedRegion,
            ViolationKind::UngrantedAccel,
            ViolationKind::UnboundedLoop,
            ViolationKind::InsnCeiling,
            ViolationKind::MalformedIr,
            ViolationKind::FixpointBudget,
        ];
        let codes: std::collections::HashSet<&str> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len(), "codes must be unique");
        // Spot-check the published prefixes.
        assert_eq!(ViolationKind::CoreConflict.code(), "P1-CORE-CONFLICT");
        assert_eq!(ViolationKind::OobStore.code(), "P0-OOB-STORE");
        assert!(kinds.iter().all(|k| {
            let c = k.code();
            c.starts_with("P0-") || c.starts_with("P1-")
        }));
    }

    #[test]
    fn report_json_has_codes_and_fields() {
        let r = VerificationReport {
            manifests_checked: 1,
            violations: vec![Violation {
                kind: ViolationKind::OobStore,
                nf: Some(NfId(4)),
                range: Some((0x1000, 0x20)),
                detail: "store \"x\" escapes".into(),
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("\"code\":\"P0-OOB-STORE\""));
        assert!(j.contains("\"nf\":4"));
        assert!(j.contains("\"base\":4096"));
        assert!(j.contains("store \\\"x\\\" escapes"));
        // Human display untouched by the JSON path.
        assert!(r.to_string().contains("REFUSED"));
    }

    #[test]
    fn finding_codes_are_stable() {
        assert_eq!(
            FindingKind::CrossDomainReference.code(),
            "P2-CROSS-DOMAIN-REF"
        );
        assert_eq!(FindingKind::UnscrubbedReuse.code(), "P3-UNSCRUBBED-REUSE");
        assert_eq!(
            FindingKind::IllegalLifecycleTransition.code(),
            "P3-LIFECYCLE"
        );
        assert_eq!(FindingKind::FrozenTenantServed.code(), "P4-FROZEN-SERVE");
        assert_eq!(FindingKind::AdmissionQuotaBypass.code(), "P4-QUOTA-BYPASS");
        assert_eq!(FindingKind::ExpiredRequestServed.code(), "P4-EXPIRED-SERVE");
    }

    #[test]
    fn finding_display_names_actor() {
        let f = Finding {
            kind: FindingKind::AllocatorMetadataWalk,
            actor: FindingActor::Nf(NfId(7)),
            count: 12,
            range: Some((0x0010_0000, 32)),
            detail: "walked 12 slots".into(),
        };
        let s = f.to_string();
        assert!(s.contains("nf 7"));
        assert!(s.contains("§3.3"));
    }
}
