//! Pass 2: offline linting of execution traces for §3.3 attack patterns.
//!
//! The linter consumes three trace streams, all cheap to record during a
//! simulation run:
//!
//! - **memory references** — [`snic_mem::AccessRecord`]s from the memory
//!   guard's audit log,
//! - **bus grants** — [`BusGrantEvent`]s from the arbiter,
//! - **cache accesses** — [`CacheAccessEvent`]s with hit/miss results.
//!
//! Each lint recognizes the *enabling pattern* of one §3.3 attack, not
//! the attack's payload: a trace that merely positions an attacker to
//! observe or corrupt a co-tenant is already a violation of the
//! isolation the paper sets out to provide. Denied accesses
//! (`granted = false`) never produce findings — a refused access is the
//! defense working, which is why the same scenarios run on an S-NIC
//! configuration lint clean.

use std::collections::{BTreeSet, HashMap};

use snic_mem::guard::{AccessKind, AccessRecord, Principal};
use snic_types::NfId;
use snic_uarch::bus::{Arbiter, FcfsArbiter, TemporalArbiter};
use snic_uarch::cache::{Cache, CacheConfig, Partition};

use crate::report::{Finding, FindingActor, FindingKind};
use crate::spec::{BusSpec, DeviceSpec};

/// One bus transaction as observed at the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrantEvent {
    /// Security domain issuing the request.
    pub domain: u32,
    /// Cycle the request became ready.
    pub ready: u64,
    /// Cycles the transfer occupies the bus.
    pub duration: u64,
    /// Cycle the arbiter actually started the transfer.
    pub granted: u64,
}

/// One cache access with its observed outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessEvent {
    /// Cache tenant slot.
    pub tenant: u32,
    /// Accessed address.
    pub addr: u64,
    /// Whether the access hit.
    pub hit: bool,
}

/// A full recording of one scenario, ready for linting.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Audited physical memory references.
    pub memory: Vec<AccessRecord>,
    /// Bus grants, in issue order.
    pub bus: Vec<BusGrantEvent>,
    /// Cache accesses, in issue order.
    pub cache: Vec<CacheAccessEvent>,
}

impl TraceBundle {
    /// Adapt a uarch-engine recording
    /// ([`snic_uarch::run_reference_traced`]) into lintable form. The
    /// engine observes L2 accesses and bus grants but not the memory
    /// guard, so `memory` stays empty.
    pub fn from_uarch(trace: &snic_uarch::RecordedTrace) -> TraceBundle {
        TraceBundle {
            memory: Vec::new(),
            bus: trace
                .bus
                .iter()
                .map(|g| BusGrantEvent {
                    domain: g.domain,
                    ready: g.ready,
                    duration: g.duration,
                    granted: g.granted,
                })
                .collect(),
            cache: trace
                .l2
                .iter()
                .map(|a| CacheAccessEvent {
                    tenant: a.tenant,
                    addr: a.addr,
                    hit: a.hit,
                })
                .collect(),
        }
    }
}

/// Stride of one allocator metadata slot (`snic-core`'s shared buffer
/// allocator writes 32-byte slots; the walk detector counts distinct
/// slots at this granularity).
const META_SLOT_STRIDE: u64 = 32;

/// Distinct metadata slots an NF must touch before its reads count as a
/// *walk* rather than an incidental lookup of its own slot.
const WALK_MIN_SLOTS: usize = 4;

/// Cross-tenant evictions a tenant must observe before the pattern
/// counts as co-residency probing rather than noise.
const CORESIDENCY_MIN_EVICTIONS: usize = 4;

/// The offline trace analyzer.
///
/// `domains` is the ground-truth ownership map — which physical ranges
/// belong to which function — taken from the trusted side (the page
/// ownership bitmap plus the allocator's slot table). `nic_os` marks
/// firmware ranges (notably the allocator metadata table) whose
/// wholesale traversal by an NF is the §3.3 discovery step.
#[derive(Debug, Clone)]
pub struct TraceLinter {
    domains: Vec<(u64, u64, NfId)>,
    nic_os: Vec<(u64, u64)>,
    bus: BusSpec,
    cache: Option<(CacheConfig, Partition)>,
}

impl TraceLinter {
    /// Build a linter from the device spec and the ownership map.
    pub fn new(spec: &DeviceSpec, domains: Vec<(u64, u64, NfId)>) -> TraceLinter {
        TraceLinter {
            domains,
            nic_os: spec.nic_os.clone(),
            bus: spec.bus,
            cache: None,
        }
    }

    /// Supply the cache geometry and the *claimed* sharing discipline so
    /// cache traces can be linted against it.
    pub fn with_cache(mut self, cache: CacheConfig, partition: Partition) -> TraceLinter {
        self.cache = Some((cache, partition));
        self
    }

    /// Run every lint over `bundle` and collect the findings.
    pub fn lint(&self, bundle: &TraceBundle) -> Vec<Finding> {
        let mut out = self.lint_memory(&bundle.memory);
        out.extend(self.lint_bus(&bundle.bus));
        out.extend(self.lint_cache(&bundle.cache));
        out
    }

    /// Owner of any byte in `addr..addr+len`, if the range touches an
    /// owned domain.
    fn owner_of(&self, addr: u64, len: u64) -> Option<NfId> {
        self.domains
            .iter()
            .find(|&&(b, l, _)| addr < b.saturating_add(l) && b < addr.saturating_add(len))
            .map(|&(_, _, nf)| nf)
    }

    /// The NIC-OS range containing `addr`, if any.
    fn nic_os_range(&self, addr: u64) -> Option<(u64, u64)> {
        self.nic_os
            .iter()
            .copied()
            .find(|&(b, l)| addr >= b && addr < b.saturating_add(l))
    }

    /// Memory lints: cross-domain references and allocator-metadata
    /// walks, over *granted* accesses only.
    pub fn lint_memory(&self, trace: &[AccessRecord]) -> Vec<Finding> {
        struct CrossStats {
            count: usize,
            example: (u64, u64),
        }
        let mut cross: HashMap<FindingActor, CrossStats> = HashMap::new();
        // Per-NF distinct metadata slots touched, plus the range they
        // fall in (BTreeSet keeps the example deterministic).
        let mut walks: HashMap<NfId, (BTreeSet<u64>, (u64, u64))> = HashMap::new();

        for r in trace.iter().filter(|r| r.granted) {
            let actor = match r.who {
                Principal::TrustedHardware => continue,
                Principal::Management => FindingActor::Management,
                Principal::Nf(nf, _) => FindingActor::Nf(nf),
            };
            let crossed = match r.who {
                Principal::Nf(nf, _) => self.owner_of(r.addr, r.len).filter(|&o| o != nf),
                _ => self.owner_of(r.addr, r.len),
            };
            if crossed.is_some() {
                let stats = cross.entry(actor).or_insert(CrossStats {
                    count: 0,
                    example: (r.addr, r.len),
                });
                stats.count += 1;
            }
            if let (Principal::Nf(nf, _), AccessKind::Load) = (r.who, r.kind) {
                if let Some(range) = self.nic_os_range(r.addr) {
                    let (slots, _) = walks.entry(nf).or_insert((BTreeSet::new(), range));
                    slots.insert((r.addr - range.0) / META_SLOT_STRIDE);
                }
            }
        }

        let mut out = Vec::new();
        for (actor, stats) in cross {
            out.push(Finding {
                kind: FindingKind::CrossDomainReference,
                actor,
                count: stats.count,
                range: Some(stats.example),
                detail: format!(
                    "{} granted reference(s) into another domain's memory",
                    stats.count
                ),
            });
        }
        for (nf, (slots, range)) in walks {
            if slots.len() >= WALK_MIN_SLOTS {
                out.push(Finding {
                    kind: FindingKind::AllocatorMetadataWalk,
                    actor: FindingActor::Nf(nf),
                    count: slots.len(),
                    range: Some(range),
                    detail: format!("walked {} distinct allocator metadata slots", slots.len()),
                });
            }
        }
        out.sort_by_key(|f| format!("{:?}/{}", f.kind, f.actor));
        out
    }

    /// Bus lint: replay each domain's requests through a *solo* arbiter
    /// of the same discipline and compare grant times. Under temporal
    /// partitioning the grant time is a pure function of the domain's
    /// own traffic, so observed == solo and the lint stays silent; under
    /// FCFS any contention shows up as observed grants later than the
    /// solo replay — the coupling the §3.3 DoS and the watermark covert
    /// channel both exploit.
    ///
    /// Each domain's solo replay is independent (its own fresh arbiter),
    /// so the replays fan across the worker pool; findings come back in
    /// ascending domain order either way.
    pub fn lint_bus(&self, trace: &[BusGrantEvent]) -> Vec<Finding> {
        if trace.is_empty() {
            return Vec::new();
        }
        let domain_count = trace.iter().map(|e| e.domain).max().unwrap_or(0) + 1;
        let mut per_domain: HashMap<u32, Vec<&BusGrantEvent>> = HashMap::new();
        for e in trace {
            per_domain.entry(e.domain).or_default().push(e);
        }
        let mut replays: Vec<(u32, Vec<&BusGrantEvent>)> = per_domain.into_iter().collect();
        replays.sort_unstable_by_key(|(d, _)| *d);
        let findings = snic_sim::par_map(replays, |(d, events)| {
            let mut solo: Box<dyn Arbiter> = match self.bus {
                BusSpec::Fcfs => Box::new(FcfsArbiter::new()),
                BusSpec::Temporal { epoch } => Box::new(TemporalArbiter::new(domain_count, epoch)),
            };
            let mut delayed = 0usize;
            let mut total_delay = 0u64;
            let mut example = None;
            for e in events {
                let alone = solo.grant(e.domain, e.ready, e.duration);
                if e.granted > alone {
                    delayed += 1;
                    total_delay += e.granted - alone;
                    example.get_or_insert((e.ready, e.granted - alone));
                }
            }
            (delayed > 0).then(|| Finding {
                kind: FindingKind::BusInterference,
                actor: FindingActor::BusDomain(d),
                count: delayed,
                range: example,
                detail: format!(
                    "{delayed} grant(s) delayed {total_delay} cycle(s) total vs. a solo replay"
                ),
            })
        });
        findings.into_iter().flatten().collect()
    }

    /// Cache lint: replay each tenant's access stream *alone* through a
    /// fresh cache of the claimed discipline and compare hit/miss
    /// outcomes. Under hard way-partitioning a tenant's outcomes are a
    /// pure function of its own stream, so the replay matches exactly
    /// and the lint stays silent — even when the tenant thrashes its own
    /// slice. On a shared cache, co-tenant evictions turn solo-replay
    /// hits into observed misses: the set-co-residency signal that
    /// Prime+Probe reads.
    /// Like the bus lint, each tenant's solo cache replay is independent
    /// (its own fresh cache of the claimed discipline), so replays fan
    /// across the worker pool in ascending tenant order.
    pub fn lint_cache(&self, trace: &[CacheAccessEvent]) -> Vec<Finding> {
        let Some((cfg, partition)) = &self.cache else {
            return Vec::new();
        };
        let mut per_tenant: HashMap<u32, Vec<&CacheAccessEvent>> = HashMap::new();
        for e in trace {
            per_tenant.entry(e.tenant).or_default().push(e);
        }
        let mut replays: Vec<(u32, Vec<&CacheAccessEvent>)> = per_tenant.into_iter().collect();
        replays.sort_unstable_by_key(|(t, _)| *t);
        // A partitioned discipline binds tenant ids to way slices at
        // construction, so a trace event from a tenant the partition
        // does not know is itself a finding: the trace cannot have come
        // from the claimed discipline, and replaying it would either
        // panic (the strict model) or alias into another tenant's slice
        // (the clamping bug this repo's engine rejects). Report such
        // tenants instead of replaying them.
        let domains = match partition {
            Partition::Shared => None,
            Partition::StaticWays { tenants } => Some(*tenants),
            Partition::SecDcp { allocation } => Some(allocation.len() as u32),
        };
        let mut foreign = Vec::new();
        if let Some(n) = domains {
            replays.retain(|(t, events)| {
                if *t < n {
                    return true;
                }
                foreign.push(Finding {
                    kind: FindingKind::ForeignCacheTenant,
                    actor: FindingActor::CacheTenant(*t),
                    count: events.len(),
                    range: events.first().map(|e| (e.addr, u64::from(cfg.line))),
                    detail: format!(
                        "{} access(es) from tenant {t}, outside the claimed \
                         {n}-domain way partition",
                        events.len()
                    ),
                });
                false
            });
        }
        let findings = snic_sim::par_map(replays, |(t, events)| {
            let mut solo = Cache::new(*cfg, partition.clone());
            let mut evicted = 0usize;
            let mut example = None;
            for e in events {
                let alone = solo.access(e.tenant, e.addr);
                if alone && !e.hit {
                    evicted += 1;
                    example.get_or_insert(e.addr);
                }
            }
            (evicted >= CORESIDENCY_MIN_EVICTIONS).then(|| Finding {
                kind: FindingKind::CacheSetCoResidency,
                actor: FindingActor::CacheTenant(t),
                count: evicted,
                range: example.map(|a| (a, u64::from(cfg.line))),
                detail: format!(
                    "{evicted} miss(es) on lines a solo replay keeps resident \
                     (co-tenant evictions)"
                ),
            })
        });
        foreign
            .into_iter()
            .chain(findings.into_iter().flatten())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EnforcementMode;
    use snic_types::{AccelKind, CoreId};
    use snic_uarch::cache::{Cache, Partition};

    const MB: u64 = 1 << 20;
    const BASE: u64 = 0x0800_0000;
    const META: u64 = 0x0010_0000;

    fn spec(bus: BusSpec) -> DeviceSpec {
        DeviceSpec {
            mode: EnforcementMode::Commodity,
            dram: 256 * MB,
            nf_region_base: BASE,
            nic_os: vec![(META, 0x2_0000)],
            cores: 4,
            core_tlb_entries: 8,
            accel: vec![(AccelKind::Crypto, 4)],
            rx_capacity: 8 * MB,
            tx_capacity: 8 * MB,
            bus,
        }
    }

    fn linter(bus: BusSpec) -> TraceLinter {
        TraceLinter::new(
            &spec(bus),
            vec![(BASE, 2 * MB, NfId(1)), (BASE + 2 * MB, 2 * MB, NfId(2))],
        )
    }

    fn rec(who: Principal, addr: u64, kind: AccessKind, granted: bool) -> AccessRecord {
        AccessRecord {
            who,
            addr,
            len: 8,
            kind,
            granted,
        }
    }

    #[test]
    fn cross_domain_reference_flagged() {
        let l = linter(BusSpec::Fcfs);
        let attacker = Principal::Nf(NfId(2), CoreId(1));
        let trace = vec![
            // NF 2 reading its own region: fine.
            rec(attacker, BASE + 2 * MB + 64, AccessKind::Load, true),
            // NF 2 reading NF 1's region: the attack.
            rec(attacker, BASE + 64, AccessKind::Load, true),
            rec(attacker, BASE + 128, AccessKind::Store, true),
        ];
        let fs = l.lint_memory(&trace);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FindingKind::CrossDomainReference);
        assert_eq!(fs[0].actor, FindingActor::Nf(NfId(2)));
        assert_eq!(fs[0].count, 2);
    }

    #[test]
    fn management_intrusion_flagged_but_trusted_hardware_ignored() {
        let l = linter(BusSpec::Fcfs);
        let trace = vec![
            rec(Principal::Management, BASE + 0x1000, AccessKind::Load, true),
            rec(Principal::TrustedHardware, BASE, AccessKind::Store, true),
            // Management touching unowned scratch memory: fine.
            rec(Principal::Management, 0x0400_0000, AccessKind::Load, true),
        ];
        let fs = l.lint_memory(&trace);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].actor, FindingActor::Management);
        assert_eq!(fs[0].count, 1);
    }

    #[test]
    fn denied_accesses_produce_no_findings() {
        let l = linter(BusSpec::Fcfs);
        let attacker = Principal::Nf(NfId(2), CoreId(1));
        let trace: Vec<AccessRecord> = (0..20)
            .map(|i| rec(attacker, BASE + i * 64, AccessKind::Load, false))
            .chain((0..20).map(|i| rec(attacker, META + i * 32, AccessKind::Load, false)))
            .collect();
        assert!(l.lint_memory(&trace).is_empty());
    }

    #[test]
    fn metadata_walk_flagged_but_single_slot_lookup_is_not() {
        let l = linter(BusSpec::Fcfs);
        let nf = Principal::Nf(NfId(2), CoreId(1));
        // One slot (4 words of the same 32-byte slot): legitimate lookup.
        let lookup: Vec<AccessRecord> = (0..4)
            .map(|i| rec(nf, META + i * 8, AccessKind::Load, true))
            .collect();
        assert!(l.lint_memory(&lookup).is_empty());
        // Twelve distinct slots: a walk.
        let walk: Vec<AccessRecord> = (0..12)
            .map(|i| rec(nf, META + i * 32, AccessKind::Load, true))
            .collect();
        let fs = l.lint_memory(&walk);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FindingKind::AllocatorMetadataWalk);
        assert_eq!(fs[0].count, 12);
    }

    /// Drive the same request pattern through a real arbiter and lint
    /// the resulting grants.
    fn bus_trace(arbiter: &mut dyn Arbiter) -> Vec<BusGrantEvent> {
        let mut out = Vec::new();
        // Attacker (domain 1) floods; victim (domain 0) issues sparsely.
        let mut victim_ready = 5u64;
        for i in 0..40u64 {
            let ready = i * 10;
            let granted = arbiter.grant(1, ready, 40);
            out.push(BusGrantEvent {
                domain: 1,
                ready,
                duration: 40,
                granted,
            });
            if i.is_multiple_of(8) {
                let granted = arbiter.grant(0, victim_ready, 8);
                out.push(BusGrantEvent {
                    domain: 0,
                    ready: victim_ready,
                    duration: 8,
                    granted,
                });
                victim_ready += 150;
            }
        }
        out
    }

    #[test]
    fn fcfs_bus_interference_flagged() {
        let l = linter(BusSpec::Fcfs);
        let mut arb = FcfsArbiter::new();
        let fs = l.lint_bus(&bus_trace(&mut arb));
        assert!(
            fs.iter()
                .any(|f| f.kind == FindingKind::BusInterference
                    && f.actor == FindingActor::BusDomain(0)),
            "victim domain must show interference: {fs:?}"
        );
    }

    #[test]
    fn temporal_bus_lints_clean() {
        let l = linter(BusSpec::Temporal { epoch: 96 });
        let mut arb = TemporalArbiter::new(2, 96);
        let fs = l.lint_bus(&bus_trace(&mut arb));
        assert!(fs.is_empty(), "temporal grants are solo-identical: {fs:?}");
    }

    /// Prime+Probe against a real cache model: the attacker (tenant 1)
    /// primes a set, the victim (tenant 0) touches it, the attacker
    /// probes.
    fn cache_trace(cache: &mut Cache, cfg: CacheConfig) -> Vec<CacheAccessEvent> {
        let sets = cfg.sets();
        let stride = sets * u64::from(cfg.line); // same set, new tag
        let mut out = Vec::new();
        let touch = |c: &mut Cache, tenant: u32, addr: u64, out: &mut Vec<CacheAccessEvent>| {
            let hit = c.access(tenant, addr);
            out.push(CacheAccessEvent { tenant, addr, hit });
        };
        // The attacker's working set fills half the ways, so it always
        // fits its own slice under 2-tenant way partitioning; the victim
        // thrashes the same set with more lines than the other half.
        let prime = u64::from(cfg.ways) / 2;
        for _round in 0..6u64 {
            // Prime: attacker parks lines in set 0.
            for w in 0..prime {
                touch(cache, 1, (w + 100) * stride, &mut out);
            }
            // Victim activity lands in the same set.
            for v in 0..prime + 1 {
                touch(cache, 0, (v + 1) * stride, &mut out);
            }
            // Probe: attacker re-touches its lines, watching for misses.
            for w in 0..prime {
                touch(cache, 1, (w + 100) * stride, &mut out);
            }
        }
        out
    }

    #[test]
    fn shared_cache_coresidency_flagged() {
        let cfg = CacheConfig {
            size: 1024,
            ways: 4,
            line: 64,
        };
        let l = linter(BusSpec::Fcfs).with_cache(cfg, Partition::Shared);
        let mut cache = Cache::new(cfg, Partition::Shared);
        let fs = l.lint_cache(&cache_trace(&mut cache, cfg));
        assert!(
            fs.iter().any(|f| f.kind == FindingKind::CacheSetCoResidency
                && f.actor == FindingActor::CacheTenant(1)),
            "prober must observe evictions: {fs:?}"
        );
    }

    #[test]
    fn partitioned_cache_lints_clean() {
        let cfg = CacheConfig {
            size: 1024,
            ways: 4,
            line: 64,
        };
        let l = linter(BusSpec::Fcfs).with_cache(cfg, Partition::StaticWays { tenants: 2 });
        let mut cache = Cache::new(cfg, Partition::StaticWays { tenants: 2 });
        let fs = l.lint_cache(&cache_trace(&mut cache, cfg));
        assert!(fs.is_empty(), "way partitioning prevents probing: {fs:?}");
    }

    #[test]
    fn foreign_tenant_is_reported_not_replayed() {
        // An event from a tenant outside the claimed partition must
        // surface as a finding — replaying it would panic in the strict
        // cache model (and a clamping model would alias it into another
        // tenant's slice, hiding the inconsistency).
        let cfg = CacheConfig {
            size: 1024,
            ways: 4,
            line: 64,
        };
        let l = linter(BusSpec::Fcfs).with_cache(cfg, Partition::StaticWays { tenants: 2 });
        let mut trace = {
            let mut cache = Cache::new(cfg, Partition::StaticWays { tenants: 2 });
            cache_trace(&mut cache, cfg)
        };
        trace.push(CacheAccessEvent {
            tenant: 7,
            addr: BASE,
            hit: false,
        });
        let fs = l.lint_cache(&trace);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FindingKind::ForeignCacheTenant);
        assert_eq!(fs[0].actor, FindingActor::CacheTenant(7));
        assert_eq!(fs[0].count, 1);

        // SecDcp binds domains by allocation length the same way.
        let l = linter(BusSpec::Fcfs).with_cache(
            cfg,
            Partition::SecDcp {
                allocation: vec![3, 1],
            },
        );
        let fs = l.lint_cache(&[CacheAccessEvent {
            tenant: 2,
            addr: BASE,
            hit: true,
        }]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FindingKind::ForeignCacheTenant);

        // A shared cache has no domain binding — any tenant id replays.
        let l = linter(BusSpec::Fcfs).with_cache(cfg, Partition::Shared);
        let fs = l.lint_cache(&[CacheAccessEvent {
            tenant: 7,
            addr: BASE,
            hit: false,
        }]);
        assert!(
            fs.iter().all(|f| f.kind != FindingKind::ForeignCacheTenant),
            "{fs:?}"
        );
    }

    #[test]
    fn lint_bundle_combines_streams() {
        let cfg = CacheConfig {
            size: 1024,
            ways: 4,
            line: 64,
        };
        let l = linter(BusSpec::Fcfs).with_cache(cfg, Partition::Shared);
        let mut arb = FcfsArbiter::new();
        let mut cache = Cache::new(cfg, Partition::Shared);
        let bundle = TraceBundle {
            memory: vec![rec(
                Principal::Nf(NfId(2), CoreId(1)),
                BASE + 64,
                AccessKind::Load,
                true,
            )],
            bus: bus_trace(&mut arb),
            cache: cache_trace(&mut cache, cfg),
        };
        let kinds: BTreeSet<String> = l
            .lint(&bundle)
            .iter()
            .map(|f| format!("{:?}", f.kind))
            .collect();
        assert!(kinds.contains("CrossDomainReference"));
        assert!(kinds.contains("BusInterference"));
        assert!(kinds.contains("CacheSetCoResidency"));
    }
}
