//! Static isolation verifier for S-NIC (the analysis counterpart of §4).
//!
//! The device model in `snic-core` *enforces* isolation dynamically: the
//! memory guard faults cross-domain loads, the temporal arbiter refuses
//! out-of-window bus grants, and so on. This crate *proves* isolation
//! statically, before anything runs, in four passes:
//!
//! - **Pass 0 — program analysis** ([`pass0`]): abstract interpretation
//!   of the NF's submitted dataflow IR (`snic-analyze`). A worklist
//!   fixpoint over an interval domain proves every load/store inside the
//!   granted regions, a per-tenant taint lattice proves no packet- or
//!   state-derived value escapes to ungranted regions, accelerators, or
//!   the host bus outside the DMA window, and a loop-bound pass proves a
//!   per-packet instruction ceiling. A clean analysis issues a
//!   certificate whose digest `nf_attest` binds into its quotes.
//!
//! - **Pass 1 — manifest verification** ([`manifest`]): given a
//!   [`spec::DeviceSpec`] (the hardware inventory) and a set of proposed
//!   [`spec::VnicManifest`]s (one per virtual NIC), decide whether the
//!   allocation is an isolation-respecting partition of the device:
//!   single-owner memory with no overlap between functions or with the
//!   NIC OS (§4.1–§4.2), denylist completeness against the ownership map
//!   (§4.2), TLB capacity and lock coverage (§4.2), exclusive accelerator
//!   clusters (§4.3), packet-buffer reservations within port capacity
//!   (§4.4), and a bus schedule that does not overcommit the epoch
//!   (§4.5). The result is a typed [`report::VerificationReport`] whose
//!   [`report::Violation`]s carry the offending function, resource range,
//!   and the paper section whose guarantee would be broken — not a bare
//!   boolean.
//!
//! - **Pass 2 — trace linting** ([`trace`]): an offline analyzer over
//!   recorded execution traces (memory references, bus grants, cache
//!   accesses) that recognizes the access patterns behind the §3.3
//!   attacks: cross-domain physical references, walks over the shared
//!   buffer allocator's metadata, bus-timing interference, and
//!   cache-set co-residency probing. On a commodity-mode trace every
//!   attack in `snic-attacks` lights up at least one
//!   [`report::Finding`]; on an S-NIC-mode trace of the same scenarios
//!   the linter stays silent, because the granted accesses it sees never
//!   cross a domain boundary.
//!
//! - **Pass 3 — fault-transcript linting** ([`faults`]): replays a
//!   `snic-faults` transcript (injections, lifecycle transitions, scrub
//!   watermarks, observed perturbations) and checks the *recovery*
//!   invariants: no region reuse before zeroization completes (§4.6,
//!   across power losses), no fault propagation across tenants
//!   (§4.3/§4.6), and a legal lifecycle transition relation.
//!
//! - **Pass 4 — admission-transcript linting** ([`serve`]): replays a
//!   `snicd` daemon admission transcript (`snic_faults::ServeRecord`)
//!   and checks the serving-layer claims: no request served for a
//!   frozen tenant, no bounded queue admitted past its configured
//!   depth, and no deadline-expired request served afterwards.
//!
//! `snic-core` runs Pass 1 inside `nf_launch` (a manifest that cannot be
//! verified is refused before any state changes) and embeds the verdict
//! in `nf_attest` quotes; `snic-bench` exposes both passes as the
//! `verify` CLI and runs Pass 3 over every blast-radius episode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod manifest;
pub mod pass0;
pub mod report;
pub mod serve;
pub mod spec;
pub mod trace;

pub use faults::lint_fault_transcript;
pub use manifest::{verify_denylist_coverage, verify_manifests, verify_tlb_state};
pub use pass0::{analyze_launch, verify_programs, Pass0Outcome};
pub use report::{
    Finding, FindingActor, FindingKind, VerificationReport, Violation, ViolationKind,
};
pub use serve::lint_serve_transcript;
pub use spec::{BusSpec, DeviceSpec, EnforcementMode, VnicManifest};
pub use trace::{BusGrantEvent, CacheAccessEvent, TraceBundle, TraceLinter};
