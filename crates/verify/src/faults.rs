//! Pass 3 — fault-transcript linting.
//!
//! `snic-faults` transcripts are totally ordered records of injections,
//! lifecycle transitions, scrub progress and observed consequences.
//! This pass replays one and checks the recovery invariants the device
//! is supposed to uphold *even while failing*:
//!
//! - **No unscrubbed reuse** (§4.6): once a region's teardown starts,
//!   no function may receive overlapping memory until a
//!   `ScrubCompleted` for it appears — across power losses, whose
//!   watermarks the transcript records.
//! - **No fault propagation** (§4.3/§4.6): after a fault is injected
//!   into one function, no *other* tenant may show a
//!   `VictimPerturbed` observation, and the device must not
//!   hard-crash. On commodity transcripts these findings are the
//!   expected blast radius; on S-NIC transcripts any hit is a bug.
//! - **Legal lifecycle** : every `Transition` respects the
//!   `Launched → Running → Faulted → Scrubbing → Reclaimed` relation.

use snic_faults::{FaultEventKind, FaultRecord};
use snic_types::NfId;

use crate::report::{Finding, FindingActor, FindingKind};

/// Lint a fault/lifecycle transcript (Pass 3). Returns one [`Finding`]
/// per broken recovery invariant; an empty vector means the device
/// failed *cleanly*.
pub fn lint_fault_transcript(records: &[FaultRecord]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Regions whose teardown started and whose zeroization has not yet
    // completed: `(base, len)`.
    let mut dirty: Vec<(u64, u64)> = Vec::new();
    // Functions a fault has been injected into so far.
    let mut faulted: Vec<NfId> = Vec::new();

    for r in records {
        match &r.kind {
            FaultEventKind::TeardownStarted { base, len } => {
                dirty.push((*base, *len));
            }
            FaultEventKind::ScrubCompleted { base, .. } => {
                dirty.retain(|&(b, _)| b != *base);
            }
            FaultEventKind::RegionReused { base, len } => {
                if let Some(&(db, dl)) = dirty
                    .iter()
                    .find(|&&(db, dl)| *base < db + dl && db < *base + *len)
                {
                    findings.push(Finding {
                        kind: FindingKind::UnscrubbedReuse,
                        actor: r
                            .nf
                            .map(FindingActor::Nf)
                            .unwrap_or(FindingActor::Management),
                        count: 1,
                        range: Some((*base, *len)),
                        detail: format!(
                            "region {base:#x}+{len:#x} handed out while {db:#x}+{dl:#x} \
                             still awaits zeroization (seq {})",
                            r.seq
                        ),
                    });
                }
            }
            FaultEventKind::Injected { fault, .. } => {
                if let Some(nf) = r.nf {
                    if !faulted.contains(&nf) {
                        faulted.push(nf);
                    }
                } else {
                    let _ = fault;
                }
            }
            FaultEventKind::VictimPerturbed { metric } => {
                let victim = r.nf;
                let crossed = match victim {
                    Some(v) => faulted.iter().any(|&f| f != v),
                    None => !faulted.is_empty(),
                };
                if crossed {
                    findings.push(Finding {
                        kind: FindingKind::FaultPropagation,
                        actor: victim
                            .map(FindingActor::Nf)
                            .unwrap_or(FindingActor::Management),
                        count: 1,
                        range: None,
                        detail: format!(
                            "victim observable `{metric}` perturbed after a fault injected \
                             into {:?} (seq {})",
                            faulted, r.seq
                        ),
                    });
                }
            }
            FaultEventKind::DeviceCrashed => {
                findings.push(Finding {
                    kind: FindingKind::FaultPropagation,
                    actor: r
                        .nf
                        .map(FindingActor::Nf)
                        .unwrap_or(FindingActor::Management),
                    count: 1,
                    range: None,
                    detail: format!(
                        "device hard-crashed: a single tenant's fault took down every \
                         co-located vNIC (seq {})",
                        r.seq
                    ),
                });
            }
            FaultEventKind::Transition { from, to } if !from.can_transition(*to) => {
                findings.push(Finding {
                    kind: FindingKind::IllegalLifecycleTransition,
                    actor: r
                        .nf
                        .map(FindingActor::Nf)
                        .unwrap_or(FindingActor::Management),
                    count: 1,
                    range: None,
                    detail: format!("illegal transition {from} -> {to} (seq {})", r.seq),
                });
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_faults::{FaultKind, FaultSite};
    use snic_types::{NfState, Picos};

    fn rec(seq: u64, nf: Option<NfId>, kind: FaultEventKind) -> FaultRecord {
        FaultRecord {
            seq,
            at: Picos(seq * 10),
            nf,
            kind,
        }
    }

    #[test]
    fn clean_scrubbed_reuse_passes() {
        let records = vec![
            rec(
                0,
                Some(NfId(1)),
                FaultEventKind::TeardownStarted {
                    base: 0x1000,
                    len: 0x1000,
                },
            ),
            rec(
                1,
                Some(NfId(1)),
                FaultEventKind::ScrubCompleted {
                    base: 0x1000,
                    len: 0x1000,
                },
            ),
            rec(
                2,
                Some(NfId(2)),
                FaultEventKind::RegionReused {
                    base: 0x1000,
                    len: 0x800,
                },
            ),
        ];
        assert!(lint_fault_transcript(&records).is_empty());
    }

    #[test]
    fn unscrubbed_reuse_flagged_across_power_loss() {
        let records = vec![
            rec(
                0,
                Some(NfId(1)),
                FaultEventKind::TeardownStarted {
                    base: 0x1000,
                    len: 0x1000,
                },
            ),
            rec(
                1,
                Some(NfId(1)),
                FaultEventKind::ScrubProgress {
                    base: 0x1000,
                    watermark: 0x400,
                    len: 0x1000,
                },
            ),
            rec(2, None, FaultEventKind::PowerLost),
            rec(3, None, FaultEventKind::PowerRestored),
            rec(
                4,
                Some(NfId(2)),
                FaultEventKind::RegionReused {
                    base: 0x1800,
                    len: 0x100,
                },
            ),
        ];
        let findings = lint_fault_transcript(&records);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::UnscrubbedReuse);
        assert!(findings[0].citation().contains("§4.6"));
    }

    #[test]
    fn propagation_and_crash_flagged() {
        let records = vec![
            rec(
                0,
                Some(NfId(1)),
                FaultEventKind::Injected {
                    fault: FaultKind::NfCrash,
                    site: FaultSite::DataPath,
                },
            ),
            rec(
                1,
                Some(NfId(2)),
                FaultEventKind::VictimPerturbed {
                    metric: "l2_misses",
                },
            ),
            rec(2, None, FaultEventKind::DeviceCrashed),
            // The faulted NF perturbing *itself* is not propagation.
            rec(
                3,
                Some(NfId(1)),
                FaultEventKind::VictimPerturbed { metric: "cycles" },
            ),
        ];
        let findings = lint_fault_transcript(&records);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::FaultPropagation));
    }

    #[test]
    fn illegal_transition_flagged() {
        let records = vec![rec(
            0,
            Some(NfId(3)),
            FaultEventKind::Transition {
                from: NfState::Reclaimed,
                to: NfState::Running,
            },
        )];
        let findings = lint_fault_transcript(&records);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::IllegalLifecycleTransition);
    }
}
