//! Inputs to the verifier: the device inventory and per-vNIC manifests.
//!
//! These are deliberately plain data — the verifier reasons about a
//! *description* of an allocation, not about live device state, so the
//! same pass can run inside `nf_launch`, over a CLI-supplied manifest
//! file, or in a test against a hand-built scenario.

use snic_pktio::vpp::VppBufferSpec;
use snic_types::{AccelKind, CoreId, NfId};

/// Whether the device enforces S-NIC's isolation mechanisms.
///
/// Mirrors `snic-core`'s `NicMode` without depending on it (the core
/// crate depends on this one). Commodity devices have no denylist and no
/// temporal bus schedule, so the corresponding checks are vacuous there;
/// everything else (single-owner memory, capacity sums) applies to both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementMode {
    /// Commodity NIC: flat physical addressing, shared allocator, FCFS
    /// bus (§3).
    Commodity,
    /// S-NIC: denylists, locked TLBs, temporal bus partitioning (§4).
    Snic,
}

/// The bus arbitration discipline a manifest set is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusSpec {
    /// First-come-first-served: no schedule to verify (§3.3's DoS is
    /// possible by construction).
    Fcfs,
    /// Temporal partitioning with `epoch`-cycle epochs (§4.5). Per-vNIC
    /// bus reservations must fit — individually and in sum — inside one
    /// epoch.
    Temporal {
        /// Cycles per epoch.
        epoch: u64,
    },
}

/// The hardware inventory the manifests are verified against.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Enforcement personality.
    pub mode: EnforcementMode,
    /// Total device DRAM in bytes.
    pub dram: u64,
    /// First byte of NF-allocatable DRAM; everything below belongs to
    /// the NIC OS / firmware (allocator metadata, buffer pools).
    pub nf_region_base: u64,
    /// Additional reserved NIC-OS ranges `(base, len)` that no function
    /// region may touch (e.g. the shared allocator's metadata table).
    pub nic_os: Vec<(u64, u64)>,
    /// Hardware core count.
    pub cores: u16,
    /// TLB entry slots per core.
    pub core_tlb_entries: usize,
    /// Accelerator clusters available per family.
    pub accel: Vec<(AccelKind, u16)>,
    /// RX port buffer capacity in bytes.
    pub rx_capacity: u64,
    /// TX port buffer capacity in bytes.
    pub tx_capacity: u64,
    /// Bus arbitration discipline.
    pub bus: BusSpec,
}

impl DeviceSpec {
    /// Clusters available for `kind`, or `None` if the family does not
    /// exist on this device.
    pub fn accel_capacity(&self, kind: AccelKind) -> Option<u16> {
        self.accel
            .iter()
            .find(|&&(k, _)| k == kind)
            .map(|&(_, n)| n)
    }
}

/// One proposed virtual NIC: the resources a function would own.
#[derive(Debug, Clone)]
pub struct VnicManifest {
    /// The function this manifest describes.
    pub nf: NfId,
    /// Cores to bind exclusively.
    pub cores: Vec<CoreId>,
    /// Private RAM region `(base, len)` in device physical memory.
    pub region: (u64, u64),
    /// Host-physical DMA window `(base, len)`, if the function does host
    /// transfers (§4.2's SR-IOV-style windows). Host addresses — checked
    /// for exclusivity against other manifests, not against device DRAM.
    pub host_window: Option<(u64, u64)>,
    /// TLB entries required per core (region mapping plan + VPP buffer
    /// mappings).
    pub tlb_entries: usize,
    /// Accelerator clusters requested per family.
    pub accel: Vec<(AccelKind, usize)>,
    /// VPP buffer reservation (PB charged to RX, ODB to TX).
    pub vpp: VppBufferSpec,
    /// Bus-cycle reservation per epoch under temporal partitioning;
    /// `None` = no reserved bus time.
    pub bus_slice: Option<u64>,
}

impl VnicManifest {
    /// A minimal manifest: one core, one region, default VPP buffers.
    pub fn minimal(nf: NfId, core: CoreId, region: (u64, u64)) -> VnicManifest {
        let vpp = VppBufferSpec::default();
        VnicManifest {
            nf,
            cores: vec![core],
            region,
            host_window: None,
            tlb_entries: 1 + vpp.tlb_entries() as usize,
            accel: Vec::new(),
            vpp,
            bus_slice: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_capacity_lookup() {
        let spec = DeviceSpec {
            mode: EnforcementMode::Snic,
            dram: 1 << 30,
            nf_region_base: 0x0800_0000,
            nic_os: Vec::new(),
            cores: 4,
            core_tlb_entries: 16,
            accel: vec![(AccelKind::Crypto, 8)],
            rx_capacity: 1 << 20,
            tx_capacity: 1 << 20,
            bus: BusSpec::Temporal { epoch: 96 },
        };
        assert_eq!(spec.accel_capacity(AccelKind::Crypto), Some(8));
        assert_eq!(spec.accel_capacity(AccelKind::Zip), None);
    }

    #[test]
    fn minimal_manifest_counts_vpp_tlb_entries() {
        let m = VnicManifest::minimal(NfId(1), CoreId(0), (0x0800_0000, 0x10_0000));
        assert_eq!(
            m.tlb_entries,
            1 + VppBufferSpec::default().tlb_entries() as usize
        );
    }
}
