//! Pass 0: static program analysis of the NF's dataflow IR.
//!
//! Passes 1–3 trust the NF *program* blindly — they prove the allocation
//! sound and lint what the program was observed to do. Pass 0 closes the
//! gap before launch: `snic-analyze` abstractly interprets the submitted
//! IR and proves every reachable load/store confined, information flow
//! contained, and per-packet instruction count bounded. This module is
//! the thin adapter that runs the analyzer and folds its output into the
//! verifier's typed [`Violation`] stream, so `snicctl verify --json` and
//! `nf_launch` see one uniform report across all passes.

use snic_analyze::{analyze, AnalysisReport, AnalysisViolationKind, LaunchAnalysis};
use snic_types::NfId;

use crate::report::{VerificationReport, Violation, ViolationKind};

/// Map an analyzer violation kind onto the verifier's unified enum. The
/// stable `P0-*` codes are identical on both sides (asserted in tests);
/// this keeps one `code()` namespace for all four passes.
pub fn map_kind(kind: AnalysisViolationKind) -> ViolationKind {
    match kind {
        AnalysisViolationKind::OobLoad => ViolationKind::OobLoad,
        AnalysisViolationKind::OobStore => ViolationKind::OobStore,
        AnalysisViolationKind::DmaOverflow => ViolationKind::DmaOverflow,
        AnalysisViolationKind::TaintLeak => ViolationKind::TaintLeak,
        AnalysisViolationKind::UngrantedRegion => ViolationKind::UngrantedRegion,
        AnalysisViolationKind::UngrantedAccel => ViolationKind::UngrantedAccel,
        AnalysisViolationKind::UnboundedLoop => ViolationKind::UnboundedLoop,
        AnalysisViolationKind::InsnCeiling => ViolationKind::InsnCeiling,
        AnalysisViolationKind::MalformedIr => ViolationKind::MalformedIr,
        AnalysisViolationKind::FixpointBudget => ViolationKind::FixpointBudget,
    }
}

/// The outcome of Pass 0 for one NF: the raw analyzer report plus the
/// violations re-attributed into the verifier's namespace.
#[derive(Debug, Clone)]
pub struct Pass0Outcome {
    /// The analyzer's full report (certificate, ceiling, step count).
    pub report: AnalysisReport,
    /// The same violations as unified verifier [`Violation`]s.
    pub violations: Vec<Violation>,
}

impl Pass0Outcome {
    /// True if the program verified clean (a certificate was issued).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Digest of the analysis certificate, all-zero when rejected.
    /// `nf_attest` binds this into its quotes so a remote verifier can
    /// distinguish "proved confined" from "launched anyway".
    pub fn certificate_digest(&self) -> [u8; 32] {
        self.report
            .certificate
            .as_ref()
            .map(|c| c.digest())
            .unwrap_or([0u8; 32])
    }
}

/// Run Pass 0 over one launch submission, attributing violations to
/// `nf`. This is what `nf_launch` calls before reserving any resource.
pub fn analyze_launch(nf: NfId, submission: &LaunchAnalysis) -> Pass0Outcome {
    let report = analyze(&submission.program, &submission.manifest);
    let violations = report
        .violations
        .iter()
        .map(|v| Violation {
            kind: map_kind(v.kind),
            nf: Some(nf),
            range: None,
            detail: v.detail.clone(),
        })
        .collect();
    Pass0Outcome { report, violations }
}

/// Run Pass 0 over a batch and collect a [`VerificationReport`] in the
/// same shape Pass 1 produces (the `snicctl analyze` entry point).
pub fn verify_programs(submissions: &[(NfId, LaunchAnalysis)]) -> VerificationReport {
    let mut violations = Vec::new();
    for (nf, sub) in submissions {
        violations.extend(analyze_launch(*nf, sub).violations);
    }
    VerificationReport {
        violations,
        manifests_checked: submissions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_analyze::{AnalysisManifest, ProgramBuilder, RegionClass};

    fn clean_submission() -> LaunchAnalysis {
        let mut b = ProgramBuilder::new("unit-nf");
        let pkt = b.region("pkt", 0x1000, 0x100, RegionClass::PacketBuf);
        let v = b.load(pkt, snic_analyze::Operand::Imm(0), 8, 10);
        b.emit(snic_analyze::Operand::Reg(v), 5);
        LaunchAnalysis {
            program: b.finish(),
            manifest: AnalysisManifest {
                regions: vec![(0x1000, 0x100)],
                accel: vec![],
                dma_window: None,
                max_insns_per_packet: 100,
            },
        }
    }

    fn oob_submission() -> LaunchAnalysis {
        let mut sub = clean_submission();
        let mut b = ProgramBuilder::new("oob-nf");
        let pkt = b.region("pkt", 0x1000, 0x100, RegionClass::PacketBuf);
        // 8-byte load at offset 0x100 ends at 0x108 > 0x100.
        let v = b.load(pkt, snic_analyze::Operand::Imm(0x100), 8, 10);
        b.emit(snic_analyze::Operand::Reg(v), 5);
        sub.program = b.finish();
        sub
    }

    #[test]
    fn codes_agree_across_the_pass_boundary() {
        use AnalysisViolationKind as A;
        for kind in [
            A::OobLoad,
            A::OobStore,
            A::DmaOverflow,
            A::TaintLeak,
            A::UngrantedRegion,
            A::UngrantedAccel,
            A::UnboundedLoop,
            A::InsnCeiling,
            A::MalformedIr,
            A::FixpointBudget,
        ] {
            assert_eq!(kind.code(), map_kind(kind).code(), "{kind:?}");
        }
    }

    #[test]
    fn clean_program_yields_certificate_digest() {
        let out = analyze_launch(NfId(1), &clean_submission());
        assert!(out.is_clean());
        assert_ne!(out.certificate_digest(), [0u8; 32]);
    }

    #[test]
    fn rejected_program_attributes_nf_and_zeroes_digest() {
        let out = analyze_launch(NfId(7), &oob_submission());
        assert!(!out.is_clean());
        assert_eq!(out.certificate_digest(), [0u8; 32]);
        assert_eq!(out.violations[0].nf, Some(NfId(7)));
        assert_eq!(out.violations[0].code(), "P0-OOB-LOAD");
    }

    #[test]
    fn batch_report_matches_pass1_shape() {
        let r = verify_programs(&[(NfId(1), clean_submission()), (NfId(2), oob_submission())]);
        assert_eq!(r.manifests_checked, 2);
        assert!(!r.is_ok());
        assert!(r.to_json().contains("P0-OOB-LOAD"));
    }
}
