//! Pass 1: prove a set of vNIC manifests is an isolation-respecting
//! partition of the device.
//!
//! Every check here is a static counterpart of a mechanism `nf_launch`
//! configures dynamically: the verifier proves the *allocation* sound
//! before the instruction mutates any hardware state, which is what lets
//! the launch path refuse unverifiable manifests atomically.

use std::collections::HashMap;

use snic_mem::denylist::Denylist;
use snic_mem::tlb::Tlb;
use snic_types::{AccelKind, NfId};

use crate::report::{VerificationReport, Violation, ViolationKind};
use crate::spec::{BusSpec, DeviceSpec, EnforcementMode, VnicManifest};

/// True if `a` and `b` (each `(base, len)`) share at least one byte.
fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    let (ab, al) = a;
    let (bb, bl) = b;
    al > 0 && bl > 0 && ab < bb.saturating_add(bl) && bb < ab.saturating_add(al)
}

/// Verify `manifests` against `spec`. The report collects *every*
/// violation, not just the first, so an operator sees the whole repair
/// surface at once.
pub fn verify_manifests(spec: &DeviceSpec, manifests: &[VnicManifest]) -> VerificationReport {
    let mut violations = Vec::new();
    check_cores(spec, manifests, &mut violations);
    check_memory(spec, manifests, &mut violations);
    check_tlb_capacity(spec, manifests, &mut violations);
    check_accel(spec, manifests, &mut violations);
    check_vpp(spec, manifests, &mut violations);
    check_bus(spec, manifests, &mut violations);
    VerificationReport {
        violations,
        manifests_checked: manifests.len(),
    }
}

/// §4.1: cores bind to exactly one function, and must exist.
fn check_cores(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    let mut claimed: HashMap<u16, NfId> = HashMap::new();
    for m in manifests {
        for &core in &m.cores {
            if core.0 >= spec.cores {
                out.push(Violation {
                    kind: ViolationKind::CoreConflict,
                    nf: Some(m.nf),
                    range: Some((u64::from(core.0), 1)),
                    detail: format!("core {} does not exist (device has {})", core.0, spec.cores),
                });
                // Fall through: a nonexistent core still participates in
                // duplicate-claim detection, otherwise two manifests
                // fighting over the same phantom core hide the conflict.
            }
            if let Some(prev) = claimed.insert(core.0, m.nf) {
                out.push(Violation {
                    kind: ViolationKind::CoreConflict,
                    nf: Some(m.nf),
                    range: Some((u64::from(core.0), 1)),
                    detail: if prev == m.nf {
                        format!("core {} listed twice in one manifest", core.0)
                    } else {
                        format!("core {} already bound to nf {}", core.0, prev.0)
                    },
                });
            }
        }
    }
}

/// §4.1–§4.2: single-owner memory. Regions must lie inside allocatable
/// DRAM, avoid NIC-OS reservations, and be pairwise disjoint; host DMA
/// windows must be pairwise disjoint in host physical memory.
fn check_memory(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    for m in manifests {
        let (base, len) = m.region;
        if len == 0 {
            out.push(Violation {
                kind: ViolationKind::OutOfDram,
                nf: Some(m.nf),
                range: Some(m.region),
                detail: "empty region".into(),
            });
            continue;
        }
        if base < spec.nf_region_base || base.saturating_add(len) > spec.dram {
            out.push(Violation {
                kind: ViolationKind::OutOfDram,
                nf: Some(m.nf),
                range: Some(m.region),
                detail: format!(
                    "region outside allocatable DRAM [{:#x}, {:#x})",
                    spec.nf_region_base, spec.dram
                ),
            });
        }
        for &os in &spec.nic_os {
            if ranges_overlap(m.region, os) {
                out.push(Violation {
                    kind: ViolationKind::NicOsCollision,
                    nf: Some(m.nf),
                    range: Some(os),
                    detail: format!("region overlaps NIC-OS range {:#x}+{:#x}", os.0, os.1),
                });
            }
        }
    }
    for (i, a) in manifests.iter().enumerate() {
        for b in &manifests[i + 1..] {
            if ranges_overlap(a.region, b.region) {
                out.push(Violation {
                    kind: ViolationKind::RegionOverlap,
                    nf: Some(b.nf),
                    range: Some(b.region),
                    detail: format!(
                        "region overlaps nf {}'s region {:#x}+{:#x}",
                        a.nf.0, a.region.0, a.region.1
                    ),
                });
            }
            if let (Some(wa), Some(wb)) = (a.host_window, b.host_window) {
                if ranges_overlap(wa, wb) {
                    out.push(Violation {
                        kind: ViolationKind::RegionOverlap,
                        nf: Some(b.nf),
                        range: Some(wb),
                        detail: format!("host DMA window overlaps nf {}'s window", a.nf.0),
                    });
                }
            }
        }
    }
}

/// §4.2/§5.2: the mapping plan must fit the per-core TLB so it can be
/// installed in full and locked (a miss after locking is fatal).
fn check_tlb_capacity(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    for m in manifests {
        if m.tlb_entries > spec.core_tlb_entries {
            out.push(Violation {
                kind: ViolationKind::TlbOverflow,
                nf: Some(m.nf),
                range: Some((m.tlb_entries as u64, 0)),
                detail: format!(
                    "needs {} TLB entries per core, hardware has {}",
                    m.tlb_entries, spec.core_tlb_entries
                ),
            });
        }
    }
}

/// §4.3: accelerator clusters are assigned exclusively, so the per-family
/// request sum must fit the device inventory.
fn check_accel(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    let mut demand: HashMap<AccelKind, usize> = HashMap::new();
    for m in manifests {
        for &(kind, count) in &m.accel {
            match spec.accel_capacity(kind) {
                None => out.push(Violation {
                    kind: ViolationKind::AccelOvercommit,
                    nf: Some(m.nf),
                    range: None,
                    detail: format!("device has no {kind:?} accelerator"),
                }),
                Some(_) => *demand.entry(kind).or_insert(0) += count,
            }
        }
    }
    for (kind, total) in demand {
        let capacity = usize::from(spec.accel_capacity(kind).unwrap_or(0));
        if total > capacity {
            out.push(Violation {
                kind: ViolationKind::AccelOvercommit,
                nf: None,
                range: Some((total as u64, capacity as u64)),
                detail: format!("{kind:?} demand {total} exceeds {capacity} clusters"),
            });
        }
    }
}

/// §4.4: summed VPP reservations must fit the physical port buffers
/// (PB charged against RX, ODB against TX — the device's accounting).
fn check_vpp(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    let rx: u64 = manifests.iter().map(|m| m.vpp.pb.bytes()).sum();
    let tx: u64 = manifests.iter().map(|m| m.vpp.odb.bytes()).sum();
    if rx > spec.rx_capacity {
        out.push(Violation {
            kind: ViolationKind::VppOvercommit,
            nf: None,
            range: Some((rx, spec.rx_capacity)),
            detail: format!(
                "RX packet-buffer demand {rx} exceeds port capacity {}",
                spec.rx_capacity
            ),
        });
    }
    if tx > spec.tx_capacity {
        out.push(Violation {
            kind: ViolationKind::VppOvercommit,
            nf: None,
            range: Some((tx, spec.tx_capacity)),
            detail: format!(
                "TX output-buffer demand {tx} exceeds port capacity {}",
                spec.tx_capacity
            ),
        });
    }
}

/// §4.5: under temporal partitioning, each reservation must fit one
/// epoch (the arbiter's dead-time rule) and the schedule must not
/// overcommit the epoch in sum.
fn check_bus(spec: &DeviceSpec, manifests: &[VnicManifest], out: &mut Vec<Violation>) {
    let epoch = match spec.bus {
        BusSpec::Fcfs => return,
        BusSpec::Temporal { epoch } => epoch,
    };
    let mut total = 0u64;
    for m in manifests {
        if let Some(slice) = m.bus_slice {
            total = total.saturating_add(slice);
            if slice > epoch {
                out.push(Violation {
                    kind: ViolationKind::BusOvercommit,
                    nf: Some(m.nf),
                    range: Some((slice, epoch)),
                    detail: format!("bus slice {slice} cycles exceeds the {epoch}-cycle epoch"),
                });
            }
        }
    }
    if total > epoch {
        out.push(Violation {
            kind: ViolationKind::BusOvercommit,
            nf: None,
            range: Some((total, epoch)),
            detail: format!("bus schedule reserves {total} of {epoch} cycles per epoch"),
        });
    }
}

/// §4.2 state check: every NF-owned physical range must be denylisted
/// for the management core. `owned` comes from
/// [`snic_mem::PageOwnership::owned_ranges`]. Vacuous on commodity
/// devices, which have no denylist by design.
pub fn verify_denylist_coverage(
    mode: EnforcementMode,
    owned: &[(u64, u64, NfId)],
    denylist: &Denylist,
) -> Vec<Violation> {
    if mode == EnforcementMode::Commodity {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &(base, len, nf) in owned {
        // A range is covered iff every byte is denied; since denylist
        // intervals are disjoint and sorted, walk them over the range.
        let mut cursor = base;
        let end = base + len;
        for &(db, dl, _) in denylist.intervals() {
            if db + dl <= cursor {
                continue;
            }
            if db > cursor {
                break; // gap at `cursor`
            }
            cursor = end.min(db + dl);
            if cursor == end {
                break;
            }
        }
        if cursor < end {
            out.push(Violation {
                kind: ViolationKind::DenylistGap,
                nf: Some(nf),
                range: Some((cursor, end - cursor)),
                detail: format!(
                    "owned range {base:#x}+{len:#x} reachable by the management core from {cursor:#x}"
                ),
            });
        }
    }
    out
}

/// §4.2 state check: a live function's per-core TLBs must be locked and
/// must only map memory the manifest grants (region, NIC-OS windows are
/// not granted). Vacuous on commodity devices, which run without TLB
/// enforcement.
pub fn verify_tlb_state(
    mode: EnforcementMode,
    manifest: &VnicManifest,
    tlbs: &[&Tlb],
) -> Vec<Violation> {
    if mode == EnforcementMode::Commodity {
        return Vec::new();
    }
    let mut out = Vec::new();
    for tlb in tlbs {
        if !tlb.is_locked() {
            out.push(Violation {
                kind: ViolationKind::TlbEscape,
                nf: Some(manifest.nf),
                range: None,
                detail: "TLB left unlocked after launch".into(),
            });
        }
        for (pa, len) in tlb.reachable_ranges() {
            if !range_within((pa, len), manifest.region) {
                out.push(Violation {
                    kind: ViolationKind::TlbEscape,
                    nf: Some(manifest.nf),
                    range: Some((pa, len)),
                    detail: format!(
                        "TLB maps {pa:#x}+{len:#x} outside the function's region {:#x}+{:#x}",
                        manifest.region.0, manifest.region.1
                    ),
                });
            }
        }
    }
    out
}

/// True if `inner` lies entirely within `outer`.
fn range_within(inner: (u64, u64), outer: (u64, u64)) -> bool {
    inner.0 >= outer.0 && inner.0.saturating_add(inner.1) <= outer.0.saturating_add(outer.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_mem::pagetable::PageMapping;
    use snic_pktio::vpp::VppBufferSpec;
    use snic_types::{ByteSize, CoreId};

    const BASE: u64 = 0x0800_0000;
    const MB: u64 = 1 << 20;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            mode: EnforcementMode::Snic,
            dram: 256 * MB,
            nf_region_base: BASE,
            nic_os: vec![(0x0010_0000, 0x2_0000), (0x0200_0000, 32 * MB)],
            cores: 4,
            core_tlb_entries: 8,
            accel: vec![(AccelKind::Crypto, 4), (AccelKind::Dpi, 4)],
            rx_capacity: 8 * MB,
            tx_capacity: 8 * MB,
            bus: BusSpec::Temporal { epoch: 96 },
        }
    }

    fn manifest(nf: u64, core: u16, base: u64) -> VnicManifest {
        VnicManifest::minimal(NfId(nf), CoreId(core), (base, 2 * MB))
    }

    fn kinds(report: &VerificationReport) -> Vec<ViolationKind> {
        report.violations.iter().map(|v| v.kind).collect()
    }

    #[test]
    fn disjoint_manifests_verify() {
        let ms = [manifest(1, 0, BASE), manifest(2, 1, BASE + 2 * MB)];
        let r = verify_manifests(&spec(), &ms);
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.manifests_checked, 2);
    }

    #[test]
    fn overlapping_regions_flagged() {
        let ms = [manifest(1, 0, BASE), manifest(2, 1, BASE + MB)];
        let r = verify_manifests(&spec(), &ms);
        assert_eq!(kinds(&r), vec![ViolationKind::RegionOverlap]);
        assert_eq!(r.violations[0].nf, Some(NfId(2)));
    }

    #[test]
    fn nic_os_collision_flagged() {
        let mut m = manifest(1, 0, BASE);
        m.region = (0x0200_0000 + MB, 2 * MB); // inside the buffer pool
        let r = verify_manifests(&spec(), &[m]);
        assert!(kinds(&r).contains(&ViolationKind::NicOsCollision));
        assert!(kinds(&r).contains(&ViolationKind::OutOfDram)); // below nf_region_base
    }

    #[test]
    fn out_of_dram_and_empty_regions_flagged() {
        let mut high = manifest(1, 0, 255 * MB);
        high.region.1 = 4 * MB; // spills past 256 MB
        let mut empty = manifest(2, 1, BASE);
        empty.region.1 = 0;
        let r = verify_manifests(&spec(), &[high, empty]);
        assert_eq!(
            kinds(&r),
            vec![ViolationKind::OutOfDram, ViolationKind::OutOfDram]
        );
    }

    #[test]
    fn core_conflicts_flagged() {
        let mut dup = manifest(1, 0, BASE);
        dup.cores = vec![CoreId(0), CoreId(0)];
        let stolen = manifest(2, 0, BASE + 2 * MB);
        let ghost = manifest(3, 99, BASE + 4 * MB);
        let r = verify_manifests(&spec(), &[dup, stolen, ghost]);
        assert_eq!(
            kinds(&r),
            vec![
                ViolationKind::CoreConflict, // core 0 twice in one manifest
                ViolationKind::CoreConflict, // nf 2 steals core 0
                ViolationKind::CoreConflict, // core 99 does not exist
            ]
        );
    }

    #[test]
    fn duplicate_claims_of_nonexistent_core_still_conflict() {
        // Regression: the existence check used to `continue` before
        // recording the claim, so two manifests fighting over the same
        // phantom core produced only existence violations and the
        // duplicate claim vanished.
        let a = manifest(1, 99, BASE);
        let b = manifest(2, 99, BASE + 2 * MB);
        let r = verify_manifests(&spec(), &[a, b]);
        assert_eq!(
            kinds(&r),
            vec![
                ViolationKind::CoreConflict, // nf 1: core 99 does not exist
                ViolationKind::CoreConflict, // nf 2: core 99 does not exist
                ViolationKind::CoreConflict, // nf 2: core 99 already bound
            ]
        );
        assert!(r.violations[2].detail.contains("already bound to nf 1"));
    }

    #[test]
    fn tlb_overflow_flagged() {
        let mut m = manifest(1, 0, BASE);
        m.tlb_entries = 9;
        let r = verify_manifests(&spec(), &[m]);
        assert_eq!(kinds(&r), vec![ViolationKind::TlbOverflow]);
    }

    #[test]
    fn accel_overcommit_and_unknown_family_flagged() {
        let mut a = manifest(1, 0, BASE);
        a.accel = vec![(AccelKind::Crypto, 3)];
        let mut b = manifest(2, 1, BASE + 2 * MB);
        b.accel = vec![(AccelKind::Crypto, 2), (AccelKind::Raid, 1)];
        let r = verify_manifests(&spec(), &[a, b]);
        let ks = kinds(&r);
        assert_eq!(
            ks.iter()
                .filter(|&&k| k == ViolationKind::AccelOvercommit)
                .count(),
            2,
            "{r}"
        );
    }

    #[test]
    fn vpp_overcommit_flagged() {
        let mut ms: Vec<VnicManifest> = (0..4)
            .map(|i| manifest(i + 1, i as u16, BASE + i * 2 * MB))
            .collect();
        for m in &mut ms {
            m.vpp = VppBufferSpec {
                pb: ByteSize::mib(4), // 4 x 4 MB > 8 MB RX
                pdb: ByteSize::kib(128),
                odb: ByteSize::mib(1),
            };
        }
        let r = verify_manifests(&spec(), &ms);
        assert_eq!(kinds(&r), vec![ViolationKind::VppOvercommit]);
    }

    #[test]
    fn bus_overcommit_flagged() {
        let mut a = manifest(1, 0, BASE);
        a.bus_slice = Some(60);
        let mut b = manifest(2, 1, BASE + 2 * MB);
        b.bus_slice = Some(60);
        let r = verify_manifests(&spec(), &[a, b]);
        assert_eq!(kinds(&r), vec![ViolationKind::BusOvercommit]);

        let mut huge = manifest(3, 2, BASE + 4 * MB);
        huge.bus_slice = Some(200);
        let r = verify_manifests(&spec(), &[huge]);
        // Over-epoch slice is flagged per-NF and pushes the sum over too.
        assert_eq!(
            kinds(&r),
            vec![ViolationKind::BusOvercommit, ViolationKind::BusOvercommit]
        );
    }

    #[test]
    fn fcfs_bus_has_no_schedule_to_verify() {
        let mut s = spec();
        s.bus = BusSpec::Fcfs;
        let mut m = manifest(1, 0, BASE);
        m.bus_slice = Some(10_000);
        assert!(verify_manifests(&s, &[m]).is_ok());
    }

    #[test]
    fn denylist_gap_detected_and_full_coverage_accepted() {
        let owned = [(BASE, 4 * MB, NfId(1))];
        let mut full = Denylist::new();
        full.deny(BASE, 4 * MB, NfId(1)).unwrap();
        assert!(verify_denylist_coverage(EnforcementMode::Snic, &owned, &full).is_empty());

        let mut partial = Denylist::new();
        partial.deny(BASE, MB, NfId(1)).unwrap(); // first MB only
        let vs = verify_denylist_coverage(EnforcementMode::Snic, &owned, &partial);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::DenylistGap);
        assert_eq!(vs[0].range, Some((BASE + MB, 3 * MB)));

        // Commodity devices have no denylist: vacuously fine.
        assert!(
            verify_denylist_coverage(EnforcementMode::Commodity, &owned, &Denylist::new())
                .is_empty()
        );
    }

    #[test]
    fn denylist_coverage_spanning_multiple_intervals() {
        let owned = [(BASE, 4 * MB, NfId(1))];
        let mut split = Denylist::new();
        split.deny(BASE, MB, NfId(1)).unwrap();
        split.deny(BASE + MB, 3 * MB, NfId(1)).unwrap();
        assert!(verify_denylist_coverage(EnforcementMode::Snic, &owned, &split).is_empty());
    }

    #[test]
    fn tlb_state_checks_lock_and_reach() {
        let m = manifest(1, 0, BASE);
        let mapping_in = PageMapping {
            va: 0,
            pa: BASE,
            page_size: 2 * MB,
            writable: true,
        };
        let mut good = Tlb::new(CoreId(0), 8);
        good.install(mapping_in).unwrap();
        good.lock();
        assert!(verify_tlb_state(EnforcementMode::Snic, &m, &[&good]).is_empty());

        let mut unlocked = Tlb::new(CoreId(0), 8);
        unlocked.install(mapping_in).unwrap();
        let vs = verify_tlb_state(EnforcementMode::Snic, &m, &[&unlocked]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::TlbEscape);

        let mut escaping = Tlb::new(CoreId(0), 8);
        escaping
            .install(PageMapping {
                va: 0,
                pa: 0x0010_0000, // allocator metadata
                page_size: 2 * MB,
                writable: false,
            })
            .unwrap();
        escaping.lock();
        let vs = verify_tlb_state(EnforcementMode::Snic, &m, &[&escaping]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::TlbEscape);
        assert_eq!(vs[0].range, Some((0x0010_0000, 2 * MB)));
    }
}
