//! `snic-serve` — `snicd`, a resident serving daemon over the device
//! model.
//!
//! The rest of the workspace drives a [`snic_core::SmartNic`] as a
//! library: construct, poke, assert, drop. This crate gives it a
//! *service* shape — a long-running daemon that owns one device and
//! serves multi-tenant requests over a line-delimited JSON protocol —
//! and makes the robustness story of the paper's control plane
//! testable end to end:
//!
//! - **Admission control and backpressure** ([`admission`]): per-tenant
//!   bounded queues (shed `SERVE-OVERLOADED`), deterministic token
//!   buckets over simulated time (`SERVE-RATE-LIMITED`), live-NF quotas
//!   (`SERVE-QUOTA`).
//! - **Deadlines and retries** ([`daemon`]): absolute simulated-time
//!   deadlines that expire requests in queue or cancel a launch between
//!   retry attempts with the device rolled back to its pre-call
//!   resource snapshot; `nf_create_with_retry`'s capped, seeded-jitter
//!   backoff is the standard launch policy.
//! - **Graceful degradation**: a NIC-OS-attributed fault freezes only
//!   the faulted tenant's queue; everyone else keeps being served. An
//!   explicit `reclaim` tears the faulted NFs down, sheds the held
//!   queue, and thaws.
//! - **Crash-safe restart** ([`snapshot`]): because every observable is
//!   a pure function of `(config, input lines)`, a snapshot is the
//!   canonical config plus the line history, sealed with transcript and
//!   state digests; restore replays and verifies.
//! - **Verification** ([`snic_verify::serve`]): Pass 4 lints the serve
//!   transcript for frozen-tenant service, quota bypass, and
//!   expired-then-served violations.
//! - **Soak** ([`soak`]): a seeded ~30-simulated-second overload
//!   schedule with a mid-run fault plan and a byte-stability gate.
//!
//! The binary lives in the facade crate (`src/bin/snicd.rs`); `snicctl
//! serve` and `snicctl soak` drive the same [`daemon::Daemon`] in
//! process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod daemon;
pub mod protocol;
pub mod snapshot;
pub mod soak;

pub use admission::{TenantQuota, TenantStats};
pub use daemon::{Daemon, DaemonConfig};
pub use protocol::codes;
pub use snapshot::{render_image, restore};
pub use soak::{run as soak_run, run_with_restart as soak_run_with_restart, SoakReport};
